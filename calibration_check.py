"""Calibration sweep: evaluate the model against every headline paper number.

Run: python calibration_check.py
"""
import numpy as np
from repro.core import Simulation, csp_problem, stream_problem, scatter_problem, Scheme
from repro.core.config import Layout
from repro.perfmodel import Workload, predict_cpu, predict_gpu, CPUOptions, GPUOptions, TallyMode
from repro.machine import BROADWELL, KNL, POWER8, K20X, P100
from repro.parallel.affinity import Affinity

wl = {}
for name, factory, n_paper in [("stream", stream_problem, 1_000_000),
                               ("scatter", scatter_problem, 10_000_000),
                               ("csp", csp_problem, 1_000_000)]:
    r = Simulation(factory(nx=96, nparticles=60)).run(Scheme.OVER_EVENTS)
    wl[name] = Workload.from_result(r).scaled(n_paper, 4000)

OP = lambda nt, **kw: CPUOptions(nthreads=nt, **kw)
OE = lambda nt, **kw: CPUOptions(nthreads=nt, scheme=Scheme.OVER_EVENTS, layout=Layout.SOA, **kw)

def t_cpu(w, spec, opt): return predict_cpu(w, spec, opt).seconds

w = wl["csp"]
res = {}
for label, spec, nt, fast in [("bdw", BROADWELL, 88, False), ("knl", KNL, 256, True), ("p8", POWER8, 160, False)]:
    aff = Affinity.SCATTER if label == "knl" else Affinity.COMPACT
    res[label+"_op"] = t_cpu(w, spec, OP(nt, use_fast_memory=fast, affinity=aff))
    res[label+"_oe"] = t_cpu(w, spec, OE(nt, use_fast_memory=fast, affinity=aff))
for label, spec in [("k20x", K20X), ("p100", P100)]:
    res[label+"_op"] = predict_gpu(w, spec, GPUOptions()).seconds
    res[label+"_oe"] = predict_gpu(w, spec, GPUOptions(scheme=Scheme.OVER_EVENTS)).seconds

checks = []
def chk(name, val, target, lo, hi):
    ok = lo <= val <= hi
    checks.append((name, val, target, ok))

# Fig 9/11: OP vs OE csp ratios
chk("BDW OE/OP csp (4.56x)", res["bdw_oe"]/res["bdw_op"], 4.56, 2.5, 7.0)
chk("P8 OE/OP csp (3.75x)", res["p8_oe"]/res["p8_op"], 3.75, 2.0, 6.0)
chk("P8 gap < BDW gap", (res["p8_oe"]/res["p8_op"]) / (res["bdw_oe"]/res["bdw_op"]), 0.82, 0.0, 1.0)
# Fig 13: P100 OP vs OE 3.64x; P100 4.5x over K20X
chk("P100 OE/OP csp (3.64x)", res["p100_oe"]/res["p100_op"], 3.64, 2.0, 5.5)
chk("K20X/P100 OP csp (4.5x)", res["k20x_op"]/res["p100_op"], 4.5, 3.0, 6.0)
# Fig 14: P100 3.2x faster than BDW; BDW 1.34x over P8; KNL/P8 similar; K20X slowest csp
chk("BDW/P100 csp (3.2x)", res["bdw_op"]/res["p100_op"], 3.2, 2.0, 4.5)
chk("BDW faster than P8 (1.34x)", res["p8_op"]/res["bdw_op"], 1.34, 1.1, 1.7)
chk("KNL ~ P8 csp", res["knl_op"]/res["p8_op"], 1.0, 0.75, 1.35)
chk("K20X slowest csp (vs P8)", res["k20x_op"]/res["p8_op"], 1.1, 1.0, 3.0)
# Fig 12: K20X bandwidths
p = predict_gpu(w, K20X, GPUOptions())
chk("K20X OP bw ~35GB/s", p.achieved_bandwidth_gbs, 35, 25, 48)
p = predict_gpu(w, K20X, GPUOptions(scheme=Scheme.OVER_EVENTS))
chk("K20X OE bw ~90GB/s", p.achieved_bandwidth_gbs, 90, 60, 130)
p = predict_gpu(w, P100, GPUOptions())
chk("P100 OP bw ~125GB/s", p.achieved_bandwidth_gbs, 125, 95, 160)
chk("P100 occupancy 0.38", p.occupancy, 0.38, 0.35, 0.42)
# Fig 13: P100 reg cap 64: occ 0.49, 1.07x slower
q = predict_gpu(w, P100, GPUOptions(max_registers=64))
chk("P100 reg64 occ 0.49", q.occupancy, 0.49, 0.47, 0.52)
chk("P100 reg64 1.07x slower", q.seconds/p.seconds, 1.07, 1.0, 1.2)
# §VI-H: K20X reg cap 102->64 gives 1.6x
k = predict_gpu(w, K20X, GPUOptions())
k64 = predict_gpu(w, K20X, GPUOptions(max_registers=64))
chk("K20X reg64 speedup 1.6x", k.seconds/k64.seconds, 1.6, 1.3, 1.9)
# §VIII-A: P100 native atomics worth 1.20x
pe = predict_gpu(w, P100, GPUOptions(force_emulated_atomics=True))
chk("P100 atomicAdd 1.20x", pe.seconds/p.seconds, 1.20, 1.1, 1.35)
# Fig 6: HT speedups
for label, spec, base, full, target, lo, hi, fast in [
    ("BDW HT 1.37x", BROADWELL, 44, 88, 1.37, 1.2, 1.6, False),
    ("KNL SMT4 2.16x", KNL, 64, 256, 2.16, 1.8, 2.6, True),
    ("P8 SMT8 6.2x", POWER8, 20, 160, 6.2, 4.5, 7.5, False)]:
    s = (t_cpu(w, spec, OP(base, use_fast_memory=fast, affinity=Affinity.SCATTER))
         / t_cpu(w, spec, OP(full, use_fast_memory=fast, affinity=Affinity.SCATTER)))
    chk(label, s, target, lo, hi)
# Fig 10: KNL MCDRAM effects
oe_d = t_cpu(w, KNL, OE(256, use_fast_memory=False, affinity=Affinity.SCATTER))
oe_m = t_cpu(w, KNL, OE(256, use_fast_memory=True, affinity=Affinity.SCATTER))
chk("KNL OE MCDRAM 2.38x", oe_d/oe_m, 2.38, 1.7, 4.5)
op_d = t_cpu(w, KNL, OP(256, use_fast_memory=False, affinity=Affinity.SCATTER))
op_m = t_cpu(w, KNL, OP(256, use_fast_memory=True, affinity=Affinity.SCATTER))
chk("KNL OP MCDRAM small gain", op_d/op_m, 1.2, 0.95, 1.7)
chk("MCDRAM helps OE more than OP", (oe_d/oe_m)/(op_d/op_m), 2.0, 1.3, 4.0)
# Fig 10: KNL scatter: OE 1.73x faster; csp OE 2.15x slower
ws = wl["scatter"]
s_op = t_cpu(ws, KNL, OP(256, use_fast_memory=True, affinity=Affinity.SCATTER))
s_oe = t_cpu(ws, KNL, OE(256, use_fast_memory=True, affinity=Affinity.SCATTER))
chk("KNL scatter OE wins 1.73x", s_op/s_oe, 1.73, 1.2, 2.6)
chk("KNL csp OE loses 2.15x (DRAM)", t_cpu(w, KNL, OE(256, use_fast_memory=False, affinity=Affinity.SCATTER))/op_d, 2.15, 1.4, 3.6)
# Fig 10: KNL scatter OP slightly faster from DRAM
s_op_d = t_cpu(ws, KNL, OP(256, use_fast_memory=False, affinity=Affinity.SCATTER))
chk("KNL scatter OP DRAM faster", s_op_d/s_op, 0.97, 0.80, 1.005)
# BDW scatter: OP must beat OE (Fig 9)
chk("BDW scatter OP wins", t_cpu(ws, BROADWELL, OE(88))/t_cpu(ws, BROADWELL, OP(88)), 3.0, 1.5, 20.0)
# §VI-A: tally ~50% OP, ~22% OE; grind ratio collision ~6x facet
pp = predict_cpu(w, BROADWELL, OP(88))
chk("tally share OP ~50%", pp.tally_fraction, 0.50, 0.40, 0.60)
pe_ = predict_cpu(w, BROADWELL, OE(88))
chk("tally share OE ~22%", pe_.tally_fraction, 0.22, 0.10, 0.35)
gs = predict_cpu(wl["scatter"], BROADWELL, OP(88)).grind_times_ns
gf = predict_cpu(wl["stream"], BROADWELL, OP(88)).grind_times_ns
chk("grind ratio coll/facet (reported)", gs["collision"]/max(gf["facet"],1e-9), 6.0, 0.3, 20.0)
chk("stream facet grind ~3ns", gf["facet"], 3.0, 1.5, 6.0)
# §VI-F: tally privatisation 1.16x BDW csp, merge-every-step slower
priv = t_cpu(w, BROADWELL, OP(88, tally=TallyMode.PRIVATIZED))
chk("BDW priv tally 1.16x", res["bdw_op"]/priv, 1.16, 1.0, 1.4)
privk = t_cpu(w, KNL, OP(256, tally=TallyMode.PRIVATIZED, use_fast_memory=True, affinity=Affinity.SCATTER))
chk("KNL priv tally 1.18x", res["knl_op"]/privk, 1.18, 1.0, 1.5)
merge = t_cpu(w, BROADWELL, OP(88, tally=TallyMode.PRIVATIZED_MERGE_EVERY_STEP))
chk("merge-every-step slower than atomic", merge/res["bdw_op"], 1.2, 1.0001, 3.0)

print(f"{'check':44s} {'value':>8s} {'paper':>7s}  ok")
nbad = 0
for name, val, target, ok in checks:
    if not ok: nbad += 1
    print(f"{name:44s} {val:8.2f} {target:7.2f}  {'OK' if ok else '** FAIL **'}")
print(f"\n{len(checks)-nbad}/{len(checks)} targets within band")
print("\nabsolute csp times:", {k: round(v,1) for k,v in res.items()})
