"""Cross-architecture performance sweep (the Fig 14 pipeline, end to end).

    python examples/architecture_sweep.py

1. Runs the real transport at reduced scale and characterises the
   workload (events, memory touches, work distribution).
2. Rescales to the paper's problem sizes using the validated scaling laws.
3. Prices the run on every device model — Broadwell, KNL, POWER8, K20X,
   P100 — with the paper's baseline configuration for each.
"""

from repro.bench import (
    DEVICE_BASELINES,
    paper_workload,
    standard_cpu_time,
    standard_gpu_time,
)
from repro.core import Scheme
from repro.machine import CPUS, GPUS

PROBLEMS = ("stream", "scatter", "csp")


def main() -> None:
    print("workload characterisation at paper scale (4000² mesh):")
    for problem in PROBLEMS:
        w = paper_workload(problem)
        print(f"  {problem:8s}: {w.facets_pp:8.1f} facets/particle, "
              f"{w.collisions_pp:6.1f} collisions/particle, "
              f"{w.nparticles:.0e} particles")

    header = f"{'problem':8s}" + "".join(f"{m:>12s}" for m in list(CPUS) + list(GPUS))
    print("\npredicted Over Particles runtimes (seconds):")
    print(header)
    for problem in PROBLEMS:
        cells = [
            f"{standard_cpu_time(problem, m).seconds:12.1f}" for m in CPUS
        ] + [
            f"{standard_gpu_time(problem, m).seconds:12.1f}" for m in GPUS
        ]
        print(f"{problem:8s}" + "".join(cells))

    print("\npredicted Over Events runtimes (seconds):")
    print(header)
    for problem in PROBLEMS:
        cells = [
            f"{standard_cpu_time(problem, m, Scheme.OVER_EVENTS).seconds:12.1f}"
            for m in CPUS
        ] + [
            f"{standard_gpu_time(problem, m, Scheme.OVER_EVENTS).seconds:12.1f}"
            for m in GPUS
        ]
        print(f"{problem:8s}" + "".join(cells))

    csp_p100 = standard_gpu_time("csp", "p100").seconds
    csp_bdw = standard_cpu_time("csp", "broadwell").seconds
    print(f"\nP100 advantage over dual-socket Broadwell on csp: "
          f"{csp_bdw / csp_p100:.1f}x  (paper: 3.2x)")
    print("device baselines:", {m: (n, a.value, fast)
                                for m, (n, a, fast) in DEVICE_BASELINES.items()})


if __name__ == "__main__":
    main()
