"""Over Particles vs Over Events, on identical inputs.

    python examples/scheme_comparison.py

Demonstrates the property that makes the paper's comparison meaningful:
the two parallelisation schemes traverse the same histories through the
same physics with the same counter-based random numbers, so their results
agree to the last bit — only the execution structure differs.
"""

import numpy as np

from repro.core import Scheme, Simulation, csp_problem


def main() -> None:
    sim = Simulation(csp_problem(nx=96, nparticles=300))
    op = sim.run(Scheme.OVER_PARTICLES)
    oe = sim.run(Scheme.OVER_EVENTS)

    print("event counts:")
    for field in ("collisions", "facets", "census_events", "terminations"):
        a, b = getattr(op.counters, field), getattr(oe.counters, field)
        print(f"  {field:14s}: OP={a:8d}  OE={b:8d}  equal={a == b}")

    same_tally = np.allclose(
        op.tally.deposition, oe.tally.deposition, rtol=1e-12, atol=1e-30
    )
    print(f"tallies agree to accumulation-order rounding: {same_tally}")

    exact = int(np.sum(
        (op.arena.x == oe.arena.x)
        & (op.arena.energy == oe.arena.energy)
        & (op.arena.rng_counter == oe.arena.rng_counter)
    ))
    print(f"bit-identical final particle states: {exact}/{len(op.arena)}")

    print(f"\nhost wall-clock: OP={op.wallclock_s:.2f}s (scalar Python loop), "
          f"OE={oe.wallclock_s:.2f}s (numpy kernels)")
    print("On this Python host the vectorised Over Events driver wins; on the")
    print("paper's hardware the ranking reverses — run the benchmarks/ suite")
    print("to see the machine models reproduce that result.")


if __name__ == "__main__":
    main()
