"""Shielding study: how much of a source's energy penetrates a dense wall?

    python examples/reactor_shielding.py

Particle transport is "essential for shielding and criticality
calculations" (paper §III-A).  This example builds a custom problem with
the public API — a mono-energetic source on the left, a dense shield wall
in the middle, a void detector region on the right — and sweeps the wall
thickness to produce an attenuation table.
"""

import numpy as np

from repro.core import Scheme, Simulation
from repro.core.config import SimulationConfig
from repro.core.validation import energy_balance_error
from repro.particles.source import SourceRegion


def shielding_config(wall_cells: int, nx: int = 96, nparticles: int = 300) -> SimulationConfig:
    """A 1 m box: source at the left edge, a shield wall starting at x=0.45."""
    density = np.full((nx, nx), 1.0e-30)  # void background
    wall_start = int(0.45 * nx)
    # ~10 kg/m³ puts the mean free path near two cells, so the sweep
    # spans optically thin to optically thick walls.
    density[:, wall_start: wall_start + wall_cells] = 10.0
    return SimulationConfig(
        name=f"shield-{wall_cells}",
        nx=nx,
        ny=nx,
        width=1.0,
        height=1.0,
        density=density,
        source=SourceRegion(x0=0.02, x1=0.08, y0=0.4, y1=0.6, energy_ev=1.0e6),
        nparticles=nparticles,
        dt=1.0e-7,
        ntimesteps=3,  # let histories finish inside the wall
        seed=11,
    )


def main() -> None:
    print(f"{'wall cells':>10} {'wall (cm)':>10} {'absorbed %':>11} "
          f"{'behind-wall flux %':>19}")
    for wall_cells in (1, 2, 4, 8, 16):
        config = shielding_config(wall_cells)
        result = Simulation(config).run(Scheme.OVER_EVENTS)
        assert energy_balance_error(result) < 1e-9

        dep = result.tally.deposition
        injected = config.total_source_energy_ev()
        absorbed = dep.sum() / injected

        # "Flux" proxy: energy still in flight in the region behind the wall.
        store = result.arena
        wall_end = (int(0.45 * config.nx) + wall_cells) / config.nx
        behind = store.alive & (store.x > wall_end)
        flux = float((store.weight[behind] * store.energy[behind]).sum()) / injected

        width_cm = wall_cells / config.nx * 100.0
        print(f"{wall_cells:>10} {width_cm:>10.1f} {100 * absorbed:>11.1f} "
              f"{100 * flux:>19.2f}")

    print("\nThicker walls absorb more and let exponentially less energy "
          "reach the far side — the attenuation a shielding code exists "
          "to compute.")


if __name__ == "__main__":
    main()
