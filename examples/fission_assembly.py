"""Multiplying media: a moderated fissile assembly (the §IX extension).

    python examples/fission_assembly.py

Builds a two-material problem — a fissile block inside a light moderator —
and sweeps the fuel density to show subcritical multiplication: each source
neutron induces a growing (but finite) number of fission secondaries as the
block gets denser.  Every energy path is ledgered exactly, so the balance
check holds even with particles being created mid-flight.
"""

import numpy as np

from repro.core import Scheme, Simulation
from repro.core.config import SimulationConfig
from repro.core.validation import energy_balance_error
from repro.particles.source import SourceRegion
from repro.xs.materials import fissile_fuel, hydrogenous_moderator


def assembly(fuel_density: float, nparticles: int = 150) -> SimulationConfig:
    nx = 64
    density = np.full((nx, nx), 1.0e-30)
    density[24:40, 24:40] = fuel_density
    material_map = np.zeros((nx, nx), dtype=np.int64)
    material_map[24:40, 24:40] = 1
    return SimulationConfig(
        name=f"assembly-{fuel_density:g}",
        nx=nx, ny=nx, width=1.0, height=1.0,
        density=density,
        material_map=material_map,
        materials=(hydrogenous_moderator(2500), fissile_fuel(2500)),
        source=SourceRegion(x0=0.05, x1=0.15, y0=0.45, y1=0.55, energy_ev=1.0e6),
        nparticles=nparticles,
        dt=1.0e-7,
        ntimesteps=4,
        seed=17,
        xs_nentries=2500,
    )


def main() -> None:
    print(f"{'fuel density':>12} {'fissions':>9} {'secondaries':>12} "
          f"{'multiplication':>15} {'balance err':>12}")
    for rho in (50.0, 200.0, 400.0, 800.0):
        config = assembly(rho)
        result = Simulation(config).run(Scheme.OVER_EVENTS)
        c = result.counters
        err = energy_balance_error(result)
        assert err < 1e-10, "the extended energy ledger must balance"
        m = c.secondaries_banked / config.nparticles
        print(f"{rho:>12.0f} {c.fissions:>9d} {c.secondaries_banked:>12d} "
              f"{m:>15.2f} {err:>12.2e}")

    print("\nDenser fuel → more collisions in the block → more fission")
    print("secondaries per source neutron, while the assembly stays")
    print("subcritical (the bank always drains).")


if __name__ == "__main__":
    main()
