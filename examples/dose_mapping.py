"""Radiation dose mapping with statistical quality control.

    python examples/dose_mapping.py

The paper motivates neutral-particle transport with medical physics: "for
medical sciences the algorithms can be used to determine radiation
dosages" (§III-A).  This example computes a dose (energy-deposition) map
around a shielded source with *independent-batch statistics* — the
standard way a production Monte Carlo code reports how trustworthy each
cell of the map is — and renders both the dose and its relative error as
ASCII heatmaps.  It then shows importance splitting cutting the error in
the shielded region at the same particle budget.
"""

import numpy as np

from repro.analysis import batch_statistics, render_heatmap
from repro.core.config import SimulationConfig
from repro.mesh.boundary import BoundaryCondition
from repro.particles.source import SourceRegion


def dose_problem(importance: bool, nx: int = 48) -> SimulationConfig:
    """A source next to a shield wall, with tissue-like medium beyond."""
    density = np.full((nx, nx), 0.1)  # thin tissue-like background
    density[:, 20:26] = 4.0  # shield wall (~3 mean free paths thick)
    imap = None
    if importance:
        imap = np.ones((nx, nx))
        for j, col in enumerate(range(20, nx)):
            imap[:, col] = 2.0 ** min(j // 2, 6)
    return SimulationConfig(
        name="dose",
        nx=nx, ny=nx, width=1.0, height=1.0,
        density=density,
        importance_map=imap,
        source=SourceRegion(x0=0.1, x1=0.2, y0=0.4, y1=0.6, energy_ev=1.0e6),
        nparticles=400,
        dt=1.0e-7,
        ntimesteps=3,
        seed=21,
        xs_nentries=2500,
        boundary=BoundaryCondition.VACUUM,
    )


def main() -> None:
    stats = batch_statistics(dose_problem(importance=False), nbatches=4)
    print(render_heatmap(stats.mean, width=48, height=20,
                         title="dose map (log scale)"))
    print()
    print(render_heatmap(stats.relative_error(), width=48, height=20,
                         log=False, title="relative standard error"))

    # Statistical quality behind the shield, analog vs importance-split:
    # batch the *region total* (cell errors are correlated, so the region's
    # error must come from per-batch region sums, not summed cell errors).
    from repro.core import Scheme, Simulation

    behind = slice(30, 48)
    for label, importance in (("analog", False), ("importance-split", True)):
        totals = []
        for b in range(6):
            cfg = dose_problem(importance).with_(seed=500 + 97 * b)
            r = Simulation(cfg).run(Scheme.OVER_EVENTS)
            totals.append(r.tally.deposition[:, behind].sum())
        totals = np.array(totals)
        err = totals.std(ddof=1) / (totals.mean() * np.sqrt(len(totals)))
        print(f"{label:18s}: dose behind shield = {totals.mean():.3e} eV "
              f"(rel. err of mean ≈ {err:.1%})")

    print("\nThe importance map multiplies the histories that make it past")
    print("the wall, buying a better-converged dose estimate exactly where")
    print("the analog run is starved of samples.")


if __name__ == "__main__":
    main()
