"""Quickstart: run the csp test problem and inspect the results.

    python examples/quickstart.py

Runs a reduced-scale instance of the paper's centre-square problem with
the Over Particles scheme, validates conservation, and prints the event
statistics the performance study is built on.
"""

import numpy as np

from repro.core import Scheme, Simulation, csp_problem
from repro.core.validation import energy_balance_error, population_accounted


def main() -> None:
    # The paper runs 4000² cells and 1e6 particles; a laptop-friendly
    # instance keeps the same physics at reduced scale.
    config = csp_problem(nx=128, nparticles=500)
    sim = Simulation(config)

    result = sim.run(Scheme.OVER_PARTICLES)
    c = result.counters

    print(f"problem: {config.name} ({config.nx}x{config.ny} cells, "
          f"{config.nparticles} histories, dt={config.dt:g} s)")
    print(f"events: {c.collisions} collisions, {c.facets} facets, "
          f"{c.census_events} census")
    print(f"per particle: {c.mean_collisions_per_particle():.1f} collisions, "
          f"{c.mean_facets_per_particle():.1f} facets")
    print(f"tally flushes (atomics): {c.tally_flushes}")
    print(f"load imbalance (max/mean events): {c.load_imbalance():.2f}")

    # Conservation: reflective boundaries mean every eV is accounted for.
    print(f"energy balance error: {energy_balance_error(result):.2e}")
    print(f"population accounted: {population_accounted(result)}")

    # Where did the energy go?  (Fig 2's right panel: the centre square.)
    dep = result.tally.deposition
    iy, ix = np.unravel_index(np.argmax(dep), dep.shape)
    print(f"total deposition: {dep.sum():.3e} eV")
    print(f"hottest cell: ({ix}, {iy}) with {dep[iy, ix]:.3e} eV "
          f"(mesh centre is ({config.nx // 2}, {config.ny // 2}))")


if __name__ == "__main__":
    main()
