"""Coupled multiphysics: transport heating drives heat conduction.

    python examples/coupled_multiphysics.py

The paper's §VI-F notes that in production "the application would likely
be collecting tallies to update the source terms of another application".
This example runs that host-code pattern with two arch-suite proxies from
this repository: each timestep, the ``neutral`` transport's energy
deposition becomes the volumetric heating source of the ``hot`` implicit
conduction solver.  The temperature field that emerges is the deposited
dose diffused by conduction.
"""

import numpy as np

from repro.analysis import render_heatmap
from repro.core import scatter_problem
from repro.coupling import run_coupled


def main() -> None:
    config = scatter_problem(nx=48, nparticles=300, dt=1.5e-9)
    result = run_coupled(
        config,
        nsteps=4,
        initial_temperature=300.0,
        conductivity=2.0e-3,
        heat_capacity_j_per_k=5.0e-13,
        heat_dt=2.0e-3,
    )

    print(f"energy handed to conduction: {result.total_deposited_ev:.3e} eV "
          f"(source: {config.total_source_energy_ev():.3e} eV)")
    print("per-step deposition (eV):",
          [f"{d.sum():.2e}" for d in result.deposition_per_step])
    print("CG iterations per heat solve:", result.cg_iterations)
    print(f"temperature: {result.temperature.min():.1f} K … "
          f"{result.temperature.max():.1f} K")
    print()
    print(render_heatmap(result.temperature - 300.0, width=48, height=22,
                         title="temperature rise (log scale)"))


if __name__ == "__main__":
    main()
