"""Particle state storage.

The data structure describing particles is itself a studied design axis of
the paper (§VI-D, Fig 5): the Over Particles scheme favours an Array of
Structures (AoS) layout — each history loads its particle once into
registers and works on it to census — while the GPU and the Over Events
scheme require Structure of Arrays (SoA) for coalescing/vectorisation.

* :class:`repro.particles.particle.Particle` — the AoS record;
* :class:`repro.particles.soa.ParticleStore` — the SoA store (numpy arrays)
  with lossless conversions to/from AoS;
* :mod:`repro.particles.source` — bounded-region source sampling (§IV-F).
"""

from repro.particles.particle import Particle
from repro.particles.soa import ParticleStore
from repro.particles.source import SourceRegion, sample_source_aos, sample_source_soa

__all__ = [
    "Particle",
    "ParticleStore",
    "SourceRegion",
    "sample_source_aos",
    "sample_source_soa",
]
