"""Particle state storage.

The data structure describing particles is itself a studied design axis of
the paper (§VI-D, Fig 5): the Over Particles scheme favours an Array of
Structures (AoS) layout — each history loads its particle once into
registers and works on it to census — while the GPU and the Over Events
scheme require Structure of Arrays (SoA) for coalescing/vectorisation.

This reproduction commits to one canonical SoA representation:

* :class:`repro.particles.arena.ParticleArena` — the single-buffer SoA
  arena every stage views in place, with zero-copy shared-memory
  sharding, record appends, compaction and sort hooks;
* :class:`repro.particles.arena.ParticleView` — thin per-index AoS proxy
  for tests and trace tooling;
* :class:`repro.particles.particle.Particle` — the detached AoS record
  (the scalar reference representation, produced by
  :meth:`ParticleArena.as_particles`);
* :class:`repro.particles.soa.ParticleStore` — the plain SoA base the
  arena extends;
* :mod:`repro.particles.source` — bounded-region source sampling (§IV-F)
  emitting vectorised straight into an arena.
"""

from repro.particles.arena import (
    ParticleArena,
    ParticleArena3,
    ParticleRecord,
    ParticleRecord3,
    ParticleView,
    Particle3View,
)
from repro.particles.particle import Particle
from repro.particles.soa import ParticleStore
from repro.particles.source import (
    SourceRegion,
    sample_source,
    sample_source_aos,
    sample_source_soa,
)

__all__ = [
    "Particle",
    "ParticleArena",
    "ParticleArena3",
    "ParticleRecord",
    "ParticleRecord3",
    "ParticleStore",
    "ParticleView",
    "Particle3View",
    "SourceRegion",
    "sample_source",
    "sample_source_aos",
    "sample_source_soa",
]
