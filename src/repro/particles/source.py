"""Particle source sampling.

Random numbers determine the initial particle locations and directions
within a bounded source region (paper §IV-F).  Each particle consumes
exactly four draws at birth, in a fixed order:

1. x position within the region,
2. y position within the region,
3. isotropic direction angle,
4. optical distance (mean free paths) to its first collision.

Because the RNG is counter-based and keyed per particle, the scalar (AoS)
and vectorised samplers produce bit-identical particles.  The canonical
path is :func:`sample_source`, which emits vectorised, in place, into a
:class:`~repro.particles.arena.ParticleArena`; :func:`sample_source_aos`
survives as the scalar per-particle reference the parity suite checks
against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.structured import StructuredMesh
from repro.particles.arena import ParticleArena
from repro.particles.particle import Particle
from repro.rng.stream import ParticleRNG, VectorParticleRNG
from repro.rng.distributions import (
    sample_isotropic_direction,
    sample_isotropic_direction_vec,
    sample_mean_free_paths,
    sample_mean_free_paths_vec,
    sample_position_in_box,
    sample_position_in_box_vec,
)
from repro.xs.lookup import binary_search_bin, binary_search_bin_vec
from repro.xs.tables import CrossSectionTable

__all__ = ["SourceRegion", "sample_source", "sample_source_aos", "sample_source_soa"]

#: Draws consumed per particle at birth (x, y, angle, first mfp).
DRAWS_PER_BIRTH = 4


@dataclass(frozen=True)
class SourceRegion:
    """A bounded, mono-energetic, isotropic particle source.

    Attributes
    ----------
    x0, x1, y0, y1:
        Axis-aligned bounds of the emission box, metres.
    energy_ev:
        Birth kinetic energy of every particle (eV).
    weight:
        Birth statistical weight of every particle.
    """

    x0: float
    x1: float
    y0: float
    y1: float
    energy_ev: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not (self.x0 < self.x1 and self.y0 < self.y1):
            raise ValueError("source region must have positive extent")
        if self.energy_ev <= 0:
            raise ValueError("source energy must be positive")
        if self.weight <= 0:
            raise ValueError("source weight must be positive")


def sample_source(
    mesh: StructuredMesh,
    region: SourceRegion,
    nparticles: int,
    seed: int,
    dt: float,
    start_id: int = 0,
    scatter_table: CrossSectionTable | None = None,
    capture_table: CrossSectionTable | None = None,
    provider=None,
) -> ParticleArena:
    """Emit ``nparticles`` directly into a fresh :class:`ParticleArena`.

    All field fills are vectorised, in place, into the arena's single
    buffer — no per-particle object is ever constructed.  Each history's
    RNG stream starts at counter 0 and is advanced by the four birth
    draws; the arena carries the advanced counters so transport resumes
    the same streams.  When a cross-section ``provider``
    (:class:`repro.xs.provider.XsProvider`) is given, the cached energy
    bins are initialised to the birth energy's bin in material 0 (part of
    birth initialisation, like the cached density) so the cached linear
    search never walks from bin 0.  The explicit ``scatter_table`` /
    ``capture_table`` kwargs are the legacy spelling of the same seeding,
    kept for the AoS parity oracle and existing tests.
    """
    arena = ParticleArena(nparticles)
    arena.particle_id[...] = np.arange(
        start_id, start_id + nparticles, dtype=np.uint64
    )
    rng = VectorParticleRNG(seed, arena.particle_id)
    u1 = rng.next_uniform()
    u2 = rng.next_uniform()
    u3 = rng.next_uniform()
    u4 = rng.next_uniform()
    x, y = sample_position_in_box_vec(
        u1, u2, region.x0, region.x1, region.y0, region.y1
    )
    arena.x[...] = x
    arena.y[...] = y
    ox, oy = sample_isotropic_direction_vec(u3)
    arena.omega_x[...] = ox
    arena.omega_y[...] = oy
    arena.mfp_to_collision[...] = sample_mean_free_paths_vec(u4)
    arena.energy[...] = region.energy_ev
    arena.weight[...] = region.weight
    arena.dt_to_census[...] = dt
    cellx, celly = mesh.cell_of_point_vec(arena.x, arena.y)
    arena.cellx[...] = cellx
    arena.celly[...] = celly
    arena.local_density[...] = mesh.density_at_vec(arena.cellx, arena.celly)
    arena.rng_counter[...] = rng.counters
    if provider is not None:
        for field, bins in provider.source_bins_batch(0, arena.energy).items():
            getattr(arena, field)[...] = bins
    if scatter_table is not None:
        arena.scatter_bin[...] = binary_search_bin_vec(scatter_table, arena.energy)
    if capture_table is not None:
        arena.capture_bin[...] = binary_search_bin_vec(capture_table, arena.energy)
    return arena


def sample_source_aos(
    mesh: StructuredMesh,
    region: SourceRegion,
    nparticles: int,
    seed: int,
    dt: float,
    start_id: int = 0,
    scatter_table: CrossSectionTable | None = None,
    capture_table: CrossSectionTable | None = None,
) -> list[Particle]:
    """Scalar per-particle reference sampler (AoS).

    Kept solely as the bit-parity oracle for :func:`sample_source` — the
    parity suite asserts the vectorised arena path reproduces this loop
    draw for draw.  Production code paths must use :func:`sample_source`.
    """
    sbin = cbin = 0
    if scatter_table is not None:
        sbin = binary_search_bin(scatter_table, region.energy_ev)
    if capture_table is not None:
        cbin = binary_search_bin(capture_table, region.energy_ev)
    particles: list[Particle] = []
    for i in range(nparticles):
        pid = start_id + i
        rng = ParticleRNG(seed, pid)
        u1 = rng.next_uniform()
        u2 = rng.next_uniform()
        u3 = rng.next_uniform()
        u4 = rng.next_uniform()
        x, y = sample_position_in_box(u1, u2, region.x0, region.x1, region.y0, region.y1)
        ox, oy = sample_isotropic_direction(u3)
        mfp = sample_mean_free_paths(u4)
        cellx, celly = mesh.cell_of_point(x, y)
        p = Particle(
            x=x,
            y=y,
            omega_x=ox,
            omega_y=oy,
            energy=region.energy_ev,
            weight=region.weight,
            cellx=cellx,
            celly=celly,
            particle_id=pid,
            dt_to_census=dt,
            mfp_to_collision=mfp,
            rng_counter=rng.counter,
        )
        p.local_density = mesh.density_at(cellx, celly)
        p.scatter_bin = sbin
        p.capture_bin = cbin
        particles.append(p)
    return particles


def sample_source_soa(
    mesh: StructuredMesh,
    region: SourceRegion,
    nparticles: int,
    seed: int,
    dt: float,
    start_id: int = 0,
    scatter_table: CrossSectionTable | None = None,
    capture_table: CrossSectionTable | None = None,
) -> ParticleArena:
    """Deprecated alias for :func:`sample_source` (returns the arena)."""
    return sample_source(
        mesh, region, nparticles, seed, dt, start_id, scatter_table, capture_table
    )
