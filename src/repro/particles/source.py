"""Particle source sampling.

Random numbers determine the initial particle locations and directions
within a bounded source region (paper §IV-F).  Each particle consumes
exactly four draws at birth, in a fixed order:

1. x position within the region,
2. y position within the region,
3. isotropic direction angle,
4. optical distance (mean free paths) to its first collision.

Because the RNG is counter-based and keyed per particle, the scalar (AoS)
and vectorised (SoA) samplers produce bit-identical particles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.structured import StructuredMesh
from repro.particles.particle import Particle
from repro.particles.soa import ParticleStore
from repro.rng.stream import ParticleRNG, VectorParticleRNG
from repro.rng.distributions import (
    sample_isotropic_direction,
    sample_isotropic_direction_vec,
    sample_mean_free_paths,
    sample_mean_free_paths_vec,
    sample_position_in_box,
    sample_position_in_box_vec,
)
from repro.xs.lookup import binary_search_bin, binary_search_bin_vec
from repro.xs.tables import CrossSectionTable

__all__ = ["SourceRegion", "sample_source_aos", "sample_source_soa"]

#: Draws consumed per particle at birth (x, y, angle, first mfp).
DRAWS_PER_BIRTH = 4


@dataclass(frozen=True)
class SourceRegion:
    """A bounded, mono-energetic, isotropic particle source.

    Attributes
    ----------
    x0, x1, y0, y1:
        Axis-aligned bounds of the emission box, metres.
    energy_ev:
        Birth kinetic energy of every particle (eV).
    weight:
        Birth statistical weight of every particle.
    """

    x0: float
    x1: float
    y0: float
    y1: float
    energy_ev: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not (self.x0 < self.x1 and self.y0 < self.y1):
            raise ValueError("source region must have positive extent")
        if self.energy_ev <= 0:
            raise ValueError("source energy must be positive")
        if self.weight <= 0:
            raise ValueError("source weight must be positive")


def sample_source_aos(
    mesh: StructuredMesh,
    region: SourceRegion,
    nparticles: int,
    seed: int,
    dt: float,
    start_id: int = 0,
    scatter_table: CrossSectionTable | None = None,
    capture_table: CrossSectionTable | None = None,
) -> list[Particle]:
    """Sample ``nparticles`` AoS particles from ``region``.

    Each particle's RNG stream starts at counter 0 and is advanced by the
    four birth draws; the returned records carry the advanced counter so
    transport resumes the same stream.  When the cross-section tables are
    given, the per-particle cached energy bins are initialised to the birth
    energy's bin (part of birth initialisation, like the cached density) so
    the cached linear search never walks from bin 0.
    """
    sbin = cbin = 0
    if scatter_table is not None:
        sbin = binary_search_bin(scatter_table, region.energy_ev)
    if capture_table is not None:
        cbin = binary_search_bin(capture_table, region.energy_ev)
    particles: list[Particle] = []
    for i in range(nparticles):
        pid = start_id + i
        rng = ParticleRNG(seed, pid)
        u1 = rng.next_uniform()
        u2 = rng.next_uniform()
        u3 = rng.next_uniform()
        u4 = rng.next_uniform()
        x, y = sample_position_in_box(u1, u2, region.x0, region.x1, region.y0, region.y1)
        ox, oy = sample_isotropic_direction(u3)
        mfp = sample_mean_free_paths(u4)
        cellx, celly = mesh.cell_of_point(x, y)
        p = Particle(
            x=x,
            y=y,
            omega_x=ox,
            omega_y=oy,
            energy=region.energy_ev,
            weight=region.weight,
            cellx=cellx,
            celly=celly,
            particle_id=pid,
            dt_to_census=dt,
            mfp_to_collision=mfp,
            rng_counter=rng.counter,
        )
        p.local_density = mesh.density_at(cellx, celly)
        p.scatter_bin = sbin
        p.capture_bin = cbin
        particles.append(p)
    return particles


def sample_source_soa(
    mesh: StructuredMesh,
    region: SourceRegion,
    nparticles: int,
    seed: int,
    dt: float,
    start_id: int = 0,
    scatter_table: CrossSectionTable | None = None,
    capture_table: CrossSectionTable | None = None,
) -> ParticleStore:
    """Vectorised source sampling, bit-identical to :func:`sample_source_aos`."""
    store = ParticleStore(nparticles)
    store.particle_id = np.arange(start_id, start_id + nparticles, dtype=np.uint64)
    rng = VectorParticleRNG(seed, store.particle_id)
    u1 = rng.next_uniform()
    u2 = rng.next_uniform()
    u3 = rng.next_uniform()
    u4 = rng.next_uniform()
    store.x, store.y = sample_position_in_box_vec(
        u1, u2, region.x0, region.x1, region.y0, region.y1
    )
    store.omega_x, store.omega_y = sample_isotropic_direction_vec(u3)
    store.mfp_to_collision = sample_mean_free_paths_vec(u4)
    store.energy = np.full(nparticles, region.energy_ev, dtype=np.float64)
    store.weight = np.full(nparticles, region.weight, dtype=np.float64)
    store.dt_to_census = np.full(nparticles, dt, dtype=np.float64)
    store.cellx, store.celly = mesh.cell_of_point_vec(store.x, store.y)
    store.local_density = mesh.density_at_vec(store.cellx, store.celly)
    store.rng_counter = rng.counters
    if scatter_table is not None:
        store.scatter_bin[:] = binary_search_bin_vec(scatter_table, store.energy)
    if capture_table is not None:
        store.capture_bin[:] = binary_search_bin_vec(capture_table, store.energy)
    return store
