"""The AoS particle record.

One record holds everything a thread needs to follow a history from birth
to census: position, direction, energy, statistical weight, mesh cell,
remaining time to census, remaining optical distance to collision, and the
per-particle RNG identity (paper §IV-F, §VI-D).

The record also carries the *cached* state the Over Particles scheme keeps
in registers between events (§V-A): the current cell's density-derived
macroscopic cross sections, and the last-used energy bin of each
cross-section table (for the cached linear search, §VI-A).
"""

from __future__ import annotations

__all__ = ["Particle"]


class Particle:
    """Mutable particle state (Array-of-Structures layout).

    Attributes
    ----------
    x, y:
        Position in metres.
    omega_x, omega_y:
        Unit direction of flight.
    energy:
        Kinetic energy in eV.
    weight:
        Statistical weight (the particle represents ``weight`` physical
        particles; variance reduction reduces it instead of killing the
        history, §IV-E).
    cellx, celly:
        Containing mesh cell indices.
    mfp_to_collision:
        Remaining optical distance to the next collision, in mean free
        paths.
    dt_to_census:
        Remaining time in the current timestep, in seconds.
    alive:
        False once the history has terminated (weight/energy cutoff).
    particle_id:
        Unique id; RNG key word (with the global seed).
    rng_counter:
        Threefry counter — advances once per random draw.
    scatter_bin, capture_bin, fission_bin:
        Cached energy-bin indices for the cached linear search (the
        fission bin is used only in multiplying media).
    local_density:
        Cached mass density of the containing cell (kg/m³).
    deposit_buffer:
        Energy deposition accumulated in a register since the last flush.
    """

    __slots__ = (
        "x",
        "y",
        "omega_x",
        "omega_y",
        "energy",
        "weight",
        "cellx",
        "celly",
        "mfp_to_collision",
        "dt_to_census",
        "alive",
        "particle_id",
        "rng_counter",
        "scatter_bin",
        "capture_bin",
        "fission_bin",
        "local_density",
        "deposit_buffer",
    )

    def __init__(
        self,
        x: float,
        y: float,
        omega_x: float,
        omega_y: float,
        energy: float,
        weight: float,
        cellx: int,
        celly: int,
        particle_id: int,
        dt_to_census: float,
        mfp_to_collision: float = 0.0,
        rng_counter: int = 0,
    ):
        self.x = x
        self.y = y
        self.omega_x = omega_x
        self.omega_y = omega_y
        self.energy = energy
        self.weight = weight
        self.cellx = cellx
        self.celly = celly
        self.mfp_to_collision = mfp_to_collision
        self.dt_to_census = dt_to_census
        self.alive = True
        self.particle_id = particle_id
        self.rng_counter = rng_counter
        self.scatter_bin = 0
        self.capture_bin = 0
        self.fission_bin = 0
        self.local_density = 0.0
        self.deposit_buffer = 0.0

    def direction_norm_error(self) -> float:
        """|‖Ω‖² − 1| — should stay at rounding level through scatters."""
        return abs(self.omega_x * self.omega_x + self.omega_y * self.omega_y - 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Particle(id={self.particle_id}, pos=({self.x:.6g}, {self.y:.6g}), "
            f"E={self.energy:.6g} eV, w={self.weight:.4g}, "
            f"cell=({self.cellx}, {self.celly}), alive={self.alive})"
        )
