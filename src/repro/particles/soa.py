"""The SoA particle store.

Structure-of-Arrays layout: one numpy array per particle field.  This is the
layout the Over Events scheme and the GPU port use (paper §VI-D) — memory
access for a whole batch of particles touches each field contiguously, at
the cost of losing the AoS property that one history's state fits in a
couple of cache lines.

Conversions to/from the AoS representation are lossless, so the test suite
can assert that both schemes evolve identical state.
"""

from __future__ import annotations

import numpy as np

from repro.particles.particle import Particle

__all__ = ["ParticleStore"]

_FLOAT_FIELDS = (
    "x",
    "y",
    "omega_x",
    "omega_y",
    "energy",
    "weight",
    "mfp_to_collision",
    "dt_to_census",
    "local_density",
    "deposit_buffer",
)
_INT_FIELDS = ("cellx", "celly", "scatter_bin", "capture_bin", "fission_bin")


class ParticleStore:
    """A batch of particles in Structure-of-Arrays layout.

    All float fields are ``float64`` arrays of length ``n``; cell indices and
    cached bins are ``int64``; ``alive``/``censused`` are boolean masks;
    ``particle_id``/``rng_counter`` are ``uint64`` (the Threefry key/counter
    words).
    """

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("particle count must be non-negative")
        self.n = int(n)
        for name in _FLOAT_FIELDS:
            setattr(self, name, np.zeros(self.n, dtype=np.float64))
        for name in _INT_FIELDS:
            setattr(self, name, np.zeros(self.n, dtype=np.int64))
        self.alive = np.ones(self.n, dtype=bool)
        self.censused = np.zeros(self.n, dtype=bool)
        self.particle_id = np.arange(self.n, dtype=np.uint64)
        self.rng_counter = np.zeros(self.n, dtype=np.uint64)

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_particles(cls, particles: list[Particle]) -> "ParticleStore":
        """Pack AoS records into an SoA store (census flags cleared)."""
        store = cls(len(particles))
        for i, p in enumerate(particles):
            store.x[i] = p.x
            store.y[i] = p.y
            store.omega_x[i] = p.omega_x
            store.omega_y[i] = p.omega_y
            store.energy[i] = p.energy
            store.weight[i] = p.weight
            store.mfp_to_collision[i] = p.mfp_to_collision
            store.dt_to_census[i] = p.dt_to_census
            store.local_density[i] = p.local_density
            store.deposit_buffer[i] = p.deposit_buffer
            store.cellx[i] = p.cellx
            store.celly[i] = p.celly
            store.scatter_bin[i] = p.scatter_bin
            store.capture_bin[i] = p.capture_bin
            store.fission_bin[i] = p.fission_bin
            store.alive[i] = p.alive
            store.particle_id[i] = p.particle_id
            store.rng_counter[i] = p.rng_counter
        return store

    def to_particles(self) -> list[Particle]:
        """Unpack to AoS records (census flags are not represented in AoS)."""
        out: list[Particle] = []
        for i in range(self.n):
            p = Particle(
                x=float(self.x[i]),
                y=float(self.y[i]),
                omega_x=float(self.omega_x[i]),
                omega_y=float(self.omega_y[i]),
                energy=float(self.energy[i]),
                weight=float(self.weight[i]),
                cellx=int(self.cellx[i]),
                celly=int(self.celly[i]),
                particle_id=int(self.particle_id[i]),
                dt_to_census=float(self.dt_to_census[i]),
                mfp_to_collision=float(self.mfp_to_collision[i]),
                rng_counter=int(self.rng_counter[i]),
            )
            p.alive = bool(self.alive[i])
            p.scatter_bin = int(self.scatter_bin[i])
            p.capture_bin = int(self.capture_bin[i])
            p.fission_bin = int(self.fission_bin[i])
            p.local_density = float(self.local_density[i])
            p.deposit_buffer = float(self.deposit_buffer[i])
            out.append(p)
        return out

    # ------------------------------------------------------------------
    # Growth (fission secondaries)
    # ------------------------------------------------------------------
    def extend(self, other: "ParticleStore") -> None:
        """Append another store's particles (fission secondaries joining
        the in-flight population)."""
        for name in _FLOAT_FIELDS + _INT_FIELDS + (
            "alive", "censused", "particle_id", "rng_counter",
        ):
            setattr(
                self,
                name,
                np.concatenate([getattr(self, name), getattr(other, name)]),
            )
        self.n += other.n

    # ------------------------------------------------------------------
    # Sharding (worker-pool history decomposition)
    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray) -> "ParticleStore":
        """A new store holding copies of the selected particles, in the
        given order.

        Used by :mod:`repro.parallel.pool` both to carve history shards for
        the workers and to reassemble the merged population into a
        deterministic order afterwards.
        """
        indices = np.asarray(indices)
        out = ParticleStore(0)
        out.n = int(indices.size)
        for name in _FLOAT_FIELDS + _INT_FIELDS + (
            "alive", "censused", "particle_id", "rng_counter",
        ):
            setattr(out, name, getattr(self, name)[indices].copy())
        return out

    # ------------------------------------------------------------------
    # Masks and accounting
    # ------------------------------------------------------------------
    def active_mask(self) -> np.ndarray:
        """Particles still being advanced this timestep."""
        return self.alive & ~self.censused

    def nbytes(self) -> int:
        """Total memory footprint of the store in bytes."""
        total = 0
        for name in _FLOAT_FIELDS + _INT_FIELDS:
            total += getattr(self, name).nbytes
        total += self.alive.nbytes + self.censused.nbytes
        total += self.particle_id.nbytes + self.rng_counter.nbytes
        return int(total)

    @staticmethod
    def bytes_per_particle_aos() -> int:
        """Bytes of one AoS record as the C mini-app would lay it out.

        10 doubles + 4 ints + id/counter + flag, padded — used by the cache
        model to contrast AoS (one or two lines per history) against SoA
        (one line *per field* per particle).
        """
        return 10 * 8 + 4 * 8 + 2 * 8 + 8  # 136 bytes, ~2-3 cache lines
