"""The canonical SoA particle arena.

The paper's storage finding (§VI-D) is that layout — SoA vs AoS — is a
first-order performance lever for both traversal schemes.  This module
commits the reproduction to a *single* Structure-of-Arrays representation
that every stage views in place, the way modern event-based transport
codes (MC/DC's on-GPU event processing, the performance-portable Neutral
ports) keep one device-resident store:

* every field of every particle lives in **one contiguous byte buffer**,
  field-major (all ``x``, then all ``y``, …), so a population is one
  allocation and one ``memcpy``-shaped hand-off;
* the buffer can be re-homed into a :class:`multiprocessing.shared_memory`
  block, after which a worker process attaches a **zero-copy shard view**
  by ``(name, total, lo, hi)`` — no particle is ever pickled across the
  process boundary (see :meth:`ParticleArena.to_shared` /
  :meth:`ParticleArena.attach`);
* the AoS record survives only as a *per-index proxy view*
  (:class:`ParticleView`) for tests and trace tooling, plus the lossless
  :meth:`~ParticleArena.as_particles` escape hatch;
* population changes — fission secondaries, VR clones, alive-mask
  compaction, the energy/cell sorts the Over Events optimisation
  literature uses to keep event batches coherent — are arena methods
  (:meth:`append_records`, :meth:`compact`, :meth:`sort_by`).

:class:`ParticleArena` extends :class:`repro.particles.soa.ParticleStore`
(same field names and dtypes), so everything written against the store API
keeps working; :class:`ParticleArena3` carries the 3-D volume extension's
field set on the same machinery.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.particles.particle import Particle
from repro.particles.soa import _FLOAT_FIELDS, _INT_FIELDS, ParticleStore

__all__ = [
    "EnsembleArena",
    "ParticleArena",
    "ParticleArena3",
    "ParticleRecord",
    "ParticleRecord3",
    "ParticleView",
    "Particle3View",
    "shard_handle_nbytes",
]

_ALIGN = 8


def _untracked_attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared-memory block without letting this
    process's resource tracker adopt (and later unlink) it.

    The creating process owns the segment's lifetime; attachers must not
    unlink it when they exit (bpo-39959).  Python 3.13 grew a ``track=``
    parameter for exactly this; on older interpreters we unregister the
    name right after the constructor registered it.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
        return shm


class _FieldArena:
    """Field-major SoA storage over one contiguous buffer.

    Subclasses declare ``FIELDS`` — an ordered ``(name, dtype)`` tuple —
    and the layout (per-field byte offsets, 8-byte aligned) is a pure
    function of the particle count, so any process that knows ``(n, lo,
    hi)`` can rebuild the exact same views over an attached buffer.
    """

    FIELDS: tuple[tuple[str, object], ...] = ()

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("particle count must be non-negative")
        self._allocate(int(n))
        self._init_defaults()

    # ------------------------------------------------------------------
    # Layout and binding
    # ------------------------------------------------------------------
    @classmethod
    def layout(cls, n: int) -> tuple[dict, int]:
        """``({field: byte offset}, total bytes)`` for an ``n``-particle
        arena — deterministic, so shard attachment needs no metadata
        beyond the population size."""
        offsets = {}
        off = 0
        for name, dtype in cls.FIELDS:
            off = (off + _ALIGN - 1) & ~(_ALIGN - 1)
            offsets[name] = off
            off += n * np.dtype(dtype).itemsize
        return offsets, (off + _ALIGN - 1) & ~(_ALIGN - 1)

    def _bind(self, buf, n_total: int, lo: int, hi: int, shm=None) -> None:
        """Point this instance's field arrays at ``buf[lo:hi]`` slices."""
        offsets, _ = self.layout(n_total)
        self._buf = buf
        self._shm = shm
        self.n = hi - lo
        for name, dtype in self.FIELDS:
            dt = np.dtype(dtype)
            view = np.frombuffer(
                buf, dtype=dt, count=hi - lo,
                offset=offsets[name] + lo * dt.itemsize,
            )
            setattr(self, name, view)

    def _allocate(self, n: int) -> None:
        _, total = self.layout(n)
        self._bind(np.zeros(total, dtype=np.uint8), n, 0, n)

    def _init_defaults(self) -> None:
        """Field defaults for a freshly allocated arena (subclass hook)."""

    def _adopt(self, other: "_FieldArena") -> None:
        """Re-home this instance onto ``other``'s storage, in place, so
        every existing reference to *this* arena object sees the new
        population.  Slice views handed out before the adoption keep
        pointing at the old buffer."""
        self._buf = other._buf
        self._shm = other._shm
        self.n = other.n
        for name, _ in self.FIELDS:
            setattr(self, name, getattr(other, name))

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # Views, copies, gathers
    # ------------------------------------------------------------------
    def view(self, lo: int, hi: int) -> "_FieldArena":
        """A zero-copy window onto particles ``[lo, hi)`` of this arena —
        every field array is a slice sharing this arena's memory."""
        if not 0 <= lo <= hi <= self.n:
            raise ValueError(f"invalid view [{lo}, {hi}) of {self.n}")
        out = object.__new__(type(self))
        out._buf = self._buf
        out._shm = self._shm
        out.n = hi - lo
        for name, _ in self.FIELDS:
            setattr(out, name, getattr(self, name)[lo:hi])
        return out

    def copy(self) -> "_FieldArena":
        """A materialised private copy (own buffer)."""
        out = type(self)(self.n)
        for name, _ in self.FIELDS:
            np.copyto(getattr(out, name), getattr(self, name))
        return out

    def subset(self, indices: np.ndarray) -> "_FieldArena":
        """A new arena holding copies of the selected particles, in the
        given order (shard carving and deterministic reassembly)."""
        indices = np.asarray(indices)
        out = type(self)(int(indices.size))
        for name, _ in self.FIELDS:
            getattr(out, name)[...] = getattr(self, name)[indices]
        return out

    def extend(self, other: "_FieldArena") -> None:
        """Append another arena's particles in place (the population
        grows into a fresh private buffer; shared-memory backing, if any,
        is left behind untouched)."""
        if len(other) == 0:
            return
        merged = type(self)(self.n + other.n)
        for name, _ in self.FIELDS:
            dst = getattr(merged, name)
            dst[: self.n] = getattr(self, name)
            dst[self.n:] = getattr(other, name)
        self._adopt(merged)

    # ------------------------------------------------------------------
    # Records (secondary emission without AoS objects)
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records) -> "_FieldArena":
        """Build an arena from field-tuple records (see
        :class:`ParticleRecord`) — the banked-secondary path."""
        arena = cls(len(records))
        for j, (name, _) in enumerate(cls.FIELDS):
            getattr(arena, name)[...] = [r[j] for r in records]
        return arena

    def append_records(self, records) -> None:
        """Append banked records (fission secondaries, VR clones)."""
        if records:
            self.extend(self.from_records(records))

    # ------------------------------------------------------------------
    # Compaction and sorting hooks
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Drop dead histories in place; returns how many were removed.

        The OE gather loops visit the whole population every pass, so a
        mostly-dead arena streams mostly-wasted lanes; compaction trades
        one gather for full occupancy afterwards.
        """
        alive_idx = np.nonzero(self.alive)[0]
        removed = self.n - int(alive_idx.size)
        if removed:
            self._adopt(self.subset(alive_idx))
        return removed

    def sort_by(self, key: str = "energy") -> np.ndarray:
        """Reorder the population in place; returns the permutation used.

        ``energy`` groups particles into coherent cross-section-table
        regions (the OE sort optimisation the paper discusses); ``cell``
        groups tally/density locality; ``particle_id`` restores the
        canonical birth order.  Per-history physics is invariant under any
        reordering — each history owns its counter-based RNG stream — so
        sorting changes batching only, never results.
        """
        if key == "energy":
            order = np.argsort(self.energy, kind="stable")
        elif key == "cell":
            order = np.lexsort((self.cellx, self.celly))
        elif key == "particle_id":
            order = np.argsort(self.particle_id, kind="stable")
        elif key == "replica_id" and hasattr(self, "replica_id"):
            # Stable: restores replica-major blocks while preserving the
            # within-replica order every parity argument relies on.
            order = np.argsort(self.replica_id, kind="stable")
        else:
            raise ValueError(
                f"unknown sort key {key!r}; use energy, cell or particle_id"
            )
        self._adopt(self.subset(order))
        return order

    # ------------------------------------------------------------------
    # Shared-memory sharding
    # ------------------------------------------------------------------
    def to_shared(self) -> "_FieldArena":
        """Copy this population into a fresh shared-memory block.

        Returns an arena viewing the block; the caller owns the segment
        and must call :meth:`close` (with ``unlink=True``) when every
        worker is done.  Workers attach shards of it with :meth:`attach`.
        """
        _, total = self.layout(self.n)
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        out = object.__new__(type(self))
        out._bind(shm.buf, self.n, 0, self.n, shm=shm)
        for name, _ in self.FIELDS:
            np.copyto(getattr(out, name), getattr(self, name))
        return out

    @classmethod
    def attach(
        cls, name: str, n_total: int, lo: int = 0, hi: int | None = None
    ) -> "_FieldArena":
        """Attach a zero-copy view of particles ``[lo, hi)`` of the
        shared arena ``name`` holding ``n_total`` particles.

        This is the worker-pool hand-off: the parent ships the tuple
        ``(name, n_total, lo, hi)`` (a few dozen bytes) instead of a
        pickled particle list, and a retried shard re-attaches the same
        pristine slice for bit-identical re-execution.
        """
        hi = n_total if hi is None else hi
        if not 0 <= lo <= hi <= n_total:
            raise ValueError(f"invalid shard [{lo}, {hi}) of {n_total}")
        shm = _untracked_attach(name)
        out = object.__new__(cls)
        out._bind(shm.buf, n_total, lo, hi, shm=shm)
        return out

    @property
    def shm_name(self) -> str | None:
        """Shared-memory block name, or ``None`` for private arenas."""
        return self._shm.name if self._shm is not None else None

    def close(self, unlink: bool = False) -> None:
        """Release the shared-memory mapping (owner passes ``unlink``)."""
        shm = self._shm
        if shm is None:
            return
        # Field views must drop their buffer references before the
        # mapping can be closed.
        for name, _ in self.FIELDS:
            setattr(self, name, np.zeros(0, dtype=np.dtype(dict(self.FIELDS)[name])))
        self._buf = None
        self._shm = None
        self.n = 0
        shm.close()
        if unlink:
            # An attacher in this same process may have unregistered the
            # name (see _untracked_attach); re-register so the tracker's
            # books balance when unlink() unregisters it again.
            try:
                resource_tracker.register(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker API drift
                pass
            shm.unlink()

    # ------------------------------------------------------------------
    # Accounting and serialisation
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Total memory footprint of the particle fields in bytes."""
        return int(sum(getattr(self, name).nbytes for name, _ in self.FIELDS))

    @classmethod
    def bytes_per_particle(cls) -> int:
        """Bytes one particle occupies across all SoA field segments."""
        return int(sum(np.dtype(dt).itemsize for _, dt in cls.FIELDS))

    def backed_by_single_buffer(self) -> bool:
        """True when every field still views the arena's own buffer (the
        invariant that keeps :meth:`to_shared` a single copy)."""
        if self._buf is None:
            return False
        return all(
            np.shares_memory(getattr(self, name), self._buf)
            for name, _ in self.FIELDS
            if getattr(self, name).size
        )

    def __getstate__(self) -> dict:
        """Pickle as plain field arrays (never the shm mapping)."""
        return {
            "n": self.n,
            "fields": {
                name: np.ascontiguousarray(getattr(self, name))
                for name, _ in self.FIELDS
            },
        }

    def __setstate__(self, state: dict) -> None:
        self._allocate(state["n"])
        for name, _ in self.FIELDS:
            np.copyto(getattr(self, name), state["fields"][name])


def shard_handle_nbytes(handle) -> int:
    """Serialised size of a shard hand-off handle ``(name, n, lo, hi)``
    — the payload that replaces a pickled particle list."""
    import pickle

    return len(pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL))


# ---------------------------------------------------------------------------
# The 2-D transport arena (the ParticleStore field set)
# ---------------------------------------------------------------------------

class ParticleArena(_FieldArena, ParticleStore):
    """The canonical 2-D particle population.

    Field names and dtypes are exactly :class:`ParticleStore`'s, so the
    arena is a drop-in store; on top it adds the single-buffer layout,
    shared-memory sharding, record appends, compaction/sort hooks, and
    the per-index :class:`ParticleView` proxy.
    """

    FIELDS = (
        tuple((name, np.float64) for name in _FLOAT_FIELDS)
        + tuple((name, np.int64) for name in _INT_FIELDS)
        + (
            ("alive", np.bool_),
            ("censused", np.bool_),
            ("particle_id", np.uint64),
            ("rng_counter", np.uint64),
        )
    )

    def __init__(self, n: int):
        _FieldArena.__init__(self, n)

    def _init_defaults(self) -> None:
        self.alive[...] = True
        self.particle_id[...] = np.arange(self.n, dtype=np.uint64)

    # -- AoS escape hatches -------------------------------------------
    def proxy(self, index: int) -> "ParticleView":
        """A thin mutable AoS proxy of one slot (tests, trace tooling)."""
        if not -self.n <= index < self.n:
            raise IndexError(f"particle {index} of {self.n}")
        return ParticleView(self, index % self.n if index < 0 else index)

    def proxies(self):
        """Iterate :class:`ParticleView` proxies over the population."""
        return (ParticleView(self, i) for i in range(self.n))

    def as_particles(self) -> list[Particle]:
        """Materialise AoS :class:`Particle` copies (lossless; mutating
        them does not write back — use :meth:`proxy` for that)."""
        return self.to_particles()


class ParticleView:
    """Mutable per-index AoS view of one arena slot.

    Attribute-compatible with :class:`repro.particles.particle.Particle`;
    reads and writes go straight to the arena's field arrays.
    """

    __slots__ = ("_arena", "_index")

    def __init__(self, arena: ParticleArena, index: int):
        object.__setattr__(self, "_arena", arena)
        object.__setattr__(self, "_index", index)

    @property
    def index(self) -> int:
        """The arena slot this proxy views."""
        return self._index

    def direction_norm_error(self) -> float:
        """|‖Ω‖² − 1| — mirrors :meth:`Particle.direction_norm_error`."""
        return abs(
            self.omega_x * self.omega_x + self.omega_y * self.omega_y - 1.0
        )

    def to_particle(self) -> Particle:
        """A detached AoS copy of this slot."""
        return self._arena.view(self._index, self._index + 1).to_particles()[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParticleView(i={self._index}, id={self.particle_id}, "
            f"pos=({self.x:.6g}, {self.y:.6g}), E={self.energy:.6g} eV, "
            f"alive={self.alive})"
        )


def _view_property(name: str) -> property:
    def _get(self):
        return getattr(self._arena, name)[self._index].item()

    def _set(self, value):
        getattr(self._arena, name)[self._index] = value

    return property(_get, _set)


for _name, _ in ParticleArena.FIELDS:
    setattr(ParticleView, _name, _view_property(_name))


class ParticleRecord(tuple):
    """One particle's full field tuple, in arena field order — the
    record type banked secondaries/clones are expressed in (no AoS object
    construction in hot paths; the kernel audit enforces that)."""

    __slots__ = ()

    def __new__(
        cls,
        *,
        x: float,
        y: float,
        omega_x: float,
        omega_y: float,
        energy: float,
        weight: float,
        cellx: int,
        celly: int,
        particle_id: int,
        dt_to_census: float,
        mfp_to_collision: float = 0.0,
        rng_counter: int = 0,
        local_density: float = 0.0,
        deposit_buffer: float = 0.0,
        scatter_bin: int = 0,
        capture_bin: int = 0,
        fission_bin: int = 0,
        alive: bool = True,
        censused: bool = False,
    ):
        values = dict(
            x=x, y=y, omega_x=omega_x, omega_y=omega_y, energy=energy,
            weight=weight, mfp_to_collision=mfp_to_collision,
            dt_to_census=dt_to_census, local_density=local_density,
            deposit_buffer=deposit_buffer, cellx=cellx, celly=celly,
            scatter_bin=scatter_bin, capture_bin=capture_bin,
            fission_bin=fission_bin, alive=alive, censused=censused,
            particle_id=particle_id, rng_counter=rng_counter,
        )
        return super().__new__(
            cls, (values[name] for name, _ in ParticleArena.FIELDS)
        )

    @property
    def energy_weight(self) -> tuple[float, float]:
        names = [name for name, _ in ParticleArena.FIELDS]
        return self[names.index("energy")], self[names.index("weight")]


# ---------------------------------------------------------------------------
# The fused multi-replica arena (ensemble batching)
# ---------------------------------------------------------------------------

class EnsembleArena(ParticleArena):
    """A fused multi-replica population: :class:`ParticleArena` plus one
    trailing ``replica_id`` field tagging which ensemble member each
    history belongs to.

    The base arena's field set (and therefore its 138 B/particle
    footprint, which the bench trajectory gates exactly) is untouched —
    fusion cost is carried only by runs that opt into it.  All of the
    single-buffer machinery (layout, shared-memory hand-off by the same
    36 B ``(shm_name, n_total, lo, hi)`` handle, compaction, sorting) is
    inherited; ``compact()`` and stable sorts preserve the per-replica
    relative order that makes fused physics bit-identical to standalone
    runs.
    """

    FIELDS = ParticleArena.FIELDS + (("replica_id", np.int64),)

    @classmethod
    def from_records(cls, records) -> "EnsembleArena":
        """Build from plain :class:`ParticleRecord` tuples (19 fields);
        ``replica_id`` defaults to 0 — the banking driver assigns the
        parent's replica right after the append."""
        arena = cls(len(records))
        for j, (name, _) in enumerate(ParticleArena.FIELDS):
            getattr(arena, name)[...] = [r[j] for r in records]
        return arena

    @classmethod
    def fuse(cls, arenas) -> "EnsembleArena":
        """Concatenate member populations replica-major, tagging each
        block with its replica index."""
        total = sum(len(a) for a in arenas)
        out = cls(total)
        off = 0
        for r, a in enumerate(arenas):
            n = len(a)
            for name, _ in ParticleArena.FIELDS:
                getattr(out, name)[off:off + n] = getattr(a, name)
            out.replica_id[off:off + n] = r
            off += n
        return out

    def replica_segments(self) -> list[tuple[int, int, int]]:
        """Contiguous ``(replica, lo, hi)`` runs, in storage order.

        On a freshly fused (or ``sort_by("replica_id")``-restored) arena
        each replica appears exactly once; mid-run — after children are
        appended — a replica may own several runs.  Segment-wise
        iteration is what keeps Over Particles blocks from ever spanning
        a replica boundary.
        """
        if self.n == 0:
            return []
        rep = self.replica_id
        cuts = np.nonzero(rep[1:] != rep[:-1])[0] + 1
        bounds = np.concatenate(([0], cuts, [self.n]))
        return [
            (int(rep[lo]), int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]


# ---------------------------------------------------------------------------
# The 3-D volume-extension arena
# ---------------------------------------------------------------------------

_FIELDS_3D = (
    ("x", np.float64), ("y", np.float64), ("z", np.float64),
    ("ox", np.float64), ("oy", np.float64), ("oz", np.float64),
    ("energy", np.float64), ("weight", np.float64),
    ("mfp", np.float64), ("dt", np.float64),
    ("density", np.float64), ("deposit", np.float64),
    ("cellx", np.int64), ("celly", np.int64), ("cellz", np.int64),
    ("alive", np.bool_), ("censused", np.bool_),
    ("particle_id", np.uint64), ("rng_counter", np.uint64),
)


class ParticleArena3(_FieldArena):
    """SoA arena for the 3-D volume drivers (one more axis, same
    machinery).  Supports item access (``arena["x"]``) because the 3-D
    Over Events kernels address fields by name."""

    FIELDS = _FIELDS_3D

    def _init_defaults(self) -> None:
        self.alive[...] = True
        self.particle_id[...] = np.arange(self.n, dtype=np.uint64)

    def __getitem__(self, name: str) -> np.ndarray:
        return getattr(self, name)

    def __setitem__(self, name: str, value) -> None:
        getattr(self, name)[...] = value

    def proxy(self, index: int) -> "Particle3View":
        """Per-index AoS proxy (the 3-D depth-first driver's record)."""
        if not 0 <= index < self.n:
            raise IndexError(f"particle {index} of {self.n}")
        return Particle3View(self, index)

    def proxies(self):
        return (Particle3View(self, i) for i in range(self.n))


class ParticleRecord3(tuple):
    """Field tuple for :class:`ParticleArena3` (arena field order)."""

    __slots__ = ()

    def __new__(cls, **kw):
        kw.setdefault("deposit", 0.0)
        kw.setdefault("alive", True)
        kw.setdefault("censused", False)
        return super().__new__(
            cls, (kw[name] for name, _ in ParticleArena3.FIELDS)
        )


class Particle3View:
    """Per-index proxy over :class:`ParticleArena3` slots, attribute-
    compatible with the retired ``Particle3`` AoS record (``mfp`` is
    exposed as ``mfp_to_collision``, ``dt`` as ``dt_to_census``, …)."""

    __slots__ = ("_arena", "_index")

    #: proxy attribute → arena field
    _ALIASES = {
        "mfp_to_collision": "mfp",
        "dt_to_census": "dt",
        "local_density": "density",
        "deposit_buffer": "deposit",
    }

    def __init__(self, arena: ParticleArena3, index: int):
        object.__setattr__(self, "_arena", arena)
        object.__setattr__(self, "_index", index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Particle3View(i={self._index}, id={self.particle_id}, "
            f"alive={self.alive})"
        )


def _view3_property(field: str) -> property:
    def _get(self):
        return getattr(self._arena, field)[self._index].item()

    def _set(self, value):
        getattr(self._arena, field)[self._index] = value

    return property(_get, _set)


for _name, _ in ParticleArena3.FIELDS:
    setattr(Particle3View, _name, _view3_property(_name))
for _alias, _field in Particle3View._ALIASES.items():
    setattr(Particle3View, _alias, _view3_property(_field))
