"""Capacity planning on the calibrated performance model.

ROADMAP item 5's closing half: *"given this traffic mix, how many
workers/nodes to hit a latency SLO"* — the stated configuration-planning
purpose of the machine model.  The inputs are deliberately only things
the repo already commits: a ``BENCH_*.json`` artifact (measured
single-worker and pooled latencies from ``pool_speedup_csp``, plus the
kernel profiles the recalibrator fits) and the recalibrated
:mod:`repro.perfmodel` error, which becomes the plan's tolerance band.

The scaling law is the paper's own frame: Amdahl's law fitted from the
two measured points.  With ``t1`` the single-worker latency and ``tn``
the ``n``-worker latency,

    T(w) = t1 * (f + (1 - f) / w)

and the serial fraction ``f`` follows from inverting at ``w = n``.  On
hosts where pooling *hurts* (``tn > t1``, e.g. a 1-CPU container paying
process overhead with zero parallelism to win) the fit yields ``f > 1``
— the model then correctly reports latency as *increasing* in the
worker count and the planner answers honestly: one worker is optimal,
and SLOs below ``t1`` are infeasible at any width.

Two planning modes share :func:`plan_capacity`:

* **reproduce** (no SLO given): invert the model at the *measured*
  pooled latency and check it lands back on the benched worker count —
  the self-consistency loop the acceptance criteria gate, with the
  calibration's mean relative error as the band.
* **SLO** (``latency_slo=`` given): the minimal workers per job whose
  predicted latency meets the SLO; with a traffic ``rate`` (jobs/s),
  Little's law sizes the fleet: ``rate × slo`` jobs in flight, each
  needing ``workers_per_job`` workers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "DEFAULT_BENCH",
    "amdahl_serial_fraction",
    "predicted_latency",
    "implied_workers",
    "required_workers",
    "CapacityScenario",
    "scenario_from_artifact",
    "CapacityPlan",
    "plan_capacity",
]

#: The bench whose serial/pooled latencies calibrate the scaling law.
DEFAULT_BENCH = "pool_speedup_csp"


def amdahl_serial_fraction(t1: float, tn: float, n: int) -> float:
    """Serial fraction ``f`` from inverting ``T(n) = t1*(f + (1-f)/n)``.

    ``f > 1`` is a legitimate fit on hosts where pooling slows the run
    down (process overhead with no cores to win back) — the model then
    predicts latency *rising* with the worker count.
    """
    if t1 <= 0 or tn <= 0:
        raise ValueError("latencies must be positive")
    if n < 2:
        raise ValueError("need a pooled measurement at n >= 2 workers")
    return (tn / t1 - 1.0 / n) / (1.0 - 1.0 / n)


def predicted_latency(t1: float, f: float, workers: float) -> float:
    """``T(w)`` under the fitted law."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return t1 * (f + (1.0 - f) / workers)


def implied_workers(t1: float, f: float, latency: float) -> float | None:
    """Invert ``T(w) = latency`` for ``w`` — the worker count the model
    says produced a *measured* latency.  ``None`` when the latency is
    outside the model's reachable range (no finite solution)."""
    if latency <= 0:
        raise ValueError("latency must be positive")
    denom = latency / t1 - f
    if denom == 0:
        return None  # the w → ∞ asymptote
    w = (1.0 - f) / denom
    return w if w >= 1.0 else None


def required_workers(t1: float, f: float, latency_slo: float) -> float:
    """Minimal (fractional) workers per job with ``T(w) <= latency_slo``;
    ``math.inf`` when no worker count can meet the SLO.

    For ``f < 1`` latency falls toward the ``t1*f`` asymptote, so SLOs
    at or below it are infeasible.  For ``f >= 1`` latency *rises* with
    width: one worker is optimal and SLOs under ``t1`` are infeasible.
    """
    if latency_slo <= 0:
        raise ValueError("latency_slo must be positive")
    if f >= 1.0:
        return 1.0 if latency_slo >= t1 else math.inf
    if latency_slo >= t1:
        return 1.0
    if latency_slo <= t1 * f:
        return math.inf
    return (1.0 - f) / (latency_slo / t1 - f)


@dataclass(frozen=True)
class CapacityScenario:
    """The calibrated inputs extracted from one bench artifact."""

    bench: str
    #: Measured single-worker latency (s) — Amdahl ``t1``.
    serial_s: float
    #: Measured latency at ``nworkers`` (s).
    parallel_s: float
    #: Worker count of the pooled measurement.
    nworkers: int
    #: Fitted Amdahl serial fraction (may exceed 1; see module doc).
    serial_fraction: float
    #: The recalibrated machine model's mean |relative error| — the
    #: tolerance band every plan reports (0 when the artifact carries no
    #: kernel profile to calibrate against).
    model_error: float
    #: Host fingerprint of the measuring machine.
    host: dict

    def format(self) -> str:
        return (
            f"scenario [{self.bench}]: t1={self.serial_s:.4f}s, "
            f"T({self.nworkers})={self.parallel_s:.4f}s, "
            f"serial fraction f={self.serial_fraction:.4f}, "
            f"model error ±{self.model_error:.1%} "
            f"(host: {self.host.get('machine', '?')}, "
            f"{self.host.get('cpu_count', '?')} cpus)"
        )


def scenario_from_artifact(artifact, bench: str = DEFAULT_BENCH,
                           nworkers: int = 2) -> CapacityScenario:
    """Extract a :class:`CapacityScenario` from a ``BENCH_*.json``
    artifact.

    ``bench`` must expose ``serial_s``/``parallel_s`` metrics (the
    ``pool_speedup_*`` family); ``nworkers`` is the worker count that
    bench ran with (the registry pins 2).  The model error comes from
    recalibrating :mod:`repro.perfmodel` against the artifact's kernel
    profiles — the same recalibration ``repro bench recalibrate`` runs.
    """
    if bench not in artifact.benches:
        raise ValueError(
            f"artifact has no bench {bench!r}; available: "
            f"{', '.join(artifact.bench_names())}"
        )
    metrics = artifact.benches[bench].get("metrics", {})
    for needed in ("serial_s", "parallel_s"):
        if needed not in metrics:
            raise ValueError(
                f"bench {bench!r} has no {needed!r} metric; capacity "
                "planning needs a pool_speedup_* style bench"
            )
    t1 = float(metrics["serial_s"]["median"])
    tn = float(metrics["parallel_s"]["median"])
    from repro.perfmodel.recalibrate import recalibrate_from_artifact

    try:
        model_error = recalibrate_from_artifact(artifact).mean_abs_rel_error
    except (ValueError, KeyError):
        model_error = 0.0
    return CapacityScenario(
        bench=bench,
        serial_s=t1,
        parallel_s=tn,
        nworkers=nworkers,
        serial_fraction=amdahl_serial_fraction(t1, tn, nworkers),
        model_error=model_error,
        host=dict(artifact.meta.get("host", {})),
    )


@dataclass(frozen=True)
class CapacityPlan:
    """One answer from :func:`plan_capacity`."""

    mode: str  # "reproduce" | "slo"
    #: The latency target the plan solved for (s).
    target_latency_s: float
    #: Traffic rate (jobs/s); None when planning a single job.
    rate: float | None
    #: Fractional workers per job from the model (inf when infeasible).
    workers_per_job: float
    #: Rounded workers per job (None when infeasible).
    workers: int | None
    #: Workers-per-job bounds under ± the model error on the target.
    workers_low: float
    workers_high: float
    #: Total fleet size for the traffic rate (None without a rate or
    #: when infeasible).
    fleet: int | None
    feasible: bool
    note: str

    def format(self) -> str:
        lines = []
        if self.mode == "reproduce":
            lines.append(
                f"reproduce: model implies {self.workers_per_job:.2f} "
                f"workers for the measured {self.target_latency_s:.4f}s "
                f"latency (band {self.workers_low:.2f}"
                f"–{self.workers_high:.2f})"
            )
        elif not self.feasible:
            lines.append(
                f"slo {self.target_latency_s:.4f}s: INFEASIBLE — "
                + self.note
            )
        else:
            lines.append(
                f"slo {self.target_latency_s:.4f}s: {self.workers} "
                f"worker(s) per job "
                f"(model: {self.workers_per_job:.2f}, band "
                f"{self.workers_low:.2f}–{self.workers_high:.2f})"
            )
            if self.fleet is not None:
                lines.append(
                    f"traffic {self.rate:g} jobs/s -> "
                    f"{self.rate * self.target_latency_s:.2f} jobs in "
                    f"flight (Little's law) -> fleet of {self.fleet} "
                    "workers"
                )
        if self.note and self.feasible:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)


def _bounded_workers(solve, target: float, err: float) -> tuple[float, float]:
    """Evaluate a worker solver at ``target*(1±err)`` and order the
    finite results into a (low, high) band."""
    values = []
    for latency in (target * (1.0 - err), target, target * (1.0 + err)):
        if latency <= 0:
            continue
        w = solve(latency)
        if w is not None and math.isfinite(w):
            values.append(w)
    if not values:
        return math.inf, math.inf
    return min(values), max(values)


def plan_capacity(scenario: CapacityScenario, *,
                  latency_slo: float | None = None,
                  rate: float | None = None) -> CapacityPlan:
    """Solve the calibrated scaling law for worker counts.

    Without ``latency_slo`` this is the self-consistency *reproduce*
    mode: invert the model at the scenario's own measured pooled latency
    — it should land back on the benched worker count within the model
    error.  With an SLO it sizes workers per job, and with ``rate`` a
    whole fleet via Little's law.
    """
    t1, f, err = (
        scenario.serial_s, scenario.serial_fraction, scenario.model_error
    )
    if latency_slo is None:
        target = scenario.parallel_s
        w = implied_workers(t1, f, target)
        low, high = _bounded_workers(
            lambda latency: implied_workers(t1, f, latency), target, err
        )
        feasible = w is not None
        return CapacityPlan(
            mode="reproduce",
            target_latency_s=target,
            rate=None,
            workers_per_job=w if w is not None else math.inf,
            workers=int(round(w)) if w is not None else None,
            workers_low=low,
            workers_high=high,
            fleet=None,
            feasible=feasible,
            note=(
                "" if feasible
                else "measured latency is outside the fitted model's range"
            ),
        )
    w = required_workers(t1, f, latency_slo)
    low, high = _bounded_workers(
        lambda latency: required_workers(t1, f, latency), latency_slo, err
    )
    feasible = math.isfinite(w)
    note = ""
    if not feasible:
        if f >= 1.0:
            note = (
                f"fitted serial fraction f={f:.3f} >= 1: pooling slows "
                f"this workload down on the measured host, and the SLO "
                f"is below the one-worker latency t1={t1:.4f}s"
            )
        else:
            note = (
                f"SLO at or below the Amdahl asymptote "
                f"t1*f={t1 * f:.4f}s — no worker count reaches it"
            )
    elif f >= 1.0:
        note = (
            f"fitted serial fraction f={f:.3f} >= 1: adding workers "
            "increases latency on the measured host, so 1 worker per "
            "job is optimal"
        )
    fleet = None
    if feasible and rate is not None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        fleet = max(1, math.ceil(w * rate * latency_slo))
    return CapacityPlan(
        mode="slo",
        target_latency_s=latency_slo,
        rate=rate,
        workers_per_job=w,
        workers=max(1, math.ceil(w)) if feasible else None,
        workers_low=low,
        workers_high=high,
        fleet=fleet,
        feasible=feasible,
        note=note,
    )
