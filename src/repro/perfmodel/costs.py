"""Model constants, with provenance.

Every constant used by the runtime models is collected here so the whole
figure suite demonstrably runs off one parameterisation.  Three kinds of
numbers appear:

* **instruction-count estimates** — from reading the kernels we actually
  wrote (e.g. a Threefry-2x64-20 evaluation is ~100 ALU operations; the
  facet handler is ~20 operations of compare/add);
* **micro-architectural facts** — cache-line size, the fraction of stream
  bandwidth random 64-byte accesses achieve (~0.35–0.45 on all tested
  DDR/GDDR systems);
* **calibrated-once constants** — ``MEM_CONCURRENCY_PER_CORE``: the
  effective number of outstanding DRAM misses a core sustains for
  dependent random-access chains.  These are calibrated against exactly
  one measurement per device — the paper's Fig 6 SMT speedup — and then
  reused unchanged in every other figure.  (The paper itself identifies
  this quantity as the key architectural lever: "The Broadwell CPU is
  limited to a small finite number of memory transactions per core",
  §VIII-A.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ModelConstants", "DEFAULT_CONSTANTS", "MEM_CONCURRENCY_PER_CORE"]

#: Effective sustained outstanding DRAM misses per core under dependent
#: random-access chains, per device (calibrated once from Fig 6; see module
#: docstring).  GPUs express the same quantity through resident warps.
MEM_CONCURRENCY_PER_CORE = {
    "broadwell": 1.35,
    "knights landing": 2.2,
    "power8": 5.0,
}


@dataclass(frozen=True)
class ModelConstants:
    """All tunables of the analytic runtime model.

    Attributes
    ----------
    collision_alu_ops:
        ALU operations per collision: 3 Threefry draws (~100 ops each is an
        overestimate amortised by ILP; we charge 60 effective each),
        two-body kinematics incl. three sqrts, implicit capture and
        termination logic.
    facet_alu_ops:
        ALU operations per facet: the Cartesian intersection arithmetic and
        the 4-deep branch ladder — "one or two FLOPs" per branch (§VI-A).
    census_alu_ops:
        Census bookkeeping.
    lookup_alu_ops:
        Interpolation arithmetic per cross-section lookup.
    probe_alu_ops:
        Compare/advance per search probe.
    random_bw_fraction:
        Fraction of achievable stream bandwidth delivered for random
        cache-line-sized traffic.
    density_adjacent_fraction:
        Fraction of facet density reads that hit the just-used cache line
        (x-facing crossings walk adjacent cells; §V-A's "locality
        benefits").
    oe_bytes_per_event:
        SoA bytes streamed per *handled event* across the Over Events
        kernel chain (time-to-event, event determination, the event
        handler and the separate tally loop each re-read the particle
        fields they need — roughly 4–5 kernels × ~18 float64 fields;
        §V-B "state is cached in the particle data store and streamed
        from memory for each loop").
    oe_flag_bytes_per_visit:
        Bytes read per *inactive* particle visit per pass (the kernels
        "visit the entire list of particles checking if they are to be
        processed" — an event flag per kernel).
    distance_alu_ops:
        ALU operations of the time-to-event calculation, re-executed for
        every active particle every OE pass (in OP it is part of the
        per-event loop and charged within the event costs).
    oe_gather_mlp_boost:
        Memory-level-parallelism multiplier of the OE scheme's batched
        gathers relative to OP's serial dependent chains (a vector gather
        issues several independent loads).
    oe_batched_atomic_duty:
        Fraction of OE wall-time during which the batched tally loop runs
        (all threads flush together, §VII-A1).
    op_atomic_duty:
        Same for OP, where flushes are spread along each history.
    gather_penalty_unsupported / gather_penalty_supported:
        Per-element extra cost factor of vector gathers without/with
        hardware gather support (drives Fig 8's CPU-vs-KNL split).
    vector_efficiency:
        Fraction of ideal SIMD speedup reached by the tight OE kernels on
        non-gather arithmetic.
    gpu_spill_penalty:
        Relative compute inflation per spilled register when capping
        registers below the kernel's natural usage (§VII-E: capping
        79→64 on the P100 cost 1.07×).  The per-architecture natural
        register usage of the OP megakernel lives on
        :class:`repro.machine.spec.GPUSpec` (102 on sm_35, 79 on sm_60).
    oversubscription_switch_cost:
        Throughput penalty per unit of software-thread oversubscription
        (flow's 1.2× penalty at 2× oversubscription, §VI-E).
    oversubscription_mlp_bonus:
        Extra effective memory concurrency per unit oversubscription for
        latency-bound codes (the OS switches on long stalls — §VI-E's
        "context switching ... faster than waiting").
    dispatch_cycles:
        Cost of one dynamic/guided chunk acquisition (a contended
        fetch-add).
    op_shared_capacity_scale / oe_shared_capacity_scale:
        Competition divisor on shared caches: under OP, density and tally
        split the last level (2); under OE, the streamed particle arrays
        continuously evict the mesh data (8).
    soa_fields_per_event:
        Particle fields touched per event that fall out of the innermost
        cache under the SoA layout (line-granularity waste, §VI-D).
    gpu_warp_mlp:
        Outstanding cache lines one warp sustains on a dependent
        uncoalesced access chain.
    gpu_stream_efficiency / cpu_stream_efficiency:
        Fraction of achievable bandwidth reached by the OE scheme's short
        streaming kernels (barrier entry/exit and gather interludes keep
        the memory system from its steady-state rate).
    gpu_atomic_emulation_factor:
        Extra memory transactions per tally flush when double atomicAdd is
        CAS-emulated (Kepler); removing it is the P100's measured 1.20×
        (§VIII-A).
    gpu_oe_registers:
        Per-thread registers of the (small) Over Events kernels.
    privatized_store_cost_fraction:
        Fraction of the line latency a privatised-tally store still costs:
        stores retire through the write buffer without waiting for the
        line, but sustained random stores eventually stall on fill/RFO
        capacity.
    """

    collision_alu_ops: float = 400.0
    facet_alu_ops: float = 22.0
    census_alu_ops: float = 12.0
    lookup_alu_ops: float = 10.0
    probe_alu_ops: float = 3.0
    distance_alu_ops: float = 45.0
    random_bw_fraction: float = 0.4
    density_adjacent_fraction: float = 0.35
    oe_bytes_per_event: float = 650.0
    oe_flag_bytes_per_visit: float = 32.0
    oe_gather_mlp_boost: float = 1.6
    oe_batched_atomic_duty: float = 1.0
    op_atomic_duty: float = 0.5
    op_shared_capacity_scale: float = 2.0
    oe_shared_capacity_scale: float = 8.0
    soa_fields_per_event: float = 6.0
    gather_penalty_unsupported: float = 1.0
    gather_penalty_supported: float = 0.15
    vector_efficiency: float = 0.6
    gpu_spill_penalty: float = 0.35
    gpu_warp_mlp: float = 1.0
    gpu_stream_efficiency: float = 0.6
    cpu_stream_efficiency: float = 0.7
    oe_tally_kernel_byte_share: float = 0.2
    privatized_store_cost_fraction: float = 0.7
    single_thread_stream_gbs: float = 8.0
    migration_cost_us: float = 0.5
    decomposed_remote_fraction: float = 0.05
    gpu_atomic_emulation_factor: float = 1.4
    gpu_oe_registers: int = 40
    oversubscription_switch_cost: float = 0.2
    oversubscription_mlp_bonus: float = 0.08
    dispatch_cycles: float = 80.0

    mem_concurrency: dict = field(
        default_factory=lambda: dict(MEM_CONCURRENCY_PER_CORE)
    )

    def mem_concurrency_for(self, machine_name: str) -> float:
        """Per-core outstanding-miss capacity for a device (by registry key
        or full name); defaults to 2.0 for unknown CPUs."""
        key = machine_name.lower()
        for name, value in self.mem_concurrency.items():
            if name in key:
                return value
        return 2.0


#: The single parameterisation used by every benchmark and figure.
DEFAULT_CONSTANTS = ModelConstants()
