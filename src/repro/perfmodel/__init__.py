"""Performance model: measured algorithm counters × machine specs → runtime.

This package is the quantitative substitute for the paper's testbed.  The
pipeline for every figure is the same:

1. run the *real* transport (reduced scale) and collect
   :class:`repro.core.counters.Counters`;
2. summarise them into a scale-free :class:`repro.perfmodel.workload.Workload`
   and rescale to the paper's problem sizes (4000² mesh, 10⁶–10⁷
   particles) using the validated scaling laws (facet crossings ∝ mesh
   resolution; collisions scale-invariant);
3. evaluate :func:`repro.perfmodel.cpu_model.predict_cpu` or
   :func:`repro.perfmodel.gpu_model.predict_gpu` against a
   :mod:`repro.machine` spec under the experiment's options (threads,
   affinity, schedule, layout, tally mode, vectorisation, MCDRAM,
   register caps).

The model's constants live in :mod:`repro.perfmodel.costs` with their
provenance documented; the same constants generate every figure.
"""

from repro.perfmodel.workload import Workload
from repro.perfmodel.costs import ModelConstants, DEFAULT_CONSTANTS
from repro.perfmodel.memory import random_access_latency_cycles, effective_cache_levels
from repro.perfmodel.cpu_model import (
    CPUOptions,
    CPUPrediction,
    DataPlacement,
    TallyMode,
    predict_cpu,
)
from repro.perfmodel.gpu_model import GPUOptions, GPUPrediction, predict_gpu
from repro.perfmodel.efficiency import parallel_efficiency, speedup
from repro.perfmodel.recalibrate import (
    CalibrationReport,
    KernelFit,
    recalibrate_constants,
    recalibrate_from_artifact,
)
from repro.perfmodel.capacity import (
    CapacityPlan,
    CapacityScenario,
    plan_capacity,
    scenario_from_artifact,
)

__all__ = [
    "CalibrationReport",
    "KernelFit",
    "recalibrate_constants",
    "recalibrate_from_artifact",
    "CapacityPlan",
    "CapacityScenario",
    "plan_capacity",
    "scenario_from_artifact",
    "Workload",
    "ModelConstants",
    "DEFAULT_CONSTANTS",
    "random_access_latency_cycles",
    "effective_cache_levels",
    "CPUOptions",
    "CPUPrediction",
    "DataPlacement",
    "TallyMode",
    "predict_cpu",
    "GPUOptions",
    "GPUPrediction",
    "predict_gpu",
    "parallel_efficiency",
    "speedup",
]
