"""GPU runtime model.

Predicts device wall-clock from the measured workload and a
:class:`repro.machine.spec.GPUSpec`, following the paper's GPU analysis
(§VII-D/E, §VIII-A):

* the Over Particles megakernel is **memory-latency bound**: each in-flight
  history advances through a dependent chain of uncoalesced accesses
  (density read, tally RMW).  Throughput is set by how many lines the
  device keeps in flight — resident warps per SM, register-limited
  (§VI-H's occupancy arithmetic), clipped at the device's saturation point
  (small on Pascal);
* random traffic is additionally capped by the memory system's random-access
  bandwidth (the 35 GB/s ≈ 20% and 125 GB/s ≈ 25% figures);
* the Over Events kernels stream the particle store every pass (coalesced,
  high bandwidth — the K20X's 90 GB/s ≈ 50%) *in addition to* the same
  random gathers, with the kernel chain serialising the two;
* tally flushes cost extra transactions where double atomicAdd must be
  CAS-emulated (K20X); the P100's native instruction removes this — the
  paper measured the difference at 1.20× end-to-end;
* branch divergence inflates compute by the warp-coherence factor — real
  but minor here, as the profiler told the authors (§VII-E).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import Scheme
from repro.machine.spec import GPUSpec
from repro.perfmodel.costs import DEFAULT_CONSTANTS, ModelConstants
from repro.perfmodel.workload import Workload

__all__ = ["GPUOptions", "GPUPrediction", "predict_gpu"]

LINE_BYTES = 64.0


@dataclass(frozen=True)
class GPUOptions:
    """Experiment configuration for one GPU prediction.

    Attributes
    ----------
    scheme:
        Over Particles or Over Events.
    max_registers:
        Compiler register cap (``-maxrregcount``); ``None`` leaves the
        kernel's natural usage (102 on sm_35, 79 on sm_60).
    force_emulated_atomics:
        Model double atomicAdd as CAS-emulated even on devices with native
        support — the §VIII-A counterfactual that isolates the intrinsic's
        1.20× contribution.
    """

    scheme: Scheme = Scheme.OVER_PARTICLES
    max_registers: int | None = None
    force_emulated_atomics: bool = False


@dataclass(frozen=True)
class GPUPrediction:
    """Model output for a GPU run."""

    seconds: float
    breakdown: dict
    occupancy: float
    active_warps_per_sm: int
    registers_per_thread: int
    achieved_bandwidth_gbs: float
    warp_coherence: float
    bound: str


def predict_gpu(
    workload: Workload,
    spec: GPUSpec,
    options: GPUOptions = GPUOptions(),
    constants: ModelConstants = DEFAULT_CONSTANTS,
) -> GPUPrediction:
    """Predict device wall-clock seconds for a transport run."""
    w = workload
    con = constants
    n = w.nparticles
    events = n * (w.collisions_pp + w.facets_pp + w.census_pp)

    # --- occupancy from register pressure (§VI-H) -------------------------
    natural_regs = (
        spec.op_kernel_registers
        if options.scheme is Scheme.OVER_PARTICLES
        else con.gpu_oe_registers
    )
    regs = natural_regs
    spill_factor = 1.0
    if options.max_registers is not None and options.max_registers < natural_regs:
        regs = options.max_registers
        spill_factor = 1.0 + con.gpu_spill_penalty * (
            (natural_regs - regs) / natural_regs
        )
    warps = spec.warps_for_registers(regs)
    occupancy = warps / spec.max_warps_per_sm
    warps_eff = min(warps, spec.saturation_warps_per_sm)

    # --- random (uncoalesced) traffic --------------------------------------
    emulated = options.force_emulated_atomics or not spec.native_double_atomics
    atomic_factor = con.gpu_atomic_emulation_factor if emulated else 1.0
    random_lines_pp = w.density_reads_pp + w.flushes_pp * 2.0 * atomic_factor
    random_lines = n * random_lines_pp
    random_bytes = random_lines * LINE_BYTES

    latency_s = spec.memory_latency_cycles / (spec.clock_ghz * 1.0e9)
    # Each resident warp sustains ~gpu_warp_mlp outstanding lines of its
    # dependent chain; the device completes lines at warps × MLP per
    # latency.
    line_rate = spec.sms * warps_eff * con.gpu_warp_mlp / latency_s
    latency_seconds = random_lines / line_rate * spill_factor

    random_bw_seconds = random_bytes / (
        spec.memory.random_bandwidth_gbs() * 1.0e9
    )

    # --- compute with divergence (§VII-E) ----------------------------------
    coherence = w.warp_event_coherence()
    alu_pp = (
        w.collisions_pp * con.collision_alu_ops
        + w.facets_pp * con.facet_alu_ops
        + w.census_pp * con.census_alu_ops
        + w.lookups_pp * con.lookup_alu_ops
    )
    if options.scheme is Scheme.OVER_EVENTS:
        alu_pp += (w.collisions_pp + w.facets_pp + w.census_pp) * con.distance_alu_ops
        coherence = 1.0  # each OE kernel is branch-uniform
    warp_instructions = n * alu_pp / spec.warp_size / coherence * spill_factor
    compute_seconds = warp_instructions / (
        spec.sms * spec.issue_width * spec.clock_ghz * 1.0e9
    )

    # --- Over Events streaming (coalesced) ---------------------------------
    stream_seconds = 0.0
    stream_bytes = 0.0
    if options.scheme is Scheme.OVER_EVENTS:
        stream_bytes = (
            events * con.oe_bytes_per_event
            + w.oe_passes * n * con.oe_flag_bytes_per_visit
        )
        stream_seconds = stream_bytes / (
            spec.memory.bandwidth_gbs * con.gpu_stream_efficiency * 1.0e9
        )

    random_seconds = max(latency_seconds, random_bw_seconds)
    if options.scheme is Scheme.OVER_EVENTS:
        # The kernel chain serialises the streaming passes and the gather/
        # scatter kernels; compute overlaps within each.
        seconds = random_seconds + stream_seconds + 0.2 * compute_seconds
        bound = "streaming" if stream_seconds > random_seconds else (
            "latency" if latency_seconds >= random_bw_seconds else "bandwidth"
        )
    else:
        seconds = max(random_seconds, compute_seconds)
        if compute_seconds >= random_seconds:
            bound = "compute"
        else:
            bound = "latency" if latency_seconds >= random_bw_seconds else "bandwidth"

    total_bytes = random_bytes + stream_bytes
    return GPUPrediction(
        seconds=seconds,
        breakdown={
            "latency_s": latency_seconds,
            "random_bw_s": random_bw_seconds,
            "compute_s": compute_seconds,
            "stream_s": stream_seconds,
        },
        occupancy=occupancy,
        active_warps_per_sm=warps,
        registers_per_thread=regs,
        achieved_bandwidth_gbs=total_bytes / seconds / 1.0e9,
        warp_coherence=coherence,
        bound=bound,
    )
