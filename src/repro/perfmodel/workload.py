"""Scale-free workload characterisation and rescaling.

A :class:`Workload` captures what the transport algorithm *does* per
particle — event rates, search work, tally-address statistics, the shape of
the per-history work distribution, and the Over Events pass structure —
measured from a real reduced-scale run.

Rescaling to the paper's problem sizes uses two laws, both validated by the
test-suite against multi-resolution runs:

* **facet crossings per particle scale linearly with mesh resolution** —
  crossings = (path length) × (|Ω_x|+|Ω_y|) / cell size and the physical
  path length is resolution-independent;
* **collisions per particle are resolution-invariant** — they depend only
  on cross sections and densities.

Tally conflict probability rescales inversely with the number of mesh
cells: the deposition footprint is a fixed *area* of the problem, so the
number of distinct cells it covers grows with resolution².
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.counters import Counters
from repro.core.simulation import TransportResult

__all__ = ["Workload"]


@dataclass(frozen=True)
class Workload:
    """Per-particle workload statistics at a given problem scale.

    Attributes
    ----------
    name:
        Problem label ("stream", "scatter", "csp").
    nparticles:
        Histories at this scale.
    mesh_nx:
        Mesh resolution at this scale (square meshes).
    collisions_pp, facets_pp, census_pp:
        Mean events per particle.
    reflections_pp, flushes_pp, density_reads_pp, lookups_pp, draws_pp:
        Other per-particle operation rates.
    linear_probes_per_lookup, binary_probes_per_lookup:
        Mean search steps per cross-section lookup for each strategy.
    conflict_probability:
        Probability two tally flushes target the same cell.
    work_cv:
        Coefficient of variation of the per-history work (collisions
        weighted by the collision/facet cost ratio; drives imbalance).
    work_samples:
        The measured per-history work distribution (arbitrary units),
        resampled when an exact schedule simulation is wanted.
    oe_passes:
        Over Events outer-loop passes executed.
    oe_occupancy:
        Mean fraction of the particle list active per OE pass.
    event_mix:
        (collision, facet, census) fractions of all events — drives the
        GPU divergence estimate and the OE kernel split.
    xs_table_bytes:
        Total bytes of the cross-section tables (working set of the
        energy-bin search).
    """

    name: str
    nparticles: int
    mesh_nx: int
    collisions_pp: float
    facets_pp: float
    census_pp: float
    reflections_pp: float
    flushes_pp: float
    density_reads_pp: float
    lookups_pp: float
    draws_pp: float
    linear_probes_per_lookup: float
    binary_probes_per_lookup: float
    conflict_probability: float
    work_cv: float
    work_samples: np.ndarray
    oe_passes: int
    oe_occupancy: float
    event_mix: tuple[float, float, float]
    xs_table_bytes: float = 2 * 25_000 * 16.0

    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result: TransportResult) -> "Workload":
        """Characterise a finished transport run."""
        c: Counters = result.counters
        n = max(c.nparticles, 1)
        lookups = max(c.xs_lookups, 1)
        total_events = max(c.total_events, 1)

        # Work per history in "facet units": collisions weighted by the
        # measured grind-time ratio (≈6, §VI-A).
        work = (6.0 * c.collisions_per_particle + c.facets_per_particle).astype(
            np.float64
        )
        if work.size == 0 or work.mean() == 0:
            work = np.ones(n)
        cv = float(work.std() / work.mean()) if work.mean() > 0 else 0.0

        return cls(
            name=result.config.name,
            nparticles=n,
            mesh_nx=result.config.nx,
            collisions_pp=c.collisions / n,
            facets_pp=c.facets / n,
            census_pp=c.census_events / n,
            reflections_pp=c.reflections / n,
            flushes_pp=c.tally_flushes / n,
            density_reads_pp=c.density_reads / n,
            lookups_pp=c.xs_lookups / n,
            draws_pp=c.rng_draws / n,
            linear_probes_per_lookup=c.xs_linear_probes / lookups,
            binary_probes_per_lookup=c.xs_binary_probes / lookups,
            conflict_probability=c.tally_conflict_probability,
            work_cv=cv,
            work_samples=work,
            oe_passes=max(len(c.oe_passes), 1),
            oe_occupancy=c.oe_mean_occupancy(),
            event_mix=(
                c.collisions / total_events,
                c.facets / total_events,
                c.census_events / total_events,
            ),
            xs_table_bytes=2.0 * result.config.xs_nentries * 16.0,
        )

    @classmethod
    def from_result_3d(cls, result) -> "Workload":
        """Characterise a 3-D run (:class:`repro.volume.Transport3DResult`).

        The machine models are dimension-agnostic: they consume operation
        rates and working-set sizes.  The 3-D mesh maps to an equivalent
        2-D edge length with the same cell count (``mesh_bytes`` is what
        the cache model uses), and the facet-scaling law carries over with
        resolution measured per axis.
        """
        c = result.counters
        n = max(c.nparticles, 1)
        cfg = result.config
        equivalent_nx = int(round((cfg.nx * cfg.ny * cfg.nz) ** 0.5))
        work = (6.0 * c.collisions_per_particle + c.facets_per_particle).astype(
            np.float64
        )
        if work.size == 0 or work.mean() == 0:
            work = np.ones(n)
        total_events = max(c.total_events, 1)
        return cls(
            name=cfg.name,
            nparticles=n,
            mesh_nx=equivalent_nx,
            collisions_pp=c.collisions / n,
            facets_pp=c.facets / n,
            census_pp=c.census_events / n,
            reflections_pp=c.reflections / n,
            flushes_pp=c.tally_flushes / n,
            density_reads_pp=c.density_reads / n,
            lookups_pp=c.xs_lookups / n,
            draws_pp=c.rng_draws / n,
            linear_probes_per_lookup=0.0,
            binary_probes_per_lookup=float(
                np.ceil(np.log2(max(cfg.xs_nentries, 2)))
            ),
            conflict_probability=0.0,
            work_cv=float(work.std() / work.mean()) if work.mean() > 0 else 0.0,
            work_samples=work,
            oe_passes=max(int(work.max()) if work.size else 1, 1),
            oe_occupancy=1.0,
            event_mix=(
                c.collisions / total_events,
                c.facets / total_events,
                c.census_events / total_events,
            ),
            xs_table_bytes=2.0 * cfg.xs_nentries * 16.0,
        )

    # ------------------------------------------------------------------
    def scaled(self, nparticles: int, mesh_nx: int) -> "Workload":
        """Rescale to a different particle count and mesh resolution.

        Facet-linked rates (facets, reflections, flushes, density reads,
        and the OE pass count, which tracks the longest history) scale by
        ``mesh_nx / self.mesh_nx``; collision-linked rates are invariant;
        the tally conflict probability scales by the inverse cell-count
        ratio.
        """
        if nparticles < 1 or mesh_nx < 1:
            raise ValueError("scale targets must be positive")
        r = mesh_nx / self.mesh_nx
        cells_ratio = (self.mesh_nx / mesh_nx) ** 2
        # Flushes: the facet-driven share scales with r; the per-history
        # (census/termination) share is invariant.
        facet_flushes = self.facets_pp
        other_flushes = max(self.flushes_pp - facet_flushes, 0.0)
        work = self.work_samples * (
            (6.0 * self.collisions_pp + r * self.facets_pp)
            / max(6.0 * self.collisions_pp + self.facets_pp, 1e-300)
        )
        # The OE pass count tracks the *longest* history's event count, so
        # it scales by the history-length growth factor (only the facet
        # share of events grows with resolution), not by r directly —
        # collision-dominated problems keep almost the same pass count.
        events_old = max(self.collisions_pp + self.facets_pp + self.census_pp, 1e-300)
        events_new = self.collisions_pp + r * self.facets_pp + self.census_pp
        pass_factor = events_new / events_old
        return replace(
            self,
            nparticles=nparticles,
            mesh_nx=mesh_nx,
            facets_pp=self.facets_pp * r,
            reflections_pp=self.reflections_pp * r,
            flushes_pp=facet_flushes * r + other_flushes,
            density_reads_pp=self.density_reads_pp * r,
            conflict_probability=min(1.0, self.conflict_probability * cells_ratio),
            oe_passes=int(np.ceil(self.oe_passes * pass_factor)),
            work_samples=work,
            event_mix=self._scaled_mix(r),
        )

    def _scaled_mix(self, r: float) -> tuple[float, float, float]:
        coll = self.collisions_pp
        fac = self.facets_pp * r
        cen = self.census_pp
        tot = max(coll + fac + cen, 1e-300)
        return (coll / tot, fac / tot, cen / tot)

    # ------------------------------------------------------------------
    @property
    def total_events(self) -> float:
        """Total events at this scale."""
        return self.nparticles * (
            self.collisions_pp + self.facets_pp + self.census_pp
        )

    def work_distribution(self, n: int, seed: int = 0) -> np.ndarray:
        """Resample the measured per-history work distribution to ``n``
        items (for exact schedule simulations at paper scale)."""
        if n <= self.work_samples.size:
            return self.work_samples[:n].copy()
        reps = int(np.ceil(n / self.work_samples.size))
        tiled = np.tile(self.work_samples, reps)[:n]
        # Deterministic shuffle so chunk assignments are not artificially
        # periodic.
        rng = np.random.default_rng(seed)
        rng.shuffle(tiled)
        return tiled

    def mesh_bytes(self) -> int:
        """Bytes of one cell-centred float64 field at this scale."""
        return self.mesh_nx * self.mesh_nx * 8

    def warp_event_coherence(self) -> float:
        """Probability two random in-flight particles are at the same event
        type — the GPU warp-coherence proxy (1.0 = no divergence)."""
        return float(sum(f * f for f in self.event_mix))
