"""Speedup and parallel-efficiency helpers for the scaling figures."""

from __future__ import annotations

__all__ = ["speedup", "parallel_efficiency", "efficiency_series"]


def speedup(t_base: float, t_new: float) -> float:
    """``t_base / t_new`` — >1 means the new configuration is faster."""
    if t_base <= 0 or t_new <= 0:
        raise ValueError("times must be positive")
    return t_base / t_new


def parallel_efficiency(t1: float, tn: float, nthreads: int) -> float:
    """``t1 / (n × tn)`` — 1.0 is ideal strong scaling."""
    if nthreads < 1:
        raise ValueError("need at least one thread")
    return speedup(t1, tn) / nthreads


def efficiency_series(times: dict[int, float]) -> dict[int, float]:
    """Parallel efficiency for a {nthreads: seconds} sweep.

    The single-thread entry is the baseline; it must be present.
    """
    if 1 not in times:
        raise ValueError("the sweep must include nthreads=1 as the baseline")
    t1 = times[1]
    return {n: parallel_efficiency(t1, t, n) for n, t in sorted(times.items())}
