"""CPU runtime model.

Predicts the wall-clock time of a transport run on a CPU node from the
measured workload and the machine description.  The structure mirrors the
paper's own analysis of what limits the application:

* per-history work splits into **compute cycles** ``C`` (event arithmetic,
  RNG, search probes — §VI-A's "limited number of FLOPS ... primarily on
  data in registers") and **stall cycles** ``S`` (the random density read,
  the atomic tally flush, search-probe misses);
* a core running ``k`` SMT threads completes their work in
  ``max(kC, kS/min(k, MLP), C+S)`` cycles — issue-bound, memory-concurrency
  bound (``MLP`` = the "small finite number of memory transactions per
  core", §VIII-A), or bound by one thread's serial chain;
* threads on a remote socket pay the NUMA latency multiplier on their
  misses (data is first-touched on socket 0); POWER8 threads beyond the
  first 5-core cluster pay the cluster-crossing penalty (§VI-B);
* the whole node is additionally capped by the random-access bandwidth of
  the socket holding the data, and — for the Over Events scheme — by the
  streaming bandwidth consumed re-reading the particle store every pass;
* the makespan inherits the load imbalance of the chosen OpenMP schedule,
  replayed exactly over the measured per-history work distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.config import Layout, Scheme, SearchStrategy
from repro.machine.spec import CPUSpec
from repro.parallel.affinity import Affinity, ThreadPlacement, place_threads
from repro.parallel.atomics import atomic_op_cost_cycles
from repro.parallel.schedule import ScheduleKind, simulate_parallel_for
from repro.perfmodel.costs import DEFAULT_CONSTANTS, ModelConstants
from repro.perfmodel.memory import random_access_latency_cycles, streaming_seconds
from repro.perfmodel.workload import Workload

__all__ = ["TallyMode", "CPUOptions", "CPUPrediction", "predict_cpu",
           "oe_vector_speedups"]

#: Bytes of one cache line (the unit of random traffic).
LINE_BYTES = 64.0


class TallyMode(Enum):
    """Tally implementations studied in §VI-F."""

    ATOMIC = "atomic"
    PRIVATIZED = "privatized"
    PRIVATIZED_MERGE_EVERY_STEP = "privatized_merge"


class DataPlacement(Enum):
    """Where the mesh data lives relative to the threads.

    ``FIRST_TOUCH`` is the paper's (implicit) setup: the master thread
    initialises the fields, so they sit on socket 0 and remote-socket
    threads pay the NUMA latency — the Fig 3 cliff.  ``INTERLEAVED`` is
    the page-striping alternative the paper mentions ("if you instead
    interleaved the threads on NUMA nodes, the scaling drops slower").
    ``DECOMPOSED`` models the §IX future-work MPI-rank-per-NUMA-domain
    decomposition: every access is local, at the price of migrating
    particles between ranks at subdomain crossings.
    """

    FIRST_TOUCH = "first_touch"
    INTERLEAVED = "interleaved"
    DECOMPOSED = "decomposed"


@dataclass(frozen=True)
class CPUOptions:
    """Experiment configuration for one CPU prediction.

    Defaults reproduce the paper's headline setup: Over Particles, AoS,
    atomic tally, cached-linear search, static schedule, compact affinity.
    """

    nthreads: int
    scheme: Scheme = Scheme.OVER_PARTICLES
    layout: Layout = Layout.AOS
    tally: TallyMode = TallyMode.ATOMIC
    search: SearchStrategy = SearchStrategy.CACHED_LINEAR
    affinity: Affinity = Affinity.COMPACT
    schedule: ScheduleKind = ScheduleKind.STATIC
    chunk: int = 16
    vectorized: bool = True
    use_fast_memory: bool = False
    exact_schedule_sim: bool = False
    placement_policy: DataPlacement = DataPlacement.FIRST_TOUCH


@dataclass(frozen=True)
class CPUPrediction:
    """Model output.

    Attributes
    ----------
    seconds:
        Predicted wall-clock time.
    breakdown:
        Per-thread cycle totals by component (compute, density, tally,
        search, streaming-equivalent, ...).
    tally_fraction:
        Share of per-thread time spent on tally flushes — the §VI-A
        profiling number (~50% OP, ~22% OE).
    achieved_bandwidth_gbs:
        Total bytes moved / seconds.
    grind_times_ns:
        Node-level wall-clock per event, by event type (the §VI-A 18 ns /
        3 ns numbers are node-level: runtime divided by event count).
    utilization:
        Core issue-slot utilisation of the binding thread group.
    imbalance_factor:
        Makespan / mean busy time of the schedule replay.
    placement:
        Where the threads landed.
    bound:
        Which term bound the runtime ("latency", "bandwidth", "compute").
    """

    seconds: float
    breakdown: dict
    tally_fraction: float
    achieved_bandwidth_gbs: float
    grind_times_ns: dict
    utilization: float
    imbalance_factor: float
    placement: ThreadPlacement
    bound: str


# ---------------------------------------------------------------------------
# Component costs
# ---------------------------------------------------------------------------

def _per_particle_cycles(
    w: Workload,
    spec: CPUSpec,
    opt: CPUOptions,
    k_per_core: float,
    remote_fraction: float,
    cluster: bool,
    con: ModelConstants,
) -> tuple[float, float, dict]:
    """Compute (C, S, breakdown) cycles per particle for one thread class."""
    numa_frac = remote_fraction
    shared_scale = (
        con.oe_shared_capacity_scale
        if opt.scheme is Scheme.OVER_EVENTS
        else con.op_shared_capacity_scale
    )
    if opt.tally is not TallyMode.ATOMIC:
        # Privatised copies inflate the cache footprint (§VI-F).
        threads_on_socket = min(
            opt.nthreads, spec.cores_per_socket * spec.smt_per_core
        )
        # Each thread mostly touches its own copy near its particles, so
        # the effective extra competition grows sub-linearly in threads.
        shared_scale = shared_scale * max(1.0, threads_on_socket / 8.0)

    mesh_bytes = w.mesh_bytes()

    # --- compute cycles ---------------------------------------------------
    # Both schemes honour the configured search strategy: the cached-bin
    # trick lives in the particle data either way (§VI-A).
    if opt.search is SearchStrategy.CACHED_LINEAR:
        probes_pp = w.lookups_pp * max(w.linear_probes_per_lookup, 2.0)
    else:
        probes_pp = w.lookups_pp * max(
            w.binary_probes_per_lookup, np.log2(max(w.xs_table_bytes / 32.0, 2.0))
        )

    alu = (
        w.collisions_pp * con.collision_alu_ops
        + w.facets_pp * con.facet_alu_ops
        + w.census_pp * con.census_alu_ops
        + w.lookups_pp * con.lookup_alu_ops
        + probes_pp * con.probe_alu_ops
    )
    if opt.scheme is Scheme.OVER_EVENTS:
        events_pp = w.collisions_pp + w.facets_pp + w.census_pp
        alu += events_pp * con.distance_alu_ops
        # Inactive-lane visits: flag checks for passes beyond the history.
        alu += max(w.oe_passes - events_pp, 0.0) * 2.0
    if opt.layout is Layout.SOA and opt.scheme is Scheme.OVER_PARTICLES:
        # Field-by-field addressing costs extra instructions on top of the
        # cache-line waste priced below (§VI-D).
        events_pp = w.collisions_pp + w.facets_pp + w.census_pp
        alu += events_pp * con.soa_fields_per_event
    issue = spec.issue_width
    if opt.scheme is Scheme.OVER_EVENTS and opt.vectorized:
        speedups = oe_vector_speedups(spec, con)
        alu = alu / speedups["overall"]
        # Vector pipelines issue at full rate even on cores whose scalar
        # branchy IPC is poor (KNL's VPUs vs its Silvermont front end).
        issue = max(issue, 2.0)

    compute = alu / issue

    # --- stall cycles -----------------------------------------------------
    common = dict(
        threads_per_core=max(1.0, k_per_core),
        numa_remote_fraction=numa_frac,
        cluster_penalty=cluster,
        use_fast_memory=opt.use_fast_memory,
        shared_capacity_scale=shared_scale,
    )
    density_lat = random_access_latency_cycles(
        spec,
        mesh_bytes,
        adjacent_fraction=con.density_adjacent_fraction,
        **common,
    )
    density = w.density_reads_pp * density_lat

    tally_line_lat = random_access_latency_cycles(
        spec,
        mesh_bytes,
        adjacent_fraction=con.density_adjacent_fraction,
        **common,
    )
    if opt.tally is TallyMode.ATOMIC:
        duty = (
            con.oe_batched_atomic_duty
            if opt.scheme is Scheme.OVER_EVENTS
            else con.op_atomic_duty
        )
        contenders = max(1, int(round(opt.nthreads * duty)))
        atomic = atomic_op_cost_cycles(
            spec.atomic_latency_cycles,
            w.conflict_probability,
            contenders,
        )
        tally = w.flushes_pp * (tally_line_lat + atomic)
    else:
        # Plain store into the thread-private copy: no RMW round trip, no
        # contention, and the store buffer hides most of the line-fill
        # latency (the thread does not wait for the RFO to complete).
        tally = w.flushes_pp * con.privatized_store_cost_fraction * tally_line_lat

    table_lat = random_access_latency_cycles(
        spec, w.xs_table_bytes, adjacent_fraction=0.0, **common
    )
    innermost = spec.caches[0].latency_cycles
    if opt.search is SearchStrategy.CACHED_LINEAR:
        # One random table touch to reach the cached bin's line; the walk
        # then scans *sequential* lines, which the prefetchers stream —
        # charge one innermost-latency touch per line (8 entries) scanned.
        search = w.lookups_pp * table_lat + (probes_pp / 8.0) * innermost
    else:
        # Every bisection probe is a dependent random access into the
        # (multi-megabyte) table.
        search = probes_pp * table_lat

    soa = 0.0
    if opt.layout is Layout.SOA and opt.scheme is Scheme.OVER_PARTICLES:
        events_pp = w.collisions_pp + w.facets_pp + w.census_pp
        second_lat = (
            spec.caches[1].latency_cycles if len(spec.caches) > 1 else innermost * 3
        )
        soa = events_pp * con.soa_fields_per_event * (second_lat - innermost)

    stall = density + tally + search + soa
    breakdown = {
        "compute": compute,
        "density": density,
        "tally": tally,
        "search": search,
        "soa_penalty": soa,
    }
    return compute, stall, breakdown


def _core_cycles(
    c: float, s: float, k: float, mlp: float, oversub_ratio: float,
    busy_fraction: float, con: ModelConstants,
) -> float:
    """Cycles for one core to complete k threads of (C, S) work each.

    ``max(kC, kS/min(k, MLP), C+S)`` plus the oversubscription effects:
    a switch-cost penalty proportional to the busy fraction and a small
    concurrency bonus for latency-bound threads (§VI-E).
    """
    k = max(k, 1.0)
    mlp_eff = mlp
    penalty = 1.0
    if oversub_ratio > 1.0:
        mlp_eff = mlp * (1.0 + con.oversubscription_mlp_bonus * (oversub_ratio - 1.0))
        penalty = 1.0 + con.oversubscription_switch_cost * (oversub_ratio - 1.0) * busy_fraction
    return penalty * max(k * c, k * s / min(k, mlp_eff), c + s)


# ---------------------------------------------------------------------------
# Vectorisation (Fig 8)
# ---------------------------------------------------------------------------

def oe_vector_speedups(spec: CPUSpec, con: ModelConstants = DEFAULT_CONSTANTS) -> dict:
    """Per-kernel SIMD speedups of the Over Events scheme.

    Each kernel's speedup is ``width × efficiency / (1 + gathers ×
    gather_penalty)``: gathers per vector element serialise on machines
    without hardware gather support (Fig 8: on Broadwell only the facet
    kernel gained; KNL gained everywhere).
    """
    width = spec.vector_width_f64
    eff = con.vector_efficiency
    pen = (
        con.gather_penalty_supported
        if spec.vector_gather_supported
        else con.gather_penalty_unsupported
    )
    gathers = {
        # cross-section table gathers: 2 lookups × (probe chain ≈ 2 lines)
        "collision": 4.0,
        # destination-density gather
        "facet": 1.0,
        # pure arithmetic on contiguous fields
        "distance": 0.0,
        "census": 0.0,
    }
    out = {}
    for kernel, g in gathers.items():
        out[kernel] = max(1.0, width * eff / (1.0 + g * pen))
    # Event-count-weighted blend used for the aggregate compute term; the
    # distance kernel dominates instruction counts.
    out["overall"] = max(
        1.0,
        0.5 * out["distance"] + 0.25 * out["facet"] + 0.25 * out["collision"],
    )
    return out


# ---------------------------------------------------------------------------
# Top-level prediction
# ---------------------------------------------------------------------------

def predict_cpu(
    workload: Workload,
    spec: CPUSpec,
    options: CPUOptions,
    constants: ModelConstants = DEFAULT_CONSTANTS,
) -> CPUPrediction:
    """Predict the wall-clock seconds of a run on a CPU node."""
    w = workload
    opt = options
    con = constants
    n = w.nparticles
    if opt.scheme is Scheme.OVER_EVENTS and opt.layout is Layout.AOS:
        raise ValueError("the Over Events scheme requires the SoA layout")

    placement = place_threads(
        opt.nthreads,
        spec.sockets,
        spec.cores_per_socket,
        spec.smt_per_core,
        opt.affinity,
    )
    mlp = con.mem_concurrency_for(spec.name)
    if opt.scheme is Scheme.OVER_EVENTS:
        mlp = mlp * con.oe_gather_mlp_boost
    oversub_ratio = max(
        1.0, opt.nthreads / (spec.total_cores * spec.smt_per_core)
    )

    # --- thread classes: (socket, beyond-first-cluster) -------------------
    # Data is first-touched on socket 0; remote threads pay NUMA latency.
    per_core = placement.per_core
    particles_per_thread = n / opt.nthreads

    class_times = []
    class_info = []
    for core, count in enumerate(per_core):
        if count == 0:
            continue
        socket = placement.socket_of_core(core)
        if opt.placement_policy is DataPlacement.FIRST_TOUCH:
            remote = 1.0 if socket != 0 else 0.0
        elif opt.placement_policy is DataPlacement.INTERLEAVED:
            remote = (placement.sockets_used - 1) / max(placement.sockets_used, 1)
        else:  # DECOMPOSED: each rank's data is local bar halo/migration
            remote = con.decomposed_remote_fraction
        cluster = (
            spec.cores_per_cluster > 0
            and (core % spec.cores_per_socket) >= spec.cores_per_cluster
        )
        key = (count, remote, cluster)
        if key in class_info:
            continue
        class_info.append(key)
        c_pp, s_pp, breakdown = _per_particle_cycles(
            w, spec, opt, float(count), remote, cluster, con
        )
        c = c_pp * particles_per_thread
        s = s_pp * particles_per_thread
        busy_frac = c / max(c + s, 1e-300)
        cyc = _core_cycles(c, s, float(count), mlp, oversub_ratio, busy_frac, con)
        class_times.append((cyc, c, s, breakdown, busy_frac))

    cyc_max, c_ref, s_ref, breakdown, busy_frac = max(
        class_times, key=lambda t: t[0]
    )
    latency_seconds = cyc_max / (spec.clock_ghz * 1.0e9)

    # --- schedule imbalance ------------------------------------------------
    if opt.exact_schedule_sim:
        work = w.work_distribution(n)
        outcome = simulate_parallel_for(work, opt.nthreads, opt.schedule, opt.chunk)
        mean_busy = outcome.thread_busy.mean()
        imbalance = outcome.makespan / mean_busy if mean_busy > 0 else 1.0
        dispatch_s = (
            outcome.chunks_dispatched
            * con.dispatch_cycles
            / opt.nthreads
            / (spec.clock_ghz * 1.0e9)
        )
    else:
        # Analytic static-schedule imbalance: thread sums of m items
        # concentrate as 1/sqrt(m); the expected maximum of T near-Gaussian
        # sums sits sqrt(2 ln T) sigmas above the mean.
        m = max(particles_per_thread, 1.0)
        if opt.schedule is ScheduleKind.STATIC:
            imbalance = 1.0 + w.work_cv * np.sqrt(2.0 * np.log(max(opt.nthreads, 2)) / m)
            dispatch_s = 0.0
        else:
            chunks = n / max(opt.chunk, 1)
            imbalance = 1.0 + opt.chunk * (1.0 + w.work_cv) / (2.0 * m)
            dispatch_s = chunks * con.dispatch_cycles / opt.nthreads / (
                spec.clock_ghz * 1.0e9
            )
    latency_seconds = latency_seconds * imbalance + dispatch_s

    # --- bandwidth caps ----------------------------------------------------
    # Random traffic (cache-line sized): non-adjacent density reads and
    # tally flushes (flushes are read-modify-write: two line transfers).
    # Only the cache-missing share reaches the memory controllers — at
    # paper scale essentially all of it, at reduced validation scales
    # almost none (the mesh is cache-resident).
    from repro.perfmodel.memory import memory_miss_fraction

    miss_frac = memory_miss_fraction(
        spec,
        w.mesh_bytes(),
        threads_per_core=max(1.0, placement.threads_per_core),
        shared_capacity_scale=(
            con.oe_shared_capacity_scale
            if opt.scheme is Scheme.OVER_EVENTS
            else con.op_shared_capacity_scale
        ),
    )
    random_lines = miss_frac * n * (
        w.density_reads_pp * (1.0 - con.density_adjacent_fraction)
        + w.flushes_pp * 2.0 * (1.0 - con.density_adjacent_fraction)
    )
    region = (
        spec.fast_memory
        if (opt.use_fast_memory and spec.fast_memory)
        else spec.dram
    )
    # First-touch pins the data to socket 0's controllers; interleaving or
    # decomposing spreads the traffic over every populated socket's.
    if opt.placement_policy is DataPlacement.FIRST_TOUCH:
        socket_bw = region.bandwidth_gbs / spec.sockets
    else:
        socket_bw = (
            region.bandwidth_gbs / spec.sockets * placement.sockets_used
        )
    random_bytes = random_lines * LINE_BYTES
    random_bw_seconds = streaming_seconds(
        random_bytes, socket_bw * region.random_bw_fraction
    )

    stream_bytes = 0.0
    stream_seconds = 0.0
    if opt.scheme is Scheme.OVER_EVENTS:
        events = n * (w.collisions_pp + w.facets_pp + w.census_pp)
        stream_bytes = (
            events * con.oe_bytes_per_event
            + w.oe_passes * n * con.oe_flag_bytes_per_visit
        )
        stream_seconds = streaming_seconds(
            stream_bytes, socket_bw * con.cpu_stream_efficiency
        )
    else:
        stream_bytes = n * 136.0 * 2.0  # read + write back each history
        stream_seconds = streaming_seconds(stream_bytes, socket_bw)

    # --- tally privatisation merge (§VI-F) ----------------------------------
    # A host code needs the merged tally each timestep.  The compress is a
    # master-thread reduction over every private copy (the natural, naive
    # implementation) plus re-zeroing the copies, so it runs at a single
    # thread's streaming rate — which is what makes it "significantly
    # slower than when using atomic operations" in the paper.
    merge_seconds = 0.0
    if opt.tally is TallyMode.PRIVATIZED_MERGE_EVERY_STEP:
        merge_bytes = opt.nthreads * w.mesh_bytes() * 2.0
        merge_seconds = streaming_seconds(
            merge_bytes, con.single_thread_stream_gbs
        )

    # --- §IX decomposition: particle migration between ranks ---------------
    migration_seconds = 0.0
    if (
        opt.placement_policy is DataPlacement.DECOMPOSED
        and placement.sockets_used > 1
    ):
        ranks = placement.sockets_used
        # An x-decomposition into `ranks` slabs has ranks−1 internal
        # planes; a particle crosses one per mesh-width traversal.
        migrations = n * w.facets_pp * (ranks - 1) / max(w.mesh_nx, 1)
        migration_seconds = (
            migrations * con.migration_cost_us * 1e-6 / ranks
        )

    if opt.scheme is Scheme.OVER_EVENTS:
        # The barriered kernel chain serialises the latency-bound gather
        # kernels against the streaming passes over the particle store.
        gather_seconds = max(latency_seconds, random_bw_seconds)
        seconds = gather_seconds + stream_seconds + merge_seconds + migration_seconds
        bound = (
            "streaming"
            if stream_seconds > gather_seconds
            else ("latency" if latency_seconds >= random_bw_seconds else "bandwidth")
        )
    else:
        bw_seconds = random_bw_seconds + stream_seconds
        seconds = max(latency_seconds, bw_seconds) + merge_seconds + migration_seconds
        bound = "latency" if latency_seconds >= bw_seconds else "bandwidth"
        if c_ref >= s_ref and bound == "latency":
            bound = "compute"

    # Streaming appears in the breakdown in per-thread cycle equivalents so
    # shares (e.g. the tally fraction) account for it.  The separate tally
    # loop owns its slice of the streamed bytes (it re-reads the deposit
    # buffers and cell indices), so that slice is attributed to "tally" —
    # this is what keeps the OE tally share near the paper's 22%.
    breakdown = dict(breakdown)
    if opt.scheme is Scheme.OVER_EVENTS:
        stream_equiv = (
            stream_seconds * spec.clock_ghz * 1.0e9 * sum(breakdown.values())
            / max(cyc_max, 1e-300)
        )
        tally_slice = stream_equiv * con.oe_tally_kernel_byte_share
        breakdown["tally"] = breakdown["tally"] + tally_slice
        breakdown["streaming"] = stream_equiv - tally_slice
    else:
        breakdown["streaming"] = 0.0

    total_bytes = random_bytes + stream_bytes
    # Grind time per event type (§VI-A's node-level ns/event): apportion
    # wall-clock by each type's share of per-thread cycles — collision-ish
    # work (compute + search) vs facet-ish work (density + tally) — then
    # divide by the type's event count.
    grind = {"collision": 0.0, "facet": 0.0}
    c_share = breakdown["compute"] + breakdown["search"]
    f_share = breakdown["density"] + breakdown["tally"] + breakdown["soa_penalty"]
    total_share = max(c_share + f_share, 1e-300)
    if w.collisions_pp > 0:
        grind["collision"] = (
            seconds * (c_share / total_share) / (w.collisions_pp * n) * 1e9
        )
    if w.facets_pp > 0:
        grind["facet"] = seconds * (f_share / total_share) / (w.facets_pp * n) * 1e9

    return CPUPrediction(
        seconds=seconds,
        breakdown=breakdown,
        tally_fraction=breakdown["tally"]
        / max(sum(breakdown.values()), 1e-300),
        achieved_bandwidth_gbs=total_bytes / seconds / 1.0e9,
        grind_times_ns=grind,
        utilization=busy_frac,
        imbalance_factor=imbalance,
        placement=placement,
        bound=bound,
    )
