"""Memory-hierarchy latency and bandwidth model.

The algorithm's defining access is a *random* load (density read) or
read-modify-write (tally flush) over a working set far larger than any
cache at paper scale (a 4000² float64 field is 128 MB).  Expected access
latency follows the standard hierarchical model: the probability of hitting
a level is the fraction of the working set that fits there, evaluated
innermost-first; misses in all levels pay the memory latency (DRAM, MCDRAM
or GDDR/HBM), possibly scaled by a NUMA or cluster penalty.

Capacity accounting under threading:

* private levels (L1/L2) are divided among the SMT threads of a core;
* shared levels (L3) are divided among the active threads of the socket;
* a privatised tally multiplies the *working set* per thread's tally
  accesses stay the same, but it evicts everyone else — modelled by
  scaling the shared-level capacity by the total-footprint inflation
  (§VI-F's "increased memory footprint caused negative cache effects").
"""

from __future__ import annotations

from repro.machine.spec import CPUSpec

__all__ = [
    "effective_cache_levels",
    "random_access_latency_cycles",
    "streaming_seconds",
]


def effective_cache_levels(
    spec: CPUSpec,
    threads_per_core: float,
    threads_per_socket: float,
    shared_capacity_scale: float = 1.0,
) -> list[tuple[float, float]]:
    """Per-thread effective (capacity, latency) of each cache level.

    Parameters
    ----------
    spec:
        The CPU description.
    threads_per_core:
        Software threads sharing each core's private caches.
    threads_per_socket:
        Software threads sharing each socket's shared cache.
    shared_capacity_scale:
        Extra divisor on shared capacity (>1 models footprint inflation,
        e.g. privatised tallies).
    """
    if threads_per_core < 1 or threads_per_socket < 1:
        raise ValueError("thread counts must be >= 1")
    levels = []
    for level in spec.caches:
        if level.shared:
            cap = level.size_bytes / threads_per_socket / shared_capacity_scale
        else:
            cap = level.size_bytes / threads_per_core
        levels.append((cap, level.latency_cycles))
    return levels


def random_access_latency_cycles(
    spec: CPUSpec,
    working_set_bytes: float,
    threads_per_core: float = 1.0,
    threads_per_socket: float = 1.0,
    adjacent_fraction: float = 0.0,
    numa_remote_fraction: float = 0.0,
    cluster_penalty: bool = False,
    use_fast_memory: bool = False,
    shared_capacity_scale: float = 1.0,
) -> float:
    """Expected cycles for one random access over ``working_set_bytes``.

    ``adjacent_fraction`` of accesses hit the innermost cache regardless of
    the working set (spatial locality: x-facing facet crossings touch the
    line already loaded).  ``numa_remote_fraction`` of memory-level misses
    pay the remote-socket multiplier.  ``cluster_penalty`` adds the on-chip
    cluster-crossing cost to shared-cache hits (POWER8, §VI-B).
    """
    if working_set_bytes <= 0:
        raise ValueError("working set must be positive")
    if not 0.0 <= adjacent_fraction <= 1.0:
        raise ValueError("adjacent_fraction must be in [0, 1]")
    if not 0.0 <= numa_remote_fraction <= 1.0:
        raise ValueError("numa_remote_fraction must be in [0, 1]")

    levels = effective_cache_levels(
        spec, threads_per_core, threads_per_socket, shared_capacity_scale
    )
    mem_cycles = spec.memory_latency_cycles(use_fast_memory)
    mem_cycles = mem_cycles * (
        1.0 + numa_remote_fraction * (spec.numa_latency_multiplier - 1.0)
    )
    if cluster_penalty:
        # Crossing the on-chip cluster interconnect adds a hop to shared
        # cache *and* memory accesses (POWER8's two 5-core chiplets,
        # §VI-B).
        mem_cycles = mem_cycles + spec.cluster_latency_penalty_cycles

    expected = 0.0
    p_miss_so_far = 1.0
    for i, (cap, lat) in enumerate(levels):
        p_hit = min(1.0, cap / working_set_bytes)
        if cluster_penalty and i == len(levels) - 1 and spec.caches[i].shared:
            lat = lat + spec.cluster_latency_penalty_cycles
        expected += p_miss_so_far * p_hit * lat
        p_miss_so_far *= 1.0 - p_hit
    expected += p_miss_so_far * mem_cycles

    innermost_lat = levels[0][1] if levels else mem_cycles
    return adjacent_fraction * innermost_lat + (1.0 - adjacent_fraction) * expected


def memory_miss_fraction(
    spec: CPUSpec,
    working_set_bytes: float,
    threads_per_core: float = 1.0,
    shared_capacity_scale: float = 1.0,
) -> float:
    """Fraction of random accesses that reach main memory.

    The node-level random-bandwidth cap only applies to the traffic that
    actually leaves the caches; at paper scale (128 MB fields) this is
    nearly 1, while reduced-scale validation meshes are largely
    cache-resident.
    """
    if working_set_bytes <= 0:
        raise ValueError("working set must be positive")
    p_miss = 1.0
    for cap, _lat in effective_cache_levels(
        spec, threads_per_core, 1.0, shared_capacity_scale
    ):
        p_miss *= 1.0 - min(1.0, cap / working_set_bytes)
    return p_miss


def streaming_seconds(bytes_moved: float, bandwidth_gbs: float) -> float:
    """Time to stream ``bytes_moved`` at ``bandwidth_gbs`` (GB/s)."""
    if bandwidth_gbs <= 0:
        raise ValueError("bandwidth must be positive")
    return bytes_moved / (bandwidth_gbs * 1.0e9)
