"""Recalibrate the machine-model event costs from measured kernel timings.

The analytic models in :mod:`repro.perfmodel` charge each event type a
fixed ALU-operation budget (:class:`~repro.perfmodel.costs.ModelConstants`:
``collision_alu_ops``, ``facet_alu_ops``, …).  Those budgets were
estimated by reading the kernels; the benchmark registry now *measures*
the kernels, so the loop can be closed: fit the per-operation cost that
best explains the measured per-kernel wall-clocks, report how far each
kernel sits from the model's relative cost structure, and emit a
refitted :class:`ModelConstants` whose ratios match the measurement.

This is the glowing-octo-tyiron workflow ("compare actual behavior of a
customer system with the expected"): the fit residuals say where the
model's cost structure disagrees with the host, and the refitted
constants feed the same prediction pipeline for capacity planning.

The fit is a one-parameter least squares.  With measured kernel rows
``(calls, items, seconds)`` and model budgets ``ops_k``, minimise

    sum_k (f · items_k · ops_k − seconds_k)²   over f

giving ``f = Σ w_k s_k / Σ w_k²`` with ``w_k = items_k · ops_k`` — the
host's effective seconds-per-modelled-op.  Per-kernel relative error of
``f · w_k`` against ``seconds_k`` is the model-vs-measured report.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.perfmodel.costs import DEFAULT_CONSTANTS, ModelConstants

__all__ = [
    "KERNEL_COST_FIELDS",
    "KernelFit",
    "CalibrationReport",
    "recalibrate_constants",
    "recalibrate_from_artifact",
]

#: Measured kernel name → the ModelConstants field charging that work.
#: ``select_events`` has no dedicated constant (its compare/select work
#: is folded into the census bookkeeping budget).
KERNEL_COST_FIELDS = {
    "collide": "collision_alu_ops",
    "cross_facet": "facet_alu_ops",
    "census": "census_alu_ops",
    "xs_lookup": "lookup_alu_ops",
    "distances": "distance_alu_ops",
}


@dataclass(frozen=True)
class KernelFit:
    """One kernel's measured-vs-modelled cost."""

    kernel: str
    field: str
    items: int
    measured_s: float
    predicted_s: float
    #: (predicted − measured) / measured.
    rel_error: float
    #: Measured seconds per item × fitted op rate = implied op budget.
    refit_ops: float


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of one recalibration pass.

    ``constants`` is a :class:`ModelConstants` whose per-event budgets
    are replaced by the measured implied budgets, so feeding it back
    into ``predict_cpu``/``predict_gpu`` prices events in the measured
    ratio.  ``seconds_per_op`` is the host's fitted cost of one
    modelled ALU operation (Python-interpreted kernels sit orders of
    magnitude above a native pipeline; the *ratios* are the signal).
    """

    seconds_per_op: float
    fits: tuple
    constants: ModelConstants
    skipped: tuple = ()

    @property
    def mean_abs_rel_error(self) -> float:
        if not self.fits:
            return 0.0
        return sum(abs(f.rel_error) for f in self.fits) / len(self.fits)

    @property
    def max_abs_rel_error(self) -> float:
        return max((abs(f.rel_error) for f in self.fits), default=0.0)

    def format(self) -> str:
        from repro.bench.reporting import format_table

        rows = [
            [f.kernel, f.field, f.items, f.measured_s, f.predicted_s,
             f"{f.rel_error:+.1%}", f.refit_ops]
            for f in self.fits
        ]
        table = format_table(
            ["kernel", "constant", "items", "measured (s)",
             "model (s)", "error", "refit ops"],
            rows, float_fmt="{:.4g}",
        )
        lines = [
            table,
            "",
            f"fitted cost: {self.seconds_per_op:.3e} s/op; "
            f"model-vs-measured error: "
            f"mean {self.mean_abs_rel_error:.1%}, "
            f"max {self.max_abs_rel_error:.1%}",
        ]
        if self.skipped:
            lines.append(
                "unmapped kernels (no model constant): "
                + ", ".join(self.skipped)
            )
        return "\n".join(lines) + "\n"


def recalibrate_constants(
    kernel_profile: dict,
    constants: ModelConstants = DEFAULT_CONSTANTS,
) -> CalibrationReport:
    """Fit the model's event costs to a measured kernel profile.

    ``kernel_profile`` is the dispatch-table shape: name → ``(calls,
    items, seconds)``.  Kernels without a mapped constant are reported
    as skipped; kernels with zero items or zero measured time are
    excluded from the fit (nothing to learn from them).
    """
    weights: list[tuple[str, str, float, float, float]] = []
    skipped: list[str] = []
    for name, row in sorted(kernel_profile.items()):
        calls, items, seconds = int(row[0]), int(row[1]), float(row[2])
        field = KERNEL_COST_FIELDS.get(name)
        if field is None:
            skipped.append(name)
            continue
        if items <= 0 or seconds <= 0.0:
            continue
        ops = float(getattr(constants, field))
        weights.append((name, field, float(items), ops, seconds))

    if not weights:
        raise ValueError(
            "kernel profile has no mapped, non-empty kernels to fit "
            f"(mapped names: {sorted(KERNEL_COST_FIELDS)})"
        )

    num = sum(items * ops * seconds for _, _, items, ops, seconds in weights)
    den = sum((items * ops) ** 2 for _, _, items, ops, _ in weights)
    seconds_per_op = num / den

    fits = []
    refit_fields: dict[str, float] = {}
    for name, field, items, ops, seconds in weights:
        predicted = seconds_per_op * items * ops
        refit_ops = seconds / (items * seconds_per_op)
        refit_fields[field] = refit_ops
        fits.append(KernelFit(
            kernel=name, field=field, items=int(items),
            measured_s=seconds, predicted_s=predicted,
            rel_error=(predicted - seconds) / seconds,
            refit_ops=refit_ops,
        ))

    return CalibrationReport(
        seconds_per_op=seconds_per_op,
        fits=tuple(fits),
        constants=replace(constants, **refit_fields),
        skipped=tuple(skipped),
    )


def recalibrate_from_artifact(
    artifact, bench: str | None = None,
    constants: ModelConstants = DEFAULT_CONSTANTS,
) -> CalibrationReport:
    """Recalibrate from a :class:`~repro.bench.artifact.BenchArtifact`.

    Uses ``bench``'s kernel profile, or the first bench carrying one
    when not named — ``repro bench recalibrate BENCH_1.json`` is the CLI
    face of this hook.
    """
    candidates = (
        [bench] if bench is not None else artifact.bench_names()
    )
    for name in candidates:
        section = artifact.benches.get(name)
        if section is None:
            raise KeyError(f"artifact has no bench {name!r}")
        profile = section.get("kernel_profile")
        if profile:
            return recalibrate_constants(profile, constants)
    raise ValueError(
        "artifact carries no kernel profile to recalibrate from"
    )
