"""Roofline analysis helpers.

The paper's central observation — "neutral is not bound by memory
bandwidth or the available FLOPS" (§VI-B) — is a roofline statement: the
application sits *under* both roofs, limited by latency instead.  This
module provides the arithmetic to place any measured workload on a
device's roofline and to classify which roof (if any) binds.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.machine.spec import CPUSpec, GPUSpec
from repro.perfmodel.costs import DEFAULT_CONSTANTS, ModelConstants
from repro.perfmodel.workload import Workload

__all__ = [
    "RooflineBound",
    "RooflinePoint",
    "peak_flops",
    "arithmetic_intensity",
    "roofline_time",
    "classify_workload",
]

LINE_BYTES = 64.0


class RooflineBound(Enum):
    """Which roof a kernel touches."""

    COMPUTE = "compute"
    BANDWIDTH = "bandwidth"
    LATENCY = "latency"  # under both roofs — the paper's diagnosis


@dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on one device's roofline.

    Attributes
    ----------
    intensity_flops_per_byte:
        Arithmetic intensity of the workload.
    achieved_flops:
        FLOP rate implied by the predicted runtime.
    peak_flops / peak_bandwidth_flops:
        The two roofs at this intensity.
    bound:
        The binding regime.
    """

    intensity_flops_per_byte: float
    achieved_flops: float
    peak_flops: float
    peak_bandwidth_flops: float
    bound: RooflineBound

    @property
    def fraction_of_roof(self) -> float:
        """Achieved rate over the lower roof (≤1 by construction for model
        outputs; ≪1 signals latency boundedness)."""
        roof = min(self.peak_flops, self.peak_bandwidth_flops)
        return self.achieved_flops / roof if roof > 0 else 0.0


def peak_flops(spec) -> float:
    """Peak double-precision FLOP/s of a device description."""
    if isinstance(spec, CPUSpec):
        return (
            spec.total_cores
            * spec.clock_ghz
            * 1.0e9
            * spec.issue_width
            * spec.vector_width_f64
        )
    if isinstance(spec, GPUSpec):
        # warp-wide FMA throughput as a summary peak
        return (
            spec.sms
            * spec.warp_size
            * spec.issue_width
            * spec.clock_ghz
            * 1.0e9
        )
    raise TypeError(f"not a machine spec: {spec!r}")


def _workload_flops(w: Workload, con: ModelConstants) -> float:
    """Total floating/ALU operations of a run (model accounting)."""
    return w.nparticles * (
        w.collisions_pp * con.collision_alu_ops
        + w.facets_pp * con.facet_alu_ops
        + w.census_pp * con.census_alu_ops
        + w.lookups_pp * con.lookup_alu_ops
    )


def _workload_bytes(w: Workload, con: ModelConstants) -> float:
    """Main-memory bytes of the Over Particles traversal (line-granular
    random traffic)."""
    lines = w.nparticles * (
        w.density_reads_pp * (1.0 - con.density_adjacent_fraction)
        + w.flushes_pp * 2.0 * (1.0 - con.density_adjacent_fraction)
    )
    return lines * LINE_BYTES


def arithmetic_intensity(
    w: Workload, constants: ModelConstants = DEFAULT_CONSTANTS
) -> float:
    """FLOPs per main-memory byte of the workload."""
    b = _workload_bytes(w, constants)
    if b <= 0:
        return float("inf")
    return _workload_flops(w, constants) / b


def roofline_time(
    w: Workload, spec, constants: ModelConstants = DEFAULT_CONSTANTS
) -> float:
    """The *roofline* lower bound on runtime — what a latency-free machine
    would need.  The gap between this and the full model's prediction is
    the latency-bound signature."""
    flops = _workload_flops(w, constants)
    bytes_ = _workload_bytes(w, constants)
    bw = (
        spec.dram.bandwidth_gbs if isinstance(spec, CPUSpec) else spec.memory.bandwidth_gbs
    ) * 1.0e9
    return max(flops / peak_flops(spec), bytes_ / bw)


def classify_workload(
    w: Workload,
    spec,
    predicted_seconds: float,
    constants: ModelConstants = DEFAULT_CONSTANTS,
) -> RooflinePoint:
    """Place a workload/prediction pair on the device roofline.

    A prediction within 1.5× of a roof is attributed to that roof;
    anything slower is latency-bound — the paper's regime.
    """
    if predicted_seconds <= 0:
        raise ValueError("predicted time must be positive")
    flops = _workload_flops(w, constants)
    bytes_ = _workload_bytes(w, constants)
    intensity = arithmetic_intensity(w, constants)
    pf = peak_flops(spec)
    bw = (
        spec.dram.bandwidth_gbs if isinstance(spec, CPUSpec) else spec.memory.bandwidth_gbs
    ) * 1.0e9
    bw_roof_flops = bw * intensity
    achieved = flops / predicted_seconds

    compute_time = flops / pf
    bandwidth_time = bytes_ / bw
    if predicted_seconds <= 1.5 * compute_time:
        bound = RooflineBound.COMPUTE
    elif predicted_seconds <= 1.5 * bandwidth_time:
        bound = RooflineBound.BANDWIDTH
    else:
        bound = RooflineBound.LATENCY
    return RooflinePoint(
        intensity_flops_per_byte=intensity,
        achieved_flops=achieved,
        peak_flops=pf,
        peak_bandwidth_flops=bw_roof_flops,
        bound=bound,
    )
