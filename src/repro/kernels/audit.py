"""Self-audit: no duplicate ``*_vec`` physics implementations outside here.

``python -m repro.kernels --check`` scans ``repro/physics``, ``repro/xs``
and ``repro/rng`` for function definitions (module- or class-level) whose
name ends in ``_vec``.  Those used to be the hand-maintained vectorised
twins of the scalar physics; they are now deprecated aliases of the batch
kernels in this package.  The audit fails CI if a real implementation
creeps back.

Permitted:

* plain name aliases (``collide_vec = kernels.collide`` — no ``def``);
* thin delegating wrappers whose body is a single ``return <call>`` (plus
  an optional docstring) — public-API shims that cannot drift;
* an explicit allowlist for genuine batch primitives that predate the
  kernel layer and live with their scalar reference for cipher-level
  test symmetry (``threefry2x64_vec``).

A second audit guards the storage layer: the hot driver packages
(``repro/core``, ``repro/parallel``, ``repro/volume``) must not construct
AoS particle records — ``Particle(...)``/``Particle3(...)`` calls are
rejected so the population stays in the SoA
:class:`~repro.particles.arena.ParticleArena` (secondaries are banked as
:class:`~repro.particles.arena.ParticleRecord` tuples instead).
"""

from __future__ import annotations

import ast
from pathlib import Path

__all__ = [
    "audit_vec_definitions",
    "audit_particle_construction",
    "audit_census_loops",
    "audit_xs_table_access",
    "AUDITED_PACKAGES",
    "ALLOWED_VEC_DEFS",
    "ARENA_AUDITED_PACKAGES",
    "FORBIDDEN_PARTICLE_CTORS",
    "ALLOWED_PARTICLE_CTORS",
    "CENSUS_AUDITED_PACKAGES",
    "CENSUS_LOOP_HOME",
    "XS_SEAM_HOME",
    "FORBIDDEN_XS_NAMES",
    "XS_TABLE_ATTRS",
    "ALLOWED_XS_TABLE_FILES",
]

#: Packages that must not define ``*_vec`` implementations.
AUDITED_PACKAGES = ("physics", "xs", "rng")

#: (relative path, function name) pairs exempt from the wrapper rule.
ALLOWED_VEC_DEFS = {
    ("rng/threefry.py", "threefry2x64_vec"),
}

#: Packages whose hot paths must not construct AoS particle records.
ARENA_AUDITED_PACKAGES = ("core", "parallel", "volume")

#: Callable names that count as AoS particle construction.
FORBIDDEN_PARTICLE_CTORS = ("Particle", "Particle3")

#: (relative path, line) pairs exempt from the construction rule — empty:
#: the refactor removed every hot-path constructor call, and this audit
#: keeps it that way.
ALLOWED_PARTICLE_CTORS: set[tuple[str, int]] = set()

#: Packages whose drivers must route their census loops through the
#: unified stepper instead of re-implementing ``for step in range(...)``.
CENSUS_AUDITED_PACKAGES = ("core", "volume", "ensemble")

#: The one module allowed to iterate over timesteps.
CENSUS_LOOP_HOME = "core/stepper.py"

#: The package that owns cross-section data representations.  Everything
#: outside it must consume cross sections through the
#: :class:`~repro.xs.provider.XsProvider` protocol.
XS_SEAM_HOME = "xs"

#: Multigroup data-model names no module outside ``repro/xs`` may
#: reference: the table class and its factory functions.
FORBIDDEN_XS_NAMES = (
    "CrossSectionTable",
    "make_scatter_table",
    "make_capture_table",
    "make_fission_table",
)

#: Raw per-reaction table attributes (``material.scatter`` et al.) that
#: constitute direct data-model access when read outside ``repro/xs``.
XS_TABLE_ATTRS = ("scatter", "capture", "fission")

#: Files exempt from the cross-section seam audit:
#: ``kernels/xs.py`` *is* the lookup kernel (it interpolates the raw
#: arrays by design); ``particles/source.py`` keeps deprecated
#: ``scatter_table``/``capture_table`` kwargs (type annotations only)
#: as the AoS parity-oracle surface.
ALLOWED_XS_TABLE_FILES = frozenset({
    "kernels/xs.py",
    "particles/source.py",
})


def _is_thin_wrapper(node: ast.FunctionDef) -> bool:
    """True when the body is (docstring +) a single ``return <call>``."""
    body = list(node.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ) and isinstance(body[0].value.value, str):
        body = body[1:]
    return (
        len(body) == 1
        and isinstance(body[0], ast.Return)
        and isinstance(body[0].value, ast.Call)
    )


def _vec_defs(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.endswith("_vec"):
                yield node


def audit_vec_definitions(package_root: str | Path | None = None) -> list[str]:
    """Return violation messages (empty list means the audit passes)."""
    if package_root is None:
        package_root = Path(__file__).resolve().parent.parent
    package_root = Path(package_root)
    violations: list[str] = []
    for pkg in AUDITED_PACKAGES:
        for path in sorted((package_root / pkg).rglob("*.py")):
            rel = path.relative_to(package_root).as_posix()
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in _vec_defs(tree):
                if (rel, node.name) in ALLOWED_VEC_DEFS:
                    continue
                if _is_thin_wrapper(node):
                    continue
                violations.append(
                    f"{rel}:{node.lineno}: def {node.name} — vectorised "
                    "physics must live in repro/kernels (alias or thin "
                    "wrapper only)"
                )
    return violations


def _call_name(node: ast.Call) -> str | None:
    """The bare callable name of ``f(...)`` or ``mod.f(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def audit_particle_construction(
    package_root: str | Path | None = None,
) -> list[str]:
    """Reject AoS particle construction in the hot driver packages.

    Scans :data:`ARENA_AUDITED_PACKAGES` for calls to any name in
    :data:`FORBIDDEN_PARTICLE_CTORS`; returns violation messages (empty
    list means the audit passes).  New population entries must be banked
    as ``ParticleRecord`` tuples and appended to the arena.
    """
    if package_root is None:
        package_root = Path(__file__).resolve().parent.parent
    package_root = Path(package_root)
    violations: list[str] = []
    for pkg in ARENA_AUDITED_PACKAGES:
        for path in sorted((package_root / pkg).rglob("*.py")):
            rel = path.relative_to(package_root).as_posix()
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                if name not in FORBIDDEN_PARTICLE_CTORS:
                    continue
                if (rel, node.lineno) in ALLOWED_PARTICLE_CTORS:
                    continue
                violations.append(
                    f"{rel}:{node.lineno}: {name}(...) — hot paths must "
                    "not build AoS particle records; bank a "
                    "ParticleRecord and append it to the arena"
                )
    return violations


def _iterates_timesteps(node: ast.For) -> bool:
    """True for ``for ... in range(... <x>.ntimesteps ...)`` loops."""
    it = node.iter
    if not (isinstance(it, ast.Call) and _call_name(it) == "range"):
        return False
    for arg in it.args:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Attribute) and sub.attr == "ntimesteps":
                return True
    return False


def audit_xs_table_access(package_root: str | Path | None = None) -> list[str]:
    """Reject direct multigroup data-model access outside ``repro/xs``.

    The provider refactor made :class:`~repro.xs.provider.XsProvider` the
    single seam between cross-section data and the transport loop; this
    audit keeps consumers honest.  Every module outside ``repro/xs``
    (except :data:`ALLOWED_XS_TABLE_FILES`) is scanned for

    * references to :data:`FORBIDDEN_XS_NAMES` (imports included), and
    * attribute *reads* of the raw per-reaction tables
      (:data:`XS_TABLE_ATTRS`, e.g. ``material.scatter``).

    Returns violation messages; an empty list means the audit passes.
    """
    if package_root is None:
        package_root = Path(__file__).resolve().parent.parent
    package_root = Path(package_root)
    violations: list[str] = []
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root).as_posix()
        if rel.startswith(f"{XS_SEAM_HOME}/") or rel in ALLOWED_XS_TABLE_FILES:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                names = [a.name for a in node.names]
                hits = [n for n in names if n in FORBIDDEN_XS_NAMES]
                if (node.module or "").startswith("repro.xs.tables") or hits:
                    what = ", ".join(hits) or node.module
                    violations.append(
                        f"{rel}:{node.lineno}: import of {what} — consume "
                        "cross sections through repro.xs.provider.XsProvider"
                    )
            elif isinstance(node, ast.Name) and node.id in FORBIDDEN_XS_NAMES:
                violations.append(
                    f"{rel}:{node.lineno}: reference to {node.id} — consume "
                    "cross sections through repro.xs.provider.XsProvider"
                )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr in XS_TABLE_ATTRS
                and isinstance(node.ctx, ast.Load)
            ):
                violations.append(
                    f"{rel}:{node.lineno}: raw table access "
                    f".{node.attr} — consume cross sections through "
                    "repro.xs.provider.XsProvider"
                )
    return violations


def audit_census_loops(package_root: str | Path | None = None) -> list[str]:
    """Reject census-loop reimplementations outside the unified stepper.

    The multi-scheme refactor concentrated the ``for step in
    range(config.ntimesteps)`` loop — with its source emission, census
    bookkeeping and tally-flush obligations — in
    :data:`CENSUS_LOOP_HOME` (``drive_census_loop``).  This audit scans
    :data:`CENSUS_AUDITED_PACKAGES` for ``For`` loops iterating
    ``range(... .ntimesteps ...)`` anywhere else; drivers must hand
    ``begin_step``/``run_step`` callbacks to the stepper instead, so
    scheme switching and step telemetry keep working everywhere.
    """
    if package_root is None:
        package_root = Path(__file__).resolve().parent.parent
    package_root = Path(package_root)
    violations: list[str] = []
    for pkg in CENSUS_AUDITED_PACKAGES:
        for path in sorted((package_root / pkg).rglob("*.py")):
            rel = path.relative_to(package_root).as_posix()
            if rel == CENSUS_LOOP_HOME:
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.For) and _iterates_timesteps(node):
                    violations.append(
                        f"{rel}:{node.lineno}: census loop over "
                        "ntimesteps — drivers must route through "
                        "drive_census_loop in repro/core/stepper.py"
                    )
    return violations
