"""Reusable preallocated buffers for the breadth-first pass loop.

The Over Events driver runs hundreds of passes per timestep; before the
kernel layer each pass allocated a dozen fresh full-length temporaries
(speed, distance budgets, cell bounds, event codes, masks).  A
:class:`Workspace` keeps one named buffer per temporary and hands out
length-``n`` views, growing geometrically when the population grows
(fission secondaries, importance clones), so steady-state passes perform
zero full-length allocations.

The ``allocations``/``reuses`` counters are surfaced through
``Counters.kernel_profile`` and ``bench.measured_kernel_profile`` — they
are the measured evidence of the reuse.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Named, typed, get-or-grow scratch buffers.

    Views returned by :meth:`f64`/:meth:`i64`/:meth:`bool_` alias a shared
    buffer per name: they are valid until the same name is requested again
    and must not be held across passes.  Contents are *not* cleared —
    kernels that need initialised buffers fill them (``fill``/``out=``).
    """

    __slots__ = ("_buffers", "allocations", "reuses")

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        #: Fresh numpy allocations performed (one per name, plus growths).
        self.allocations = 0
        #: Buffer hand-outs served from an existing allocation.
        self.reuses = 0

    def _get(self, name: str, n: int, dtype) -> np.ndarray:
        buf = self._buffers.get(name)
        if buf is None or buf.shape[0] < n:
            capacity = n if buf is None else max(n, 2 * buf.shape[0])
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buf
            self.allocations += 1
        else:
            self.reuses += 1
        return buf[:n]

    def f64(self, name: str, n: int) -> np.ndarray:
        """A float64 view of length ``n`` (uninitialised)."""
        return self._get(name, n, np.float64)

    def i64(self, name: str, n: int) -> np.ndarray:
        """An int64 view of length ``n`` (uninitialised)."""
        return self._get(name, n, np.int64)

    def bool_(self, name: str, n: int) -> np.ndarray:
        """A bool view of length ``n`` (uninitialised)."""
        return self._get(name, n, np.bool_)

    def nbytes(self) -> int:
        """Total bytes currently held by the workspace."""
        return int(sum(b.nbytes for b in self._buffers.values()))
