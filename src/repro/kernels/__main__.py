"""``python -m repro.kernels --check``: run the duplication self-audit."""

from __future__ import annotations

import argparse
import sys

from repro.kernels.audit import (
    ARENA_AUDITED_PACKAGES,
    AUDITED_PACKAGES,
    CENSUS_AUDITED_PACKAGES,
    CENSUS_LOOP_HOME,
    audit_census_loops,
    audit_particle_construction,
    audit_vec_definitions,
    audit_xs_table_access,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.kernels",
        description="Kernel-layer self-audit.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if any *_vec physics implementation exists outside "
        "repro/kernels, any hot path constructs AoS particle records, "
        "or any driver re-implements the census loop outside "
        "repro/core/stepper.py",
    )
    args = parser.parse_args(argv)
    if not args.check:
        parser.print_help()
        return 2
    violations = (
        audit_vec_definitions()
        + audit_particle_construction()
        + audit_census_loops()
        + audit_xs_table_access()
    )
    if violations:
        for v in violations:
            print(v, file=sys.stderr)
        print(f"FAILED: {len(violations)} kernel/storage violation(s)",
              file=sys.stderr)
        return 1
    pkgs = ", ".join(AUDITED_PACKAGES)
    arena_pkgs = ", ".join(ARENA_AUDITED_PACKAGES)
    print(f"OK: no *_vec physics implementations outside repro/kernels "
          f"({pkgs} audited)")
    print(f"OK: no AoS particle construction in hot paths "
          f"({arena_pkgs} audited)")
    census_pkgs = ", ".join(CENSUS_AUDITED_PACKAGES)
    print(f"OK: no census loops outside {CENSUS_LOOP_HOME} "
          f"({census_pkgs} audited)")
    print("OK: no direct cross-section table access outside repro/xs "
          "(all packages audited)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
