"""Batch cross-section lookup kernels.

The energy-bin search is the hot inner operation of every cross-section
lookup (paper §VI-A).  This module is the single batch implementation:

* :func:`search_bins` — bisection for a whole batch via
  ``numpy.searchsorted`` (value-identical to the scalar searches in
  :mod:`repro.xs.lookup`, which remain as the reference implementations);
* :func:`interpolate_at_bins` — linear interpolation within known bins;
* :func:`xs_lookup` — the composite search+interpolate kernel the drivers
  dispatch;
* :func:`bisection_probes` / :func:`linear_walk_probes` — *exact* probe
  counts of the scalar strategies, computed batch-wise, so the blocked
  Over Particles driver reproduces the seed's per-strategy lookup
  statistics bit-for-bit (binary-search probe counts are data-dependent:
  the bisection path length varies with the target bin).

Tables are duck-typed (anything with ``energy``/``value`` arrays) to keep
this module import-cycle-free; in practice they are
:class:`repro.xs.tables.CrossSectionTable`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "search_bins",
    "interpolate_at_bins",
    "xs_lookup",
    "ce_lookup",
    "clamped_mask",
    "bisection_probes",
    "linear_walk_probes",
]


def search_bins(table, e: np.ndarray) -> np.ndarray:
    """Find ``bin`` with ``energy[bin] <= e < energy[bin+1]`` per lane.

    ``numpy.searchsorted`` performs the same bisection as the scalar
    search; out-of-grid energies clamp to the first/last bin identically.
    """
    e = np.asarray(e, dtype=np.float64)
    bins = np.searchsorted(table.energy, e, side="right") - 1
    return np.clip(bins, 0, table.energy.shape[0] - 2)


def interpolate_at_bins(table, e: np.ndarray, bins: np.ndarray) -> np.ndarray:
    """Linearly interpolate table values at ``e`` within known ``bins``."""
    e0 = table.energy[bins]
    e1 = table.energy[bins + 1]
    v0 = table.value[bins]
    v1 = table.value[bins + 1]
    t = (e - e0) / (e1 - e0)
    return v0 + t * (v1 - v0)


def xs_lookup(table, e: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Composite lookup kernel: ``(bins, microscopic values)`` per lane."""
    bins = search_bins(table, e)
    return bins, interpolate_at_bins(table, e, bins)


def ce_lookup(
    grid, e: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Continuous-energy composite lookup on a unionized energy grid.

    ``grid`` is duck-typed (in practice :class:`repro.xs.ce.UnionGrid`):
    ``energy`` is the union grid searched once per lane, ``ptr`` the
    precomputed ``(n_union, n_nuclides)`` double-index table mapping a
    union bin to each nuclide's own bracketing bin, ``nuclides`` carry
    per-reaction value arrays on their own grids, ``fracs`` the atom
    fractions.  One bisection on the union grid replaces the per-nuclide
    searches (XSBench's unionized-grid mode); per nuclide the lookup is a
    gather + the same linear interpolation as :func:`interpolate_at_bins`.

    Returns ``(union_bins, micro_s, micro_c, micro_f)`` — microscopic
    barns mixed over the composition; ``micro_f`` is zeros when no member
    nuclide carries fission data.
    """
    bins = search_bins(grid, e)
    n = e.shape[0]
    micro_s = np.zeros(n, dtype=np.float64)
    micro_c = np.zeros(n, dtype=np.float64)
    micro_f = np.zeros(n, dtype=np.float64)
    for j, nuc in enumerate(grid.nuclides):
        frac = grid.fracs[j]
        nb = grid.ptr[bins, j]
        e0 = nuc.energy[nb]
        t = (e - e0) / (nuc.energy[nb + 1] - e0)
        v0 = nuc.scatter[nb]
        micro_s += frac * (v0 + t * (nuc.scatter[nb + 1] - v0))
        v0 = nuc.capture[nb]
        micro_c += frac * (v0 + t * (nuc.capture[nb + 1] - v0))
        if nuc.fission is not None:
            v0 = nuc.fission[nb]
            micro_f += frac * (v0 + t * (nuc.fission[nb + 1] - v0))
    return bins, micro_s, micro_c, micro_f


def clamped_mask(table, e: np.ndarray) -> np.ndarray:
    """Lanes whose energy clamps outside the grid (zero search probes)."""
    energy = table.energy
    return (e <= energy[0]) | (e >= energy[-1])


def bisection_probes(table, e: np.ndarray) -> np.ndarray:
    """Exact per-lane probe counts of the scalar binary search.

    Simulates ``lo=0, hi=len-1; while hi-lo>1: probe mid`` for every lane
    at once.  The count is data-dependent for non-power-of-two tables
    (lanes resolve in different iteration counts), so a closed form would
    drift from the scalar accounting.  Clamped lanes probe zero times.
    """
    energy = table.energy
    n = e.shape[0]
    probes = np.zeros(n, dtype=np.int64)
    lo = np.zeros(n, dtype=np.int64)
    hi = np.full(n, energy.shape[0] - 1, dtype=np.int64)
    interior = ~clamped_mask(table, e)
    # Collapse clamped lanes so they never iterate.
    hi[~interior] = 0
    active = (hi - lo) > 1
    while active.any():
        mid = (lo + hi) // 2
        probes[active] += 1
        below = energy[mid] <= e
        go_lo = active & below
        go_hi = active & ~below
        lo[go_lo] = mid[go_lo]
        hi[go_hi] = mid[go_hi]
        active = (hi - lo) > 1
    return probes


def linear_walk_probes(
    table, e: np.ndarray, cached_bins: np.ndarray, bins: np.ndarray
) -> np.ndarray:
    """Exact per-lane probe counts of the scalar cached linear search.

    The scalar walk starts from the clamped cached bin and steps one bin
    at a time to the bracketing bin, so its probe count is exactly the
    walk distance ``|target - clip(cached, 0, nbins-1)|``; clamped lanes
    probe zero times.  ``bins`` is the target from :func:`search_bins`.
    """
    nbins = table.energy.shape[0] - 1
    start = np.clip(cached_bins, 0, nbins - 1)
    probes = np.abs(bins - start)
    return np.where(clamped_mask(table, e), 0, probes)
