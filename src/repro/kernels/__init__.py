"""The batch kernel layer: one implementation of the transport physics.

Both execution schemes (Over Particles in blocks, Over Events over the
whole population) drive the same batch kernels through a dispatch table
with per-kernel call/wall-clock accounting:

    drivers (core/over_particles, core/over_events, volume/driver3)
        │
        ▼
    KernelDispatch  — name→kernel table, per-kernel counters/timers
        │
        ▼
    kernels.batch / kernels.xs / kernels.batch3   — the physics
        │
        ▼
    Workspace  — named preallocated buffers (no per-pass allocations)

``python -m repro.kernels --check`` audits that no ``*_vec`` physics
implementation exists outside this package.
"""

from repro.kernels import batch, batch3, xs
from repro.kernels.batch import EventKind, HUGE_DISTANCE, PARALLEL_EPS
from repro.kernels.dispatch import (
    EVENT_KERNELS,
    KERNEL_TABLE,
    KernelDispatch,
    KernelStat,
    format_profile,
)
from repro.kernels.workspace import Workspace

__all__ = [
    "batch",
    "batch3",
    "xs",
    "EventKind",
    "HUGE_DISTANCE",
    "PARALLEL_EPS",
    "EVENT_KERNELS",
    "KERNEL_TABLE",
    "KernelDispatch",
    "KernelStat",
    "format_profile",
    "Workspace",
]
