"""Batch-first transport kernels: the single implementation of the physics.

Every piece of transport physics lives here exactly once, in batch form —
a kernel takes array slices (one lane per particle) and returns arrays.
Both execution schemes drive these kernels:

* **Over Events** applies them to the whole surviving population per pass
  (breadth-first, the paper's vectorised scheme);
* **Over Particles** applies them to a *block* of histories at a time
  (depth-first in blocks; block size 1 is the paper's scalar traversal).

The scalar functions that remain in :mod:`repro.physics` are retained as
the reference implementations the parity suite pins these kernels against
element-wise, bit-for-bit (``tests/test_kernels_parity.py``); the old
module-level ``*_vec`` twins are now deprecated aliases of these kernels.

The bodies here are the verified vectorised forms moved from
``physics/*`` — their operation order is part of the bit-parity contract
and must not be "simplified".
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from repro.mesh.boundary import BoundaryCondition

__all__ = [
    "EventKind",
    "HUGE_DISTANCE",
    "PARALLEL_EPS",
    "NEUTRON_MASS_KG",
    "EV_TO_J",
    "MAX_SPLIT",
    "speed_from_energy",
    "distance_to_collision",
    "distance_to_facet",
    "select_events",
    "distances",
    "Distances",
    "elastic_scatter_kinematics",
    "collide",
    "cross_facet",
    "census",
    "roulette",
    "fission_yield",
    "split_counts",
    "should_terminate",
    "sample_position_in_box",
    "sample_isotropic_direction",
    "sample_mean_free_paths",
]

# --------------------------------------------------------------------------
# Constants (single source of truth; physics modules re-export these).

#: Stand-in for "never": larger than any reachable flight distance.
HUGE_DISTANCE = 1.0e300

#: Direction components smaller than this never hit their facet: the ray is
#: numerically parallel to it.  Avoids overflowing divisions by denormals;
#: any legitimate distance produced near the threshold loses to census
#: anyway (flight distances are bounded by speed × dt « 1e12 m).
PARALLEL_EPS = 1.0e-12

#: Neutron rest mass [kg] (CODATA 2018).
NEUTRON_MASS_KG = 1.67492749804e-27

#: One electron-volt in joules (exact, SI 2019).
EV_TO_J = 1.602176634e-19

# Precomputed 2 eV/m_n so the hot path is a multiply and a sqrt.
_TWO_EV_OVER_MASS = 2.0 * EV_TO_J / NEUTRON_MASS_KG

#: Hard cap on the clones of one importance split — guards runaway maps.
MAX_SPLIT = 20


class EventKind(IntEnum):
    """The three events of the tracking loop, ordered by tie-break priority."""

    COLLISION = 0
    FACET = 1
    CENSUS = 2


# --------------------------------------------------------------------------
# Distance kernels.


def speed_from_energy(energy_ev: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Neutron speed [m/s] from kinetic energy [eV]: ``v = sqrt(2E/m)``."""
    if out is None:
        return np.sqrt(_TWO_EV_OVER_MASS * energy_ev)
    np.multiply(_TWO_EV_OVER_MASS, energy_ev, out=out)
    return np.sqrt(out, out=out)


def distance_to_collision(
    mfp_remaining: np.ndarray, sigma_t: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Distance to the next collision from the remaining optical distance.

    With no material (Σ_t = 0) the collision never happens.
    """
    if out is None:
        out = np.full_like(mfp_remaining, HUGE_DISTANCE)
    else:
        out.fill(HUGE_DISTANCE)
    ok = sigma_t > 0.0
    out[ok] = mfp_remaining[ok] / sigma_t[ok]
    return out


def distance_to_facet(
    x: np.ndarray,
    y: np.ndarray,
    omega_x: np.ndarray,
    omega_y: np.ndarray,
    x_lo: np.ndarray,
    x_hi: np.ndarray,
    y_lo: np.ndarray,
    y_hi: np.ndarray,
    dist_x: np.ndarray | None = None,
    dist_y: np.ndarray | None = None,
    axis: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Distance to the nearest facet of each particle's containing cell.

    Returns ``(distance, axis)``; ``axis`` is 0 for the x-facing facet and
    1 for the y-facing one, ties picking x.  ``dist_x``/``dist_y``/``axis``
    accept workspace buffers; the distance is written into ``dist_x``.
    """
    if dist_x is None:
        dist_x = np.full_like(x, HUGE_DISTANCE)
    else:
        dist_x.fill(HUGE_DISTANCE)
    if dist_y is None:
        dist_y = np.full_like(y, HUGE_DISTANCE)
    else:
        dist_y.fill(HUGE_DISTANCE)
    pos = omega_x > PARALLEL_EPS
    neg = omega_x < -PARALLEL_EPS
    dist_x[pos] = (x_hi[pos] - x[pos]) / omega_x[pos]
    dist_x[neg] = (x_lo[neg] - x[neg]) / omega_x[neg]
    pos = omega_y > PARALLEL_EPS
    neg = omega_y < -PARALLEL_EPS
    dist_y[pos] = (y_hi[pos] - y[pos]) / omega_y[pos]
    dist_y[neg] = (y_lo[neg] - y[neg]) / omega_y[neg]
    if axis is None:
        axis = (dist_y < dist_x).astype(np.int64)
    else:
        np.less(dist_y, dist_x, out=axis, casting="unsafe")
    return np.minimum(dist_x, dist_y, out=dist_x), axis


def select_events(
    d_collision: np.ndarray,
    d_facet: np.ndarray,
    d_census: np.ndarray,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Pick each lane's first event (tie-break: collision, facet, census).

    Returns an int64 array of :class:`EventKind` values.
    """
    if out is None:
        out = np.full(d_collision.shape, int(EventKind.CENSUS), dtype=np.int64)
    else:
        out.fill(int(EventKind.CENSUS))
    facet_first = np.less_equal(d_facet, d_census, out=scratch)
    out[facet_first] = int(EventKind.FACET)
    coll_first = (d_collision <= d_facet) & (d_collision <= d_census)
    out[coll_first] = int(EventKind.COLLISION)
    return out


class Distances:
    """Per-pass distance budgets, resident in workspace buffers.

    Views are only valid until the next :func:`distances` call on the same
    workspace — the drivers consume them within the pass.
    """

    __slots__ = (
        "speed", "d_collision", "d_facet", "axis", "d_census",
        "x_lo", "x_hi", "y_lo", "y_hi",
    )

    def __init__(self, speed, d_collision, d_facet, axis, d_census,
                 x_lo=None, x_hi=None, y_lo=None, y_hi=None):
        self.speed = speed
        self.d_collision = d_collision
        self.d_facet = d_facet
        self.axis = axis
        self.x_lo = x_lo
        self.x_hi = x_hi
        self.y_lo = y_lo
        self.y_hi = y_hi
        self.d_census = d_census


def distances(
    ws,
    energy: np.ndarray,
    mfp_to_collision: np.ndarray,
    sigma_t: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    omega_x: np.ndarray,
    omega_y: np.ndarray,
    cellx: np.ndarray,
    celly: np.ndarray,
    dx: float,
    dy: float,
    dt_to_census: np.ndarray,
) -> Distances:
    """Composite kernel: all three distance budgets for a population slice.

    Computes speed, distance to collision, distance to the nearest facet
    (with the hit axis) and distance to census, entirely into preallocated
    buffers of ``ws`` (a :class:`repro.kernels.workspace.Workspace`) so the
    pass loop performs no full-length allocations.

    Cell bounds are derived inline from the cell indices
    (``x_lo = cellx·dx``), bit-equal to ``StructuredMesh.cell_bounds``.
    """
    n = energy.shape[0]
    speed = speed_from_energy(energy, out=ws.f64("speed", n))
    d_coll = distance_to_collision(
        mfp_to_collision, sigma_t, out=ws.f64("d_coll", n)
    )
    x_lo = np.multiply(cellx, dx, out=ws.f64("x_lo", n))
    tmp = np.add(cellx, 1, out=ws.i64("cell_tmp", n))
    x_hi = np.multiply(tmp, dx, out=ws.f64("x_hi", n))
    y_lo = np.multiply(celly, dy, out=ws.f64("y_lo", n))
    tmp = np.add(celly, 1, out=tmp)
    y_hi = np.multiply(tmp, dy, out=ws.f64("y_hi", n))
    d_facet, axis = distance_to_facet(
        x, y, omega_x, omega_y, x_lo, x_hi, y_lo, y_hi,
        dist_x=ws.f64("dist_x", n),
        dist_y=ws.f64("dist_y", n),
        axis=ws.i64("axis", n),
    )
    d_census = np.multiply(dt_to_census, speed, out=ws.f64("d_census", n))
    return Distances(speed, d_coll, d_facet, axis, d_census,
                     x_lo=x_lo, x_hi=x_hi, y_lo=y_lo, y_hi=y_hi)


# --------------------------------------------------------------------------
# Collision kernel.


def elastic_scatter_kinematics(
    mu_cm: np.ndarray, a_ratio
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Two-body elastic kinematics: ``(E'/E, mu_lab, sin_lab)`` per lane.

    The degenerate backscatter point ``A = 1, μ = −1`` (zero outgoing
    speed) returns ``mu_lab = 0``.
    """
    denom_sq = a_ratio * a_ratio + 2.0 * a_ratio * mu_cm + 1.0
    e_frac = denom_sq / ((a_ratio + 1.0) * (a_ratio + 1.0))
    degenerate = (denom_sq <= 0.0) | (e_frac < 1.0e-300)
    safe = np.where(degenerate, 1.0, denom_sq)
    mu_lab = (1.0 + a_ratio * mu_cm) / np.sqrt(safe)
    mu_lab = np.clip(np.where(degenerate, 0.0, mu_lab), -1.0, 1.0)
    sin_lab = np.sqrt(1.0 - mu_lab * mu_lab)
    e_frac = np.where(degenerate, 0.0, e_frac)
    return e_frac, mu_lab, sin_lab


def collide(
    energy: np.ndarray,
    weight: np.ndarray,
    omega_x: np.ndarray,
    omega_y: np.ndarray,
    sigma_a: np.ndarray,
    sigma_t: np.ndarray,
    a_ratio,
    u_angle: np.ndarray,
    u_sense: np.ndarray,
    u_mfp: np.ndarray,
    energy_cutoff_ev: float,
    weight_cutoff: float,
    defer_weight_cutoff: bool = False,
) -> tuple[np.ndarray, ...]:
    """Apply one collision per lane (implicit capture + elastic scatter).

    Returns ``(energy, weight, ox, oy, mfp, deposit, terminated,
    below_weight)`` arrays.  ``a_ratio`` may be a scalar or a per-lane
    array (multi-material populations).

    With ``defer_weight_cutoff`` (Russian roulette mode) the energy cutoff
    still terminates here, but a sub-cutoff weight is *reported* rather
    than terminated — the driver plays the roulette with its own draw.
    """
    p_absorb = np.where(sigma_t > 0.0, sigma_a / np.where(sigma_t > 0.0, sigma_t, 1.0), 0.0)
    deposit = weight * energy * p_absorb
    weight = weight * (1.0 - p_absorb)

    mu_cm = 2.0 * u_angle - 1.0
    e_frac, mu_lab, sin_lab = elastic_scatter_kinematics(mu_cm, a_ratio)
    new_energy = energy * e_frac
    deposit = deposit + weight * (energy - new_energy)
    sense = np.where(u_sense < 0.5, 1.0, -1.0)
    new_ox = omega_x * mu_lab - omega_y * sin_lab * sense
    new_oy = omega_y * mu_lab + omega_x * sin_lab * sense

    mfp = -np.log(1.0 - u_mfp)

    below_weight = weight < weight_cutoff
    if defer_weight_cutoff:
        terminated = new_energy < energy_cutoff_ev
        below_weight = below_weight & ~terminated
    else:
        terminated = (new_energy < energy_cutoff_ev) | below_weight
        below_weight = np.zeros_like(terminated)
    deposit = deposit + np.where(terminated, weight * new_energy, 0.0)
    weight = np.where(terminated, 0.0, weight)

    return new_energy, weight, new_ox, new_oy, mfp, deposit, terminated, below_weight


# --------------------------------------------------------------------------
# Facet kernel.


def cross_facet(
    cellx: np.ndarray,
    celly: np.ndarray,
    omega_x: np.ndarray,
    omega_y: np.ndarray,
    axis: np.ndarray,
    mesh,
    bc: BoundaryCondition = BoundaryCondition.REFLECTIVE,
) -> tuple[np.ndarray, ...]:
    """Resolve facet encounters for particles sitting on their facet.

    Returns ``(new_cellx, new_celly, new_ox, new_oy, reflected, escaped)``;
    inputs are not modified.  ``mesh`` only needs ``nx``/``ny``.
    """
    new_cx = cellx.copy()
    new_cy = celly.copy()
    new_ox = omega_x.copy()
    new_oy = omega_y.copy()

    x_facet = axis == 0
    y_facet = ~x_facet

    going_px = x_facet & (omega_x > 0.0)
    going_nx = x_facet & (omega_x <= 0.0)
    going_py = y_facet & (omega_y > 0.0)
    going_ny = y_facet & (omega_y <= 0.0)

    bnd_px = going_px & (cellx == mesh.nx - 1)
    bnd_nx = going_nx & (cellx == 0)
    bnd_py = going_py & (celly == mesh.ny - 1)
    bnd_ny = going_ny & (celly == 0)
    at_boundary = bnd_px | bnd_nx | bnd_py | bnd_ny

    if bc is BoundaryCondition.VACUUM:
        escaped = at_boundary
        reflected = np.zeros_like(at_boundary)
    else:
        escaped = np.zeros_like(at_boundary)
        reflected = at_boundary
        flip_x = bnd_px | bnd_nx
        flip_y = bnd_py | bnd_ny
        new_ox[flip_x] = -new_ox[flip_x]
        new_oy[flip_y] = -new_oy[flip_y]

    new_cx[going_px & ~bnd_px] += 1
    new_cx[going_nx & ~bnd_nx] -= 1
    new_cy[going_py & ~bnd_py] += 1
    new_cy[going_ny & ~bnd_ny] -= 1

    return new_cx, new_cy, new_ox, new_oy, reflected, escaped


# --------------------------------------------------------------------------
# Census kernel.


def census(
    x: np.ndarray,
    y: np.ndarray,
    omega_x: np.ndarray,
    omega_y: np.ndarray,
    mfp_to_collision: np.ndarray,
    sigma_t: np.ndarray,
    d_census: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fly each lane to the end of the timestep.

    Returns ``(new_x, new_y, new_mfp)``: the position advanced by the
    census distance and the optical budget decremented by the distance
    flown (clamped at zero).
    """
    new_x = x + d_census * omega_x
    new_y = y + d_census * omega_y
    new_mfp = np.maximum(0.0, mfp_to_collision - d_census * sigma_t)
    return new_x, new_y, new_mfp


# --------------------------------------------------------------------------
# Variance-reduction kernels.


def roulette(
    weight: np.ndarray, u: np.ndarray, weight_cutoff: float
) -> tuple[np.ndarray, float]:
    """Russian roulette for sub-cutoff lanes: ``(survive_mask, restored)``.

    Survivors are restored to ``10 × weight_cutoff``; survival probability
    ``weight / restored`` conserves expected weight.  Callers only pass
    lanes already below the cutoff.
    """
    restored = 10.0 * weight_cutoff
    survive = u < weight / restored
    return survive, restored


def fission_yield(
    weight_before: np.ndarray,
    nu: np.ndarray,
    sigma_f: np.ndarray,
    sigma_t: np.ndarray,
    u: np.ndarray,
) -> np.ndarray:
    """Integer secondaries per fissile collision: ``floor(w·ν·Σf/Σt + u)``."""
    expected = weight_before * nu * sigma_f / sigma_t
    return np.floor(expected + u).astype(np.int64)


def split_counts(ratio: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Unbiased split multiplicity per importance-increasing crossing:
    ``floor(r + u)`` clamped to ``[1, MAX_SPLIT]``; 1 where ``r <= 1``."""
    n = np.floor(ratio + u)
    n = np.clip(n, 1, MAX_SPLIT)
    return np.where(ratio <= 1.0, 1, n).astype(np.int64)


def should_terminate(
    energy_ev: np.ndarray,
    weight: np.ndarray,
    energy_cutoff_ev: float,
    weight_cutoff: float,
) -> np.ndarray:
    """Deterministic cutoff termination mask (paper §IV-E)."""
    return (energy_ev < energy_cutoff_ev) | (weight < weight_cutoff)


# --------------------------------------------------------------------------
# Sampling kernels (birth draws).


def sample_position_in_box(
    u1: np.ndarray, u2: np.ndarray, x0: float, x1: float, y0: float, y1: float
) -> tuple[np.ndarray, np.ndarray]:
    """Map two uniforms per lane to points in ``[x0,x1]×[y0,y1]``."""
    return x0 + u1 * (x1 - x0), y0 + u2 * (y1 - y0)


def sample_isotropic_direction(u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map one uniform per lane to a unit direction isotropic in the plane."""
    theta = 2.0 * np.pi * u
    return np.cos(theta), np.sin(theta)


def sample_mean_free_paths(u: np.ndarray) -> np.ndarray:
    """Optical distance to the next collision: unit exponential ``-ln(1-u)``."""
    return -np.log(1.0 - u)
