"""Kernel dispatch table with per-kernel call/wall-clock accounting.

Every kernel invocation in the drivers goes through a
:class:`KernelDispatch`: a name→callable table plus per-kernel
accumulators (calls, lanes processed, seconds).  The profile is attached
to ``Counters.kernel_profile`` at the end of a run, printed by
``repro run --profile-kernels`` and consumed by
``bench.measured_kernel_profile`` so the measured hot-kernel ranking can
be compared against the paper's §VII characterisation.

:data:`EVENT_KERNELS` is the single kind→kernel mapping both drivers use
to dispatch event handlers — adding an event type means adding one entry
here and one handler per driver, with no if/elif ladders to keep in sync.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.kernels import batch, batch3
from repro.kernels import xs as kxs
from repro.kernels.batch import EventKind

__all__ = [
    "KernelStat",
    "KernelDispatch",
    "KERNEL_TABLE",
    "KERNEL_TABLE_3D",
    "EVENT_KERNELS",
    "format_profile",
]


#: The canonical kernel surface: name → batch callable.
KERNEL_TABLE = {
    "distances": batch.distances,
    "select_events": batch.select_events,
    "collide": batch.collide,
    "cross_facet": batch.cross_facet,
    "census": batch.census,
    "roulette": batch.roulette,
    "fission_bank": batch.fission_yield,
    "xs_lookup": kxs.xs_lookup,
    "xs_lookup_ce": kxs.ce_lookup,
}

#: The 3-D drivers share the dimension-independent kernels (event
#: selection, cross-section lookup) and swap in the 3-D geometry/physics.
KERNEL_TABLE_3D = {
    **KERNEL_TABLE,
    "facet_distances_3d": batch3.distance_to_facet_3d,
    "collide_3d": batch3.collide3,
    "cross_facet_3d": batch3.cross_facet_3d,
}

#: Event kind → kernel name, shared by both drivers (satellite: one place
#: to extend when an event type is added).
EVENT_KERNELS = {
    EventKind.COLLISION: "collide",
    EventKind.FACET: "cross_facet",
    EventKind.CENSUS: "census",
}


@dataclass
class KernelStat:
    """Accumulated cost of one kernel across a run."""

    calls: int = 0
    items: int = 0
    seconds: float = 0.0


class KernelDispatch:
    """Runs kernels by name, accumulating per-kernel statistics.

    One instance lives per transport run; its profile is merged into the
    run's :class:`repro.core.counters.Counters`.  Timings are host facts,
    not algorithm facts — they stay out of ``Counters.snapshot()``.
    """

    __slots__ = ("table", "stats", "recorder")

    def __init__(self, table=None, recorder=None) -> None:
        self.table = KERNEL_TABLE if table is None else table
        self.stats: dict[str, KernelStat] = {}
        # Set only when telemetry is enabled; kernel spans reuse the
        # interval measured below, so the enabled cost is one append.
        self.recorder = recorder

    def run(self, name: str, nitems: int, *args, **kwargs):
        """Invoke kernel ``name`` on ``nitems`` lanes and time it."""
        fn = self.table[name]
        t0 = time.perf_counter()
        out = fn(*args, **kwargs)
        elapsed = time.perf_counter() - t0
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = KernelStat()
        stat.calls += 1
        stat.items += int(nitems)
        stat.seconds += elapsed
        if self.recorder is not None:
            self.recorder.add_complete(
                "kernel:" + name, t0, elapsed, items=int(nitems)
            )
        return out

    @contextmanager
    def timed(self, name: str, nitems: int):
        """Attribute a driver-side composite section to kernel ``name``.

        Used where the kernel's work is interleaved with driver state
        writes (banking fission secondaries, flushing tallies) and a
        single callable would have to take the whole driver as argument.
        """
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            stat = self.stats.get(name)
            if stat is None:
                stat = self.stats[name] = KernelStat()
            stat.calls += 1
            stat.items += int(nitems)
            stat.seconds += elapsed
            if self.recorder is not None:
                self.recorder.add_complete(
                    "kernel:" + name, t0, elapsed, items=int(nitems)
                )

    def profile(self) -> dict[str, list]:
        """The accumulated profile as ``{name: [calls, items, seconds]}``.

        This is the serialisable form stored on
        ``Counters.kernel_profile`` (and merged across pool workers).
        """
        return {
            name: [s.calls, s.items, s.seconds] for name, s in self.stats.items()
        }


def format_profile(profile: dict[str, list]) -> str:
    """Render a kernel profile as the table ``--profile-kernels`` prints.

    Rows are ranked by total seconds (the measured hot-kernel ranking).
    """
    lines = [
        f"{'kernel':<14} {'calls':>8} {'items':>12} {'seconds':>10} "
        f"{'us/call':>9} {'share':>7}"
    ]
    total = sum(row[2] for row in profile.values()) or 1.0
    ranked = sorted(profile.items(), key=lambda kv: kv[1][2], reverse=True)
    for name, (calls, items, seconds) in ranked:
        per_call = 1e6 * seconds / calls if calls else 0.0
        lines.append(
            f"{name:<14} {calls:>8d} {items:>12d} {seconds:>10.6f} "
            f"{per_call:>9.1f} {100.0 * seconds / total:>6.1f}%"
        )
    return "\n".join(lines)
