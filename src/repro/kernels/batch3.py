"""Batch kernels for the 3-D volume extension.

The 3-D driver shares the event structure (and most physics) with the
2-D kernels in :mod:`repro.kernels.batch`; only the direction algebra and
the extra axis differ.  These are the batch implementations moved from
``volume/*`` — the volume modules keep their scalar reference forms and
alias their old ``*_vec`` names here.

``mesh`` arguments are duck-typed (``nx``/``ny``/``nz``) to keep this
module free of imports from :mod:`repro.volume` (which imports us).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.batch import (
    HUGE_DISTANCE,
    PARALLEL_EPS,
    elastic_scatter_kinematics,
)
from repro.mesh.boundary import BoundaryCondition

__all__ = [
    "distance_to_facet_3d",
    "cross_facet_3d",
    "sample_isotropic_direction_3d",
    "rotate_direction",
    "collide3",
]

#: Below this pole margin the rotation uses the polar-axis special case.
_POLE_EPS = 1.0e-10


def distance_to_facet_3d(
    x, y, z, ox, oy, oz, x_lo, x_hi, y_lo, y_hi, z_lo, z_hi
):
    """Distance to the nearest facet of each 3-D cell: ``(d, axis)`` with
    axis 0/1/2 for x/y/z, ties picking the lowest axis."""
    def axis_dist(p, o, lo, hi):
        d = np.full_like(p, HUGE_DISTANCE)
        pos = o > PARALLEL_EPS
        neg = o < -PARALLEL_EPS
        d[pos] = (hi[pos] - p[pos]) / o[pos]
        d[neg] = (lo[neg] - p[neg]) / o[neg]
        return d

    dist_x = axis_dist(x, ox, x_lo, x_hi)
    dist_y = axis_dist(y, oy, y_lo, y_hi)
    dist_z = axis_dist(z, oz, z_lo, z_hi)

    d = np.minimum(np.minimum(dist_x, dist_y), dist_z)
    axis = np.full(x.shape, 2, dtype=np.int64)
    axis[dist_y <= dist_z] = 1
    axis[(dist_x <= dist_y) & (dist_x <= dist_z)] = 0
    return d, axis


def cross_facet_3d(
    cx, cy, cz, ox, oy, oz, axis, mesh,
    bc: BoundaryCondition = BoundaryCondition.REFLECTIVE,
):
    """Resolve 3-D facet encounters; returns
    ``(cx, cy, cz, ox, oy, oz, reflected, escaped)`` arrays."""
    new_c = [cx.copy(), cy.copy(), cz.copy()]
    new_o = [ox.copy(), oy.copy(), oz.copy()]
    omegas = (ox, oy, oz)
    limits = (mesh.nx - 1, mesh.ny - 1, mesh.nz - 1)

    reflected = np.zeros(cx.shape, dtype=bool)
    escaped = np.zeros(cx.shape, dtype=bool)
    vacuum = bc is BoundaryCondition.VACUUM

    for ax in range(3):
        on_axis = axis == ax
        fwd = on_axis & (omegas[ax] > 0.0)
        bwd = on_axis & (omegas[ax] <= 0.0)
        bnd = (fwd & (new_c[ax] == limits[ax])) | (bwd & (new_c[ax] == 0))
        if vacuum:
            escaped |= bnd
        else:
            reflected |= bnd
            new_o[ax][bnd] = -new_o[ax][bnd]
        new_c[ax][fwd & ~bnd] += 1
        new_c[ax][bwd & ~bnd] -= 1

    return (*new_c, *new_o, reflected, escaped)


def sample_isotropic_direction_3d(u1, u2):
    """Two uniforms per lane → unit vectors uniform on the sphere."""
    w = 2.0 * u1 - 1.0
    s = np.sqrt(np.maximum(0.0, 1.0 - w * w))
    phi = 2.0 * np.pi * u2
    return s * np.cos(phi), s * np.sin(phi), w


def rotate_direction(u, v, w, mu, phi):
    """Rotate unit vectors by deflection cosine ``mu`` about azimuth
    ``phi`` (standard MC scattering rotation, pole special-cased)."""
    s = np.sqrt(np.maximum(0.0, 1.0 - mu * mu))
    cosp = np.cos(phi)
    sinp = np.sin(phi)
    denom_sq = 1.0 - w * w
    polar = denom_sq < _POLE_EPS
    denom = np.sqrt(np.where(polar, 1.0, denom_sq))
    nu = mu * u + s * (u * w * cosp - v * sinp) / denom
    nv = mu * v + s * (v * w * cosp + u * sinp) / denom
    nw = mu * w - s * denom * cosp
    sign = np.where(w > 0.0, 1.0, -1.0)
    nu = np.where(polar, s * cosp, nu)
    nv = np.where(polar, s * sinp, nv)
    nw = np.where(polar, mu * sign, nw)
    return nu, nv, nw


def collide3(
    energy,
    weight,
    ox,
    oy,
    oz,
    sigma_a,
    sigma_t,
    a_ratio: float,
    u_angle,
    u_azimuth,
    u_mfp,
    energy_cutoff_ev: float,
    weight_cutoff: float,
):
    """Apply one 3-D collision per lane; returns
    ``(energy, weight, ox, oy, oz, mfp, deposit, terminated)`` arrays."""
    p_absorb = np.where(
        sigma_t > 0.0, sigma_a / np.where(sigma_t > 0.0, sigma_t, 1.0), 0.0
    )
    deposit = weight * energy * p_absorb
    weight = weight * (1.0 - p_absorb)

    mu_cm = 2.0 * u_angle - 1.0
    e_frac, mu_lab, _ = elastic_scatter_kinematics(mu_cm, a_ratio)
    new_energy = energy * e_frac
    deposit = deposit + weight * (energy - new_energy)
    phi = 2.0 * np.pi * u_azimuth
    nox, noy, noz = rotate_direction(ox, oy, oz, mu_lab, phi)

    mfp = -np.log(1.0 - u_mfp)

    terminated = (new_energy < energy_cutoff_ev) | (weight < weight_cutoff)
    deposit = deposit + np.where(terminated, weight * new_energy, 0.0)
    weight = np.where(terminated, 0.0, weight)

    return new_energy, weight, nox, noy, noz, mfp, deposit, terminated
