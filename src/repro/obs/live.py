"""The live observability plane: in-run aggregation over a running
simulation.

The :mod:`repro.obs` recorder from the telemetry PR is strictly
post-mortem — spans and events become a :class:`RunTelemetry` artifact
only after the census loop finishes.  This module adds the *in-flight*
half (DESIGN.md §4d "Live plane vs post-mortem artifact"):

* :class:`StepProbe` — the per-process publisher.  The census stepper
  calls ``probe.step_complete(...)`` once per census step with the
  monotonic counter totals (events, alive population, xs-lookup probes)
  and ``probe.commit_shard(...)`` when a shard's drivers finish; the
  probe folds a per-shard base into the running totals so the published
  series stay monotonic across shards.
* :class:`LiveBoard` — the worker-side sink: a tiny shared-memory array
  of doubles (one :data:`STAT_STRIDE`-column row per worker slot) that
  pool workers stamp from their probes.  The parent samples the board on
  the same ~1 s cadence as its heartbeat-age events, so live stats
  piggyback on machinery that already exists instead of adding IPC.
* :class:`LiveAggregator` — the parent-side (or serial in-process) sink:
  folds per-worker rows, recovery-ledger state, and events/s deltas into
  a versioned :class:`LiveSnapshot <snapshot>` dict
  (``repro.live_snapshot`` v:data:`LIVE_SCHEMA_VERSION`), renders it as
  canonical JSON and Prometheus text for :class:`repro.obs.server.
  MetricsServer`, and runs the perf-drift watchdog against a
  :class:`DriftBand` baseline.
* :class:`FlightSpiller` / :func:`flight_dump` — the flight recorder:
  a bounded tail of the worker's recent spans/events, spilled atomically
  to disk from the heartbeat thread, cleared when the shard result ships
  (the parent merges the shipped payload instead), and merged into the
  parent recorder when the worker dies or hangs — so post-mortems of
  killed workers are no longer blind.

The plane is purely observational: probes read counter totals that the
drivers maintain anyway, never draw random numbers and never touch
particle state, so physics is bit-identical with the plane on or off
(asserted serial, pooled and ensemble in ``tests/test_obs_live.py``).
Live totals are best-effort by design — a retried shard's partial
progress may be counted again by its re-execution — while the
post-mortem artifact stays exact.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np

from repro.obs.spans import NULL_RECORDER, ROOT

__all__ = [
    "LIVE_SCHEMA_NAME",
    "LIVE_SCHEMA_VERSION",
    "STAT_STRIDE",
    "NullProbe",
    "NULL_PROBE",
    "StepProbe",
    "LiveBoard",
    "LiveAggregator",
    "DriftBand",
    "drift_band_from_artifact",
    "FlightSpiller",
    "flight_dump",
    "load_flight_dump",
]

LIVE_SCHEMA_NAME = "repro.live_snapshot"
LIVE_SCHEMA_VERSION = 1

#: Doubles per worker row on the shared stats board.
STAT_STRIDE = 8

_COL_EVENTS = 0
_COL_ALIVE = 1
_COL_XS_LOOKUPS = 2
_COL_XS_PROBES = 3
_COL_HISTORIES = 4
_COL_SHARDS = 5
_COL_STEPS = 6
# column 7 reserved

_STAT_KEYS = (
    ("events", _COL_EVENTS),
    ("alive", _COL_ALIVE),
    ("xs_lookups", _COL_XS_LOOKUPS),
    ("xs_probes", _COL_XS_PROBES),
    ("histories", _COL_HISTORIES),
    ("shards", _COL_SHARDS),
    ("steps", _COL_STEPS),
)


class NullProbe:
    """The disabled probe — mirrors :class:`repro.obs.spans.NullRecorder`
    so the stepper has exactly one shape, no ``if live`` branches."""

    enabled = False

    __slots__ = ()

    def step_complete(self, *, step, alive, events, xs_lookups,
                      xs_probes) -> None:
        pass

    def commit_shard(self, counters, histories) -> None:
        pass


#: Shared no-op probe used when the live plane is off.
NULL_PROBE = NullProbe()


class StepProbe:
    """Publishes monotonic per-process counter totals to a *sink*.

    The stepper's counters reset per shard (each ``run_stepped`` call
    owns a fresh :class:`~repro.core.counters.Counters`), so the probe
    keeps a base accumulated by :meth:`commit_shard` and publishes
    ``base + in-progress`` — the published series never goes backwards
    within one process.  A sink is anything with
    ``publish(worker_id, stats_dict)``: the shared :class:`LiveBoard`
    inside pool workers, the :class:`LiveAggregator` directly for
    serial/ensemble/in-process runs.
    """

    enabled = True

    __slots__ = ("_sink", "_worker_id", "_events", "_xs", "_probes",
                 "_histories", "_shards", "_steps", "_alive")

    def __init__(self, sink, worker_id: int = 0):
        self._sink = sink
        self._worker_id = worker_id
        self._events = 0
        self._xs = 0
        self._probes = 0
        self._histories = 0
        self._shards = 0
        self._steps = 0
        self._alive = 0

    def step_complete(self, *, step, alive, events, xs_lookups,
                      xs_probes) -> None:
        """Census-step hook: ``events``/``xs_*`` are the current shard's
        in-progress totals (the base is added here)."""
        self._steps += 1
        self._alive = int(alive)
        self._publish(int(events), int(xs_lookups), int(xs_probes))

    def commit_shard(self, counters, histories: int) -> None:
        """Fold a finished shard's final counters into the base (this is
        where OP's end-of-run xs-lookup statistics land too)."""
        self._events += int(counters.total_events)
        self._xs += int(counters.xs_lookups)
        self._probes += int(
            counters.xs_binary_probes + counters.xs_linear_probes
        )
        self._histories += int(histories)
        self._shards += 1
        self._publish(0, 0, 0)

    def _publish(self, events, xs, probes) -> None:
        self._sink.publish(self._worker_id, {
            "events": self._events + events,
            "alive": self._alive,
            "xs_lookups": self._xs + xs,
            "xs_probes": self._probes + probes,
            "histories": self._histories,
            "shards": self._shards,
            "steps": self._steps,
        })


class LiveBoard:
    """The shared-memory stats board pool workers publish to.

    One row of :data:`STAT_STRIDE` doubles per worker slot, allocated by
    the parent from the pool's multiprocessing context and inherited by
    workers through the spawn args (like the heartbeat array).  Workers
    only ever write their own row; the parent only reads — the array
    lock makes each row read/write atomic.
    """

    __slots__ = ("_array",)

    def __init__(self, array):
        self._array = array

    @classmethod
    def allocate(cls, ctx, nslots: int) -> "LiveBoard":
        return cls(ctx.Array("d", max(1, nslots) * STAT_STRIDE))

    def probe(self, worker_id: int) -> StepProbe:
        return StepProbe(self, worker_id)

    def publish(self, worker_id: int, stats: dict) -> None:
        base = worker_id * STAT_STRIDE
        with self._array.get_lock():
            for key, col in _STAT_KEYS:
                self._array[base + col] = float(stats.get(key, 0))

    def read(self, worker_id: int) -> dict:
        base = worker_id * STAT_STRIDE
        with self._array.get_lock():
            return {
                key: int(self._array[base + col])
                for key, col in _STAT_KEYS
            }


# ---------------------------------------------------------------------------
# Perf-drift watchdog
# ---------------------------------------------------------------------------

class DriftBand:
    """An expected events/s baseline with a relative noise band.

    The watchdog flags the run when the live aggregate event rate leaves
    ``expected_events_per_s * (1 ± rel_band)``.  Built from a committed
    ``BENCH_*.json`` artifact (measured baseline) and, when the artifact
    supports calibration, cross-checked against the recalibrated
    machine-model prediction (:attr:`model_events_per_s`).
    """

    __slots__ = ("expected_events_per_s", "rel_band", "model_events_per_s",
                 "source")

    def __init__(self, expected_events_per_s: float, rel_band: float,
                 model_events_per_s: float | None = None,
                 source: str = "manual"):
        if expected_events_per_s <= 0:
            raise ValueError("expected_events_per_s must be positive")
        if rel_band <= 0:
            raise ValueError("rel_band must be positive")
        self.expected_events_per_s = float(expected_events_per_s)
        self.rel_band = float(rel_band)
        self.model_events_per_s = (
            float(model_events_per_s) if model_events_per_s else None
        )
        self.source = source

    def classify(self, events_per_s: float) -> tuple[bool, float]:
        """``(drifting, ratio)`` for a live rate sample."""
        ratio = events_per_s / self.expected_events_per_s
        return abs(ratio - 1.0) > self.rel_band, ratio

    def to_dict(self) -> dict:
        return {
            "expected_events_per_s": self.expected_events_per_s,
            "rel_band": self.rel_band,
            "model_events_per_s": self.model_events_per_s,
            "source": self.source,
        }


#: Transport event kernels whose processed items define "events" for the
#: drift baseline (the same trio Counters.total_events sums).
_EVENT_KERNELS = ("collide", "cross_facet", "census")


def drift_band_from_artifact(artifact, bench: str | None = None,
                             min_band: float = 0.35) -> DriftBand:
    """Build a :class:`DriftBand` from a ``BENCH_*.json`` artifact.

    Uses the named transport bench (default: the first bench with a
    kernel profile): expected events/s is total event-kernel items over
    the median wall-clock, and the band is the wider of the bench's own
    measured noise (IQR/median of the timing) and ``min_band``.  When
    the artifact supports machine-model recalibration, the calibrated
    model's predicted rate is attached for cross-checking and the
    calibration error widens the band — closing ROADMAP item 5's loop
    from committed baselines back into the live run.
    """
    candidates = [
        name for name in artifact.bench_names()
        if artifact.benches[name].get("kernel_profile")
    ]
    if bench is None:
        if not candidates:
            raise ValueError(
                "artifact has no bench with a kernel profile to derive an "
                "events/s baseline from"
            )
        bench = candidates[0]
    if bench not in artifact.benches:
        raise ValueError(
            f"unknown bench {bench!r}; available: "
            f"{', '.join(artifact.bench_names())}"
        )
    b = artifact.benches[bench]
    profile = b.get("kernel_profile") or {}
    events = sum(
        profile[k][1] for k in _EVENT_KERNELS if k in profile
    )
    if events <= 0:
        raise ValueError(
            f"bench {bench!r} has no event-kernel items in its profile"
        )
    wall = b.get("wallclock_s") or {}
    median = float(wall.get("median", 0.0))
    if median <= 0:
        raise ValueError(f"bench {bench!r} has no usable wallclock median")
    noise = float(wall.get("iqr", 0.0)) / median
    band = max(min_band, noise)
    model_rate = None
    try:
        from repro.perfmodel import recalibrate_from_artifact

        report = recalibrate_from_artifact(artifact)
        predicted_s = sum(
            f.predicted_s for f in report.fits if f.kernel in _EVENT_KERNELS
        )
        if predicted_s > 0:
            model_rate = events / predicted_s
        band = max(band, report.mean_abs_rel_error)
    except (ValueError, KeyError):
        pass
    return DriftBand(
        expected_events_per_s=events / median,
        rel_band=band,
        model_events_per_s=model_rate,
        source=f"bench:{bench}",
    )


# ---------------------------------------------------------------------------
# The parent-side aggregator
# ---------------------------------------------------------------------------

def _worker_row(worker_id: int) -> dict:
    return {
        "worker": worker_id,
        "incarnation": 0,
        "events": 0,
        "alive": 0,
        "xs_lookups": 0,
        "xs_probes": 0,
        "histories": 0,
        "shards": 0,
        "steps": 0,
        "heartbeat_age_s": 0.0,
        "events_per_s": 0.0,
        "_last_t": None,
        "_last_events": 0,
    }


class LiveAggregator:
    """Thread-safe fold of per-worker stats, recovery state, and rates
    into the versioned :meth:`snapshot` — the object the metrics server
    serves and the CLI passes down through ``Simulation.run(live=...)``.

    Serial and in-process runs publish directly through
    :meth:`probe`; the pool dispatcher calls :meth:`observe_worker` with
    rows sampled off the shared :class:`LiveBoard`.  Per-worker event
    totals are clamped monotonic (a respawned worker restarts its board
    row from zero while it re-executes lost work), so the aggregate
    ``events_total`` is a well-formed Prometheus counter.
    """

    enabled = True

    def __init__(self, *, run: dict | None = None,
                 drift: DriftBand | None = None, recorder=None):
        self._lock = threading.Lock()
        self._t0 = time.monotonic()
        self._run = dict(run or {})
        self._workers: dict[int, dict] = {}
        self._recovery = {
            "retries": 0,
            "rebalances": 0,
            "respawns": 0,
            "workers_lost": 0,
            "degraded": False,
            "degraded_reason": "",
            "shards_drained_in_process": 0,
        }
        self.drift = drift
        self._rec = NULL_RECORDER if recorder is None else recorder
        self._drifting = False
        self._drift_events = 0
        self._drift_ratio = 1.0
        self._done = False

    # -- sinks ----------------------------------------------------------
    def probe(self, worker_id: int = 0) -> StepProbe:
        """A :class:`StepProbe` publishing straight into this aggregator
        (serial runs, the pool's in-process path, degraded drains)."""
        return StepProbe(self, worker_id)

    def publish(self, worker_id: int, stats: dict) -> None:
        self.observe_worker(worker_id, **stats)

    def observe_worker(self, worker_id: int, *, events=0, alive=0,
                       xs_lookups=0, xs_probes=0, histories=0, shards=0,
                       steps=0, heartbeat_age_s=0.0, incarnation=0) -> None:
        now = time.monotonic()
        with self._lock:
            w = self._workers.setdefault(worker_id, _worker_row(worker_id))
            if (w["_last_t"] is not None and now > w["_last_t"]
                    and events >= w["_last_events"]):
                w["events_per_s"] = (
                    (events - w["_last_events"]) / (now - w["_last_t"])
                )
            w["_last_t"] = now
            w["_last_events"] = int(events)
            # Monotonic clamp: a respawned incarnation restarts from 0 and
            # catches up as it re-executes the lost work.
            w["events"] = max(w["events"], int(events))
            w["xs_lookups"] = max(w["xs_lookups"], int(xs_lookups))
            w["xs_probes"] = max(w["xs_probes"], int(xs_probes))
            w["histories"] = max(w["histories"], int(histories))
            w["shards"] = max(w["shards"], int(shards))
            w["steps"] = max(w["steps"], int(steps))
            w["alive"] = int(alive)
            w["heartbeat_age_s"] = float(heartbeat_age_s)
            w["incarnation"] = max(w["incarnation"], int(incarnation))
            self._check_drift_locked()

    def update_run(self, **meta) -> None:
        with self._lock:
            self._run.update(meta)

    def update_recovery(self, **ledger) -> None:
        with self._lock:
            for key, value in ledger.items():
                if key in self._recovery:
                    self._recovery[key] = value

    def mark_done(self) -> None:
        with self._lock:
            self._done = True
            for w in self._workers.values():
                w["events_per_s"] = 0.0

    # -- drift watchdog -------------------------------------------------
    def _check_drift_locked(self) -> None:
        band = self.drift
        if band is None:
            return
        rate = sum(w["events_per_s"] for w in self._workers.values())
        if rate <= 0:
            return
        drifting, ratio = band.classify(rate)
        self._drift_ratio = ratio
        if drifting != self._drifting:
            self._drifting = drifting
            self._drift_events += 1
            self._rec.event(
                "perf_drift",
                drifting=drifting,
                events_per_s=round(rate, 3),
                expected_events_per_s=round(band.expected_events_per_s, 3),
                ratio=round(ratio, 4),
                rel_band=band.rel_band,
                source=band.source,
            )

    # -- views ----------------------------------------------------------
    def snapshot(self) -> dict:
        """The versioned LiveSnapshot dict (``repro.live_snapshot`` v1):
        run meta, aggregate and per-worker views, the recovery ledger,
        and the drift watchdog state."""
        now = time.monotonic()
        with self._lock:
            workers = []
            agg = {
                "events_total": 0, "alive": 0, "xs_lookups_total": 0,
                "xs_probes_total": 0, "histories_total": 0,
                "shards_total": 0, "steps_total": 0,
            }
            rate = 0.0
            for wid in sorted(self._workers):
                w = self._workers[wid]
                workers.append({
                    "worker": w["worker"],
                    "incarnation": w["incarnation"],
                    "events_total": w["events"],
                    "events_per_s": round(w["events_per_s"], 3),
                    "alive": w["alive"],
                    "xs_lookups_total": w["xs_lookups"],
                    "xs_probes_total": w["xs_probes"],
                    "histories_total": w["histories"],
                    "shards_total": w["shards"],
                    "steps_total": w["steps"],
                    "heartbeat_age_s": round(w["heartbeat_age_s"], 3),
                })
                agg["events_total"] += w["events"]
                agg["alive"] += w["alive"]
                agg["xs_lookups_total"] += w["xs_lookups"]
                agg["xs_probes_total"] += w["xs_probes"]
                agg["histories_total"] += w["histories"]
                agg["shards_total"] += w["shards"]
                agg["steps_total"] += w["steps"]
                rate += w["events_per_s"]
            age = max(1e-9, now - self._t0)
            agg["events_per_s"] = round(rate, 3)
            agg["events_per_s_avg"] = round(agg["events_total"] / age, 3)
            agg["workers"] = len(workers)
            drift = None
            if self.drift is not None:
                drift = dict(self.drift.to_dict())
                drift.update(
                    drifting=self._drifting,
                    ratio=round(self._drift_ratio, 4),
                    transitions=self._drift_events,
                )
            return {
                "schema": {
                    "name": LIVE_SCHEMA_NAME,
                    "version": LIVE_SCHEMA_VERSION,
                },
                "run": {
                    **self._run,
                    "age_s": round(age, 3),
                    "done": self._done,
                },
                "aggregate": agg,
                "workers": workers,
                "recovery": dict(self._recovery),
                "drift": drift,
            }

    def snapshot_json(self) -> str:
        """Canonical JSON (sorted keys, fixed separators) of
        :meth:`snapshot` — the ``GET /snapshot`` body."""
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":"))

    def healthz(self) -> tuple[bool, dict]:
        """``(ok, status)`` for ``GET /healthz``: unhealthy (503) only
        when the pool degraded to in-process draining; a recovering pool
        (retries / lost workers) stays healthy but reports it."""
        with self._lock:
            rec = self._recovery
            if rec["degraded"]:
                status = "degraded"
            elif rec["retries"] or rec["workers_lost"]:
                status = "recovering"
            else:
                status = "ok"
            return status != "degraded", {
                "status": status,
                "done": self._done,
                "degraded_reason": rec["degraded_reason"],
                "retries": rec["retries"],
                "workers_lost": rec["workers_lost"],
                "respawns": rec["respawns"],
                "drifting": self._drifting,
            }

    def to_prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format — the PR 6
        discipline: monotonic series are ``_total`` counters, point-in-
        time values are gauges."""
        from repro.obs.export import _PromWriter

        snap = self.snapshot()
        agg = snap["aggregate"]
        rec = snap["recovery"]
        out = _PromWriter()
        out.gauge("repro_live_up", 0.0 if snap["run"]["done"] else 1.0,
                  "1 while the run is still stepping")
        out.gauge("repro_live_age_seconds", snap["run"]["age_s"],
                  "Seconds since the live plane attached")
        out.counter("repro_live_events", agg["events_total"],
                    "Transport events executed so far")
        out.gauge("repro_live_events_per_second", agg["events_per_s"],
                  "Aggregate instantaneous event rate")
        out.gauge("repro_live_alive", agg["alive"],
                  "Histories alive at the last census sample")
        out.counter("repro_live_xs_lookups", agg["xs_lookups_total"],
                    "Cross-section lookups so far")
        out.counter("repro_live_xs_probes", agg["xs_probes_total"],
                    "Cross-section bin-search probes so far")
        out.counter("repro_live_histories", agg["histories_total"],
                    "Primary histories completed")
        out.counter("repro_live_shards", agg["shards_total"],
                    "Shards completed")
        out.counter("repro_live_steps", agg["steps_total"],
                    "Census steps completed")
        out.gauge("repro_live_workers", agg["workers"],
                  "Worker slots observed by the live plane")
        for w in snap["workers"]:
            labels = {"worker": str(w["worker"])}
            out.counter("repro_live_worker_events", w["events_total"],
                        "Per-worker transport events", labels)
            out.gauge("repro_live_worker_events_per_second",
                      w["events_per_s"],
                      "Per-worker instantaneous event rate", labels)
            out.gauge("repro_live_worker_alive", w["alive"],
                      "Per-worker alive histories at last sample", labels)
            out.gauge("repro_live_worker_heartbeat_age_seconds",
                      w["heartbeat_age_s"],
                      "Per-worker heartbeat age at last sample", labels)
            out.gauge("repro_live_worker_incarnation", w["incarnation"],
                      "Processes that occupied the slot so far", labels)
        for key in ("retries", "rebalances", "respawns", "workers_lost",
                    "shards_drained_in_process"):
            out.counter(f"repro_live_pool_{key}", rec[key],
                        f"Pool recovery ledger: {key}")
        out.gauge("repro_live_pool_degraded",
                  1.0 if rec["degraded"] else 0.0,
                  "1 when the pool fell back to in-process draining")
        drift = snap["drift"]
        if drift is not None:
            out.gauge("repro_live_drift_ratio", drift["ratio"],
                      "Live events/s over the baseline expectation")
            out.gauge("repro_live_drift_band", drift["rel_band"],
                      "Relative noise band of the drift baseline")
            out.gauge("repro_live_perf_drift",
                      1.0 if drift["drifting"] else 0.0,
                      "1 while the event rate is outside the noise band")
            out.counter("repro_live_perf_drift_transitions",
                        drift["transitions"],
                        "Drift state transitions (enter or leave)")
        return out.render()


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

def _json_default(obj):
    """Span/event attrs may carry numpy scalars; keep the dump valid."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


def flight_dump(recorder, *, max_spans: int = 256, max_events: int = 256,
                now: float | None = None) -> dict:
    """The bounded tail of a recorder as a mergeable payload.

    Keeps the most recent ``max_spans``/``max_events`` rows, renumbers
    span ids densely from 0 and remaps parent links (parents outside the
    tail become top-level), and closes still-open spans at ``now`` — so
    the payload always passes ``validate_telemetry``'s parent-range
    check after :meth:`Recorder.merge_payload`.
    """
    if now is None:
        now = time.perf_counter()
    spans = list(recorder.spans)[-max_spans:]
    events = list(recorder.events)[-max_events:]
    id_map = {s.span_id: i for i, s in enumerate(spans)}
    rows = []
    for s in spans:
        t1 = s.t_end if s.t_end >= s.t_start else now
        rows.append({
            "id": id_map[s.span_id],
            "parent": id_map.get(s.parent_id, ROOT),
            "name": s.name,
            "t0": s.t_start,
            "t1": t1,
            "attrs": dict(s.attrs),
            "source": dict(s.source),
        })
    return {
        "spans": rows,
        "events": [e.to_row() for e in events],
    }


class FlightSpiller:
    """Spills the bound recorder's tail to one on-disk dump, atomically.

    One spiller per worker incarnation; ``bind()`` attaches the current
    shard's recorder and forces a first spill (so even an immediate
    mid-shard kill leaves a dump), the worker's heartbeat thread calls
    :meth:`maybe_spill` on its own cadence, and ``clear()`` removes the
    dump when the shard's result ships (the shipped payload supersedes
    it — merging both would duplicate spans).  Writes go through a temp
    file + ``os.replace`` so the parent never reads a torn dump.
    """

    __slots__ = ("path", "_lock", "_rec", "_max_spans", "_max_events",
                 "_interval", "_last")

    def __init__(self, path: str, *, max_spans: int = 256,
                 max_events: int = 256, interval: float = 0.5):
        self.path = path
        self._lock = threading.Lock()
        self._rec = None
        self._max_spans = max_spans
        self._max_events = max_events
        self._interval = interval
        self._last = 0.0

    def bind(self, recorder) -> None:
        with self._lock:
            self._rec = recorder
        self.spill()

    def clear(self) -> None:
        with self._lock:
            self._rec = None
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def maybe_spill(self) -> None:
        if time.monotonic() - self._last >= self._interval:
            self.spill()

    def spill(self) -> None:
        with self._lock:
            rec = self._rec
            if rec is None:
                return
            payload = flight_dump(
                rec, max_spans=self._max_spans, max_events=self._max_events
            )
            tmp = f"{self.path}.tmp"
            try:
                with open(tmp, "w") as fh:
                    json.dump(payload, fh, default=_json_default)
                os.replace(tmp, self.path)
            except OSError:  # pragma: no cover - disk full / racing rmtree
                return
            self._last = time.monotonic()


def load_flight_dump(path: str) -> dict | None:
    """Read a flight dump; ``None`` when absent or unreadable (a worker
    may die before its first spill completes)."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or "spans" not in payload:
        return None
    return payload
