"""Low-overhead span and event recording.

A :class:`Recorder` collects two append-only streams while a run
executes:

* **spans** — nested timed phases (``run`` → ``timestep`` →
  ``census_wave``/``event_pass`` → ``kernel:*``) with monotonic
  ``time.perf_counter`` timestamps (on Linux both processes read
  ``CLOCK_MONOTONIC``, so parent and worker timestamps share a base,
  exactly like the pool's heartbeat array);
* **events** — instantaneous log entries (recovery actions, heartbeat-age
  samples, shard lifecycle marks).

The recorder is purely observational: it draws no random numbers, touches
no particle state, and is consulted by the drivers only through
``recorder.span(...)`` context managers and ``recorder.event(...)`` calls
— which is what makes the hard guarantee checkable that physics is
bit-identical with telemetry on or off (``tests/test_telemetry.py``).

When telemetry is off the drivers hold the shared :data:`NULL_RECORDER`
singleton, whose ``span`` returns one reusable null context and whose
``event``/``add_complete`` are empty methods — the disabled cost is one
attribute lookup and a no-op ``with`` per phase, nothing per kernel call
(the dispatch layer skips recording entirely when ``recorder.enabled``
is false).

Worker processes build their own tagged recorders
(``source={"worker": w, "incarnation": i, "shard": s, "attempt": a}``)
and ship :meth:`Recorder.payload` back with each shard result; the parent
merges payloads in deterministic shard order with
:meth:`Recorder.merge_payload`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

__all__ = ["Span", "LogEvent", "Recorder", "NullRecorder", "NULL_RECORDER"]

#: ``parent_id`` of top-level spans.
ROOT = -1


@dataclass
class Span:
    """One timed phase: a ``[t_start, t_end]`` interval with a name,
    a parent span, free-form attributes, and the source tags of the
    process that recorded it (empty for the parent process)."""

    span_id: int
    parent_id: int
    name: str
    t_start: float
    t_end: float
    attrs: dict = field(default_factory=dict)
    source: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    def to_row(self) -> dict:
        """The serialisable form stored in the telemetry artifact."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t0": self.t_start,
            "t1": self.t_end,
            "attrs": self.attrs,
            "source": self.source,
        }


@dataclass
class LogEvent:
    """One instantaneous log entry (the cross-worker event log)."""

    t: float
    name: str
    attrs: dict = field(default_factory=dict)
    source: dict = field(default_factory=dict)

    def to_row(self) -> dict:
        return {"t": self.t, "name": self.name, "attrs": self.attrs,
                "source": self.source}


class Recorder:
    """Collects spans and events for one process's view of a run.

    Parameters
    ----------
    source:
        Tags stamped onto every span/event this recorder produces —
        ``{}`` for the parent process, ``(worker, incarnation, shard,
        attempt)`` coordinates inside pool workers.
    """

    enabled = True

    __slots__ = ("source", "spans", "events", "_stack")

    def __init__(self, source: dict | None = None) -> None:
        self.source = dict(source or {})
        self.spans: list[Span] = []
        self.events: list[LogEvent] = []
        self._stack: list[int] = []

    # -- recording ------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs):
        """Open a nested phase; yields the :class:`Span` so callers can
        append attributes discovered mid-phase."""
        sid = len(self.spans)
        sp = Span(
            span_id=sid,
            parent_id=self._stack[-1] if self._stack else ROOT,
            name=name,
            t_start=time.perf_counter(),
            t_end=0.0,
            attrs=attrs,
            source=self.source,
        )
        self.spans.append(sp)
        self._stack.append(sid)
        try:
            yield sp
        finally:
            self._stack.pop()
            sp.t_end = time.perf_counter()

    def add_complete(self, name: str, t_start: float, duration_s: float,
                     **attrs) -> None:
        """Record an already-timed phase (kernel invocations: the dispatch
        table measured the interval anyway, so the span costs one append)."""
        self.spans.append(Span(
            span_id=len(self.spans),
            parent_id=self._stack[-1] if self._stack else ROOT,
            name=name,
            t_start=t_start,
            t_end=t_start + duration_s,
            attrs=attrs,
            source=self.source,
        ))

    def event(self, name: str, t: float | None = None, **attrs) -> None:
        """Append one instantaneous entry to the event log."""
        self.events.append(LogEvent(
            t=time.perf_counter() if t is None else t,
            name=name,
            attrs=attrs,
            source=self.source,
        ))

    # -- cross-process hand-off -----------------------------------------
    def payload(self) -> dict:
        """The picklable form a worker ships back with a shard result."""
        return {
            "spans": [s.to_row() for s in self.spans],
            "events": [e.to_row() for e in self.events],
        }

    def merge_payload(self, payload: dict) -> None:
        """Fold a worker payload into this (parent) recorder.

        Span ids are re-based past the current log so the merged tree stays
        consistent; worker-local parent links are preserved and worker
        top-level spans stay top-level.  Call in deterministic shard order
        — the merged log's structure is then independent of worker timing.
        """
        offset = len(self.spans)
        for row in payload.get("spans", ()):
            self.spans.append(Span(
                span_id=row["id"] + offset,
                parent_id=(
                    row["parent"] + offset if row["parent"] != ROOT else ROOT
                ),
                name=row["name"],
                t_start=row["t0"],
                t_end=row["t1"],
                attrs=dict(row.get("attrs", {})),
                source=dict(row.get("source", {})),
            ))
        for row in payload.get("events", ()):
            self.events.append(LogEvent(
                t=row["t"],
                name=row["name"],
                attrs=dict(row.get("attrs", {})),
                source=dict(row.get("source", {})),
            ))


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    A single shared instance (:data:`NULL_RECORDER`) stands in wherever a
    recorder argument was omitted, so driver code has exactly one shape —
    no ``if telemetry`` branches around physics.
    """

    enabled = False

    __slots__ = ()

    _NULL_CTX = nullcontext()

    def span(self, name: str, **attrs):
        return self._NULL_CTX

    def add_complete(self, name: str, t_start: float, duration_s: float,
                     **attrs) -> None:
        pass

    def event(self, name: str, t: float | None = None, **attrs) -> None:
        pass

    def payload(self) -> dict:
        return {"spans": [], "events": []}


#: Shared no-op recorder used when telemetry is off.
NULL_RECORDER = NullRecorder()
