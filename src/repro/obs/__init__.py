"""Run observability: spans, the cross-worker event log, and the
unified :class:`RunTelemetry` artifact with its exporters."""

from repro.obs.export import (
    format_summary,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)
from repro.obs.spans import (
    NULL_RECORDER,
    LogEvent,
    NullRecorder,
    Recorder,
    Span,
)
from repro.obs.telemetry import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    RunTelemetry,
    TelemetrySchemaError,
    build_run_telemetry,
    load_telemetry,
    validate_telemetry,
)

__all__ = [
    "Span",
    "LogEvent",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "RunTelemetry",
    "TelemetrySchemaError",
    "build_run_telemetry",
    "load_telemetry",
    "validate_telemetry",
    "to_jsonl",
    "to_chrome_trace",
    "to_prometheus",
    "format_summary",
]
