"""Run observability: spans, the cross-worker event log, and the
unified :class:`RunTelemetry` artifact with its exporters — plus the
live plane (:mod:`repro.obs.live` aggregation, the
:class:`MetricsServer` endpoint, and the worker flight recorder)."""

from repro.obs.export import (
    format_summary,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)
from repro.obs.live import (
    LIVE_SCHEMA_NAME,
    LIVE_SCHEMA_VERSION,
    NULL_PROBE,
    DriftBand,
    FlightSpiller,
    LiveAggregator,
    LiveBoard,
    NullProbe,
    StepProbe,
    drift_band_from_artifact,
    flight_dump,
    load_flight_dump,
)
from repro.obs.server import MetricsServer
from repro.obs.spans import (
    NULL_RECORDER,
    LogEvent,
    NullRecorder,
    Recorder,
    Span,
)
from repro.obs.telemetry import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    RunTelemetry,
    TelemetrySchemaError,
    build_run_telemetry,
    load_telemetry,
    validate_telemetry,
)

__all__ = [
    "Span",
    "LogEvent",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "RunTelemetry",
    "TelemetrySchemaError",
    "build_run_telemetry",
    "load_telemetry",
    "validate_telemetry",
    "to_jsonl",
    "to_chrome_trace",
    "to_prometheus",
    "format_summary",
    "LIVE_SCHEMA_NAME",
    "LIVE_SCHEMA_VERSION",
    "LiveAggregator",
    "LiveBoard",
    "StepProbe",
    "NullProbe",
    "NULL_PROBE",
    "DriftBand",
    "drift_band_from_artifact",
    "FlightSpiller",
    "flight_dump",
    "load_flight_dump",
    "MetricsServer",
]
