"""The in-run metrics endpoint: a stdlib HTTP daemon over a
:class:`~repro.obs.live.LiveAggregator`.

Opt-in via ``repro run/run3d/ensemble run --serve-metrics PORT``.  Three
routes, all read-only:

* ``GET /metrics``  — Prometheus text exposition (PR 6 discipline).
* ``GET /snapshot`` — the canonical-JSON LiveSnapshot.
* ``GET /healthz``  — 200 while healthy/recovering, 503 once the pool
  degrades to in-process draining.

``ThreadingHTTPServer`` on a daemon thread: scrapes never block the
census loop (the aggregator's lock is held only long enough to copy the
snapshot), and the process never waits on the server to exit.  Port 0
binds an ephemeral port (``server.port`` reports the real one), which is
what the tests use.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["MetricsServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve a live aggregator's views over HTTP from a daemon thread."""

    def __init__(self, aggregator, port: int = 0, host: str = "127.0.0.1"):
        agg = aggregator

        class _Handler(BaseHTTPRequestHandler):
            server_version = "repro-live"
            protocol_version = "HTTP/1.1"

            def log_message(self, *args):  # noqa: ARG002 - silence stderr
                pass

            def do_GET(self):
                try:
                    if self.path == "/metrics":
                        code, ctype = 200, PROMETHEUS_CONTENT_TYPE
                        body = agg.to_prometheus()
                    elif self.path == "/snapshot":
                        code, ctype = 200, "application/json"
                        body = agg.snapshot_json()
                    elif self.path == "/healthz":
                        ok, status = agg.healthz()
                        code = 200 if ok else 503
                        ctype = "application/json"
                        body = json.dumps(status, sort_keys=True,
                                          separators=(",", ":"))
                    else:
                        code, ctype = 404, "text/plain; charset=utf-8"
                        body = "not found: try /metrics /snapshot /healthz\n"
                except Exception as exc:  # pragma: no cover - defensive
                    code, ctype = 500, "text/plain; charset=utf-8"
                    body = f"internal error: {exc}\n"
                payload = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    def url(self, path: str = "") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
