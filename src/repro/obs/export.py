"""Exporters for the :class:`~repro.obs.telemetry.RunTelemetry` artifact.

Four consumers, four formats:

* :func:`to_jsonl` — one JSON object per line (header, then spans, then
  events) for log shippers and ``jq`` pipelines;
* :func:`to_chrome_trace` — the Chrome ``trace_event`` format, loadable
  in ``about://tracing`` / Perfetto: each worker becomes a process row,
  spans become complete (``"ph": "X"``) slices, log entries become
  instant events;
* :func:`to_prometheus` — text exposition format for scrape-style
  ingestion of the scalar measurements;
* :func:`format_summary` — the human rendering ``repro report`` prints:
  run header, counters digest, ranked kernel table, pool/recovery ledger
  and the span tree aggregated by name path.
"""

from __future__ import annotations

import json

__all__ = [
    "to_jsonl",
    "to_chrome_trace",
    "to_prometheus",
    "format_summary",
]


def to_jsonl(telemetry) -> str:
    """One JSON object per line: a ``header`` record carrying every
    scalar section, then one ``span`` record per span, one ``event``
    record per log entry."""
    d = telemetry.to_dict()
    lines = [json.dumps({
        "type": "header",
        "schema": d["schema"],
        "meta": d["meta"],
        "counters": d["counters"],
        "kernel_profile": d["kernel_profile"],
        "workspace": d["workspace"],
        "arena": d["arena"],
        "pool": d["pool"],
    }, sort_keys=True)]
    for row in d["spans"]:
        lines.append(json.dumps({"type": "span", **row}, sort_keys=True))
    for row in d["events"]:
        lines.append(json.dumps({"type": "event", **row}, sort_keys=True))
    return "\n".join(lines) + "\n"


#: Event names rendered with global scope in the Chrome trace (they mark
#: run-wide scheduling decisions, not per-process detail).
_GLOBAL_SCOPE_EVENTS = frozenset({"scheme_switch", "rebalance"})


def _pid_of(source: dict) -> int:
    """Process row for the trace viewer: parent = 0, worker w = w + 1."""
    worker = source.get("worker")
    return 0 if worker is None else int(worker) + 1


def to_chrome_trace(telemetry) -> dict:
    """The artifact as a Chrome ``trace_event`` JSON object.

    Timestamps are re-based to the earliest recorded instant and
    expressed in microseconds (the format's unit).  Load the dumped JSON
    in ``about://tracing`` or https://ui.perfetto.dev.
    """
    spans = telemetry.spans
    events = telemetry.events
    t_min = min(
        [r["t0"] for r in spans] + [r["t"] for r in events], default=0.0
    )

    trace: list[dict] = []
    seen_pids: dict[int, str] = {}
    for row in spans + events:
        pid = _pid_of(row.get("source", {}))
        if pid not in seen_pids:
            src = row.get("source", {})
            name = "parent" if pid == 0 else (
                f"worker {src.get('worker')} "
                f"(incarnation {src.get('incarnation', 0)})"
            )
            seen_pids[pid] = name
    for pid, name in sorted(seen_pids.items()):
        trace.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })

    for row in spans:
        trace.append({
            "name": row["name"],
            "ph": "X",
            "ts": (row["t0"] - t_min) * 1e6,
            "dur": max(0.0, (row["t1"] - row["t0"]) * 1e6),
            "pid": _pid_of(row.get("source", {})),
            "tid": 0,
            "args": {**row.get("attrs", {}), **row.get("source", {})},
        })
    for row in events:
        trace.append({
            "name": row["name"],
            "ph": "i",
            # Scheduling decisions get global scope — full-height lines
            # in the viewer — so scheme switches and shard resplits
            # stand out against per-process instants.
            "s": "g" if row["name"] in _GLOBAL_SCOPE_EVENTS else "p",
            "ts": (row["t"] - t_min) * 1e6,
            "pid": _pid_of(row.get("source", {})),
            "tid": 0,
            "args": {**row.get("attrs", {}), **row.get("source", {})},
        })

    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": telemetry.to_dict()["schema"],
            "problem": telemetry.meta.get("problem"),
            "scheme": telemetry.meta.get("scheme"),
        },
    }


def _prom_escape(value: str) -> str:
    """Escape a label value per the text exposition format: backslash,
    double-quote, and line feed."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


#: Counter-section keys that are *not* monotonic (snapshots/ratios stay
#: gauges even though they live in ``telemetry.counters``).
_COUNTER_GAUGE_KEYS = frozenset({"load_imbalance"})


class _PromWriter:
    """Accumulates samples grouped per metric family.

    The exposition format requires all lines of one metric to form a
    single group, and counters to carry the ``_total`` suffix; samples
    are collected per family and rendered in registration order, with a
    set-based dedup instead of the old O(lines²) prefix scan.
    """

    def __init__(self):
        self._order: list[str] = []
        self._families: dict[str, tuple[str, str, list]] = {}

    def _add(self, name, value, help_text, type_, labels):
        if name not in self._families:
            self._order.append(name)
            self._families[name] = (help_text, type_, [])
        label_s = ""
        if labels:
            inner = ",".join(
                f'{k}="{_prom_escape(v)}"' for k, v in labels.items()
            )
            label_s = "{" + inner + "}"
        self._families[name][2].append((label_s, float(value)))

    def gauge(self, name, value, help_text, labels=None):
        self._add(name, value, help_text, "gauge", labels)

    def counter(self, name, value, help_text, labels=None):
        # Monotonic series: conventional `_total` suffix, `counter` type.
        if not name.endswith("_total"):
            name += "_total"
        self._add(name, value, help_text, "counter", labels)

    def render(self) -> str:
        lines: list[str] = []
        for name in self._order:
            help_text, type_, samples = self._families[name]
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {type_}")
            for label_s, value in samples:
                lines.append(f"{name}{label_s} {value:.10g}")
        return "\n".join(lines) + "\n"


def to_prometheus(telemetry) -> str:
    """The scalar sections in Prometheus text exposition format.

    Monotonic measurements (event counters, kernel call/item/second
    accumulators, workspace churn, the pool recovery ledger) are typed
    ``counter`` with the ``_total`` suffix; point-in-time measurements
    (wall-clock, imbalance, arena footprint, heartbeat ages) stay
    ``gauge``.
    """
    out = _PromWriter()

    meta = telemetry.meta
    out.gauge("repro_run_wallclock_seconds", meta.get("wallclock_s") or 0.0,
              "Host wall-clock of the run")
    for key, value in sorted(telemetry.counters.items()):
        if key in _COUNTER_GAUGE_KEYS:
            out.gauge(f"repro_counter_{key}", value,
                      f"Counters.{key} for the run")
        else:
            out.counter(f"repro_counter_{key}", value,
                        f"Counters.{key} for the run")
    for name, (calls, items, seconds) in sorted(
        telemetry.kernel_profile.items()
    ):
        labels = {"kernel": name}
        out.counter("repro_kernel_calls", calls,
                    "Kernel invocation count", labels)
        out.counter("repro_kernel_items", items,
                    "Kernel lanes processed", labels)
        out.counter("repro_kernel_seconds", seconds,
                    "Cumulative kernel wall-clock", labels)
    ws = telemetry.workspace
    out.counter("repro_workspace_allocations", ws.get("allocations", 0),
                "Workspace buffers grown")
    out.counter("repro_workspace_reuses", ws.get("reuses", 0),
                "Workspace buffers reused")
    out.counter("repro_xs_lookup_probes", ws.get("xs_binary_probes", 0),
                "Cross-section bin-search probes by strategy",
                {"strategy": "binary"})
    out.counter("repro_xs_lookup_probes", ws.get("xs_linear_probes", 0),
                "Cross-section bin-search probes by strategy",
                {"strategy": "cached_linear"})
    out.gauge("repro_arena_bytes", telemetry.arena.get("nbytes", 0),
              "Final population arena footprint")
    decisions: dict[str, int] = {}
    for row in telemetry.events:
        if row.get("name") == "scheme_switch":
            scheme = str(row.get("attrs", {}).get("scheme", "unknown"))
            decisions[scheme] = decisions.get(scheme, 0) + 1
    for scheme, count in sorted(decisions.items()):
        out.counter("repro_scheduler_decisions", count,
                    "Adaptive scheduler scheme decisions per census step",
                    {"scheme": scheme})
    pool = telemetry.pool
    if pool is not None:
        for key in ("retries", "rebalances", "respawns", "workers_lost",
                    "shards_drained_in_process"):
            out.counter(f"repro_pool_{key}", pool.get(key, 0),
                        f"Pool recovery ledger: {key}")
        out.gauge("repro_pool_degraded", 1.0 if pool.get("degraded") else 0.0,
                  "1 when the pool fell back to in-process draining")
        for w in pool.get("workers", ()):
            labels = {"worker": str(w["worker_id"])}
            out.gauge("repro_worker_busy_seconds", w["busy_s"],
                      "Per-worker driver wall-clock", labels)
            out.counter("repro_worker_events", w["events"],
                        "Per-worker transport events", labels)
            out.counter("repro_worker_incarnations", w["incarnations"],
                        "Processes that occupied the slot", labels)
            out.gauge("repro_worker_last_heartbeat_age_seconds",
                      w["last_heartbeat_age_s"],
                      "Heartbeat age at collection time", labels)
        for sid, attempts in enumerate(pool.get("shard_attempts", ())):
            out.counter("repro_pool_shard_attempts", attempts,
                        "Re-execution attempts per shard "
                        "(0 = first try succeeded)", {"shard": str(sid)})
    out.counter("repro_spans", len(telemetry.spans),
                "Spans in the telemetry artifact")
    out.counter("repro_events", len(telemetry.events),
                "Log events in the telemetry artifact")
    return out.render()


# ---------------------------------------------------------------------------
# Human summary
# ---------------------------------------------------------------------------

def _aggregate_span_tree(spans) -> list[tuple[str, int, float]]:
    """Aggregate spans by name *path* (root → ... → name).

    Returns ``(indented name, count, total seconds)`` rows in first-seen
    order — the shape of the tree without the per-instance noise.
    """
    by_id = {row["id"]: row for row in spans}

    def path_of(row) -> tuple[str, ...]:
        parts = [row["name"]]
        seen = {row["id"]}
        parent = row["parent"]
        while parent != -1 and parent in by_id and parent not in seen:
            seen.add(parent)
            parts.append(by_id[parent]["name"])
            parent = by_id[parent]["parent"]
        return tuple(reversed(parts))

    order: list[tuple[str, ...]] = []
    agg: dict[tuple[str, ...], list] = {}
    for row in spans:
        path = path_of(row)
        if path not in agg:
            agg[path] = [0, 0.0]
            order.append(path)
        agg[path][0] += 1
        agg[path][1] += row["t1"] - row["t0"]
    order.sort()
    return [
        ("  " * (len(path) - 1) + path[-1], agg[path][0], agg[path][1])
        for path in order
    ]


def format_summary(telemetry) -> str:
    """The human rendering ``repro report`` prints."""
    from repro.kernels import format_profile

    meta = telemetry.meta
    c = telemetry.counters
    out = []
    out.append(
        f"run: problem={meta.get('problem')} scheme={meta.get('scheme')} "
        f"mesh={meta.get('nx')}x{meta.get('ny')}"
        + (f"x{meta.get('nz')}" if meta.get("nz") else "")
        + f" particles={meta.get('nparticles')} "
        f"timesteps={meta.get('ntimesteps')} seed={meta.get('seed')}"
    )
    out.append(f"wall-clock: {meta.get('wallclock_s', 0.0):.3f} s")
    out.append(
        f"events: collisions={c.get('collisions')} facets={c.get('facets')} "
        f"census={c.get('census_events')} total={c.get('total_events')} "
        f"(load imbalance {c.get('load_imbalance', 0.0):.3f})"
    )
    ws = telemetry.workspace
    out.append(
        f"workspace: {ws.get('allocations')} allocations, "
        f"{ws.get('reuses')} reuses; xs bin reuses: "
        f"{ws.get('xs_bin_reuses')}"
    )
    out.append(
        f"xs probes: binary={ws.get('xs_binary_probes', 0)} "
        f"cached-linear={ws.get('xs_linear_probes', 0)}"
    )
    arena = telemetry.arena
    out.append(
        f"arena: {arena.get('nbytes')} B for {arena.get('nparticles')} "
        f"particles ({arena.get('bytes_per_particle')} B/particle)"
    )

    if telemetry.kernel_profile:
        out.append("")
        out.append("kernel profile (ranked by wall-clock):")
        out.append(format_profile(telemetry.kernel_profile))

    pool = telemetry.pool
    if pool is not None:
        out.append("")
        out.append(
            f"pool: {pool['nworkers']} workers, {pool['schedule']} schedule "
            f"(chunk {pool['chunk']}, {pool['start_method']} start)"
        )
        for w in pool.get("workers", ()):
            out.append(
                f"  worker {w['worker_id']}: histories={w['histories']} "
                f"events={w['events']} chunks={w['chunks']} "
                f"busy={w['busy_s']:.3f}s "
                f"incarnations={w['incarnations']} "
                f"heartbeat-age={w['last_heartbeat_age_s']:.2f}s"
            )
        attempts = pool.get("shard_attempts", [])
        retried = sum(1 for a in attempts if a > 0)
        out.append(
            f"  shards: {len(attempts)} total, {retried} retried "
            f"(attempt counts {attempts})"
        )
        if (pool["retries"] or pool["respawns"] or pool["workers_lost"]
                or pool["degraded"]):
            out.append(
                f"  recovery: {pool['workers_lost']} workers lost, "
                f"{pool['respawns']} respawned, "
                f"{pool['retries']} shard retries"
            )
        if pool["degraded"]:
            out.append(
                f"  DEGRADED MODE: {pool['degraded_reason']} — "
                f"{pool['shards_drained_in_process']} shards drained "
                "in-process"
            )

    if telemetry.spans:
        out.append("")
        out.append("span tree (aggregated by phase):")
        name_w = max(
            len(name) for name, _, _ in _aggregate_span_tree(telemetry.spans)
        )
        for name, count, seconds in _aggregate_span_tree(telemetry.spans):
            out.append(f"  {name:<{name_w}} {count:>7}x {seconds:>10.6f} s")

    recov = telemetry.recovery_events()
    if recov:
        out.append("")
        out.append(f"recovery event log ({len(recov)} entries):")
        for row in recov:
            src = row.get("source", {})
            tag = (
                f" [worker {src['worker']}]" if "worker" in src else ""
            )
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(row.get("attrs", {}).items())
            )
            out.append(f"  t={row['t']:.6f} {row['name']}{tag} {attrs}")

    flights = [r for r in telemetry.events if r["name"] == "flight_recorder"]
    if flights:
        out.append("")
        out.append(
            f"flight recorder ({len(flights)} dump"
            f"{'s' if len(flights) != 1 else ''} merged from "
            "lost/hung workers):"
        )
        for row in flights:
            a = row.get("attrs", {})
            out.append(
                f"  worker {a.get('worker', '?')} incarnation "
                f"{a.get('incarnation', '?')}: {a.get('spans', 0)} spans, "
                f"{a.get('events', 0)} events ({a.get('reason', '')})"
            )
    return "\n".join(out) + "\n"
