"""The unified, versioned run-telemetry artifact.

One :class:`RunTelemetry` gathers every measurement surface a run
produces — the counters snapshot, the kernel dispatch profile, workspace
and bin-reuse statistics, arena byte accounting, the pool's recovery
ledger (including per-worker last-heartbeat ages and per-shard attempt
counts), and the merged span tree / event log — under a single schema
(``repro.run_telemetry`` version :data:`SCHEMA_VERSION`).

Schema policy (DESIGN.md §7): the version integer bumps on any change
that removes or retypes a field; adding optional fields is
backwards-compatible and does not bump.  :func:`validate_telemetry`
checks an artifact dict structurally (no external dependency) and is the
gate the CI telemetry job runs on every exported artifact.

Serialisation is canonical — sorted keys, fixed separators — so
``dump → load → dump`` is byte-stable (asserted by the round-trip test).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.spans import LogEvent, Recorder, Span

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "TelemetrySchemaError",
    "RunTelemetry",
    "build_run_telemetry",
    "validate_telemetry",
    "load_telemetry",
]

SCHEMA_NAME = "repro.run_telemetry"
SCHEMA_VERSION = 1


class TelemetrySchemaError(ValueError):
    """An artifact dict does not conform to the telemetry schema."""

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        super().__init__(
            "telemetry artifact failed schema validation:\n  "
            + "\n  ".join(self.problems)
        )


@dataclass
class RunTelemetry:
    """Everything measured about one run, in serialisable form.

    ``spans``/``events`` are plain row dicts (the :meth:`Span.to_row`
    shape) so the artifact survives a JSON round-trip unchanged.
    """

    meta: dict
    counters: dict
    kernel_profile: dict
    workspace: dict
    arena: dict
    pool: dict | None
    spans: list = field(default_factory=list)
    events: list = field(default_factory=list)

    # -- (de)serialisation ----------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": {"name": SCHEMA_NAME, "version": SCHEMA_VERSION},
            "meta": self.meta,
            "counters": self.counters,
            "kernel_profile": self.kernel_profile,
            "workspace": self.workspace,
            "arena": self.arena,
            "pool": self.pool,
            "spans": self.spans,
            "events": self.events,
        }

    def to_json(self) -> str:
        """Canonical JSON — sorted keys, fixed separators — so repeated
        dumps of one artifact are byte-identical."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def dump(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, d: dict) -> "RunTelemetry":
        validate_telemetry(d)
        return cls(
            meta=d["meta"],
            counters=d["counters"],
            kernel_profile=d["kernel_profile"],
            workspace=d["workspace"],
            arena=d["arena"],
            pool=d["pool"],
            spans=d["spans"],
            events=d["events"],
        )

    # -- convenience accessors ------------------------------------------
    def span_objects(self) -> list[Span]:
        """The span rows rehydrated as :class:`Span` records."""
        return [
            Span(
                span_id=r["id"], parent_id=r["parent"], name=r["name"],
                t_start=r["t0"], t_end=r["t1"],
                attrs=dict(r.get("attrs", {})),
                source=dict(r.get("source", {})),
            )
            for r in self.spans
        ]

    def event_objects(self) -> list[LogEvent]:
        return [
            LogEvent(
                t=r["t"], name=r["name"], attrs=dict(r.get("attrs", {})),
                source=dict(r.get("source", {})),
            )
            for r in self.events
        ]

    def worker_span_count(self) -> int:
        """Spans recorded inside worker processes (tagged sources)."""
        return sum(1 for r in self.spans if r.get("source"))

    def recovery_events(self) -> list[dict]:
        """Event rows from the pool's fault-tolerance machinery."""
        names = {"worker_lost", "respawn", "retry", "degraded",
                 "drain_in_process"}
        return [r for r in self.events if r["name"] in names]


def load_telemetry(path) -> RunTelemetry:
    """Read and schema-validate an artifact file."""
    return RunTelemetry.from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Building an artifact from a run
# ---------------------------------------------------------------------------

def _pool_section(pool) -> dict | None:
    """Serialise a :class:`~repro.parallel.pool.PoolRunInfo`."""
    if pool is None:
        return None
    return {
        "nworkers": pool.nworkers,
        "schedule": pool.schedule.value,
        "chunk": pool.chunk,
        "start_method": pool.start_method,
        "retries": pool.retries,
        "rebalances": getattr(pool, "rebalances", 0),
        "respawns": pool.respawns,
        "workers_lost": pool.workers_lost,
        "degraded": pool.degraded,
        "degraded_reason": pool.degraded_reason,
        "shards_drained_in_process": pool.shards_drained_in_process,
        "shard_attempts": list(pool.shard_attempts),
        "workers": [
            {
                "worker_id": w.worker_id,
                "histories": w.histories,
                "final_histories": w.final_histories,
                "events": w.events,
                "chunks": w.chunks,
                "busy_s": w.busy_s,
                "total_s": w.total_s,
                "incarnations": w.incarnations,
                "last_heartbeat_age_s": w.last_heartbeat_age_s,
            }
            for w in pool.workers
        ],
    }


def build_run_telemetry(result, recorder: Recorder | None = None):
    """Assemble the artifact from a transport result and its recorder.

    Works for both the 2-D :class:`~repro.core.simulation.TransportResult`
    and the 3-D :class:`~repro.volume.driver3.Transport3DResult` (which
    has no pool or scheme fields — those sections are ``None``/omitted).
    """
    config = result.config
    c = result.counters
    scheme = getattr(result, "scheme", None)
    meta = {
        "problem": getattr(config, "name", "unknown"),
        # 2-D results carry a Scheme enum; 3-D results a plain string.
        "scheme": getattr(scheme, "value", scheme),
        "nx": getattr(config, "nx", None),
        "ny": getattr(config, "ny", None),
        "nz": getattr(config, "nz", None),
        "nparticles": getattr(config, "nparticles", None),
        "ntimesteps": getattr(config, "ntimesteps", None),
        "seed": getattr(config, "seed", None),
        # Cross-section backend ("multigroup" / "ce"); the enum coerces
        # to its string value.
        "xs_mode": getattr(
            getattr(config, "xs_mode", None), "value",
            getattr(config, "xs_mode", None),
        ),
        "wallclock_s": result.wallclock_s,
    }
    counters = dict(c.snapshot())
    counters["total_events"] = c.total_events
    counters["load_imbalance"] = c.load_imbalance()
    arena = result.arena
    return RunTelemetry(
        meta=meta,
        counters=counters,
        kernel_profile={
            name: list(row) for name, row in c.kernel_profile.items()
        },
        workspace={
            "allocations": c.workspace_allocations,
            "reuses": c.workspace_reuses,
            "xs_bin_reuses": c.xs_bin_reuses,
            # Exact bin-search probe counts by lookup strategy (the
            # paper's §VI-A search-cost instrumentation).
            "xs_binary_probes": c.xs_binary_probes,
            "xs_linear_probes": c.xs_linear_probes,
        },
        arena={
            "nbytes": c.arena_nbytes,
            "nparticles": len(arena),
            "bytes_per_particle": type(arena).bytes_per_particle(),
        },
        pool=_pool_section(getattr(result, "pool", None)),
        spans=(
            [s.to_row() for s in recorder.spans] if recorder is not None
            else []
        ),
        events=(
            [e.to_row() for e in recorder.events] if recorder is not None
            else []
        ),
    )


# ---------------------------------------------------------------------------
# Schema validation (hand-rolled: no external jsonschema dependency)
# ---------------------------------------------------------------------------

_NUM = (int, float)

_SPAN_FIELDS = {"id": int, "parent": int, "name": str, "t0": _NUM,
                "t1": _NUM, "attrs": dict, "source": dict}
_EVENT_FIELDS = {"t": _NUM, "name": str, "attrs": dict, "source": dict}


def _check_rows(rows, fields, label, problems, limit=5):
    if not isinstance(rows, list):
        problems.append(f"{label} must be a list")
        return
    bad = 0
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"{label}[{i}] is not an object")
            bad += 1
        else:
            for key, typ in fields.items():
                if key not in row:
                    problems.append(f"{label}[{i}] missing {key!r}")
                    bad += 1
                elif not isinstance(row[key], typ) or isinstance(
                    row[key], bool
                ) and typ is not bool:
                    problems.append(
                        f"{label}[{i}].{key} has wrong type "
                        f"{type(row[key]).__name__}"
                    )
                    bad += 1
        if bad >= limit:
            problems.append(f"{label}: further problems suppressed")
            return


def validate_telemetry(d: dict) -> None:
    """Structurally validate an artifact dict; raise
    :class:`TelemetrySchemaError` listing every problem found."""
    problems: list[str] = []
    if not isinstance(d, dict):
        raise TelemetrySchemaError(["artifact is not an object"])

    schema = d.get("schema")
    if not isinstance(schema, dict):
        problems.append("missing 'schema' section")
    else:
        if schema.get("name") != SCHEMA_NAME:
            problems.append(
                f"schema.name is {schema.get('name')!r}, "
                f"expected {SCHEMA_NAME!r}"
            )
        version = schema.get("version")
        if not isinstance(version, int) or isinstance(version, bool):
            problems.append("schema.version must be an integer")
        elif version > SCHEMA_VERSION:
            problems.append(
                f"schema.version {version} is newer than this reader "
                f"({SCHEMA_VERSION})"
            )

    for key in ("meta", "counters", "kernel_profile", "workspace", "arena"):
        if not isinstance(d.get(key), dict):
            problems.append(f"'{key}' must be an object")

    if isinstance(d.get("counters"), dict):
        for name, value in d["counters"].items():
            if not isinstance(value, _NUM) or isinstance(value, bool):
                problems.append(f"counters.{name} is not numeric")

    if isinstance(d.get("kernel_profile"), dict):
        for name, row in d["kernel_profile"].items():
            if (not isinstance(row, list) or len(row) != 3
                    or not all(isinstance(v, _NUM) for v in row)):
                problems.append(
                    f"kernel_profile[{name!r}] must be "
                    "[calls, items, seconds]"
                )

    pool = d.get("pool", None)
    if pool is not None:
        if not isinstance(pool, dict):
            problems.append("'pool' must be an object or null")
        else:
            for key in ("nworkers", "retries", "respawns", "workers_lost"):
                if not isinstance(pool.get(key), int):
                    problems.append(f"pool.{key} must be an integer")
            if not isinstance(pool.get("shard_attempts"), list):
                problems.append("pool.shard_attempts must be a list")
            if not isinstance(pool.get("workers"), list):
                problems.append("pool.workers must be a list")

    _check_rows(d.get("spans"), _SPAN_FIELDS, "spans", problems)
    _check_rows(d.get("events"), _EVENT_FIELDS, "events", problems)

    if isinstance(d.get("spans"), list):
        n = len(d["spans"])
        for i, row in enumerate(d["spans"]):
            if isinstance(row, dict) and isinstance(row.get("parent"), int):
                if row["parent"] != -1 and not 0 <= row["parent"] < n:
                    problems.append(
                        f"spans[{i}].parent {row['parent']} out of range"
                    )
                    break

    if problems:
        raise TelemetrySchemaError(problems)
