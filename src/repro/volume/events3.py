"""3-D event timers: facet intersection over three axes.

The Cartesian intersection check gains one more axis; everything else
(collision and census distances, event selection with the fixed tie-break)
is reused from the 2-D event module — the point of the extension is that
the event structure does not change with dimensionality.
"""

from __future__ import annotations

from repro.kernels import batch3 as _batch3
from repro.kernels.batch import HUGE_DISTANCE, PARALLEL_EPS

__all__ = ["distance_to_facet_3d", "distance_to_facet_3d_vec"]


def distance_to_facet_3d(
    x: float, y: float, z: float,
    ox: float, oy: float, oz: float,
    x_lo: float, x_hi: float,
    y_lo: float, y_hi: float,
    z_lo: float, z_hi: float,
) -> tuple[float, int]:
    """Distance to the nearest facet of a 3-D cell; returns ``(d, axis)``
    with axis 0/1/2 for x/y/z.  Ties pick the lowest axis, matching the
    vectorised path."""
    if ox > PARALLEL_EPS:
        dist_x = (x_hi - x) / ox
    elif ox < -PARALLEL_EPS:
        dist_x = (x_lo - x) / ox
    else:
        dist_x = HUGE_DISTANCE
    if oy > PARALLEL_EPS:
        dist_y = (y_hi - y) / oy
    elif oy < -PARALLEL_EPS:
        dist_y = (y_lo - y) / oy
    else:
        dist_y = HUGE_DISTANCE
    if oz > PARALLEL_EPS:
        dist_z = (z_hi - z) / oz
    elif oz < -PARALLEL_EPS:
        dist_z = (z_lo - z) / oz
    else:
        dist_z = HUGE_DISTANCE

    if dist_x <= dist_y and dist_x <= dist_z:
        return dist_x, 0
    if dist_y <= dist_z:
        return dist_y, 1
    return dist_z, 2


# Deprecated alias of the batch kernel.
distance_to_facet_3d_vec = _batch3.distance_to_facet_3d
