"""3-D direction sampling and scattering rotation.

The elastic energy/deflection *kinematics* are dimension-independent
(:func:`repro.physics.collision.elastic_scatter_kinematics` is reused);
what changes in 3-D is the direction algebra: isotropic emission covers
the unit sphere (two draws: polar cosine and azimuth), and scattering
rotates the flight direction by the deflection cosine about a uniformly
random azimuth — the standard Monte Carlo rotation.

Every function exists in scalar and vectorised form, bit-identical, with
numpy transcendentals on both paths (the same discipline as the 2-D
samplers).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import batch3 as _batch3

__all__ = [
    "sample_isotropic_direction_3d",
    "sample_isotropic_direction_3d_vec",
    "rotate_direction",
    "rotate_direction_vec",
]

#: Below this pole margin the rotation uses the polar-axis special case.
_POLE_EPS = 1.0e-10


def sample_isotropic_direction_3d(u1: float, u2: float) -> tuple[float, float, float]:
    """Two uniforms → a unit vector uniform on the sphere.

    ``w = 2u₁ − 1`` (uniform polar cosine), azimuth ``2π u₂``.
    """
    w = 2.0 * u1 - 1.0
    s = float(np.sqrt(max(0.0, 1.0 - w * w)))
    phi = 2.0 * np.pi * u2
    return float(s * np.cos(phi)), float(s * np.sin(phi)), w


# Deprecated alias of the batch kernel.
sample_isotropic_direction_3d_vec = _batch3.sample_isotropic_direction_3d


def rotate_direction(
    u: float, v: float, w: float, mu: float, phi: float
) -> tuple[float, float, float]:
    """Rotate the unit vector ``(u,v,w)`` by deflection cosine ``mu`` about
    azimuth ``phi`` (the standard MC scattering rotation)."""
    s = float(np.sqrt(max(0.0, 1.0 - mu * mu)))
    cosp = float(np.cos(phi))
    sinp = float(np.sin(phi))
    denom_sq = 1.0 - w * w
    if denom_sq < _POLE_EPS:
        # Flying along ±z: rotate in the horizontal plane directly.
        sign = 1.0 if w > 0.0 else -1.0
        return s * cosp, s * sinp, mu * sign
    denom = float(np.sqrt(denom_sq))
    nu = mu * u + s * (u * w * cosp - v * sinp) / denom
    nv = mu * v + s * (v * w * cosp + u * sinp) / denom
    nw = mu * w - s * denom * cosp
    return nu, nv, nw


# Deprecated alias of the batch kernel (same pole special-case).
rotate_direction_vec = _batch3.rotate_direction
