"""Conservation checks for 3-D runs (same ledger as the 2-D core)."""

from __future__ import annotations

from repro.volume.driver3 import Transport3DResult

__all__ = ["energy_balance_error_3d", "population_accounted_3d"]


def energy_balance_error_3d(result: Transport3DResult) -> float:
    """``|deposited + in_flight + escaped − injected| / injected``."""
    injected = result.config.total_source_energy_ev()
    accounted = (
        result.tally.total()
        + result.in_flight_energy_ev()
        + result.counters.escaped_energy
    )
    return abs(accounted - injected) / injected


def population_accounted_3d(result: Transport3DResult) -> bool:
    """Alive + terminated + escaped covers every history."""
    c = result.counters
    return result.alive_count() + c.terminations + c.escapes == c.nparticles
