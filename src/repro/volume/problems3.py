"""3-D problem configuration and the three test-case factories.

The factories mirror the 2-D suite (§IV-B) in one more dimension: stream
(centred source, near-vacuum cube), scatter (dense cube) and csp (corner
source, dense cube in the centre).  Mesh extent stays 1 m so the per-facet
arithmetic is directly comparable with the 2-D problems.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.problems import HIGH_DENSITY, LOW_DENSITY, SOURCE_ENERGY_EV
from repro.mesh.boundary import BoundaryCondition
from repro.physics.variance import DEFAULT_ENERGY_CUTOFF_EV, DEFAULT_WEIGHT_CUTOFF

__all__ = [
    "SourceBox3D",
    "Volume3DConfig",
    "stream3_problem",
    "scatter3_problem",
    "csp3_problem",
]


@dataclass(frozen=True)
class SourceBox3D:
    """A mono-energetic isotropic box source in 3-D."""

    x0: float
    x1: float
    y0: float
    y1: float
    z0: float
    z1: float
    energy_ev: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not (self.x0 < self.x1 and self.y0 < self.y1 and self.z0 < self.z1):
            raise ValueError("source box must have positive extent")
        if self.energy_ev <= 0 or self.weight <= 0:
            raise ValueError("energy and weight must be positive")


@dataclass(frozen=True)
class Volume3DConfig:
    """Full specification of one 3-D transport calculation."""

    name: str
    nx: int
    ny: int
    nz: int
    density: np.ndarray
    source: SourceBox3D
    nparticles: int
    width: float = 1.0
    height: float = 1.0
    depth: float = 1.0
    dt: float = 1.0e-7
    ntimesteps: int = 1
    seed: int = 7
    molar_mass_g_mol: float = 1.0
    energy_cutoff_ev: float = DEFAULT_ENERGY_CUTOFF_EV
    weight_cutoff: float = DEFAULT_WEIGHT_CUTOFF
    xs_nentries: int = 2500
    boundary: BoundaryCondition = BoundaryCondition.REFLECTIVE
    #: Cross-section backend: "multigroup" (paper default) or "ce"
    #: (continuous-energy union grid, :mod:`repro.xs.ce`).
    xs_mode: str = "multigroup"
    #: Explicit CE material set; ``None`` uses the synthetic default
    #: library (material 0, the homogeneous medium of the 3-D problems).
    ce_materials: tuple | None = None

    def __post_init__(self) -> None:
        if self.nparticles < 1:
            raise ValueError("need at least one particle")
        if self.dt <= 0 or self.ntimesteps < 1:
            raise ValueError("invalid time parameters")
        density = np.asarray(self.density, dtype=np.float64)
        if density.shape != (self.nz, self.ny, self.nx):
            raise ValueError(
                f"density shape {density.shape} != ({self.nz}, {self.ny}, {self.nx})"
            )
        object.__setattr__(self, "density", density)
        from repro.xs.provider import XsMode

        object.__setattr__(self, "xs_mode", XsMode.coerce(self.xs_mode))
        if self.ce_materials is not None and not self.ce_materials:
            raise ValueError("ce_materials must be None or non-empty")

    @property
    def a_ratio(self) -> float:
        """Elastic scattering mass ratio."""
        return self.molar_mass_g_mol

    def resolved_provider(self):
        """Build this run's cross-section provider (one material).

        Multigroup wraps the same ``make_*_table(xs_nentries)`` pair the
        pre-provider driver built, carried by a
        :func:`~repro.xs.materials.hydrogenous_moderator` whose molar mass
        is the config's — bit-identical tables and metadata.
        """
        from repro.xs.materials import hydrogenous_moderator
        from repro.xs.provider import XsMode, resolve_provider

        if self.xs_mode is XsMode.CONTINUOUS_ENERGY:
            return resolve_provider(
                self.xs_mode,
                ce_materials=self.ce_materials,
                nmaterials=1,
                xs_nentries=self.xs_nentries,
            )
        return resolve_provider(
            self.xs_mode,
            materials=(
                hydrogenous_moderator(self.xs_nentries, self.molar_mass_g_mol),
            ),
            xs_nentries=self.xs_nentries,
        )

    def with_(self, **changes) -> "Volume3DConfig":
        """Copy with fields replaced."""
        return replace(self, **changes)

    def total_source_energy_ev(self) -> float:
        """Conservation budget per run."""
        return self.nparticles * self.source.energy_ev * self.source.weight


def _centre_box() -> SourceBox3D:
    return SourceBox3D(
        x0=0.45, x1=0.55, y0=0.45, y1=0.55, z0=0.45, z1=0.55,
        energy_ev=SOURCE_ENERGY_EV,
    )


def stream3_problem(n: int = 24, nparticles: int = 50, **overrides) -> Volume3DConfig:
    """3-D stream: centred source, near-vacuum cube."""
    density = np.full((n, n, n), LOW_DENSITY)
    return Volume3DConfig(
        name="stream3", nx=n, ny=n, nz=n, density=density,
        source=_centre_box(), nparticles=nparticles, **overrides,
    )


def scatter3_problem(n: int = 24, nparticles: int = 50, **overrides) -> Volume3DConfig:
    """3-D scatter: centred source, homogeneously dense cube."""
    density = np.full((n, n, n), HIGH_DENSITY)
    return Volume3DConfig(
        name="scatter3", nx=n, ny=n, nz=n, density=density,
        source=_centre_box(), nparticles=nparticles, **overrides,
    )


def csp3_problem(n: int = 24, nparticles: int = 50, **overrides) -> Volume3DConfig:
    """3-D csp: corner source, dense cube spanning [0.4, 0.6]³."""
    density = np.full((n, n, n), LOW_DENSITY)
    lo, hi = int(0.4 * n), int(np.ceil(0.6 * n))
    density[lo:hi, lo:hi, lo:hi] = HIGH_DENSITY
    return Volume3DConfig(
        name="csp3", nx=n, ny=n, nz=n, density=density,
        source=SourceBox3D(
            x0=0.0, x1=0.1, y0=0.0, y1=0.1, z0=0.0, z1=0.1,
            energy_ev=SOURCE_ENERGY_EV,
        ),
        nparticles=nparticles, **overrides,
    )
