"""3-D transport drivers: Over Particles and Over Events.

Both schemes mirror their 2-D counterparts event for event — same
counter-based draw protocol (six draws at birth: position ×3, direction
×2, first optical distance; three per collision), same flush discipline,
same census semantics — so the scheme-equivalence and conservation
properties carry over unchanged, which is precisely the paper's
geometry-independence hypothesis (§IV-C).

The population lives in one
:class:`~repro.particles.arena.ParticleArena3` (SoA, single contiguous
buffer, §VI-D): the source emits vectorised directly into the arena, the
Over Events passes address its fields by name (``arena["x"]``), and the
depth-first Over Particles tracker walks per-index
:class:`~repro.particles.arena.Particle3View` proxies — no AoS record
type remains.

The medium is the single homogeneous material of the paper's setup
(multi-material/fission composition in 3-D is left to the same future-work
list the paper keeps them on).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.counters import Counters
from repro.core.stepper import census_dt_reset, drive_census_loop
from repro.kernels import KernelDispatch
from repro.kernels.dispatch import KERNEL_TABLE_3D
from repro.obs.spans import NULL_RECORDER
from repro.particles.arena import ParticleArena3
from repro.physics.constants import speed_from_energy_ev, speed_from_energy_ev_vec
from repro.physics.events import (
    EventKind,
    distance_to_collision,
    distance_to_collision_vec,
    select_event,
)
from repro.rng.stream import ParticleRNG, VectorParticleRNG
from repro.volume.collision3 import collide3
from repro.volume.events3 import distance_to_facet_3d
from repro.volume.facet3 import cross_facet_3d
from repro.volume.kinematics3 import sample_isotropic_direction_3d_vec
from repro.volume.mesh3 import StructuredMesh3D, Tally3D
from repro.volume.problems3 import Volume3DConfig
from repro.xs.macroscopic import macroscopic_cross_section

__all__ = [
    "Transport3DResult",
    "run_over_particles_3d",
    "run_over_events_3d",
    "SCALAR_KERNEL_TABLE_3D",
]

#: Scalar kernel surface of the depth-first 3-D tracker — same names as
#: the batch entries in ``KERNEL_TABLE_3D`` so the profiles of both
#: schemes rank comparably under ``run3d --profile-kernels``.
SCALAR_KERNEL_TABLE_3D = {
    "facet_distances_3d": distance_to_facet_3d,
    "collide_3d": collide3,
    "cross_facet_3d": cross_facet_3d,
}


@dataclass
class Transport3DResult:
    """Output of a 3-D run (mirrors the 2-D ``TransportResult`` API the
    validation helpers need)."""

    config: Volume3DConfig
    tally: Tally3D
    counters: Counters
    arena: ParticleArena3
    wallclock_s: float
    #: Driver name ("over_particles_3d" / "over_events_3d") — a plain
    #: string, unlike the 2-D result's Scheme enum.
    scheme: str | None = None

    @property
    def particles(self):
        """Removed — both drivers now return :attr:`arena`."""
        raise AttributeError(
            "Transport3DResult.particles was removed: the population now "
            "lives in result.arena (ParticleArena3). Use "
            "result.arena.proxy(i) for a per-index view."
        )

    @property
    def arrays(self):
        """Removed — both drivers now return :attr:`arena`."""
        raise AttributeError(
            "Transport3DResult.arrays was removed: the population now "
            "lives in result.arena (ParticleArena3); address its fields "
            "by name, e.g. result.arena['energy']."
        )

    def in_flight_energy_ev(self) -> float:
        """Weighted energy carried by live particles."""
        alive = self.arena.alive
        return float(
            (self.arena.weight[alive] * self.arena.energy[alive]).sum()
        )

    def alive_count(self) -> int:
        """Histories still alive."""
        return int(self.arena.alive.sum())


def _sample_source_3d(config: Volume3DConfig, mesh: StructuredMesh3D):
    """Six-draw vectorised birth, emitted straight into a fresh arena.

    Bit-identical to the retired scalar loop: the vector RNG consumes the
    same per-history counters, and every kinematics helper has an
    element-wise-identical ``_vec`` twin.  Returns the arena plus the
    vector RNG (the Over Events driver keeps drawing from it)."""
    src = config.source
    n = config.nparticles
    arena = ParticleArena3(n)
    rng = VectorParticleRNG(config.seed, arena.particle_id)
    u = [rng.next_uniform() for _ in range(6)]
    arena.x[...] = src.x0 + u[0] * (src.x1 - src.x0)
    arena.y[...] = src.y0 + u[1] * (src.y1 - src.y0)
    arena.z[...] = src.z0 + u[2] * (src.z1 - src.z0)
    ox, oy, oz = sample_isotropic_direction_3d_vec(u[3], u[4])
    arena.ox[...] = ox
    arena.oy[...] = oy
    arena.oz[...] = oz
    arena.energy[...] = src.energy_ev
    arena.weight[...] = src.weight
    cx, cy, cz = mesh.cell_of_point_vec(arena.x, arena.y, arena.z)
    arena.cellx[...] = cx
    arena.celly[...] = cy
    arena.cellz[...] = cz
    arena.mfp[...] = -np.log(1.0 - u[5])
    arena.dt[...] = config.dt
    arena.density[...] = mesh.density_at_vec(cx, cy, cz)
    arena.rng_counter[...] = rng.counters
    return arena, rng


# ---------------------------------------------------------------------------
# Over Particles
# ---------------------------------------------------------------------------

def run_over_particles_3d(
    config: Volume3DConfig, recorder=None
) -> Transport3DResult:
    """Depth-first 3-D transport (the Listing 1 loop in one more axis).

    ``recorder`` receives run/timestep spans only — the scalar tracker
    fires one kernel call per event, so per-kernel spans would dwarf the
    payload; the kernel *profile* is still accumulated through the
    dispatch table and lands on ``counters.kernel_profile``.
    """
    t0 = time.perf_counter()
    rec = NULL_RECORDER if recorder is None else recorder
    mesh = StructuredMesh3D(
        config.nx, config.ny, config.nz,
        config.width, config.height, config.depth, config.density,
    )
    tally = Tally3D(config.nx, config.ny, config.nz)
    provider = config.resolved_provider()
    arena, _ = _sample_source_3d(config, mesh)
    counters = Counters(nparticles=len(arena))
    counters.rng_draws += 6 * len(arena)
    coll_pp = np.zeros(len(arena), dtype=np.int64)
    facet_pp = np.zeros(len(arena), dtype=np.int64)
    dispatch = KernelDispatch(SCALAR_KERNEL_TABLE_3D)

    def begin_step(step: int) -> None:
        if step > 0:
            census_dt_reset(arena.dt, arena.alive, config.dt)

    def run_step(step: int) -> None:
        for i in range(len(arena)):
            if not arena.alive[i]:
                continue
            _track_history_3d(
                arena.proxy(i), i, mesh, tally, provider, config,
                counters, coll_pp, facet_pp, dispatch,
            )

    drive_census_loop(
        rec, config.ntimesteps, {"scheme": "over_particles_3d"},
        begin_step, run_step,
    )

    counters.collisions_per_particle = coll_pp
    counters.facets_per_particle = facet_pp
    counters.kernel_profile = dispatch.profile()
    counters.arena_nbytes = arena.nbytes()
    return Transport3DResult(
        config=config, tally=tally, counters=counters, arena=arena,
        wallclock_s=time.perf_counter() - t0,
        scheme="over_particles_3d",
    )


def _track_history_3d(
    p, index, mesh, tally, provider, config, counters,
    coll_pp, facet_pp, dispatch,
):
    rng = ParticleRNG(config.seed, p.particle_id, p.rng_counter)
    molar = float(provider.mat_molar[0])
    a_ratio = float(provider.mat_a[0])
    nlookups = provider.lookups_per_refresh(0)

    def sigmas():
        with dispatch.timed("xs_lookup", nlookups):
            micro_s, micro_c, _micro_f = provider.micro_scalar(0, p.energy)
        counters.xs_lookups += nlookups
        s = float(macroscopic_cross_section(micro_s, p.local_density, molar))
        a = float(macroscopic_cross_section(micro_c, p.local_density, molar))
        return s + a, a, micro_s, micro_c

    sigma_t, sigma_a, micro_s, micro_c = sigmas()
    speed = speed_from_energy_ev(p.energy)

    while True:
        d_coll = distance_to_collision(p.mfp_to_collision, sigma_t)
        bounds = mesh.cell_bounds(p.cellx, p.celly, p.cellz)
        d_facet, axis = dispatch.run(
            "facet_distances_3d", 1,
            p.x, p.y, p.z, p.ox, p.oy, p.oz, *bounds
        )
        d_census = p.dt_to_census * speed
        event = select_event(d_coll, d_facet, d_census)

        if event is EventKind.COLLISION:
            p.x += p.ox * d_coll
            p.y += p.oy * d_coll
            p.z += p.oz * d_coll
            p.dt_to_census = max(0.0, p.dt_to_census - d_coll / speed)
            u1 = rng.next_uniform()
            u2 = rng.next_uniform()
            u3 = rng.next_uniform()
            counters.rng_draws += 3
            out = dispatch.run(
                "collide_3d", 1,
                p.energy, p.weight, p.ox, p.oy, p.oz, sigma_a, sigma_t,
                a_ratio, u1, u2, u3,
                config.energy_cutoff_ev, config.weight_cutoff,
            )
            p.energy, p.weight = out.energy, out.weight
            p.ox, p.oy, p.oz = out.ox, out.oy, out.oz
            p.mfp_to_collision = out.mfp_to_collision
            p.deposit_buffer += out.deposit
            counters.collisions += 1
            coll_pp[index] += 1
            if out.terminated:
                tally.flush(p.cellx, p.celly, p.cellz, p.deposit_buffer)
                p.deposit_buffer = 0.0
                counters.tally_flushes += 1
                counters.terminations += 1
                p.alive = False
                break
            sigma_t, sigma_a, micro_s, micro_c = sigmas()
            speed = speed_from_energy_ev(p.energy)

        elif event is EventKind.FACET:
            p.x += p.ox * d_facet
            p.y += p.oy * d_facet
            p.z += p.oz * d_facet
            p.dt_to_census = max(0.0, p.dt_to_census - d_facet / speed)
            p.mfp_to_collision = max(0.0, p.mfp_to_collision - d_facet * sigma_t)
            x_lo, x_hi, y_lo, y_hi, z_lo, z_hi = bounds
            if axis == 0:
                p.x = x_hi if p.ox > 0.0 else x_lo
            elif axis == 1:
                p.y = y_hi if p.oy > 0.0 else y_lo
            else:
                p.z = z_hi if p.oz > 0.0 else z_lo
            tally.flush(p.cellx, p.celly, p.cellz, p.deposit_buffer)
            p.deposit_buffer = 0.0
            counters.tally_flushes += 1
            (ncx, ncy, ncz, nox, noy, noz, reflected, escaped) = dispatch.run(
                "cross_facet_3d", 1,
                p.cellx, p.celly, p.cellz, p.ox, p.oy, p.oz, axis, mesh,
                config.boundary,
            )
            counters.facets += 1
            facet_pp[index] += 1
            if escaped:
                counters.escapes += 1
                counters.escaped_energy += p.weight * p.energy
                p.alive = False
                break
            p.cellx, p.celly, p.cellz = ncx, ncy, ncz
            p.ox, p.oy, p.oz = nox, noy, noz
            if reflected:
                counters.reflections += 1
            else:
                p.local_density = mesh.density_at(ncx, ncy, ncz)
                counters.density_reads += 1
                s = float(macroscopic_cross_section(micro_s, p.local_density, molar))
                a = float(macroscopic_cross_section(micro_c, p.local_density, molar))
                sigma_t, sigma_a = s + a, a

        else:
            p.x += p.ox * d_census
            p.y += p.oy * d_census
            p.z += p.oz * d_census
            p.mfp_to_collision = max(0.0, p.mfp_to_collision - d_census * sigma_t)
            p.dt_to_census = 0.0
            tally.flush(p.cellx, p.celly, p.cellz, p.deposit_buffer)
            p.deposit_buffer = 0.0
            counters.tally_flushes += 1
            counters.census_events += 1
            break

    p.rng_counter = rng.counter


# ---------------------------------------------------------------------------
# Over Events
# ---------------------------------------------------------------------------

def run_over_events_3d(
    config: Volume3DConfig, recorder=None, *, arena=None, rng=None,
    lanes=None,
) -> Transport3DResult:
    """Breadth-first 3-D transport (the Listing 2 passes in one more axis).

    ``recorder`` receives the span tree (run → timestep → event_pass →
    kernel:*); physics is bit-identical with or without it.

    ``arena``/``rng``/``lanes`` support seed-only ensemble fusion: the
    caller passes a pre-fused population whose RNG carries per-lane
    seeds, plus replica-indexed lanes (``rep`` array and per-replica
    Counters/Tally3D books).  The 3-D scheme has no fission or variance
    reduction, so the population is static and the only per-member
    quantity is the seed; every event site attributes to both the fused
    and the per-replica books.  When they are ``None`` the serial path
    is byte-for-byte the pre-existing one.

    .. deprecated::
        The census loop and census-boundary dt re-arm now live in the
        unified stepper (:mod:`repro.core.stepper`); this entry point is
        kept as the compatibility surface and contributes only the 3-D
        per-step transport body.
    """
    t0 = time.perf_counter()
    rec = NULL_RECORDER if recorder is None else recorder
    mesh = StructuredMesh3D(
        config.nx, config.ny, config.nz,
        config.width, config.height, config.depth, config.density,
    )
    tally = Tally3D(config.nx, config.ny, config.nz)
    provider = config.resolved_provider()
    if arena is None:
        a, rng = _sample_source_3d(config, mesh)
    else:
        if rng is None:
            raise ValueError("a pre-fused arena needs its fused rng")
        a = arena
    n = len(a)
    counters = Counters(nparticles=n)
    rep = None if lanes is None else lanes.rep

    def cadd(name, idx, per=1):
        """Count ``per`` per selected lane, fused + per-replica."""
        setattr(counters, name, getattr(counters, name) + per * int(idx.size))
        if lanes is not None and idx.size:
            hits = np.bincount(rep[idx], minlength=lanes.nreplicas)
            for r in np.nonzero(hits)[0]:
                rc = lanes.counters[r]
                setattr(rc, name, getattr(rc, name) + per * int(hits[r]))

    def csum(name, idx, values):
        setattr(counters, name, getattr(counters, name) + float(values.sum()))
        if lanes is not None and idx.size:
            for r in np.unique(rep[idx]):
                rc = lanes.counters[r]
                setattr(
                    rc, name,
                    getattr(rc, name) + float(values[rep[idx] == r].sum()),
                )

    def flush3(idx):
        """Deposit flush, attributed per replica in subsequence order."""
        if lanes is None:
            tally.flush_vec(
                a["cellx"][idx], a["celly"][idx], a["cellz"][idx],
                a["deposit"][idx],
            )
        else:
            for r in np.unique(rep[idx]):
                s = idx[rep[idx] == r]
                lanes.tallies[r].flush_vec(
                    a["cellx"][s], a["celly"][s], a["cellz"][s],
                    a["deposit"][s],
                )
        a["deposit"][idx] = 0.0
        cadd("tally_flushes", idx)

    counters.rng_draws += 6 * n
    if lanes is not None:
        births = np.bincount(rep, minlength=lanes.nreplicas)
        for r in range(lanes.nreplicas):
            lanes.counters[r].rng_draws += 6 * int(births[r])
    coll_pp = np.zeros(n, dtype=np.int64)
    facet_pp = np.zeros(n, dtype=np.int64)
    molar = float(provider.mat_molar[0])
    a_ratio = float(provider.mat_a[0])
    nlookups = provider.lookups_per_refresh(0)
    dispatch = KernelDispatch(
        KERNEL_TABLE_3D, recorder=rec if rec.enabled else None
    )

    micro_s = np.zeros(n)
    micro_c = np.zeros(n)

    def refresh(idx):
        if idx.size == 0:
            return
        lk = provider.lookup(0, a["energy"][idx], dispatch.run)
        micro_s[idx] = lk.micro_s
        micro_c[idx] = lk.micro_c
        cadd("xs_lookups", idx, nlookups)

    def begin_step(step: int) -> None:
        # The 3-D driver's census-boundary bookkeeping historically ran
        # inside the timestep span; ``run_step`` keeps it there so the
        # span tree (and the physics) is unchanged by the loop hoist.
        pass

    def run_step(step: int) -> None:
                if step > 0:
                    census_dt_reset(a["dt"], a["alive"], config.dt)
                a["censused"][:] = ~a["alive"]
                refresh(np.nonzero(a["alive"])[0])

                npass = 0
                while True:
                    active = a["alive"] & ~a["censused"]
                    if not active.any():
                        break
                    with rec.span("event_pass", index=npass):
                        sigma_s = macroscopic_cross_section(micro_s, a["density"], molar)
                        sigma_a = macroscopic_cross_section(micro_c, a["density"], molar)
                        sigma_t = sigma_s + sigma_a
                        speed = speed_from_energy_ev_vec(a["energy"])
                        d_coll = distance_to_collision_vec(a["mfp"], sigma_t)
                        x_lo = a["cellx"] * mesh.dx
                        x_hi = (a["cellx"] + 1) * mesh.dx
                        y_lo = a["celly"] * mesh.dy
                        y_hi = (a["celly"] + 1) * mesh.dy
                        z_lo = a["cellz"] * mesh.dz
                        z_hi = (a["cellz"] + 1) * mesh.dz
                        d_facet, axis = dispatch.run(
                            "facet_distances_3d", n,
                            a["x"], a["y"], a["z"], a["ox"], a["oy"], a["oz"],
                            x_lo, x_hi, y_lo, y_hi, z_lo, z_hi,
                        )
                        d_census = a["dt"] * speed
                        event = dispatch.run("select_events", n, d_coll, d_facet, d_census)

                        cmask = active & (event == int(EventKind.COLLISION))
                        fmask = active & (event == int(EventKind.FACET))
                        zmask = active & (event == int(EventKind.CENSUS))

                        if cmask.any():
                            c = np.nonzero(cmask)[0]
                            d = d_coll[c]
                            a["x"][c] += a["ox"][c] * d
                            a["y"][c] += a["oy"][c] * d
                            a["z"][c] += a["oz"][c] * d
                            a["dt"][c] = np.maximum(0.0, a["dt"][c] - d / speed[c])
                            u1 = rng.next_uniform(cmask)
                            u2 = rng.next_uniform(cmask)
                            u3 = rng.next_uniform(cmask)
                            cadd("rng_draws", c, 3)
                            (e_new, w_new, nox, noy, noz, mfp_new, dep, term) = dispatch.run(
                                "collide_3d", c.size,
                                a["energy"][c], a["weight"][c],
                                a["ox"][c], a["oy"][c], a["oz"][c],
                                sigma_a[c], sigma_t[c], a_ratio,
                                u1, u2, u3,
                                config.energy_cutoff_ev, config.weight_cutoff,
                            )
                            a["energy"][c] = e_new
                            a["weight"][c] = w_new
                            a["ox"][c], a["oy"][c], a["oz"][c] = nox, noy, noz
                            a["mfp"][c] = mfp_new
                            a["deposit"][c] += dep
                            cadd("collisions", c)
                            coll_pp[c] += 1
                            dead = c[term]
                            if dead.size:
                                flush3(dead)
                                a["alive"][dead] = False
                                cadd("terminations", dead)
                            refresh(c[~term])

                        if fmask.any():
                            f = np.nonzero(fmask)[0]
                            d = d_facet[f]
                            a["x"][f] += a["ox"][f] * d
                            a["y"][f] += a["oy"][f] * d
                            a["z"][f] += a["oz"][f] * d
                            a["dt"][f] = np.maximum(0.0, a["dt"][f] - d / speed[f])
                            a["mfp"][f] = np.maximum(0.0, a["mfp"][f] - d * sigma_t[f])
                            ax = axis[f]
                            for axis_i, (coord, o, lo, hi) in enumerate(
                                (("x", "ox", x_lo, x_hi), ("y", "oy", y_lo, y_hi),
                                 ("z", "oz", z_lo, z_hi))
                            ):
                                sel = f[ax == axis_i]
                                a[coord][sel] = np.where(
                                    a[o][sel] > 0.0, hi[sel], lo[sel]
                                )
                            flush3(f)
                            (ncx, ncy, ncz, nox, noy, noz, reflected, escaped) = dispatch.run(
                                "cross_facet_3d", f.size,
                                a["cellx"][f], a["celly"][f], a["cellz"][f],
                                a["ox"][f], a["oy"][f], a["oz"][f], ax, mesh,
                                config.boundary,
                            )
                            cadd("facets", f)
                            facet_pp[f] += 1
                            gone = f[escaped]
                            if gone.size:
                                cadd("escapes", gone)
                                csum(
                                    "escaped_energy", gone,
                                    a["weight"][gone] * a["energy"][gone],
                                )
                                a["alive"][gone] = False
                            stay = ~escaped
                            a["cellx"][f[stay]] = ncx[stay]
                            a["celly"][f[stay]] = ncy[stay]
                            a["cellz"][f[stay]] = ncz[stay]
                            a["ox"][f[stay]] = nox[stay]
                            a["oy"][f[stay]] = noy[stay]
                            a["oz"][f[stay]] = noz[stay]
                            crossed = f[stay & ~reflected]
                            a["density"][crossed] = mesh.density_at_vec(
                                a["cellx"][crossed], a["celly"][crossed], a["cellz"][crossed]
                            )
                            cadd("density_reads", crossed)
                            cadd("reflections", f[reflected])

                        if zmask.any():
                            z = np.nonzero(zmask)[0]
                            d = d_census[z]
                            a["x"][z] += a["ox"][z] * d
                            a["y"][z] += a["oy"][z] * d
                            a["z"][z] += a["oz"][z] * d
                            a["mfp"][z] = np.maximum(0.0, a["mfp"][z] - d * sigma_t[z])
                            a["dt"][z] = 0.0
                            flush3(z)
                            a["censused"][z] = True
                            cadd("census_events", z)
                    npass += 1

    drive_census_loop(
        rec, config.ntimesteps, {"scheme": "over_events_3d"},
        begin_step, run_step,
    )

    counters.collisions_per_particle = coll_pp
    counters.facets_per_particle = facet_pp
    counters.kernel_profile = dispatch.profile()
    counters.arena_nbytes = a.nbytes()
    a["rng_counter"] = rng.counters
    if lanes is not None:
        # Fused tally = sum of the per-replica books (the flushes went to
        # the replica tallies so each stays bit-identical to standalone).
        for r in range(lanes.nreplicas):
            tally.deposition += lanes.tallies[r].deposition
            tally.flushes += lanes.tallies[r].flushes
        for r in range(lanes.nreplicas):
            sel = rep == r
            rc = lanes.counters[r]
            rc.nparticles = int(sel.sum())
            rc.collisions_per_particle = coll_pp[sel]
            rc.facets_per_particle = facet_pp[sel]
    return Transport3DResult(
        config=config, tally=tally, counters=counters, arena=a,
        wallclock_s=time.perf_counter() - t0,
        scheme="over_events_3d",
    )
