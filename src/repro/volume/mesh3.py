"""3-D structured mesh and tally.

Layout: fields are ``(nz, ny, nx)`` arrays, flat index
``(iz * ny + iy) * nx + ix`` — x is the unit-stride axis, as in the 2-D
mesh, so the "adjacent x-crossing" cache-locality property carries over.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StructuredMesh3D", "Tally3D"]


class StructuredMesh3D:
    """Uniform 3-D grid over ``[0,w]×[0,h]×[0,d]`` with cell densities."""

    def __init__(
        self,
        nx: int,
        ny: int,
        nz: int,
        width: float = 1.0,
        height: float = 1.0,
        depth: float = 1.0,
        density: np.ndarray | None = None,
    ):
        if min(nx, ny, nz) < 1:
            raise ValueError("mesh must have at least one cell per axis")
        if min(width, height, depth) <= 0:
            raise ValueError("mesh extent must be positive")
        self.nx, self.ny, self.nz = int(nx), int(ny), int(nz)
        self.width, self.height, self.depth = float(width), float(height), float(depth)
        self.dx = self.width / self.nx
        self.dy = self.height / self.ny
        self.dz = self.depth / self.nz
        if density is None:
            self.density = np.zeros((self.nz, self.ny, self.nx), dtype=np.float64)
        else:
            density = np.asarray(density, dtype=np.float64)
            if density.shape != (self.nz, self.ny, self.nx):
                raise ValueError(
                    f"density shape {density.shape} != (nz, ny, nx) = "
                    f"({self.nz}, {self.ny}, {self.nx})"
                )
            if np.any(density < 0):
                raise ValueError("densities must be non-negative")
            self.density = density.copy()

    @property
    def ncells(self) -> int:
        """Total cell count."""
        return self.nx * self.ny * self.nz

    def cell_of_point(self, x: float, y: float, z: float) -> tuple[int, int, int]:
        """Cell containing the point; boundary points clamp inward."""
        if not (
            0.0 <= x <= self.width
            and 0.0 <= y <= self.height
            and 0.0 <= z <= self.depth
        ):
            raise ValueError(f"point ({x}, {y}, {z}) outside mesh")
        return (
            min(int(x / self.dx), self.nx - 1),
            min(int(y / self.dy), self.ny - 1),
            min(int(z / self.dz), self.nz - 1),
        )

    def cell_of_point_vec(self, x, y, z):
        """Vectorised :meth:`cell_of_point` (no bounds check)."""
        ix = np.minimum((x / self.dx).astype(np.int64), self.nx - 1)
        iy = np.minimum((y / self.dy).astype(np.int64), self.ny - 1)
        iz = np.minimum((z / self.dz).astype(np.int64), self.nz - 1)
        return ix, iy, iz

    def cell_bounds(self, ix: int, iy: int, iz: int):
        """``(x_lo, x_hi, y_lo, y_hi, z_lo, z_hi)`` of one cell."""
        return (
            ix * self.dx, (ix + 1) * self.dx,
            iy * self.dy, (iy + 1) * self.dy,
            iz * self.dz, (iz + 1) * self.dz,
        )

    def density_at(self, ix: int, iy: int, iz: int) -> float:
        """Cell-centred density — the same random read as in 2-D."""
        return float(self.density[iz, iy, ix])

    def density_at_vec(self, ix, iy, iz):
        """Vectorised density gather."""
        return self.density[iz, iy, ix]


class Tally3D:
    """Energy-deposition tally over a 3-D mesh (atomic semantics counted)."""

    def __init__(self, nx: int, ny: int, nz: int):
        if min(nx, ny, nz) < 1:
            raise ValueError("tally needs at least one cell per axis")
        self.nx, self.ny, self.nz = int(nx), int(ny), int(nz)
        self.deposition = np.zeros((self.nz, self.ny, self.nx), dtype=np.float64)
        self.flushes = 0

    def flush(self, ix: int, iy: int, iz: int, energy: float) -> None:
        """One atomic read-modify-write (zero deposits still count)."""
        self.deposition[iz, iy, ix] += energy
        self.flushes += 1

    def flush_vec(self, ix, iy, iz, energy) -> None:
        """Batched scatter-add with atomic (accumulating) semantics."""
        np.add.at(self.deposition, (iz, iy, ix), energy)
        self.flushes += int(len(ix))

    def total(self) -> float:
        """Total deposited energy."""
        return float(self.deposition.sum())
