"""Three-dimensional transport (the §IV-C future-work extension).

The paper deliberately chose a 2-D structured grid, hypothesising that the
performance-limiting characteristics are *independent of the geometry*, and
promised a 3-D extension "to validate our current assumptions".  This
subpackage is that extension: a full 3-D structured-grid transport with the
same event structure, the same counter-based RNG discipline, and both
parallelisation schemes.

The validation the paper asked for is in
``benchmarks/test_futurework_3d.py``: per *facet event* the 3-D code
performs exactly the same memory operations as the 2-D code (one random
density read, one atomic tally flush), the event-mix extremes (stream /
scatter) reproduce, and the facet rate follows the closed-form
``v·dt·E[|Ω_x|+|Ω_y|+|Ω_z|]/Δ`` with the isotropic-3D mean of 3/2 — the
geometry changes the constants, not the character.

Public entry points mirror the 2-D core:

* :class:`repro.volume.mesh3.StructuredMesh3D` and
  :class:`repro.volume.mesh3.Tally3D`;
* :func:`repro.volume.driver3.run_over_particles_3d` /
  :func:`repro.volume.driver3.run_over_events_3d`;
* problem factories in :mod:`repro.volume.problems3`;
* conservation checks in :mod:`repro.volume.validation3`.
"""

from repro.volume.mesh3 import StructuredMesh3D, Tally3D
from repro.volume.driver3 import (
    Transport3DResult,
    run_over_events_3d,
    run_over_particles_3d,
)
from repro.volume.problems3 import (
    csp3_problem,
    scatter3_problem,
    stream3_problem,
    Volume3DConfig,
)
from repro.volume.validation3 import (
    energy_balance_error_3d,
    population_accounted_3d,
)

__all__ = [
    "StructuredMesh3D",
    "Tally3D",
    "Transport3DResult",
    "run_over_particles_3d",
    "run_over_events_3d",
    "Volume3DConfig",
    "stream3_problem",
    "scatter3_problem",
    "csp3_problem",
    "energy_balance_error_3d",
    "population_accounted_3d",
]
