"""3-D facet crossing: neighbour update, reflection, vacuum escape.

Six problem faces instead of four; the branch ladder deepens by one level
exactly as the 2-D-to-3-D argument predicts, while the per-branch work
stays at one or two operations.
"""

from __future__ import annotations

from repro.kernels import batch3 as _batch3
from repro.mesh.boundary import BoundaryCondition
from repro.volume.mesh3 import StructuredMesh3D

__all__ = ["cross_facet_3d", "cross_facet_3d_vec"]


def cross_facet_3d(
    cx: int, cy: int, cz: int,
    ox: float, oy: float, oz: float,
    axis: int,
    mesh: StructuredMesh3D,
    bc: BoundaryCondition = BoundaryCondition.REFLECTIVE,
):
    """Resolve one 3-D facet encounter.

    Returns ``(cx, cy, cz, ox, oy, oz, reflected, escaped)``.
    """
    vacuum = bc is BoundaryCondition.VACUUM
    cells = (cx, cy, cz)
    omegas = (ox, oy, oz)
    limits = (mesh.nx - 1, mesh.ny - 1, mesh.nz - 1)

    cell = cells[axis]
    omega = omegas[axis]
    forward = omega > 0.0
    at_boundary = (cell == limits[axis]) if forward else (cell == 0)

    if at_boundary:
        if vacuum:
            return cx, cy, cz, ox, oy, oz, False, True
        new_omegas = list(omegas)
        new_omegas[axis] = -omega
        return cx, cy, cz, *new_omegas, True, False

    new_cells = list(cells)
    new_cells[axis] += 1 if forward else -1
    return (*new_cells, ox, oy, oz, False, False)


# Deprecated alias of the batch kernel.
cross_facet_3d_vec = _batch3.cross_facet_3d
