"""3-D facet crossing: neighbour update, reflection, vacuum escape.

Six problem faces instead of four; the branch ladder deepens by one level
exactly as the 2-D-to-3-D argument predicts, while the per-branch work
stays at one or two operations.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.boundary import BoundaryCondition
from repro.volume.mesh3 import StructuredMesh3D

__all__ = ["cross_facet_3d", "cross_facet_3d_vec"]


def cross_facet_3d(
    cx: int, cy: int, cz: int,
    ox: float, oy: float, oz: float,
    axis: int,
    mesh: StructuredMesh3D,
    bc: BoundaryCondition = BoundaryCondition.REFLECTIVE,
):
    """Resolve one 3-D facet encounter.

    Returns ``(cx, cy, cz, ox, oy, oz, reflected, escaped)``.
    """
    vacuum = bc is BoundaryCondition.VACUUM
    cells = (cx, cy, cz)
    omegas = (ox, oy, oz)
    limits = (mesh.nx - 1, mesh.ny - 1, mesh.nz - 1)

    cell = cells[axis]
    omega = omegas[axis]
    forward = omega > 0.0
    at_boundary = (cell == limits[axis]) if forward else (cell == 0)

    if at_boundary:
        if vacuum:
            return cx, cy, cz, ox, oy, oz, False, True
        new_omegas = list(omegas)
        new_omegas[axis] = -omega
        return cx, cy, cz, *new_omegas, True, False

    new_cells = list(cells)
    new_cells[axis] += 1 if forward else -1
    return (*new_cells, ox, oy, oz, False, False)


def cross_facet_3d_vec(
    cx, cy, cz, ox, oy, oz, axis, mesh: StructuredMesh3D,
    bc: BoundaryCondition = BoundaryCondition.REFLECTIVE,
):
    """Vectorised :func:`cross_facet_3d` over particle arrays."""
    new_c = [cx.copy(), cy.copy(), cz.copy()]
    new_o = [ox.copy(), oy.copy(), oz.copy()]
    omegas = (ox, oy, oz)
    limits = (mesh.nx - 1, mesh.ny - 1, mesh.nz - 1)

    reflected = np.zeros(cx.shape, dtype=bool)
    escaped = np.zeros(cx.shape, dtype=bool)
    vacuum = bc is BoundaryCondition.VACUUM

    for ax in range(3):
        on_axis = axis == ax
        fwd = on_axis & (omegas[ax] > 0.0)
        bwd = on_axis & (omegas[ax] <= 0.0)
        bnd = (fwd & (new_c[ax] == limits[ax])) | (bwd & (new_c[ax] == 0))
        if vacuum:
            escaped |= bnd
        else:
            reflected |= bnd
            new_o[ax][bnd] = -new_o[ax][bnd]
        new_c[ax][fwd & ~bnd] += 1
        new_c[ax][bwd & ~bnd] -= 1

    return (*new_c, *new_o, reflected, escaped)
