"""3-D collision handling.

The energy accounting (implicit capture + recoil deposit) and the
two-body energy/deflection kinematics are exactly the 2-D code's —
:func:`repro.physics.collision.elastic_scatter_kinematics` is reused.
Only the direction update differs: the deflection is applied by rotating
the 3-D flight vector about a uniformly random azimuth.

Three draws per collision, as in 2-D: the CM scattering cosine, the
azimuth (which replaces the 2-D rotation sense), and the new optical
distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import batch3 as _batch3
from repro.physics.collision import elastic_scatter_kinematics
from repro.volume.kinematics3 import rotate_direction

__all__ = ["Collision3Outcome", "collide3", "collide3_vec"]


@dataclass(frozen=True)
class Collision3Outcome:
    """Everything one 3-D collision changes."""

    energy: float
    weight: float
    ox: float
    oy: float
    oz: float
    mfp_to_collision: float
    deposit: float
    terminated: bool


def collide3(
    energy: float,
    weight: float,
    ox: float,
    oy: float,
    oz: float,
    sigma_a: float,
    sigma_t: float,
    a_ratio: float,
    u_angle: float,
    u_azimuth: float,
    u_mfp: float,
    energy_cutoff_ev: float,
    weight_cutoff: float,
) -> Collision3Outcome:
    """Apply one collision (scalar form); mirrors the 2-D accounting."""
    p_absorb = sigma_a / sigma_t if sigma_t > 0.0 else 0.0
    deposit = weight * energy * p_absorb
    weight = weight * (1.0 - p_absorb)

    mu_cm = 2.0 * u_angle - 1.0
    e_frac, mu_lab, _sin_lab = elastic_scatter_kinematics(mu_cm, a_ratio)
    new_energy = energy * e_frac
    deposit += weight * (energy - new_energy)
    phi = 2.0 * np.pi * u_azimuth
    nox, noy, noz = rotate_direction(ox, oy, oz, mu_lab, phi)

    mfp = float(-np.log(1.0 - u_mfp))

    terminated = new_energy < energy_cutoff_ev or weight < weight_cutoff
    if terminated:
        deposit += weight * new_energy
        weight = 0.0

    return Collision3Outcome(
        energy=new_energy,
        weight=weight,
        ox=nox,
        oy=noy,
        oz=noz,
        mfp_to_collision=mfp,
        deposit=deposit,
        terminated=terminated,
    )


# Deprecated alias of the batch kernel; returns
# (energy, weight, ox, oy, oz, mfp, deposit, terminated) arrays.
collide3_vec = _batch3.collide3
