"""Macroscopic cross sections.

Macroscopic cross sections Σ [1/m] are obtained by scaling the microscopic
cross section σ [barns] by the number density of the medium — and the number
density comes from the *mass density stored at the particle's mesh cell*.
This is the data dependency the paper highlights (§IV-D2): every particle is
coupled to the computational mesh through this lookup, which is what makes
the algorithm's memory access pattern random.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AVOGADRO",
    "BARNS_TO_M2",
    "DEFAULT_MOLAR_MASS_G_MOL",
    "number_density",
    "macroscopic_cross_section",
]

#: Avogadro's number [1/mol].
AVOGADRO = 6.02214076e23

#: One barn in square metres.
BARNS_TO_M2 = 1.0e-28

#: Molar mass of the single homogeneous material [g/mol].
#: The mini-app models one non-multiplying medium; a mid-mass nuclide keeps
#: elastic energy transfer moderate.
DEFAULT_MOLAR_MASS_G_MOL = 100.0


def number_density(mass_density_kg_m3, molar_mass_g_mol: float = DEFAULT_MOLAR_MASS_G_MOL):
    """Atoms per cubic metre from mass density.

    ``n = ρ [kg/m³] × 1000 [g/kg] / M [g/mol] × N_A [1/mol]``.

    Works element-wise on scalars or numpy arrays.
    """
    return np.asarray(mass_density_kg_m3) * 1.0e3 / molar_mass_g_mol * AVOGADRO


def macroscopic_cross_section(
    microscopic_barns,
    mass_density_kg_m3,
    molar_mass_g_mol: float = DEFAULT_MOLAR_MASS_G_MOL,
):
    """Macroscopic cross section Σ [1/m] = n σ.

    Parameters
    ----------
    microscopic_barns:
        Microscopic cross section in barns (scalar or array).
    mass_density_kg_m3:
        Cell mass density in kg/m³ (scalar or array).
    molar_mass_g_mol:
        Molar mass of the medium.

    Returns
    -------
    Σ in 1/m, element-wise.  Returns a numpy scalar/array; callers in the
    scalar scheme convert with ``float()``.
    """
    n = number_density(mass_density_kg_m3, molar_mass_g_mol)
    return n * np.asarray(microscopic_barns) * BARNS_TO_M2
