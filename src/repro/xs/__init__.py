"""Cross-sectional data substrate.

The paper (§IV-D) generates two dummy microscopic cross-section tables — one
for capture (absorption) and one for elastic scattering — sized to be
representative of real nuclear-data lookup tables, and performs:

1. *microscopic* lookups: find the energy bin for a particle's continuous
   energy and linearly interpolate; and
2. *macroscopic* scaling: multiply by the number density derived from the
   mass density of the particle's current cell — the coupling that ties each
   particle to the computational mesh.

The energy-bin search exists in two forms (§VI-A): a plain binary search,
and a *cached linear search* that starts from the bin found by the previous
lookup for the same particle — a 1.3× whole-app speedup on the csp problem
in the paper.  Both are implemented and tested for agreement.
"""

from repro.xs.tables import CrossSectionTable, make_capture_table, make_scatter_table
from repro.xs.lookup import binary_search_bin, cached_linear_search_bin, LookupStats
from repro.xs.macroscopic import (
    BARNS_TO_M2,
    AVOGADRO,
    number_density,
    macroscopic_cross_section,
)

__all__ = [
    "CrossSectionTable",
    "make_capture_table",
    "make_scatter_table",
    "binary_search_bin",
    "cached_linear_search_bin",
    "LookupStats",
    "BARNS_TO_M2",
    "AVOGADRO",
    "number_density",
    "macroscopic_cross_section",
]
