"""Backend-neutral cross-section provider layer.

Every transport driver used to reach straight into
:class:`repro.xs.tables.CrossSectionTable` — the multigroup data model was
baked into the physics, kernel, driver, pool, ensemble, and volume layers
alike.  This module is the single seam between "what cross-section data
looks like" and "what the transport loop needs":

* :class:`XsProvider` — the protocol.  Given a material index and a batch
  of energies it returns microscopic (scatter, capture, fission) values
  plus the bin-search bookkeeping (which cache field to update, which grid
  was searched) the drivers need for their exact probe accounting; a
  shared helper converts microscopic to macroscopic cross sections with
  the exact ufunc chain both schemes already agree on bit-for-bit.
* :class:`MultigroupProvider` — wraps the existing per-material table
  pairs.  It is a pure refactor: lookup order, kernel dispatch names, and
  probe arithmetic reproduce the pre-provider drivers bit-identically
  (the parity suite pins run fingerprints to pre-refactor goldens).
* :class:`ContinuousEnergyProvider` — per-nuclide pointwise data on a
  unionized energy grid with double-index pointers
  (:mod:`repro.xs.ce`): one bin search per lookup regardless of nuclide
  count, then gathered interpolation per nuclide per reaction.

An AST audit (``python -m repro.kernels --check``) enforces the seam: no
module outside ``repro/xs/`` may touch ``CrossSectionTable`` or raw table
arrays again.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.kernels import xs as kernel_xs
from repro.xs.ce import build_union_grid, default_ce_materials
from repro.xs.lookup import LookupStats, binary_search_bin, binary_search_bin_vec
from repro.xs.macroscopic import AVOGADRO, BARNS_TO_M2

__all__ = [
    "XsMode",
    "MicroLookup",
    "MacroXs",
    "XsProvider",
    "MultigroupProvider",
    "ContinuousEnergyProvider",
    "resolve_provider",
]


class XsMode(str, Enum):
    """Which cross-section backend a run uses."""

    MULTIGROUP = "multigroup"
    CONTINUOUS_ENERGY = "ce"

    @classmethod
    def coerce(cls, value) -> "XsMode":
        """Accept an :class:`XsMode` or its string value (CLI-friendly)."""
        if isinstance(value, cls):
            return value
        return cls(str(value))


@dataclass(frozen=True)
class MicroLookup:
    """One batch lookup's results for a single material.

    Attributes
    ----------
    micro_s / micro_c:
        Microscopic scatter / capture cross sections in barns, one per lane.
    micro_f:
        Microscopic fission cross sections, or ``None`` for non-fissile
        materials (callers zero their fission buffer).
    searches:
        One ``(cache_field, grid, bins)`` triple per bin search performed:
        the arena bin-cache field to refresh, the searched grid (exposes
        ``.energy`` for the probe kernels), and the found bins.  Length is
        the lookup count per lane — multigroup searches one table per
        reaction, the union grid searches once for all reactions.
    """

    micro_s: np.ndarray
    micro_c: np.ndarray
    micro_f: np.ndarray | None
    searches: tuple


@dataclass(frozen=True)
class MacroXs:
    """Macroscopic cross sections per lane, in 1/m."""

    sigma_s: np.ndarray
    sigma_a: np.ndarray
    sigma_f: np.ndarray
    sigma_t: np.ndarray


def _direct_run(name: str, nitems: int, *args):
    """Dispatch-free kernel runner for provider use outside a driver."""
    return _DIRECT_KERNELS[name](*args)


class XsProvider(ABC):
    """Protocol every cross-section backend implements.

    Concrete providers populate the material metadata arrays the drivers
    gather from per lane:

    ``mat_a`` (scattering mass ratio), ``mat_molar`` (g/mol), ``mat_nu``
    (fission yield), ``mat_fissile`` (bool), ``mat_fission_energy_ev``
    (secondary birth energy) — all indexed by material id.
    """

    mode: XsMode
    materials: tuple
    mat_a: np.ndarray
    mat_molar: np.ndarray
    mat_nu: np.ndarray
    mat_fissile: np.ndarray
    mat_fission_energy_ev: np.ndarray

    @property
    def nmaterials(self) -> int:
        return len(self.materials)

    # -- lookup ----------------------------------------------------------

    @abstractmethod
    def lookup(self, mi: int, e: np.ndarray, run=None) -> MicroLookup:
        """Batch microscopic lookup for material ``mi`` at energies ``e``.

        ``run`` is a kernel dispatcher with the :meth:`KernelDispatch.run`
        signature; ``None`` executes the kernels directly (no accounting).
        """

    @abstractmethod
    def micro_scalar(self, mi: int, e: float) -> tuple[float, float, float]:
        """Scalar ``(scatter, capture, fission)`` lookup (3-D OP driver)."""

    @abstractmethod
    def lookups_per_refresh(self, mi: int) -> int:
        """Bin searches one batch lookup performs per lane."""

    @abstractmethod
    def binary_probe_estimate(self, mi: int) -> int:
        """Probe count the Over Events accounting books per fresh lane."""

    @abstractmethod
    def birth_bins(self, mi: int, energy: float) -> dict:
        """Bin-cache seed fields for one newborn particle (record kwargs)."""

    @abstractmethod
    def birth_bins_batch(self, mi: int, e: np.ndarray) -> dict:
        """Bin-cache seed fields for a batch of newborn particles."""

    def source_bins_batch(self, mi: int, e: np.ndarray) -> dict:
        """Bin-cache seed fields for source emission.

        Defaults to :meth:`birth_bins_batch`; multigroup narrows it to the
        scatter/capture bins because the legacy source sampler never
        seeded the fission bin (preserved for probe-count parity).
        """
        return self.birth_bins_batch(mi, e)

    # -- macroscopic conversion (shared, exact) --------------------------

    def macroscopic_into(
        self,
        ws,
        n: int,
        mat_idx: np.ndarray,
        micro_s: np.ndarray,
        micro_c: np.ndarray,
        micro_f: np.ndarray,
        density: np.ndarray,
    ) -> MacroXs:
        """Microscopic barns → macroscopic 1/m, the bit-parity ufunc chain.

        Both schemes call exactly this sequence (same ops, same order, same
        workspace buffer names) — it is part of the OP ≡ OE fingerprint
        contract, so providers share one implementation.  ``ws`` may be
        ``None`` to allocate fresh buffers (protocol-level callers).
        """
        molar = _buf(ws, "molar", n)
        np.take(self.mat_molar, mat_idx, out=molar)
        numdens = _buf(ws, "numdens", n)
        np.multiply(density, 1.0e3, out=numdens)
        np.divide(numdens, molar, out=numdens)
        np.multiply(numdens, AVOGADRO, out=numdens)
        sigma_s = _buf(ws, "sigma_s", n)
        np.multiply(numdens, micro_s, out=sigma_s)
        np.multiply(sigma_s, BARNS_TO_M2, out=sigma_s)
        sigma_f = _buf(ws, "sigma_f", n)
        np.multiply(numdens, micro_f, out=sigma_f)
        np.multiply(sigma_f, BARNS_TO_M2, out=sigma_f)
        sigma_a = _buf(ws, "sigma_a", n)
        np.multiply(numdens, micro_c, out=sigma_a)
        np.multiply(sigma_a, BARNS_TO_M2, out=sigma_a)
        np.add(sigma_a, sigma_f, out=sigma_a)
        sigma_t = _buf(ws, "sigma_t", n)
        np.add(sigma_s, sigma_a, out=sigma_t)
        return MacroXs(sigma_s=sigma_s, sigma_a=sigma_a, sigma_f=sigma_f,
                       sigma_t=sigma_t)

    def macro_xs(
        self,
        mat_idx: np.ndarray,
        energy: np.ndarray,
        density: np.ndarray,
        *,
        run=None,
        stats: LookupStats | None = None,
    ) -> MacroXs:
        """The protocol in one call: material ids + energies → macroscopic.

        Groups lanes by material, performs the backend lookup, converts to
        macroscopic, and (optionally) books exact binary-search probe
        counts into ``stats``.  The drivers inline these steps for their
        cache/probe-accounting variants; this entry point serves tests,
        analysis code, and new consumers.
        """
        mat_idx = np.asarray(mat_idx, dtype=np.int64)
        energy = np.asarray(energy, dtype=np.float64)
        density = np.broadcast_to(
            np.asarray(density, dtype=np.float64), energy.shape
        )
        n = energy.shape[0]
        micro_s = np.zeros(n, dtype=np.float64)
        micro_c = np.zeros(n, dtype=np.float64)
        micro_f = np.zeros(n, dtype=np.float64)
        for mi in range(self.nmaterials):
            sel = np.nonzero(mat_idx == mi)[0]
            if sel.size == 0:
                continue
            lk = self.lookup(mi, energy[sel], run)
            micro_s[sel] = lk.micro_s
            micro_c[sel] = lk.micro_c
            if lk.micro_f is not None:
                micro_f[sel] = lk.micro_f
            if stats is not None:
                stats.lookups += len(lk.searches) * sel.size
                for _field, grid, _bins in lk.searches:
                    stats.binary_probes += int(
                        kernel_xs.bisection_probes(grid, energy[sel]).sum()
                    )
        return self.macroscopic_into(
            None, n, mat_idx, micro_s, micro_c, micro_f, density
        )

    def nbytes(self) -> int:
        """Approximate data footprint of the backend in bytes."""
        return 0


def _buf(ws, name: str, n: int) -> np.ndarray:
    if ws is not None:
        return ws.f64(name, n)
    return np.empty(n, dtype=np.float64)


def _material_meta(provider: XsProvider, materials) -> None:
    provider.mat_a = np.array([m.a_ratio for m in materials], dtype=np.float64)
    provider.mat_molar = np.array(
        [m.molar_mass_g_mol for m in materials], dtype=np.float64
    )
    provider.mat_nu = np.array([m.nu for m in materials], dtype=np.float64)
    provider.mat_fissile = np.array([m.fissile for m in materials], dtype=bool)
    provider.mat_fission_energy_ev = np.array(
        [m.fission_energy_ev for m in materials], dtype=np.float64
    )


class MultigroupProvider(XsProvider):
    """The paper's multigroup tables behind the provider protocol.

    A pure adapter: every kernel dispatch, search order, and probe count
    matches the pre-provider drivers bit-for-bit.  ``nentries_hint`` feeds
    the Over Events closed-form probe estimate (``ceil(log2(nentries))``),
    which historically uses the *configured* table size rather than the
    actual table length — preserved exactly for counter parity.
    """

    mode = XsMode.MULTIGROUP

    def __init__(self, materials, nentries_hint: int | None = None):
        self.materials = tuple(materials)
        if not self.materials:
            raise ValueError("need at least one material")
        _material_meta(self, self.materials)
        if nentries_hint is None:
            nentries_hint = max(len(m.scatter) for m in self.materials)
        self.nbins_log2 = int(np.ceil(np.log2(max(int(nentries_hint), 2))))

    def lookup(self, mi: int, e: np.ndarray, run=None) -> MicroLookup:
        run = run or _direct_run
        mat = self.materials[mi]
        n = e.shape[0]
        sbins, micro_s = run("xs_lookup", n, mat.scatter, e)
        cbins, micro_c = run("xs_lookup", n, mat.capture, e)
        searches = [
            ("scatter_bin", mat.scatter, sbins),
            ("capture_bin", mat.capture, cbins),
        ]
        micro_f = None
        if mat.fissile:
            fbins, micro_f = run("xs_lookup", n, mat.fission, e)
            searches.append(("fission_bin", mat.fission, fbins))
        return MicroLookup(micro_s, micro_c, micro_f, tuple(searches))

    def micro_scalar(self, mi: int, e: float) -> tuple[float, float, float]:
        mat = self.materials[mi]
        micro_s = mat.scatter.interpolate_at_bin(
            e, binary_search_bin(mat.scatter, e)
        )
        micro_c = mat.capture.interpolate_at_bin(
            e, binary_search_bin(mat.capture, e)
        )
        micro_f = 0.0
        if mat.fissile:
            micro_f = mat.fission.interpolate_at_bin(
                e, binary_search_bin(mat.fission, e)
            )
        return micro_s, micro_c, micro_f

    def lookups_per_refresh(self, mi: int) -> int:
        return 3 if self.materials[mi].fissile else 2

    def binary_probe_estimate(self, mi: int) -> int:
        return self.nbins_log2

    def birth_bins(self, mi: int, energy: float) -> dict:
        mat = self.materials[mi]
        bins = {
            "scatter_bin": binary_search_bin(mat.scatter, energy),
            "capture_bin": binary_search_bin(mat.capture, energy),
        }
        if mat.fissile:
            bins["fission_bin"] = binary_search_bin(mat.fission, energy)
        return bins

    def birth_bins_batch(self, mi: int, e: np.ndarray) -> dict:
        mat = self.materials[mi]
        bins = {
            "scatter_bin": binary_search_bin_vec(mat.scatter, e),
            "capture_bin": binary_search_bin_vec(mat.capture, e),
        }
        if mat.fissile:
            bins["fission_bin"] = binary_search_bin_vec(mat.fission, e)
        return bins

    def source_bins_batch(self, mi: int, e: np.ndarray) -> dict:
        mat = self.materials[mi]
        return {
            "scatter_bin": binary_search_bin_vec(mat.scatter, e),
            "capture_bin": binary_search_bin_vec(mat.capture, e),
        }

    def nbytes(self) -> int:
        total = 0
        for mat in self.materials:
            total += mat.scatter.nbytes() + mat.capture.nbytes()
            if mat.fissile:
                total += mat.fission.nbytes()
        return total


class ContinuousEnergyProvider(XsProvider):
    """Continuous-energy backend on per-material unionized grids.

    One bin search per lookup (the union grid) regardless of how many
    nuclides or reactions the material mixes; the precomputed double-index
    pointer table turns the per-nuclide searches into gathers (XSBench's
    unionized-grid mode).  The bin cache holds the *union-grid* bin, so the
    cached-linear strategy works unchanged.
    """

    mode = XsMode.CONTINUOUS_ENERGY

    def __init__(self, materials):
        self.materials = tuple(materials)
        if not self.materials:
            raise ValueError("need at least one material")
        _material_meta(self, self.materials)
        self.grids = tuple(build_union_grid(m) for m in self.materials)

    def lookup(self, mi: int, e: np.ndarray, run=None) -> MicroLookup:
        run = run or _direct_run
        grid = self.grids[mi]
        bins, micro_s, micro_c, micro_f = run(
            "xs_lookup_ce", e.shape[0], grid, e
        )
        if not grid.fissile:
            micro_f = None
        return MicroLookup(
            micro_s, micro_c, micro_f, (("scatter_bin", grid, bins),)
        )

    def micro_scalar(self, mi: int, e: float) -> tuple[float, float, float]:
        # Route through the batch kernel on a single lane so the scalar
        # (OP-3D) and vector (OE-3D) paths produce float-identical values.
        arr = np.array([e], dtype=np.float64)
        _bins, micro_s, micro_c, micro_f = kernel_xs.ce_lookup(
            self.grids[mi], arr
        )
        return float(micro_s[0]), float(micro_c[0]), float(micro_f[0])

    def lookups_per_refresh(self, mi: int) -> int:
        return 1

    def binary_probe_estimate(self, mi: int) -> int:
        return self.grids[mi].nbins_log2

    def birth_bins(self, mi: int, energy: float) -> dict:
        return {"scatter_bin": binary_search_bin(self.grids[mi], energy)}

    def birth_bins_batch(self, mi: int, e: np.ndarray) -> dict:
        return {"scatter_bin": binary_search_bin_vec(self.grids[mi], e)}

    def union_points(self, mi: int) -> int:
        """Union-grid size for material ``mi`` (bench/telemetry surface)."""
        return int(self.grids[mi].energy.shape[0])

    def nbytes(self) -> int:
        return sum(grid.nbytes() for grid in self.grids)


def resolve_provider(
    xs_mode,
    *,
    materials=None,
    ce_materials=None,
    nmaterials: int = 1,
    xs_nentries: int | None = None,
) -> XsProvider:
    """Build the provider a config asks for.

    Multigroup wraps ``materials`` (already resolved by the config layer);
    CE uses ``ce_materials`` or falls back to the deterministic synthetic
    library sized by ``xs_nentries`` so CE runs are hermetic.
    """
    mode = XsMode.coerce(xs_mode)
    if mode is XsMode.CONTINUOUS_ENERGY:
        if ce_materials is None:
            npoints = int(xs_nentries) if xs_nentries else None
            kwargs = {} if npoints is None else {"npoints": npoints}
            ce_materials = default_ce_materials(max(int(nmaterials), 1), **kwargs)
        return ContinuousEnergyProvider(ce_materials)
    if materials is None:
        raise ValueError("multigroup mode needs resolved materials")
    return MultigroupProvider(materials, nentries_hint=xs_nentries)


_DIRECT_KERNELS = {
    "xs_lookup": kernel_xs.xs_lookup,
    "xs_lookup_ce": kernel_xs.ce_lookup,
}
