"""Microscopic cross-section tables.

Real continuous-energy Monte Carlo codes interpolate pointwise nuclear data
(e.g. ENDF/B) with tables of 10⁴–10⁵ energy points per nuclide per reaction.
``neutral`` mimics this with two synthetic tables (capture and elastic
scatter) for a single material, loaded once at start-up (paper §IV-D).

The synthetic data follows the gross shape of real neutron cross sections:
a 1/v (here 1/√E) capture tail at low energy and a slowly varying scattering
cross section, plus a deterministic pseudo-resonance structure so that
consecutive lookups actually exercise the interpolation machinery rather
than hitting a constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import xs as _kernel_xs

__all__ = [
    "CrossSectionTable",
    "make_capture_table",
    "make_scatter_table",
    "DEFAULT_NENTRIES",
    "DEFAULT_EMIN_EV",
    "DEFAULT_EMAX_EV",
]

#: Number of (energy, value) pairs per table.  The paper aims for tables
#: "representative of the nuclear data lookup tables" used in real codes —
#: continuous-energy libraries carry 10⁴–10⁵ points per nuclide per
#: reaction, so the two tables total ~0.8 MB and spill the L2 caches of
#: every tested CPU; this is what makes the energy-bin search strategy a
#: measurable optimisation (§VI-A).
DEFAULT_NENTRIES = 25_000

#: Energy grid bounds in eV — thermal to fast.
DEFAULT_EMIN_EV = 1.0e-5
DEFAULT_EMAX_EV = 2.0e7


@dataclass(frozen=True)
class CrossSectionTable:
    """An energy-indexed microscopic cross-section table.

    Attributes
    ----------
    energy:
        Monotonically increasing energy grid in eV.
    value:
        Microscopic cross section in barns at each grid point.
    name:
        Human-readable reaction name ("capture", "elastic_scatter", ...).
    """

    energy: np.ndarray
    value: np.ndarray
    name: str = "xs"

    def __post_init__(self) -> None:
        energy = np.asarray(self.energy, dtype=np.float64)
        value = np.asarray(self.value, dtype=np.float64)
        if energy.ndim != 1 or value.ndim != 1:
            raise ValueError("energy and value must be 1-D arrays")
        if energy.shape != value.shape:
            raise ValueError("energy and value must have the same length")
        if energy.shape[0] < 2:
            raise ValueError("a table needs at least two points")
        if not np.all(np.diff(energy) > 0):
            raise ValueError("energy grid must be strictly increasing")
        if np.any(value < 0):
            raise ValueError("cross sections must be non-negative")
        object.__setattr__(self, "energy", energy)
        object.__setattr__(self, "value", value)

    def __len__(self) -> int:
        return self.energy.shape[0]

    def interpolate_at_bin(self, e: float, bin_index: int) -> float:
        """Linearly interpolate the value at energy ``e`` within ``bin_index``.

        ``bin_index`` must satisfy ``energy[bin] <= e <= energy[bin+1]``
        (clamped behaviour outside the grid is handled by the lookup layer).
        """
        e0 = self.energy[bin_index]
        e1 = self.energy[bin_index + 1]
        v0 = self.value[bin_index]
        v1 = self.value[bin_index + 1]
        t = (e - e0) / (e1 - e0)
        return float(v0 + t * (v1 - v0))

    def interpolate_at_bin_vec(self, e: np.ndarray, bins: np.ndarray) -> np.ndarray:
        """Deprecated wrapper over the batch kernel."""
        return _kernel_xs.interpolate_at_bins(self, e, bins)

    def nbytes(self) -> int:
        """Approximate memory footprint of the table in bytes."""
        return int(self.energy.nbytes + self.value.nbytes)


def _log_energy_grid(nentries: int, emin: float, emax: float) -> np.ndarray:
    """Logarithmic energy grid, matching how nuclear data libraries space points."""
    return np.logspace(np.log10(emin), np.log10(emax), nentries)


def _resonances(energy: np.ndarray, seed: int, n_res: int, amp: float) -> np.ndarray:
    """Deterministic pseudo-resonance structure added on top of the smooth part.

    Uses a fixed-seed generator so tables are identical across runs and
    machines — the paper's tables are generated once and loaded at start-up.
    """
    rng = np.random.default_rng(seed)
    log_e = np.log(energy)
    centres = rng.uniform(np.log(1.0), np.log(1.0e6), size=n_res)
    widths = rng.uniform(0.01, 0.1, size=n_res)
    heights = rng.uniform(0.2, 1.0, size=n_res) * amp
    out = np.zeros_like(energy)
    for c, w, h in zip(centres, widths, heights):
        out += h * w**2 / ((log_e - c) ** 2 + w**2)
    return out


def make_capture_table(
    nentries: int = DEFAULT_NENTRIES,
    emin: float = DEFAULT_EMIN_EV,
    emax: float = DEFAULT_EMAX_EV,
) -> CrossSectionTable:
    """Build the dummy capture (absorption) cross-section table.

    Shape: a 1/√E ("one over v") thermal tail plus resonances — the classic
    profile of a neutron capture cross section.
    """
    energy = _log_energy_grid(nentries, emin, emax)
    smooth = 10.0 / np.sqrt(np.maximum(energy, 1e-12))
    value = smooth + _resonances(energy, seed=101, n_res=60, amp=30.0) + 0.1
    return CrossSectionTable(energy=energy, value=value, name="capture")


def make_scatter_table(
    nentries: int = DEFAULT_NENTRIES,
    emin: float = DEFAULT_EMIN_EV,
    emax: float = DEFAULT_EMAX_EV,
) -> CrossSectionTable:
    """Build the dummy elastic-scatter cross-section table.

    Shape: slowly varying with mild resonance structure, roughly constant in
    the thermal range — typical of elastic scattering data.
    """
    energy = _log_energy_grid(nentries, emin, emax)
    smooth = 100.0 + 15.0 * np.exp(-energy / 1.0e6)
    value = smooth + _resonances(energy, seed=202, n_res=40, amp=25.0)
    return CrossSectionTable(energy=energy, value=value, name="elastic_scatter")
