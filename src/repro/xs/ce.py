"""Continuous-energy cross-section data: nuclides, materials, union grids.

The multigroup tables in :mod:`repro.xs.tables` carry one pre-mixed
(scatter, capture[, fission]) table pair per *material*.  Real
continuous-energy Monte Carlo codes instead carry pointwise data per
*nuclide* and mix macroscopic cross sections at lookup time from the
material's composition — and the lookup itself becomes the hot path
(Tramm et al.'s XSBench isolates exactly this kernel).

This module implements the standard "unionized energy grid with a
double-index pointer table" acceleration from XSBench:

* every nuclide keeps its own (energy, value) grids;
* per material, the union of its nuclides' energy points is formed once at
  construction; alongside it a pointer table ``ptr[n_union, n_nuclides]``
  records, for each union bin, the bracketing bin on each nuclide's own
  grid (nuclide grid points are a subset of the union grid, so the nuclide
  bin is constant across a union bin);
* a runtime lookup then costs **one** bin search (on the union grid,
  binary or cached-linear — the same strategies as multigroup) plus one
  gather + linear interpolation per nuclide per reaction.

The library is synthetic (resonance-peaked, fixed seeds) so CE problems
run hermetically with no external nuclear-data files, mirroring how
:mod:`repro.xs.tables` fakes ENDF-shaped multigroup data.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.xs.tables import (
    DEFAULT_EMAX_EV,
    DEFAULT_EMIN_EV,
    _log_energy_grid,
    _resonances,
)

__all__ = [
    "CENuclide",
    "CEMaterial",
    "UnionGrid",
    "build_union_grid",
    "make_nuclide",
    "default_ce_materials",
    "DEFAULT_CE_NPOINTS",
]

#: Default per-nuclide energy-grid size for the synthetic CE library.  Small
#: enough that union-grid construction is cheap in tests; the bench specs
#: scale it up to make the lookup measurably hot.
DEFAULT_CE_NPOINTS = 4_000


@dataclass(frozen=True, eq=False)
class CENuclide:
    """Pointwise continuous-energy data for one nuclide.

    Attributes
    ----------
    name:
        Nuclide label ("H1", "U235", ...).
    awr:
        Atomic weight ratio — doubles as the molar mass contribution in
        g/mol for the synthetic library.
    energy:
        Strictly increasing energy grid in eV.
    scatter / capture:
        Microscopic cross sections in barns on ``energy``.
    fission:
        Microscopic fission cross section, or ``None`` for non-fissionable
        nuclides.
    """

    name: str
    awr: float
    energy: np.ndarray
    scatter: np.ndarray
    capture: np.ndarray
    fission: np.ndarray | None = None

    def __post_init__(self) -> None:
        energy = np.asarray(self.energy, dtype=np.float64)
        if energy.ndim != 1 or energy.shape[0] < 2:
            raise ValueError("nuclide energy grid must be 1-D with >= 2 points")
        if not np.all(np.diff(energy) > 0):
            raise ValueError("nuclide energy grid must be strictly increasing")
        object.__setattr__(self, "energy", energy)
        for reaction in ("scatter", "capture", "fission"):
            value = getattr(self, reaction)
            if value is None:
                continue
            value = np.asarray(value, dtype=np.float64)
            if value.shape != energy.shape:
                raise ValueError(f"{reaction} grid shape != energy grid shape")
            if np.any(value < 0):
                raise ValueError(f"{reaction} cross sections must be non-negative")
            object.__setattr__(self, reaction, value)

    @property
    def fissile(self) -> bool:
        return self.fission is not None

    def nbytes(self) -> int:
        total = self.energy.nbytes + self.scatter.nbytes + self.capture.nbytes
        if self.fission is not None:
            total += self.fission.nbytes
        return int(total)


@dataclass(frozen=True, eq=False)
class CEMaterial:
    """A material as a composition of nuclides with atom fractions.

    Attributes
    ----------
    name:
        Material label.
    composition:
        Tuple of ``(nuclide, atom_fraction)`` pairs; fractions need not be
        normalised (they are used as-is, matching how number densities mix).
    nu:
        Mean fission neutron yield (used when any nuclide is fissile).
    fission_energy_ev:
        Birth energy of fission secondaries in eV.
    """

    name: str
    composition: tuple
    nu: float = 2.43
    fission_energy_ev: float = 2.0e6

    def __post_init__(self) -> None:
        if not self.composition:
            raise ValueError("a CE material needs at least one nuclide")
        comp = tuple((nuc, float(frac)) for nuc, frac in self.composition)
        for _nuc, frac in comp:
            if frac <= 0:
                raise ValueError("atom fractions must be positive")
        object.__setattr__(self, "composition", comp)

    @property
    def molar_mass_g_mol(self) -> float:
        """Fraction-weighted molar mass (AWR doubles as g/mol here)."""
        total = sum(frac for _nuc, frac in self.composition)
        return sum(nuc.awr * frac for nuc, frac in self.composition) / total

    @property
    def a_ratio(self) -> float:
        """Scattering mass ratio fed to the collision kinematics."""
        return self.molar_mass_g_mol

    @property
    def fissile(self) -> bool:
        return any(nuc.fissile for nuc, _frac in self.composition)


@dataclass(frozen=True, eq=False)
class UnionGrid:
    """Prepared lookup structure for one material (XSBench's unionized grid).

    Attributes
    ----------
    energy:
        Union of the member nuclides' energy points (unique, increasing) —
        the single grid every runtime bin search runs on.  Duck-compatible
        with the probe kernels in :mod:`repro.kernels.xs`, which only read
        ``.energy``.
    ptr:
        ``(n_union, n_nuclides)`` int64 double-index table: ``ptr[k, j]`` is
        the bin on nuclide ``j``'s own grid bracketing energies in union bin
        ``k``.  Precomputing it turns the per-nuclide searches into gathers.
    nuclides / fracs:
        The material's nuclides and their atom fractions, lookup order.
    fissile:
        Whether any member nuclide carries fission data.
    """

    energy: np.ndarray
    ptr: np.ndarray
    nuclides: tuple
    fracs: np.ndarray
    fissile: bool
    nbins_log2: int = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "nbins_log2",
            int(np.ceil(np.log2(max(self.energy.shape[0], 2)))),
        )

    def __len__(self) -> int:
        # Number of union grid points, matching ``len(CrossSectionTable)``
        # so the scalar search strategies accept either table kind.
        return int(self.energy.shape[0])

    def nbytes(self) -> int:
        total = self.energy.nbytes + self.ptr.nbytes + self.fracs.nbytes
        total += sum(nuc.nbytes() for nuc in self.nuclides)
        return int(total)


#: Per-process memo of prepared grids keyed by material identity (CE
#: materials are immutable), so repeated provider construction — pool
#: shards, bench repeats — builds each union grid once.
_GRID_CACHE: "weakref.WeakKeyDictionary[CEMaterial, UnionGrid]" = (
    weakref.WeakKeyDictionary()
)


def build_union_grid(material: CEMaterial) -> UnionGrid:
    """Build the unionized energy grid + double-index pointers for a material."""
    hit = _GRID_CACHE.get(material)
    if hit is not None:
        return hit
    nuclides = tuple(nuc for nuc, _frac in material.composition)
    fracs = np.array([frac for _nuc, frac in material.composition], dtype=np.float64)
    union = np.unique(np.concatenate([nuc.energy for nuc in nuclides]))
    ptr = np.empty((union.shape[0], len(nuclides)), dtype=np.int64)
    for j, nuc in enumerate(nuclides):
        bins = np.searchsorted(nuc.energy, union, side="right") - 1
        ptr[:, j] = np.clip(bins, 0, nuc.energy.shape[0] - 2)
    grid = UnionGrid(
        energy=union,
        ptr=ptr,
        nuclides=nuclides,
        fracs=fracs,
        fissile=material.fissile,
    )
    _GRID_CACHE[material] = grid
    return grid


def make_nuclide(
    name: str,
    awr: float,
    npoints: int,
    *,
    seed: int,
    smooth_scatter: float = 20.0,
    smooth_capture: float = 5.0,
    n_res: int = 40,
    amp: float = 30.0,
    fissile: bool = False,
    emin: float = DEFAULT_EMIN_EV,
    emax: float = DEFAULT_EMAX_EV,
) -> CENuclide:
    """Generate one synthetic resonance-peaked nuclide.

    Reuses the deterministic resonance generator behind the multigroup
    tables with nuclide-specific seeds, so the library is identical across
    runs and machines (workers rebuild it independently from the seed).
    The grid is log-spaced but jittered per nuclide so distinct nuclides
    contribute distinct points to the union grid — without the jitter the
    union would collapse back onto a single shared grid and the
    double-index pointers would be trivial.
    """
    rng = np.random.default_rng(seed)
    grid = _log_energy_grid(npoints, emin, emax)
    log_grid = np.log(grid)
    jitter = rng.uniform(-0.35, 0.35, size=npoints)
    jitter[0] = jitter[-1] = 0.0  # shared bounds: no cross-nuclide extrapolation
    spacing = np.diff(log_grid, prepend=log_grid[0] - (log_grid[1] - log_grid[0]))
    energy = np.exp(log_grid + jitter * spacing)
    energy = np.unique(energy)
    scatter = smooth_scatter + 5.0 * np.exp(-energy / 1.0e6)
    scatter = scatter + _resonances(energy, seed=seed + 1, n_res=n_res, amp=amp)
    capture = smooth_capture / np.sqrt(np.maximum(energy, 1e-12))
    capture = capture + _resonances(energy, seed=seed + 2, n_res=n_res, amp=amp) + 0.05
    fission = None
    if fissile:
        fission = 4.0 / np.sqrt(np.maximum(energy, 1e-12)) + 1.0
        fission = fission + _resonances(energy, seed=seed + 3, n_res=n_res, amp=amp)
    return CENuclide(
        name=name,
        awr=awr,
        energy=energy,
        scatter=scatter,
        capture=capture,
        fission=fission,
    )


_DEFAULT_CACHE: dict = {}


def default_ce_materials(
    nmaterials: int = 1,
    npoints: int = DEFAULT_CE_NPOINTS,
    *,
    seed: int = 7000,
) -> tuple:
    """The built-in synthetic CE library: ``nmaterials`` hermetic materials.

    Material 0 is a hydrogenous moderator (light smooth nuclide dominant,
    heavy resonance-dense diluent); material 1, when requested, is a
    fissile fuel.  Further materials repeat the moderator recipe with
    shifted seeds.  Cached by ``(nmaterials, npoints, seed)`` — the
    generator is deterministic, so pool workers rebuilding from the same
    config arrive at bit-identical data.
    """
    key = (int(nmaterials), int(npoints), int(seed))
    hit = _DEFAULT_CACHE.get(key)
    if hit is not None:
        return hit
    if nmaterials < 1:
        raise ValueError("need at least one material")
    mats = []
    for i in range(nmaterials):
        base = seed + 100 * i
        if i == 1:
            heavy = make_nuclide(
                f"U235_{i}", 235.0, npoints, seed=base + 10,
                smooth_scatter=10.0, smooth_capture=8.0,
                n_res=60, amp=45.0, fissile=True,
            )
            oxygen = make_nuclide(
                f"O16_{i}", 16.0, max(npoints // 2, 2), seed=base + 20,
                smooth_scatter=4.0, smooth_capture=0.2, n_res=10, amp=5.0,
            )
            mats.append(CEMaterial(
                name=f"ce_fuel_{i}",
                composition=((heavy, 1.0), (oxygen, 2.0)),
            ))
        else:
            light = make_nuclide(
                f"H1_{i}", 1.0, max(npoints // 2, 2), seed=base + 10,
                smooth_scatter=20.0, smooth_capture=0.3, n_res=8, amp=4.0,
            )
            heavy = make_nuclide(
                f"Fe56_{i}", 56.0, npoints, seed=base + 20,
                smooth_scatter=12.0, smooth_capture=2.5,
                n_res=50, amp=35.0,
            )
            mats.append(CEMaterial(
                name=f"ce_moderator_{i}",
                composition=((light, 2.0), (heavy, 1.0)),
            ))
    result = tuple(mats)
    _DEFAULT_CACHE[key] = result
    return result
