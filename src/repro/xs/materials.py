"""Materials: cross-section sets with optional fission data.

The paper's mini-app models "a homogeneous non-multiplying media" and lists
fission and multi-material meshes as future work (§IV-D, §IX).  This module
provides both extensions:

* a :class:`Material` bundles the per-reaction microscopic tables with the
  nuclide mass (for elastic kinematics) and, for multiplying media, the
  fission table, the mean secondaries per fission ``ν`` and the mean
  energy of the (simplified, exponential) fission spectrum;
* factory functions build the paper's default hydrogenous medium, a heavy
  reflector/moderator, and a fictional fissile fuel whose reaction balance
  keeps test systems comfortably subcritical.

Multi-material problems attach a per-cell material index to the
configuration; particles re-resolve their material wherever they re-read
the cell density (facet crossings), which is exactly the extra mesh
coupling the paper anticipates "may or may not affect the performance".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.xs.tables import (
    CrossSectionTable,
    DEFAULT_NENTRIES,
    _log_energy_grid,
    _resonances,
    make_capture_table,
    make_scatter_table,
)

__all__ = [
    "Material",
    "hydrogenous_moderator",
    "heavy_reflector",
    "fissile_fuel",
]


@dataclass(frozen=True)
class Material:
    """A transport medium.

    Attributes
    ----------
    name:
        Human-readable label.
    molar_mass_g_mol:
        Molar mass; also the elastic-scattering mass ratio ``A`` in
        neutron masses.
    scatter, capture:
        Microscopic elastic-scatter and capture tables.
    fission:
        Microscopic fission table, or ``None`` for non-multiplying media.
    nu:
        Mean secondaries per fission.
    fission_energy_ev:
        Mean of the (exponential) fission emission spectrum.
    """

    name: str
    molar_mass_g_mol: float
    scatter: CrossSectionTable
    capture: CrossSectionTable
    fission: CrossSectionTable | None = None
    nu: float = 2.43
    fission_energy_ev: float = 2.0e6

    def __post_init__(self) -> None:
        if self.molar_mass_g_mol <= 0:
            raise ValueError("molar mass must be positive")
        if self.nu <= 0:
            raise ValueError("nu must be positive")
        if self.fission_energy_ev <= 0:
            raise ValueError("fission energy must be positive")

    @property
    def a_ratio(self) -> float:
        """Elastic-scattering target mass in neutron masses."""
        return self.molar_mass_g_mol

    @property
    def fissile(self) -> bool:
        """True for multiplying media."""
        return self.fission is not None


def hydrogenous_moderator(
    nentries: int = DEFAULT_NENTRIES, molar_mass_g_mol: float = 1.0
) -> Material:
    """The paper's default medium: light, strongly scattering, 1/v capture."""
    return Material(
        name="hydrogenous_moderator",
        molar_mass_g_mol=molar_mass_g_mol,
        scatter=make_scatter_table(nentries),
        capture=make_capture_table(nentries),
    )


def heavy_reflector(
    nentries: int = DEFAULT_NENTRIES, molar_mass_g_mol: float = 200.0
) -> Material:
    """A heavy nuclide: tiny energy transfer per elastic collision.

    Useful for reflector regions and for exercising the cached-linear
    search in its favourable small-jump regime (§VI-A).
    """
    return Material(
        name="heavy_reflector",
        molar_mass_g_mol=molar_mass_g_mol,
        scatter=make_scatter_table(nentries),
        capture=make_capture_table(nentries),
    )


def make_fission_table(nentries: int = DEFAULT_NENTRIES) -> CrossSectionTable:
    """A fictional fissile nuclide's fission cross section: 1/v at thermal
    energies with resonance structure, ~2 barns fast."""
    energy = _log_energy_grid(nentries, 1.0e-5, 2.0e7)
    smooth = 5.0 / np.sqrt(np.maximum(energy, 1e-12)) + 2.0
    value = smooth + _resonances(energy, seed=303, n_res=50, amp=40.0)
    return CrossSectionTable(energy=energy, value=value, name="fission")


def fissile_fuel(
    nentries: int = DEFAULT_NENTRIES,
    molar_mass_g_mol: float = 235.0,
    nu: float = 2.43,
) -> Material:
    """A fictional heavy fissile fuel.

    The reaction balance (scatter ≫ fission at fast energies, ν ≈ 2.4)
    keeps small test systems subcritical, so fission chains terminate and
    the secondary bank drains — asserted by the integration tests.
    """
    return Material(
        name="fissile_fuel",
        molar_mass_g_mol=molar_mass_g_mol,
        scatter=make_scatter_table(nentries),
        capture=make_capture_table(nentries),
        fission=make_fission_table(nentries),
        nu=nu,
    )
