"""Energy-bin search strategies.

Finding the energy bin that brackets a particle's continuous energy is the
hot inner operation of every cross-section lookup.  The paper (§VI-A)
describes the optimisation the mini-app uses:

    "The index of the previous lookup is cached so that a fast linear
    search can be used to take advantage of cache locality, instead of
    performing a more expensive binary search at each step.  This
    particular optimisation improved the performance of the csp problem
    by 1.3x, but might suffer issues when larger jumps in energy are
    observed due to physical phenomena."

Both strategies are implemented here; :class:`LookupStats` counts the probe
steps each performs so the performance model can price them (a binary-search
probe is a dependent, cache-unfriendly load; a linear-search probe walks
adjacent table entries already in cache).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels import xs as _kernel_xs
from repro.xs.tables import CrossSectionTable

__all__ = ["LookupStats", "binary_search_bin", "cached_linear_search_bin",
           "binary_search_bin_vec"]


@dataclass
class LookupStats:
    """Counts of search work, fed into the performance model.

    Attributes
    ----------
    lookups:
        Number of bin searches performed.
    binary_probes:
        Total probe steps taken by binary searches.
    linear_probes:
        Total probe steps taken by cached linear searches (0 when the cached
        bin is already correct).
    """

    lookups: int = 0
    binary_probes: int = 0
    linear_probes: int = 0

    def merge(self, other: "LookupStats") -> None:
        """Accumulate another stats object into this one."""
        self.lookups += other.lookups
        self.binary_probes += other.binary_probes
        self.linear_probes += other.linear_probes

    def probes_per_lookup(self) -> float:
        """Mean probes per lookup over both strategies."""
        if self.lookups == 0:
            return 0.0
        return (self.binary_probes + self.linear_probes) / self.lookups


def _clamp_energy_index(table: CrossSectionTable, e: float) -> int | None:
    """Handle energies outside the grid; return the clamped bin or None."""
    if e <= table.energy[0]:
        return 0
    if e >= table.energy[-1]:
        return len(table) - 2
    return None


def binary_search_bin(
    table: CrossSectionTable, e: float, stats: LookupStats | None = None
) -> int:
    """Find ``bin`` with ``energy[bin] <= e < energy[bin+1]`` by bisection.

    Energies outside the grid clamp to the first/last bin.  Probe count is
    recorded in ``stats`` when given.
    """
    clamped = _clamp_energy_index(table, e)
    if stats is not None:
        stats.lookups += 1
    if clamped is not None:
        return clamped

    lo = 0
    hi = len(table) - 1
    probes = 0
    while hi - lo > 1:
        mid = (lo + hi) // 2
        probes += 1
        if table.energy[mid] <= e:
            lo = mid
        else:
            hi = mid
    if stats is not None:
        stats.binary_probes += probes
    return lo


def cached_linear_search_bin(
    table: CrossSectionTable,
    e: float,
    cached_bin: int,
    stats: LookupStats | None = None,
) -> int:
    """Find the bracketing bin by walking linearly from ``cached_bin``.

    This is the paper's cache-locality optimisation: after a collision the
    particle's energy moves only a few bins, so the walk is short and stays
    within lines already resident in cache.  Falls back to correct behaviour
    for arbitrary jumps (it simply walks further).
    """
    clamped = _clamp_energy_index(table, e)
    if stats is not None:
        stats.lookups += 1
    if clamped is not None:
        return clamped

    nbins = len(table) - 1
    b = min(max(cached_bin, 0), nbins - 1)
    probes = 0
    while table.energy[b + 1] <= e:
        b += 1
        probes += 1
    while table.energy[b] > e:
        b -= 1
        probes += 1
    if stats is not None:
        stats.linear_probes += probes
    return b


# Deprecated alias of the batch kernel (same bisection via searchsorted,
# identical clamping).
binary_search_bin_vec = _kernel_xs.search_bins
