"""Comparator mini-apps from the arch suite.

The paper contrasts ``neutral``'s scaling behaviour against two other arch
mini-apps (Fig 3, Fig 6):

* **flow** — "a highly optimised hydrodynamics application": implemented
  here as a real 2-D finite-volume Euler solver
  (:mod:`repro.comparisons.flow`);
* **hot** — "a conjugate gradient based heat conduction linear solver":
  implemented as a matrix-free CG solve of the implicit heat equation
  (:mod:`repro.comparisons.hot`).

Both are classic *memory-bandwidth-bound* stencil codes — the foil to
neutral's latency-bound profile.  :mod:`repro.comparisons.characterisation`
derives their per-cell byte/flop intensities and evaluates the
bandwidth-saturation scaling model that produces their Fig 3 efficiency
curves and Fig 6 hyperthreading behaviour (no HT gain; ~1.2× penalty when
oversubscribed).
"""

from repro.comparisons.flow import FlowSolver, sod_initial_state
from repro.comparisons.hot import HotSolver
from repro.comparisons.characterisation import (
    StencilCharacterisation,
    FLOW_CHARACTERISATION,
    HOT_CHARACTERISATION,
    predict_stencil_runtime,
)

__all__ = [
    "FlowSolver",
    "sod_initial_state",
    "HotSolver",
    "StencilCharacterisation",
    "FLOW_CHARACTERISATION",
    "HOT_CHARACTERISATION",
    "predict_stencil_runtime",
]
