"""``flow``: a 2-D compressible hydrodynamics mini-app.

A real finite-volume solver for the 2-D Euler equations on a uniform grid,
using the (first-order) Lax–Friedrichs flux with reflective walls — small
but genuinely representative of an explicit hydro code's performance
profile: a handful of flops per cell per step over large contiguous arrays,
i.e. memory-bandwidth bound.  This is the comparator the paper plots
against ``neutral`` in Figs 3 and 6.

State is stored as conserved variables ``(ρ, ρu, ρv, E)`` with an ideal-gas
equation of state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FlowSolver", "sod_initial_state"]

#: Ideal-gas adiabatic index.
GAMMA = 1.4


def sod_initial_state(nx: int, ny: int) -> tuple[np.ndarray, ...]:
    """The classic Sod shock tube, extruded in y.

    Left half: ρ=1, p=1; right half: ρ=0.125, p=0.1; fluid at rest.
    Returns conserved fields ``(rho, mx, my, e)`` of shape ``(ny, nx)``.
    """
    rho = np.full((ny, nx), 0.125)
    p = np.full((ny, nx), 0.1)
    rho[:, : nx // 2] = 1.0
    p[:, : nx // 2] = 1.0
    mx = np.zeros_like(rho)
    my = np.zeros_like(rho)
    e = p / (GAMMA - 1.0)
    return rho, mx, my, e


class FlowSolver:
    """Explicit Lax–Friedrichs Euler solver on ``[0,1]²`` with walls.

    Parameters
    ----------
    rho, mx, my, e:
        Conserved fields (density, x/y momentum, total energy density),
        shape ``(ny, nx)``.
    cfl:
        Courant number for the adaptive timestep.
    """

    def __init__(
        self,
        rho: np.ndarray,
        mx: np.ndarray,
        my: np.ndarray,
        e: np.ndarray,
        cfl: float = 0.4,
    ):
        shapes = {a.shape for a in (rho, mx, my, e)}
        if len(shapes) != 1 or rho.ndim != 2:
            raise ValueError("all fields must share one 2-D shape")
        if np.any(rho <= 0):
            raise ValueError("density must be positive")
        if not 0 < cfl < 1:
            raise ValueError("CFL number must be in (0, 1)")
        self.rho = rho.astype(np.float64).copy()
        self.mx = mx.astype(np.float64).copy()
        self.my = my.astype(np.float64).copy()
        self.e = e.astype(np.float64).copy()
        self.ny, self.nx = rho.shape
        self.dx = 1.0 / self.nx
        self.dy = 1.0 / self.ny
        self.cfl = cfl
        self.time = 0.0
        self.steps_taken = 0

    # ------------------------------------------------------------------
    def pressure(self) -> np.ndarray:
        """Ideal-gas pressure from the conserved fields."""
        kinetic = 0.5 * (self.mx**2 + self.my**2) / self.rho
        return (GAMMA - 1.0) * (self.e - kinetic)

    def sound_speed(self) -> np.ndarray:
        """Local speed of sound (pressure floored at zero for robustness)."""
        p = np.maximum(self.pressure(), 0.0)
        return np.sqrt(GAMMA * p / self.rho)

    def max_wavespeed(self) -> float:
        """Largest |u|+c over the grid — sets the stable timestep."""
        c = self.sound_speed()
        sx = np.abs(self.mx / self.rho) + c
        sy = np.abs(self.my / self.rho) + c
        return float(max(sx.max(), sy.max(), 1e-300))

    def stable_dt(self) -> float:
        """CFL-limited timestep."""
        return self.cfl * min(self.dx, self.dy) / self.max_wavespeed()

    # ------------------------------------------------------------------
    def _padded(self, a: np.ndarray) -> np.ndarray:
        """Reflective ghost layer (edge values mirrored)."""
        return np.pad(a, 1, mode="edge")

    def step(self, dt: float | None = None) -> float:
        """Advance one timestep; returns the dt used.

        Local Lax–Friedrichs (Rusanov) finite-volume update:
        ``U' = U − dt/h (F̂_{i+1/2} − F̂_{i−1/2})`` with
        ``F̂ = ½(F_L + F_R) − ½ α (U_R − U_L)``.  Wall boundaries use ghost
        states with the wall-normal momentum reflected, which makes the
        scheme exactly conservative in mass and energy (wall fluxes carry
        only momentum).
        """
        if dt is None:
            dt = self.stable_dt()

        # Ghost state: mirror everything, flip wall-normal momenta.
        rho = self._padded(self.rho)
        mx = self._padded(self.mx)
        my = self._padded(self.my)
        e = self._padded(self.e)
        mx[:, 0] = -mx[:, 1]
        mx[:, -1] = -mx[:, -2]
        my[0, :] = -my[1, :]
        my[-1, :] = -my[-2, :]

        u = mx / rho
        v = my / rho
        kinetic = 0.5 * (mx * mx + my * my) / rho
        p = np.maximum((GAMMA - 1.0) * (e - kinetic), 0.0)
        c = np.sqrt(GAMMA * p / rho)
        alpha_x = np.abs(u) + c
        alpha_y = np.abs(v) + c

        fx = (mx, mx * u + p, my * u, (e + p) * u)
        fy = (my, mx * v, my * v + p, (e + p) * v)
        fields = (rho, mx, my, e)

        new_fields = []
        for q, fxq, fyq in zip(fields, fx, fy):
            # x-face fluxes between columns j and j+1 (rows 1..ny of pad).
            ax = np.maximum(alpha_x[1:-1, :-1], alpha_x[1:-1, 1:])
            fhat_x = 0.5 * (fxq[1:-1, :-1] + fxq[1:-1, 1:]) - 0.5 * ax * (
                q[1:-1, 1:] - q[1:-1, :-1]
            )
            ay = np.maximum(alpha_y[:-1, 1:-1], alpha_y[1:, 1:-1])
            fhat_y = 0.5 * (fyq[:-1, 1:-1] + fyq[1:, 1:-1]) - 0.5 * ay * (
                q[1:, 1:-1] - q[:-1, 1:-1]
            )
            div = (fhat_x[:, 1:] - fhat_x[:, :-1]) / self.dx + (
                fhat_y[1:, :] - fhat_y[:-1, :]
            ) / self.dy
            new_fields.append(q[1:-1, 1:-1] - dt * div)

        self.rho, self.mx, self.my, self.e = new_fields
        self.rho = np.maximum(self.rho, 1e-12)
        self.time += dt
        self.steps_taken += 1
        return dt

    def run(self, nsteps: int) -> None:
        """Advance ``nsteps`` CFL-limited steps."""
        for _ in range(nsteps):
            self.step()

    # ------------------------------------------------------------------
    def total_mass(self) -> float:
        """Integrated density (conserved by the wall boundaries)."""
        return float(self.rho.sum() * self.dx * self.dy)

    def total_energy(self) -> float:
        """Integrated total energy (conserved by the wall boundaries)."""
        return float(self.e.sum() * self.dx * self.dy)
