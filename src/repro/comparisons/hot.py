"""``hot``: a conjugate-gradient heat-conduction mini-app.

Solves one implicit timestep of the heat equation,

    ``(I − α Δt ∇²) T_next = T``,

on a uniform 2-D grid with insulated (Neumann) boundaries, using a
matrix-free conjugate-gradient iteration — the same algorithmic skeleton as
the arch suite's ``hot``.  Each CG iteration is one 5-point stencil apply
plus a few vector operations: like ``flow``, strictly memory-bandwidth
bound, which is why the paper uses it as a second scaling reference in
Fig 3.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HotSolver"]


class HotSolver:
    """Implicit heat-conduction solve on ``[0,1]²``.

    Parameters
    ----------
    temperature:
        Initial temperature field, shape ``(ny, nx)``.
    conductivity:
        Thermal diffusivity ``α`` (uniform).
    dt:
        Implicit timestep length.
    """

    def __init__(self, temperature: np.ndarray, conductivity: float = 1.0, dt: float = 1e-4):
        temperature = np.asarray(temperature, dtype=np.float64)
        if temperature.ndim != 2:
            raise ValueError("temperature must be a 2-D field")
        if conductivity <= 0 or dt <= 0:
            raise ValueError("conductivity and dt must be positive")
        self.t = temperature.copy()
        self.ny, self.nx = temperature.shape
        self.dx = 1.0 / self.nx
        self.alpha = conductivity
        self.dt = dt
        self.last_iterations = 0
        self.last_residual = 0.0

    # ------------------------------------------------------------------
    def apply_operator(self, x: np.ndarray) -> np.ndarray:
        """``(I − αΔt ∇²) x`` with insulated boundaries (mirrored ghosts).

        The operator is symmetric positive definite, which CG requires; the
        test-suite checks both properties.
        """
        xp = np.pad(x, 1, mode="edge")
        lap = (
            xp[1:-1, :-2] + xp[1:-1, 2:] + xp[:-2, 1:-1] + xp[2:, 1:-1]
            - 4.0 * x
        ) / (self.dx * self.dx)
        return x - self.alpha * self.dt * lap

    def solve_timestep(
        self,
        tol: float = 1e-10,
        max_iters: int = 10_000,
        source: np.ndarray | None = None,
    ) -> np.ndarray:
        """Advance one implicit step by CG; returns the new field.

        Iterates until ``‖r‖ ≤ tol ‖b‖``; records the iteration count and
        final relative residual for the scaling characterisation.

        ``source`` adds a volumetric heating term ``q`` (per unit time):
        ``(I − αΔt∇²) T' = T + Δt·q`` — the coupling surface a transport
        code's energy-deposition tally feeds (paper §VI-F: tallies "update
        the source terms of another application").
        """
        b = self.t
        if source is not None:
            source = np.asarray(source, dtype=np.float64)
            if source.shape != self.t.shape:
                raise ValueError("source must match the temperature field")
            b = self.t + self.dt * source
        x = b.copy()  # warm start from the current field
        r = b - self.apply_operator(x)
        p = r.copy()
        rs = float((r * r).sum())
        b_norm = float(np.sqrt((b * b).sum())) or 1.0

        iters = 0
        while np.sqrt(rs) / b_norm > tol and iters < max_iters:
            ap = self.apply_operator(p)
            alpha = rs / float((p * ap).sum())
            x += alpha * p
            r -= alpha * ap
            rs_new = float((r * r).sum())
            p = r + (rs_new / rs) * p
            rs = rs_new
            iters += 1

        self.t = x
        self.last_iterations = iters
        self.last_residual = float(np.sqrt(rs)) / b_norm
        return self.t

    # ------------------------------------------------------------------
    def total_heat(self) -> float:
        """Integrated temperature — conserved by insulated boundaries."""
        return float(self.t.sum() * self.dx * self.dx)

    def dense_operator(self) -> np.ndarray:
        """Dense matrix of :meth:`apply_operator` (small grids only; for
        verification against a direct solve)."""
        n = self.nx * self.ny
        if n > 4096:
            raise ValueError("dense operator is for small verification grids")
        a = np.zeros((n, n))
        for j in range(n):
            e = np.zeros((self.ny, self.nx))
            e.flat[j] = 1.0
            a[:, j] = self.apply_operator(e).ravel()
        return a
