"""Roofline characterisation of the stencil comparators.

``flow`` and ``hot`` are bandwidth-bound: their runtime on a CPU node is
``max(flop time, bytes / delivered bandwidth)``, and delivered bandwidth
saturates once a handful of cores per socket are streaming.  That single
mechanism produces both comparator behaviours the paper reports:

* Fig 3 — parallel efficiency that falls as each socket's bandwidth
  saturates, recovers when the second socket's controllers come in, and is
  near-perfect on POWER8 ("there are many memory controllers ... many
  threads are required to saturate the memory bandwidth");
* Fig 6 — no benefit from hyperthreading (extra threads on a saturated
  core add no bandwidth) and a ≈1.2× penalty for oversubscription (context
  switching on a fully busy core).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import CPUSpec
from repro.parallel.affinity import Affinity, place_threads
from repro.perfmodel.costs import DEFAULT_CONSTANTS, ModelConstants

__all__ = [
    "StencilCharacterisation",
    "FLOW_CHARACTERISATION",
    "HOT_CHARACTERISATION",
    "PER_CORE_STREAM_GBS",
    "predict_stencil_runtime",
]

#: Streaming bandwidth one core can draw, GB/s (published single-core
#: STREAM results).  POWER8's per-core draw is modest relative to its many
#: Centaur channels, which is exactly why it needs many threads to
#: saturate (§VI-B).
PER_CORE_STREAM_GBS = {
    "broadwell": 12.0,
    "knights landing": 5.5,
    "power8": 11.0,
}


@dataclass(frozen=True)
class StencilCharacterisation:
    """Per-cell-per-iteration intensity of a stencil code.

    Attributes
    ----------
    name:
        Mini-app name.
    bytes_per_cell:
        Main-memory traffic per cell per sweep (reads + writes of the
        field arrays; stencil neighbours come from cache).
    flops_per_cell:
        Floating-point operations per cell per sweep.
    """

    name: str
    bytes_per_cell: float
    flops_per_cell: float


#: flow: 4 conserved fields read + written (64 B), ghost/flux temporaries
#: ≈ one extra read-equivalent per field → ~160 B/cell/step; ~90 flops.
FLOW_CHARACTERISATION = StencilCharacterisation(
    name="flow", bytes_per_cell=160.0, flops_per_cell=90.0
)

#: hot: per CG iteration: stencil apply (read x, write Ax), two dots and
#: two AXPYs over 5 vectors ≈ 112 B/cell; ~20 flops.
HOT_CHARACTERISATION = StencilCharacterisation(
    name="hot", bytes_per_cell=112.0, flops_per_cell=20.0
)


def _per_core_stream(spec: CPUSpec, constants: ModelConstants) -> float:
    key = spec.name.lower()
    for name, value in PER_CORE_STREAM_GBS.items():
        if name in key:
            return value
    return constants.single_thread_stream_gbs


def predict_stencil_runtime(
    char: StencilCharacterisation,
    spec: CPUSpec,
    ncells: int,
    iterations: int,
    nthreads: int,
    affinity: Affinity = Affinity.COMPACT,
    constants: ModelConstants = DEFAULT_CONSTANTS,
) -> float:
    """Predicted seconds for ``iterations`` sweeps over ``ncells`` cells.

    ``max(flops / flop_rate, bytes / BW)`` where the delivered bandwidth is
    ``min(socket share of achievable, cores_used × per-core draw)`` summed
    over populated sockets, plus the oversubscription switching penalty
    (at ~100% issue utilisation the full §VI-E cost applies).
    """
    if ncells < 1 or iterations < 1:
        raise ValueError("work must be positive")
    placement = place_threads(
        nthreads, spec.sockets, spec.cores_per_socket, spec.smt_per_core, affinity
    )
    per_core_bw = _per_core_stream(spec, constants)
    socket_bw = spec.dram.bandwidth_gbs / spec.sockets

    bandwidth = 0.0
    for s in range(spec.sockets):
        lo = s * spec.cores_per_socket
        cores_here = int(
            (placement.per_core[lo: lo + spec.cores_per_socket] > 0).sum()
        )
        bandwidth += min(socket_bw, cores_here * per_core_bw)
    bandwidth = max(bandwidth, per_core_bw)

    bytes_total = char.bytes_per_cell * ncells * iterations
    flops_total = char.flops_per_cell * ncells * iterations
    # Vectorised stencil flops at the full SIMD rate.
    flop_rate = (
        placement.cores_used
        * spec.clock_ghz
        * 1.0e9
        * spec.issue_width
        * spec.vector_width_f64
    )

    seconds = max(bytes_total / (bandwidth * 1.0e9), flops_total / flop_rate)

    if placement.oversubscribed:
        hw = spec.total_cores * spec.smt_per_core
        ratio = nthreads / hw
        # Bandwidth-bound code is ~100% busy: full switching penalty.
        seconds *= 1.0 + constants.oversubscription_switch_cost * (ratio - 1.0)
    return seconds
