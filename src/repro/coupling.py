"""Transport ↔ heat-conduction coupling.

The paper's §VI-F observes that in real use "the application would likely
be collecting tallies to update the source terms of another application,
and the energy deposition would need to be merged from all threads at
every timestep" — the very requirement that made per-timestep tally
merging expensive.  This module implements that host-code pattern: the
transport's per-timestep energy deposition becomes the volumetric heating
source of the ``hot`` conduction solver, alternating

    transport step  →  deposition tally  →  q(x, y)  →  implicit heat step

so the repository contains a working instance of the coupling the paper
only gestures at.  The conversion treats the mesh cells as unit-thickness
volumes of a material with the given heat capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comparisons.hot import HotSolver
from repro.core.config import Scheme, SimulationConfig
from repro.physics.constants import EV_TO_J

__all__ = ["CoupledResult", "run_coupled"]


@dataclass(frozen=True)
class CoupledResult:
    """Outcome of a coupled transport/conduction calculation.

    Attributes
    ----------
    temperature:
        Final temperature field [K], shape ``(ny, nx)``.
    deposition_per_step:
        The transport tally of each timestep [eV per cell].
    cg_iterations:
        CG iterations each heat solve needed.
    total_deposited_ev:
        Energy handed from transport to conduction over the run.
    """

    temperature: np.ndarray
    deposition_per_step: list
    cg_iterations: list
    total_deposited_ev: float


def run_coupled(
    config: SimulationConfig,
    nsteps: int,
    initial_temperature: float = 300.0,
    conductivity: float = 1.0e-3,
    heat_capacity_j_per_k: float = 1.0e-12,
    heat_dt: float = 1.0e-3,
    scheme: Scheme = Scheme.OVER_EVENTS,
) -> CoupledResult:
    """Alternate transport and conduction for ``nsteps`` timesteps.

    Each step runs one transport timestep (continuing the same particle
    population), converts the step's fresh deposition into a heating
    impulse (``ΔT = E_dep · eV→J / C_cell`` delivered over one conduction
    step), and advances the implicit conduction solve with that source.

    Parameters
    ----------
    config:
        Transport configuration (its ``ntimesteps`` is ignored; stepping
        is driven here).
    nsteps:
        Coupled steps to run.
    initial_temperature:
        Uniform starting temperature [K].
    conductivity:
        Thermal diffusivity of the conduction solve.
    heat_capacity_j_per_k:
        Heat capacity of one cell — converts deposited joules to kelvins.
    heat_dt:
        Conduction timestep.  Heat diffuses on a far slower timescale than
        a 1e-7 s transport step resolves, so the standard multirate
        coupling advances conduction by ``heat_dt`` per exchange using the
        transport step's average heating power.
    """
    if nsteps < 1:
        raise ValueError("need at least one coupled step")
    if heat_capacity_j_per_k <= 0:
        raise ValueError("heat capacity must be positive")

    # The transport drivers advance censused populations when ntimesteps>1;
    # for host-driven stepping we run one timestep at a time against a
    # persistent tally and difference it per step.
    from repro.core.over_events import run_over_events
    from repro.core.over_particles import run_over_particles

    step_cfg = config.with_(ntimesteps=1)
    if heat_dt <= 0:
        raise ValueError("heat_dt must be positive")
    heat = HotSolver(
        np.full((config.ny, config.nx), float(initial_temperature)),
        conductivity=conductivity,
        dt=heat_dt,
    )

    depositions = []
    iterations = []
    population = None  # ParticleArena, carried between steps
    total = 0.0

    driver = (
        run_over_particles
        if scheme is Scheme.OVER_PARTICLES
        else run_over_events
    )
    for step in range(nsteps):
        result = driver(step_cfg, arena=population)
        population = result.arena
        population.dt_to_census[population.alive] = step_cfg.dt

        dep = result.tally.deposition.copy()
        depositions.append(dep)
        total += float(dep.sum())

        # The step's deposit enters as an energy impulse: a source that,
        # integrated over one conduction step, raises each cell by exactly
        # ΔT = E·(eV→J)/C — energy-conserving whatever the two timescales.
        q = dep * EV_TO_J / (heat_capacity_j_per_k * heat_dt)
        heat.solve_timestep(source=q)
        iterations.append(heat.last_iterations)

    return CoupledResult(
        temperature=heat.t,
        deposition_per_step=depositions,
        cg_iterations=iterations,
        total_deposited_ev=total,
    )
