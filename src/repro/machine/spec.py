"""Hardware description dataclasses.

A spec captures exactly the architecture features the paper's analysis
turns on:

* cache hierarchy (capacities and load-to-use latencies) — the random
  density/tally accesses live or die by these;
* memory system (bandwidth, latency, optionally a second fast-but-small
  region like KNL's MCDRAM) — §VII-B;
* node topology (sockets, cores, SMT ways, on-chip core clusters) — the
  NUMA cliff of Fig 3 and the POWER8 step functions;
* atomic support — native vs emulated double-precision atomics (§VIII-A);
* for GPUs: SM count, warp geometry and register file — the occupancy
  arithmetic of §VI-H.

All quantities are datasheet numbers; nothing here is fitted to the paper's
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["MachineKind", "CacheLevel", "MemorySpec", "CPUSpec", "GPUSpec"]


class MachineKind(Enum):
    """Device class."""

    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class CacheLevel:
    """One level of cache.

    Attributes
    ----------
    size_bytes:
        Capacity visible to one thread's accesses (per-core for private
        levels, total for shared levels).
    latency_cycles:
        Load-to-use latency in core clock cycles.
    shared:
        True when the capacity is shared by all cores of a socket.
    """

    size_bytes: int
    latency_cycles: float
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.latency_cycles <= 0:
            raise ValueError("cache size and latency must be positive")


@dataclass(frozen=True)
class MemorySpec:
    """A memory region (DDR, MCDRAM, GDDR, HBM).

    Attributes
    ----------
    bandwidth_gbs:
        *Achievable* streaming bandwidth in GB/s for the whole device (the
        paper quotes achieved fractions against achievable, not theoretical
        peak).
    latency_ns:
        Unloaded random-access latency.
    capacity_gb:
        Capacity (bounds e.g. MCDRAM residency decisions, §VI-F's 31 GB
        privatised tally).
    """

    bandwidth_gbs: float
    latency_ns: float
    capacity_gb: float
    random_bw_fraction: float = 0.4

    def __post_init__(self) -> None:
        if min(self.bandwidth_gbs, self.latency_ns, self.capacity_gb) <= 0:
            raise ValueError("memory spec fields must be positive")
        if not 0.0 < self.random_bw_fraction <= 1.0:
            raise ValueError("random_bw_fraction must be in (0, 1]")

    def random_bandwidth_gbs(self) -> float:
        """Bandwidth delivered for random cache-line-sized traffic."""
        return self.bandwidth_gbs * self.random_bw_fraction


@dataclass(frozen=True)
class CPUSpec:
    """A CPU node.

    Attributes
    ----------
    name:
        Human-readable device name.
    sockets, cores_per_socket, smt_per_core:
        Node topology; ``smt_per_core`` is 2 for Intel HT, 4 for KNL, 8 for
        POWER8 SMT8.
    clock_ghz:
        Sustained core clock.
    issue_width:
        Double-precision scalar instructions issued per cycle per core
        (a throughput summary, not a full pipeline model).
    vector_width_f64:
        SIMD lanes of float64 (4 for AVX2, 8 for AVX-512, 2 for VSX).
    vector_gather_supported:
        Whether hardware gathers exist (drives Fig 8's CPU-vs-KNL split).
    caches:
        Cache levels, innermost first.
    dram:
        Main memory.
    fast_memory:
        Optional high-bandwidth region (KNL MCDRAM); ``None`` elsewhere.
    numa_latency_multiplier:
        Remote-socket access latency multiplier.
    cores_per_cluster:
        On-chip core-cluster size (POWER8's two 5-core chiplets per
        socket); 0 means no intra-socket clustering.
    cluster_latency_penalty_cycles:
        Added shared-cache latency once threads span clusters.
    atomic_latency_cycles:
        Uncontended atomic RMW cost.
    latency_load_multiplier:
        Ratio of loaded to unloaded random-access latency when the whole
        node issues misses concurrently (ring/mesh congestion and memory
        queueing; published loaded-latency measurements put this around
        1.2–1.4 for ring-based Xeons and above 2 for KNL's mesh — the
        paper's own hypothesis for KNL's disappointing results, §VIII).
    """

    name: str
    sockets: int
    cores_per_socket: int
    smt_per_core: int
    clock_ghz: float
    issue_width: float
    vector_width_f64: int
    vector_gather_supported: bool
    caches: tuple[CacheLevel, ...]
    dram: MemorySpec
    fast_memory: MemorySpec | None = None
    numa_latency_multiplier: float = 1.5
    cores_per_cluster: int = 0
    cluster_latency_penalty_cycles: float = 0.0
    atomic_latency_cycles: float = 20.0
    latency_load_multiplier: float = 1.25

    kind: MachineKind = field(default=MachineKind.CPU, init=False)

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1 or self.smt_per_core < 1:
            raise ValueError("topology must be positive")
        if self.clock_ghz <= 0 or self.issue_width <= 0:
            raise ValueError("clock and issue width must be positive")

    @property
    def total_cores(self) -> int:
        """Physical cores on the node."""
        return self.sockets * self.cores_per_socket

    @property
    def total_threads(self) -> int:
        """Hardware thread slots on the node."""
        return self.total_cores * self.smt_per_core

    def memory_latency_cycles(
        self, use_fast_memory: bool = False, loaded: bool = True
    ) -> float:
        """Main-memory latency in core cycles (loaded by default)."""
        region = self.fast_memory if (use_fast_memory and self.fast_memory) else self.dram
        mult = self.latency_load_multiplier if loaded else 1.0
        return region.latency_ns * self.clock_ghz * mult

    def bandwidth(self, use_fast_memory: bool = False) -> float:
        """Achievable node bandwidth in GB/s."""
        region = self.fast_memory if (use_fast_memory and self.fast_memory) else self.dram
        return region.bandwidth_gbs


@dataclass(frozen=True)
class GPUSpec:
    """A GPU device.

    Attributes
    ----------
    sms:
        Streaming multiprocessors.
    max_warps_per_sm:
        Hardware warp-slot limit per SM.
    warp_size:
        Threads per warp (32 on NVIDIA).
    registers_per_sm:
        Register-file entries per SM; with ``r`` registers per thread the
        register-limited warp count is ``registers_per_sm / (r × warp_size)``
        — the §VI-H occupancy arithmetic.
    clock_ghz:
        SM clock.
    memory:
        Device memory (GDDR5 / HBM2); bandwidth is *achievable*, matching
        the paper's "% of achievable" figures.
    memory_latency_cycles:
        Global-memory latency in SM cycles.
    native_double_atomics:
        False on Kepler (K20X), where double atomicAdd is emulated with a
        CAS loop; True from Pascal (P100) on.
    atomic_latency_cycles:
        Uncontended atomic cost (native form).
    saturation_warps_per_sm:
        Active warps per SM beyond which memory-level parallelism no longer
        grows (small on Pascal — "the P100 does not require as high
        occupancy as previous architecture generations", §VII-E).
    issue_width:
        Warp-instructions issued per cycle per SM.
    op_kernel_registers:
        Registers per thread the compiler allocates for the Over Particles
        megakernel on this architecture's toolchain — 102 compiling for
        sm_35, 79 for sm_60 (§VI-H, §VII-E).
    """

    name: str
    sms: int
    max_warps_per_sm: int
    warp_size: int
    registers_per_sm: int
    clock_ghz: float
    memory: MemorySpec
    memory_latency_cycles: float
    native_double_atomics: bool
    atomic_latency_cycles: float
    saturation_warps_per_sm: int
    issue_width: float = 2.0
    op_kernel_registers: int = 102

    kind: MachineKind = field(default=MachineKind.GPU, init=False)

    def __post_init__(self) -> None:
        if self.sms < 1 or self.max_warps_per_sm < 1:
            raise ValueError("SM geometry must be positive")
        if self.registers_per_sm < self.warp_size:
            raise ValueError("register file implausibly small")

    def warps_for_registers(self, regs_per_thread: int) -> int:
        """Register-limited resident warps per SM (the occupancy limiter)."""
        if regs_per_thread < 1:
            raise ValueError("need at least one register per thread")
        limited = self.registers_per_sm // (regs_per_thread * self.warp_size)
        return max(1, min(self.max_warps_per_sm, limited))

    def occupancy(self, regs_per_thread: int) -> float:
        """Fraction of warp slots occupied at the given register usage."""
        return self.warps_for_registers(regs_per_thread) / self.max_warps_per_sm

    def memory_latency_ns(self) -> float:
        """Global-memory latency in nanoseconds."""
        return self.memory_latency_cycles / self.clock_ghz
