"""The five devices of the paper's evaluation, from public datasheets.

Sources: Intel ARK and optimisation manuals (Broadwell, KNL), IBM POWER8
redbooks, NVIDIA Kepler/Pascal whitepapers, plus published STREAM and
pointer-chase measurements for achievable bandwidths and latencies.  The
"achievable" bandwidths deliberately match the paper's own accounting —
e.g. §VII-D quotes the K20X's 35 GB/s as "roughly 20% of the achievable
memory bandwidth" (⇒ ~175 GB/s) and §VII-E quotes 125 GB/s as 25% on the
P100 (⇒ ~500 GB/s).

Nothing in this file is derived from the paper's *results*; these are the
numbers one would look up before running the experiments.
"""

from __future__ import annotations

from repro.machine.spec import CacheLevel, CPUSpec, GPUSpec, MemorySpec

__all__ = [
    "BROADWELL",
    "KNL",
    "POWER8",
    "K20X",
    "P100",
    "CPUS",
    "GPUS",
    "ALL_MACHINES",
    "get_machine",
]

#: Dual-socket Intel Xeon E5-2699 v4 (Broadwell), 22 cores/socket, HT2,
#: 2.1 GHz sustained (§VII-A).  DDR4-2400 × 4 channels per socket.
BROADWELL = CPUSpec(
    name="Intel Xeon E5-2699 v4 (Broadwell) 2S",
    sockets=2,
    cores_per_socket=22,
    smt_per_core=2,
    clock_ghz=2.1,
    issue_width=2.0,
    vector_width_f64=4,  # AVX2
    vector_gather_supported=False,  # AVX2 gathers are microcoded, ~no win
    caches=(
        CacheLevel(size_bytes=32 * 1024, latency_cycles=4),
        CacheLevel(size_bytes=256 * 1024, latency_cycles=12),
        CacheLevel(size_bytes=55 * 1024 * 1024, latency_cycles=50, shared=True),
    ),
    dram=MemorySpec(
        bandwidth_gbs=130.0, latency_ns=85.0, capacity_gb=256.0,
        random_bw_fraction=0.65,  # ring uncore handles scattered lines well
    ),
    numa_latency_multiplier=1.6,
    atomic_latency_cycles=60.0,
    latency_load_multiplier=1.25,
)

#: Intel Xeon Phi 7210 (Knights Landing), 64 cores, SMT4, 1.3 GHz (§VII-B).
#: 1 MB L2 per 2-core tile (512 kB per core), no L3; 16 GB MCDRAM plus DDR4.
#: MCDRAM streams ~4.5× DDR but its random-access latency is *higher* —
#: exactly the §VII-B observation that Over Particles/scatter ran slightly
#: faster from DRAM.
KNL = CPUSpec(
    name="Intel Xeon Phi 7210 (Knights Landing)",
    sockets=1,
    cores_per_socket=64,
    smt_per_core=4,
    clock_ghz=1.3,
    issue_width=0.5,  # Silvermont-derived cores: weak on branchy scalar code
    vector_width_f64=8,  # AVX-512
    vector_gather_supported=True,
    caches=(
        CacheLevel(size_bytes=32 * 1024, latency_cycles=5),
        CacheLevel(size_bytes=512 * 1024, latency_cycles=17),
    ),
    dram=MemorySpec(
        bandwidth_gbs=80.0, latency_ns=130.0, capacity_gb=96.0,
        random_bw_fraction=0.25,  # mesh NoC is poor at scattered lines
    ),
    fast_memory=MemorySpec(
        bandwidth_gbs=450.0, latency_ns=155.0, capacity_gb=16.0,
        random_bw_fraction=0.25,
    ),
    numa_latency_multiplier=1.0,
    atomic_latency_cycles=80.0,
    latency_load_multiplier=2.9,  # mesh-of-rings congestion under full load
)

#: Dual-socket IBM POWER8, 10 cores/socket, SMT8, ~3.5 GHz (§VII-C).
#: Each socket is two 5-core chiplets on an on-chip interconnect — the
#: paper's "two groups of 5 cores" behind the step at the 6th thread.
#: Memory behind Centaur buffer chips: high bandwidth, high latency.
POWER8 = CPUSpec(
    name="IBM POWER8 2S (10c, SMT8)",
    sockets=2,
    cores_per_socket=10,
    smt_per_core=8,
    clock_ghz=3.5,
    issue_width=2.0,
    vector_width_f64=2,  # VSX
    vector_gather_supported=False,
    caches=(
        CacheLevel(size_bytes=64 * 1024, latency_cycles=3),
        CacheLevel(size_bytes=512 * 1024, latency_cycles=13),
        CacheLevel(size_bytes=80 * 1024 * 1024, latency_cycles=30, shared=True),
    ),
    dram=MemorySpec(
        bandwidth_gbs=230.0, latency_ns=140.0, capacity_gb=512.0,
        random_bw_fraction=0.35,  # Centaur line transfers
    ),
    numa_latency_multiplier=1.4,
    cores_per_cluster=5,
    cluster_latency_penalty_cycles=100.0,  # ~29 ns cross-chiplet hop
    atomic_latency_cycles=120.0,
    latency_load_multiplier=3.0,  # Centaur buffer queueing under SMT8 load
)

#: NVIDIA K20X (Kepler GK110), 14 SMX, 732 MHz, 6 GB GDDR5 (§VII-D).
#: No native double-precision atomicAdd — emulated with a CAS loop.
K20X = GPUSpec(
    name="NVIDIA K20X (Kepler)",
    sms=14,
    max_warps_per_sm=64,
    warp_size=32,
    registers_per_sm=65536,
    clock_ghz=0.732,
    memory=MemorySpec(
        bandwidth_gbs=175.0, latency_ns=478.0, capacity_gb=6.0,
        random_bw_fraction=0.4,
    ),
    memory_latency_cycles=350.0,
    native_double_atomics=False,
    atomic_latency_cycles=280.0,
    saturation_warps_per_sm=64,  # Kepler keeps gaining from occupancy
    op_kernel_registers=102,  # sm_35 compile (§VI-H)
)

#: NVIDIA P100 (Pascal GP100), 56 SMs, 1.33 GHz, 16 GB HBM2 (§VII-E).
#: Native double atomicAdd; saturates memory-level parallelism at modest
#: occupancy ("does not require as high occupancy as previous
#: architecture generations").
P100 = GPUSpec(
    name="NVIDIA P100 (Pascal)",
    sms=56,
    max_warps_per_sm=64,
    warp_size=32,
    registers_per_sm=65536,
    clock_ghz=1.328,
    memory=MemorySpec(
        bandwidth_gbs=500.0, latency_ns=280.0, capacity_gb=16.0,
        random_bw_fraction=0.25,  # HBM2 bank behaviour on 64 B sectors
    ),
    memory_latency_cycles=372.0,
    native_double_atomics=True,
    atomic_latency_cycles=140.0,
    saturation_warps_per_sm=24,
    op_kernel_registers=79,  # sm_60 compile (§VII-E)
)

CPUS = {"broadwell": BROADWELL, "knl": KNL, "power8": POWER8}
GPUS = {"k20x": K20X, "p100": P100}
ALL_MACHINES = {**CPUS, **GPUS}


def get_machine(name: str):
    """Look up a device by short name ('broadwell', 'knl', 'power8',
    'k20x', 'p100')."""
    key = name.lower()
    if key not in ALL_MACHINES:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(ALL_MACHINES)}"
        )
    return ALL_MACHINES[key]
