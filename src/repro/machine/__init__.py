"""Machine models for the five devices of the paper's evaluation.

We do not have a Broadwell node, a KNL, a POWER8, or NVIDIA K20X/P100 GPUs
(nor can pure Python exercise them meaningfully) — so, per the reproduction
ground rules, the hardware is *simulated*: each device is described by a
:class:`repro.machine.spec.CPUSpec` or :class:`repro.machine.spec.GPUSpec`
built from public datasheet numbers (cores, SMT ways, clocks, cache sizes
and latencies, memory bandwidths and latencies, NUMA/cluster topology, GPU
SM/register-file geometry).

The specs are *descriptions only*; the maths that combines them with the
measured algorithm counters to predict runtimes lives in
:mod:`repro.perfmodel`.  Keeping the two separated means every figure is
generated from the same hardware description and the same model constants —
no per-figure tuning.
"""

from repro.machine.spec import (
    CacheLevel,
    MemorySpec,
    CPUSpec,
    GPUSpec,
    MachineKind,
)
from repro.machine.registry import (
    BROADWELL,
    KNL,
    POWER8,
    K20X,
    P100,
    ALL_MACHINES,
    CPUS,
    GPUS,
    get_machine,
)

__all__ = [
    "CacheLevel",
    "MemorySpec",
    "CPUSpec",
    "GPUSpec",
    "MachineKind",
    "BROADWELL",
    "KNL",
    "POWER8",
    "K20X",
    "P100",
    "ALL_MACHINES",
    "CPUS",
    "GPUS",
    "get_machine",
]
