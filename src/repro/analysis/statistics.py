"""Independent-batch statistics for tally estimates.

The Monte Carlo method "statistically determines the solution ... relying
heavily upon the central limit theorem" (paper §III).  The standard way to
quantify that statistics is independent batches: run B replicas of the
problem under independent random streams (distinct seeds — free with a
counter-based RNG), and report the batch mean and its standard error per
cell.  The relative error of any well-behaved tally shrinks as 1/√B, which
the test-suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Scheme, SimulationConfig
from repro.core.simulation import Simulation

__all__ = ["BatchStatistics", "batch_statistics"]


@dataclass(frozen=True)
class BatchStatistics:
    """Per-cell batch statistics of the energy-deposition tally.

    Attributes
    ----------
    mean:
        Batch-mean deposition per cell.
    stderr:
        Standard error of the batch mean per cell.
    nbatches:
        Number of independent batches.
    total_mean / total_stderr:
        Statistics of the mesh-integrated deposition.
    """

    mean: np.ndarray
    stderr: np.ndarray
    nbatches: int
    total_mean: float
    total_stderr: float

    def relative_error(self, floor: float = 0.0) -> np.ndarray:
        """Per-cell relative standard error (cells at or below ``floor``
        mean report 0 rather than dividing by ~zero)."""
        out = np.zeros_like(self.mean)
        ok = self.mean > floor
        out[ok] = self.stderr[ok] / self.mean[ok]
        return out

    def max_relative_error(self, significance: float = 1e-6) -> float:
        """Largest relative error over cells holding at least
        ``significance`` of the total deposition."""
        if self.total_mean <= 0:
            return 0.0
        significant = self.mean > significance * self.total_mean
        if not significant.any():
            return 0.0
        return float(
            (self.stderr[significant] / self.mean[significant]).max()
        )


def batch_statistics(
    config: SimulationConfig,
    nbatches: int,
    scheme: Scheme = Scheme.OVER_EVENTS,
    base_seed: int | None = None,
) -> BatchStatistics:
    """Run ``nbatches`` independent replicas and aggregate their tallies.

    Each batch reuses the configuration with a distinct seed; the
    counter-based RNG guarantees the streams are independent.  Sample
    variance uses the (B−1) denominator.
    """
    if nbatches < 2:
        raise ValueError("need at least two batches for a variance estimate")
    seed0 = config.seed if base_seed is None else base_seed

    tallies = []
    for b in range(nbatches):
        cfg = config.with_(seed=seed0 + 1000 * b)
        result = Simulation(cfg).run(scheme)
        tallies.append(result.tally.deposition)
    stack = np.stack(tallies)

    mean = stack.mean(axis=0)
    stderr = stack.std(axis=0, ddof=1) / np.sqrt(nbatches)
    totals = stack.sum(axis=(1, 2))
    return BatchStatistics(
        mean=mean,
        stderr=stderr,
        nbatches=nbatches,
        total_mean=float(totals.mean()),
        total_stderr=float(totals.std(ddof=1) / np.sqrt(nbatches)),
    )
