"""Analysis utilities for transport results.

Monte Carlo answers are estimates; production codes always report their
statistical quality.  This package adds the standard machinery on top of
the mini-app:

* :mod:`repro.analysis.statistics` — independent-batch statistics: run the
  same problem under independent random streams and report per-cell means,
  standard errors and the 1/√N convergence the central limit theorem
  promises (the paper's §III "core method relies heavily upon the central
  limit theorem");
* :mod:`repro.analysis.criticality` — multiplication estimates for the
  fission extension (secondaries per source particle and the implied
  per-generation k);
* :mod:`repro.analysis.viz` — dependency-free ASCII rendering of tally
  fields and series for terminals and logs (the Fig 2 pictures, in text).
"""

from repro.analysis.statistics import BatchStatistics, batch_statistics
from repro.analysis.criticality import MultiplicationEstimate, estimate_multiplication
from repro.analysis.spectrum import (
    LethargySpectrum,
    lethargy_spectrum,
    mean_lethargy_gain,
)
from repro.analysis.viz import render_heatmap, render_series

__all__ = [
    "BatchStatistics",
    "batch_statistics",
    "MultiplicationEstimate",
    "estimate_multiplication",
    "LethargySpectrum",
    "lethargy_spectrum",
    "mean_lethargy_gain",
    "render_heatmap",
    "render_series",
]
