"""Energy spectra of the in-flight population.

Reactor physics reads neutron populations in *lethargy* ``u = ln(E₀/E)``:
elastic moderation adds a constant mean lethargy gain ``ξ`` per collision
(ξ = 1 for hydrogen), so a slowing-down population spreads uniformly in
lethargy where it would bunch up hopelessly on a linear energy axis.  This
module bins a run's surviving population in lethargy and extracts the
standard moderation diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LethargySpectrum", "lethargy_spectrum", "mean_lethargy_gain"]


@dataclass(frozen=True)
class LethargySpectrum:
    """A weighted lethargy histogram of live particles.

    Attributes
    ----------
    edges:
        Lethargy bin edges (``u = ln(E_ref/E)``, increasing = slower).
    weights:
        Summed statistical weight per bin.
    reference_energy_ev:
        The ``E_ref`` the lethargies are measured against.
    """

    edges: np.ndarray
    weights: np.ndarray
    reference_energy_ev: float

    @property
    def total_weight(self) -> float:
        return float(self.weights.sum())

    def mean_lethargy(self) -> float:
        """Weight-averaged lethargy of the population."""
        if self.total_weight == 0:
            return 0.0
        centres = 0.5 * (self.edges[:-1] + self.edges[1:])
        return float((centres * self.weights).sum() / self.total_weight)

    def mean_energy_ev(self) -> float:
        """Energy corresponding to the mean lethargy."""
        return float(self.reference_energy_ev * np.exp(-self.mean_lethargy()))


def lethargy_spectrum(
    result,
    nbins: int = 40,
    reference_energy_ev: float | None = None,
    max_lethargy: float = 25.0,
) -> LethargySpectrum:
    """Bin a run's live population in lethargy.

    Parameters
    ----------
    result:
        A :class:`repro.core.simulation.TransportResult` from either
        scheme.
    nbins:
        Histogram bins over ``[0, max_lethargy]``.
    reference_energy_ev:
        ``E_ref``; defaults to the run's source energy.
    """
    if nbins < 1:
        raise ValueError("need at least one bin")
    e_ref = (
        result.config.source.energy_ev
        if reference_energy_ev is None
        else reference_energy_ev
    )
    alive = result.arena.alive
    energies = result.arena.energy[alive]
    weights = result.arena.weight[alive]

    edges = np.linspace(0.0, max_lethargy, nbins + 1)
    if energies.size == 0:
        return LethargySpectrum(edges, np.zeros(nbins), e_ref)
    u = np.log(e_ref / np.maximum(energies, 1e-300))
    u = np.clip(u, 0.0, max_lethargy)
    hist, _ = np.histogram(u, bins=edges, weights=weights)
    return LethargySpectrum(edges, hist, e_ref)


def mean_lethargy_gain(a_ratio: float) -> float:
    """The textbook mean lethargy gain per elastic collision, ξ.

    ``ξ = 1 + α·ln(α)/(1−α)`` with ``α = ((A−1)/(A+1))²``; ξ = 1 exactly
    for hydrogen (A=1) and ≈ 2/(A+2/3) for heavy nuclides — the constant
    that makes lethargy the natural moderation variable.
    """
    if a_ratio <= 0:
        raise ValueError("mass ratio must be positive")
    if a_ratio == 1.0:
        return 1.0
    alpha = ((a_ratio - 1.0) / (a_ratio + 1.0)) ** 2
    return float(1.0 + alpha * np.log(alpha) / (1.0 - alpha))
