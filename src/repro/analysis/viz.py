"""Dependency-free ASCII rendering for terminals and logs.

Turns tally fields into character heatmaps (the Fig 2 pictures, in text)
and number series into sparkline-style strips, so examples and the CLI can
show results without a plotting stack.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_heatmap", "render_series"]

#: Light-to-dark ramp for heatmaps.
_RAMP = " .:-=+*#%@"

#: Eight-level bars for series strips.
_BARS = "▁▂▃▄▅▆▇█"


def render_heatmap(
    field: np.ndarray,
    width: int = 64,
    height: int = 32,
    log: bool = True,
    title: str | None = None,
) -> str:
    """Render a 2-D field as an ASCII heatmap.

    The field is block-averaged down to at most ``width × height``
    characters; by default intensities are log-compressed, which is what
    makes deposition fields spanning many decades (csp!) readable.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 2:
        raise ValueError("heatmap needs a 2-D field")
    if width < 1 or height < 1:
        raise ValueError("output size must be positive")

    ny, nx = field.shape
    by = max(1, int(np.ceil(ny / height)))
    bx = max(1, int(np.ceil(nx / width)))
    # pad to a multiple of the block size, then block-average
    pad_y = (-ny) % by
    pad_x = (-nx) % bx
    padded = np.pad(field, ((0, pad_y), (0, pad_x)))
    blocks = padded.reshape(
        padded.shape[0] // by, by, padded.shape[1] // bx, bx
    ).mean(axis=(1, 3))

    vals = blocks.copy()
    if log:
        positive = vals[vals > 0]
        floor = positive.min() if positive.size else 1.0
        vals = np.log10(np.maximum(vals, floor * 1e-3))
    lo, hi = vals.min(), vals.max()
    if hi - lo < 1e-300:
        levels = np.zeros_like(vals, dtype=np.int64)
    else:
        levels = ((vals - lo) / (hi - lo) * (len(_RAMP) - 1)).astype(np.int64)

    lines = []
    if title:
        lines.append(title)
    # render with y increasing upwards, like the paper's plots
    for row in levels[::-1]:
        lines.append("".join(_RAMP[v] for v in row))
    return "\n".join(lines)


def render_series(
    values,
    label: str = "",
    width: int = 60,
) -> str:
    """Render a 1-D series as a bar strip with min/max annotation."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("series is empty")
    if values.size > width:
        # block-average down to the strip width
        b = int(np.ceil(values.size / width))
        pad = (-values.size) % b
        values = np.pad(values, (0, pad), constant_values=values[-1])
        values = values.reshape(-1, b).mean(axis=1)
    lo, hi = values.min(), values.max()
    if hi - lo < 1e-300:
        levels = np.zeros(values.size, dtype=np.int64)
    else:
        levels = ((values - lo) / (hi - lo) * (len(_BARS) - 1)).astype(np.int64)
    strip = "".join(_BARS[v] for v in levels)
    prefix = f"{label}: " if label else ""
    return f"{prefix}{strip}  [min={lo:.3g}, max={hi:.3g}]"
