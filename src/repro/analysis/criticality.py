"""Multiplication estimates for multiplying media (fission extension).

For a source-driven (fixed-source) problem the natural multiplication
measure is the secondary yield: how many fission neutrons one source
neutron induces, directly and through its whole progeny.  If each neutron
(source or secondary) induces ``k`` next-generation neutrons on average,
the total progeny per source neutron is the geometric sum
``M = k / (1 − k)``, so ``k = M / (1 + M)`` — subcritical systems have
``k < 1`` and a finite bank, which the transport's draining bank realises
operationally.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MultiplicationEstimate", "estimate_multiplication"]


@dataclass(frozen=True)
class MultiplicationEstimate:
    """Multiplication summary of a fixed-source fission run.

    Attributes
    ----------
    secondaries_per_source:
        Total banked secondaries per source particle (all generations) —
        the measured ``M``.
    k_effective:
        The implied per-generation multiplication ``M / (1 + M)``.
    fissions:
        Fission (banking) events.
    """

    secondaries_per_source: float
    k_effective: float
    fissions: int

    @property
    def subcritical(self) -> bool:
        """True when the implied k is below 1 (always, for a finite run
        whose bank drained)."""
        return self.k_effective < 1.0


def estimate_multiplication(result) -> MultiplicationEstimate:
    """Summarise a finished run's fission multiplication.

    Parameters
    ----------
    result:
        A :class:`repro.core.simulation.TransportResult` from a
        configuration with fissile material.
    """
    c = result.counters
    nsource = result.config.nparticles
    m = c.secondaries_banked / max(nsource, 1)
    k = m / (1.0 + m)
    return MultiplicationEstimate(
        secondaries_per_source=m,
        k_effective=k,
        fissions=c.fissions,
    )
