"""Energy-deposition tallies.

The tally is the write-side mesh dependency of the algorithm (paper §V-C):
particles accumulate deposited energy in a register between events, and the
value is flushed onto the tally mesh at every facet encounter and at census
— "every facet encounter results in an atomic read-modify-write operation"
(§VI-A).

Two variants are implemented, matching §VI-F:

* :class:`EnergyDepositionTally` — the shared tally, where every flush has
  atomic semantics.  Running serially we simply add, but we *account* every
  flush and keep per-cell flush counts so the machine model can price atomic
  latency and contention.
* :class:`PrivatizedTally` — one private copy per (simulated) thread,
  removing the atomic at the cost of ``nthreads×`` the memory footprint
  (0.3 GB → 31 GB for the csp problem at 256 threads in the paper) and a
  merge ("compress") step.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EnergyDepositionTally", "PrivatizedTally"]


class EnergyDepositionTally:
    """Shared energy-deposition tally over an ``(ny, nx)`` mesh.

    Attributes
    ----------
    deposition:
        Accumulated energy per cell (eV, weighted).
    flush_counts:
        Number of flushes per cell — the atomic write-address histogram used
        by the contention model.
    flushes:
        Total number of (atomic) flush operations.
    """

    def __init__(self, nx: int, ny: int):
        if nx < 1 or ny < 1:
            raise ValueError("tally needs at least one cell per axis")
        self.nx = int(nx)
        self.ny = int(ny)
        self.deposition = np.zeros((self.ny, self.nx), dtype=np.float64)
        self.flush_counts = np.zeros((self.ny, self.nx), dtype=np.int64)
        self.flushes = 0

    def flush(self, ix: int, iy: int, energy: float) -> None:
        """Atomically add ``energy`` into cell ``(ix, iy)``.

        Zero deposits still count as flushes — the mini-app performs the
        atomic unconditionally at each facet encounter.
        """
        self.deposition[iy, ix] += energy
        self.flush_counts[iy, ix] += 1
        self.flushes += 1

    def flush_vec(self, ix: np.ndarray, iy: np.ndarray, energy: np.ndarray) -> None:
        """Vectorised flush used by the Over Events tally loop.

        ``np.add.at`` is an unbuffered (scatter-add) accumulate, the numpy
        analogue of a loop of atomic adds: repeated indices accumulate
        correctly.
        """
        np.add.at(self.deposition, (iy, ix), energy)
        np.add.at(self.flush_counts, (iy, ix), 1)
        self.flushes += int(len(ix))

    def total(self) -> float:
        """Total deposited energy over the mesh."""
        return float(self.deposition.sum())

    def conflict_probability(self) -> float:
        """Probability two uniformly chosen flushes hit the same cell.

        ``sum_c p_c**2`` over the flush-address histogram — the collision
        probability that, scaled by concurrency, drives the atomic
        contention cost in the machine model.  Returns 0 when no flush has
        occurred.
        """
        total = self.flush_counts.sum()
        if total == 0:
            return 0.0
        p = self.flush_counts.astype(np.float64).ravel() / float(total)
        return float(np.dot(p, p))

    def nbytes(self) -> int:
        """Footprint of the deposition field (one copy) in bytes."""
        return int(self.deposition.nbytes)

    def reset(self) -> None:
        """Zero the tally (start of a timestep when coupled to a host code)."""
        self.deposition[:] = 0.0
        self.flush_counts[:] = 0
        self.flushes = 0


class PrivatizedTally:
    """Per-thread private tallies with an explicit merge (§VI-F).

    Each simulated thread owns a full copy of the tally mesh; flushes are
    plain (non-atomic) adds into the owner's copy.  :meth:`merged` performs
    the compression used for end-of-solve validation; a real host code would
    need it every timestep, which the paper found *slower* than atomics.
    """

    def __init__(self, nx: int, ny: int, nthreads: int):
        if nthreads < 1:
            raise ValueError("need at least one thread")
        self.nx = int(nx)
        self.ny = int(ny)
        self.nthreads = int(nthreads)
        self.copies = np.zeros((self.nthreads, self.ny, self.nx), dtype=np.float64)
        self.flushes = 0

    def flush(self, thread: int, ix: int, iy: int, energy: float) -> None:
        """Non-atomic add into thread-private copy ``thread``."""
        self.copies[thread, iy, ix] += energy
        self.flushes += 1

    def merged(self) -> np.ndarray:
        """Reduce all private copies into one field (the compress step)."""
        return self.copies.sum(axis=0)

    def merge_flops(self) -> int:
        """Floating adds required by one merge — priced by the perf model."""
        return (self.nthreads - 1) * self.nx * self.ny

    def nbytes(self) -> int:
        """Total footprint — grows linearly with thread count (0.3→31 GB
        for csp at 256 threads in the paper)."""
        return int(self.copies.nbytes)

    @staticmethod
    def predict_nbytes(nx: int, ny: int, nthreads: int) -> int:
        """Footprint of a would-be privatised tally, without allocating it
        (at paper scale the 256-thread tally genuinely cannot be allocated
        on most hosts — which is the §VI-F capacity point)."""
        return nthreads * ny * nx * 8
