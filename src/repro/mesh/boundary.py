"""Reflective boundary conditions.

The mini-app encloses the problem in reflective boundaries (paper §IV-C):
they increase particle lifetimes — in the stream problem a particle crosses
the whole mesh several times per timestep — and make it easy to check
conservation of the particle population, since nothing can leak.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = ["BoundaryCondition", "reflect_direction", "reflect_direction_vec"]


class BoundaryCondition(Enum):
    """Supported boundary treatments.

    Only ``REFLECTIVE`` is exercised by the paper's experiments; ``VACUUM``
    (particles escape and their history ends) is provided for completeness
    and for the multi-node future-work path.
    """

    REFLECTIVE = "reflective"
    VACUUM = "vacuum"


def reflect_direction(ox: float, oy: float, axis: int) -> tuple[float, float]:
    """Reflect a direction off a boundary normal to ``axis``.

    Parameters
    ----------
    ox, oy:
        Unit direction components.
    axis:
        0 for an x-facing facet (flip ``ox``), 1 for a y-facing facet
        (flip ``oy``).
    """
    if axis == 0:
        return -ox, oy
    if axis == 1:
        return ox, -oy
    raise ValueError(f"axis must be 0 or 1, got {axis}")


def reflect_direction_vec(
    ox: np.ndarray, oy: np.ndarray, axis: np.ndarray, do_reflect: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised reflection used by the Over Events scheme.

    Parameters
    ----------
    ox, oy:
        Direction component arrays (modified copies are returned).
    axis:
        Per-particle facet axis (0 = x facet, 1 = y facet).
    do_reflect:
        Boolean mask of particles that hit a problem boundary.
    """
    ox = ox.copy()
    oy = oy.copy()
    flip_x = do_reflect & (axis == 0)
    flip_y = do_reflect & (axis == 1)
    ox[flip_x] = -ox[flip_x]
    oy[flip_y] = -oy[flip_y]
    return ox, oy
