"""Computational mesh substrate.

``neutral`` transports particles through a two-dimensional structured grid
(paper §IV-C) with cell-centred mass densities and reflective boundary
conditions.  The mesh is the source of the algorithm's two defining memory
characteristics:

* *random reads* — every facet crossing reloads the destination cell's
  density (§IV-D2);
* *random atomic writes* — every facet crossing / census flushes the
  particle's accumulated energy deposition into the tally mesh (§V-C).

:class:`repro.mesh.structured.StructuredMesh` implements the grid geometry,
:mod:`repro.mesh.boundary` the reflective boundaries, and
:class:`repro.mesh.tally.EnergyDepositionTally` the tally with both the
atomic and the privatised-per-thread variants studied in §VI-F.
"""

from repro.mesh.structured import StructuredMesh
from repro.mesh.boundary import BoundaryCondition, reflect_direction
from repro.mesh.tally import EnergyDepositionTally, PrivatizedTally

__all__ = [
    "StructuredMesh",
    "BoundaryCondition",
    "reflect_direction",
    "EnergyDepositionTally",
    "PrivatizedTally",
]
