"""Two-dimensional structured mesh with cell-centred densities.

The mini-app deliberately uses a simple uniform structured grid so that the
performance characteristics that are *independent of geometry* are exposed
(paper §IV-C): facet intersection reduces to a Cartesian ray/axis-plane
check, while the data-dependence pattern (random density reads, random tally
writes) is identical to what an unstructured code would see.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StructuredMesh"]


class StructuredMesh:
    """Uniform 2-D structured grid over ``[0, width] × [0, height]``.

    Cells are indexed ``(ix, iy)`` with ``0 <= ix < nx`` and
    ``0 <= iy < ny``; flat indices are ``iy * nx + ix`` (row-major in ``iy``)
    to match a C array layout.

    Parameters
    ----------
    nx, ny:
        Number of cells along x and y.
    width, height:
        Physical extent in metres.
    density:
        Optional cell-centred mass density field, shape ``(ny, nx)`` in
        kg/m³.  Defaults to zero; problem factories fill it in.
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        width: float = 1.0,
        height: float = 1.0,
        density: np.ndarray | None = None,
    ):
        if nx < 1 or ny < 1:
            raise ValueError("mesh must have at least one cell per axis")
        if width <= 0 or height <= 0:
            raise ValueError("mesh extent must be positive")
        self.nx = int(nx)
        self.ny = int(ny)
        self.width = float(width)
        self.height = float(height)
        self.dx = self.width / self.nx
        self.dy = self.height / self.ny
        if density is None:
            self.density = np.zeros((self.ny, self.nx), dtype=np.float64)
        else:
            density = np.asarray(density, dtype=np.float64)
            if density.shape != (self.ny, self.nx):
                raise ValueError(
                    f"density shape {density.shape} != (ny, nx) = "
                    f"({self.ny}, {self.nx})"
                )
            if np.any(density < 0):
                raise ValueError("densities must be non-negative")
            self.density = density.copy()

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    @property
    def ncells(self) -> int:
        """Total cell count."""
        return self.nx * self.ny

    def flat_index(self, ix, iy):
        """Flat cell index for ``(ix, iy)``; works on scalars and arrays."""
        return iy * self.nx + ix

    def cell_of_point(self, x: float, y: float) -> tuple[int, int]:
        """Cell containing the point ``(x, y)``; boundary points clamp inward."""
        if not (0.0 <= x <= self.width and 0.0 <= y <= self.height):
            raise ValueError(f"point ({x}, {y}) outside mesh")
        ix = min(int(x / self.dx), self.nx - 1)
        iy = min(int(y / self.dy), self.ny - 1)
        return ix, iy

    def cell_of_point_vec(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`cell_of_point` (no bounds check)."""
        ix = np.minimum((x / self.dx).astype(np.int64), self.nx - 1)
        iy = np.minimum((y / self.dy).astype(np.int64), self.ny - 1)
        return ix, iy

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def cell_bounds(self, ix: int, iy: int) -> tuple[float, float, float, float]:
        """``(x_lo, x_hi, y_lo, y_hi)`` of cell ``(ix, iy)``."""
        return ix * self.dx, (ix + 1) * self.dx, iy * self.dy, (iy + 1) * self.dy

    def density_at(self, ix: int, iy: int) -> float:
        """Cell-centred mass density — the random read of the algorithm."""
        return float(self.density[iy, ix])

    def density_at_vec(self, ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
        """Vectorised gather of cell densities (the OE scheme's gather)."""
        return self.density[iy, ix]

    # ------------------------------------------------------------------
    # Memory accounting (used by the performance model)
    # ------------------------------------------------------------------
    def density_nbytes(self) -> int:
        """Footprint of the density field in bytes."""
        return int(self.density.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StructuredMesh(nx={self.nx}, ny={self.ny}, "
            f"width={self.width}, height={self.height})"
        )
