"""repro — a Python reproduction of the *neutral* mini-app study.

Martineau, M., & McIntosh-Smith, S. (2017). *Exploring On-Node Parallelism
with Neutral, a Monte Carlo Neutral Particle Transport Mini-App.*
IEEE CLUSTER 2017. doi:10.1109/CLUSTER.2017.83

The package layers, bottom to top (see README.md / DESIGN.md):

* substrates — :mod:`repro.rng`, :mod:`repro.xs`, :mod:`repro.mesh`,
  :mod:`repro.particles`, :mod:`repro.physics`;
* the mini-app — :mod:`repro.core` (both parallelisation schemes, the
  three test problems, validation) and :mod:`repro.volume` (3-D);
* the simulated testbed — :mod:`repro.parallel`, :mod:`repro.machine`,
  :mod:`repro.perfmodel`, :mod:`repro.simexec`;
* comparators & analysis — :mod:`repro.comparisons`,
  :mod:`repro.analysis`, :mod:`repro.coupling`;
* harnesses — :mod:`repro.bench`, :mod:`repro.cli`.

The conveniences most users want are importable from here::

    from repro import Simulation, Scheme, csp_problem

    result = Simulation(csp_problem(nx=128, nparticles=500)).run(
        Scheme.OVER_PARTICLES
    )
"""

from repro.core import (
    Scheme,
    Simulation,
    TransportResult,
    csp_problem,
    scatter_problem,
    stream_problem,
)
from repro.core.validation import energy_balance_error, population_accounted

__version__ = "1.0.0"

__all__ = [
    "Scheme",
    "Simulation",
    "TransportResult",
    "csp_problem",
    "scatter_problem",
    "stream_problem",
    "energy_balance_error",
    "population_accounted",
    "__version__",
]
