"""Ensemble member specification: which configs may be fused, and how a
``--replicas N --sweep param=lo:hi:steps`` request expands into N member
configs.

Fusion requires the members to share everything the fused kernel
dispatches treat as uniform — mesh geometry, material set, particle
count, traversal options.  Only the per-lane quantities (RNG seed,
cutoffs, timestep length, source spectrum) may differ; they are gathered
into :class:`~repro.ensemble.lanes.EnsembleLanes` arrays indexed by each
particle's ``replica_id``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.config import SimulationConfig

__all__ = [
    "FUSIBLE_FIELDS",
    "SWEEPABLE_PARAMS",
    "EnsembleSpec",
    "SweepSpec",
    "validate_members",
]

#: Config fields allowed to differ between fused members.  Everything
#: else (mesh, materials, nparticles, boundary, VR options, block size,
#: search strategy, …) must be uniform: the fused run resolves them once
#: from member 0.
FUSIBLE_FIELDS = frozenset(
    {"seed", "energy_cutoff_ev", "weight_cutoff", "dt", "source"}
)

#: Parameters a ``--sweep`` may vary (dotted names address the source).
SWEEPABLE_PARAMS = (
    "energy_cutoff_ev",
    "weight_cutoff",
    "dt",
    "source.energy_ev",
    "source.weight",
)


def validate_members(members) -> tuple[SimulationConfig, ...]:
    """Check that the member configs agree on every non-fusible field.

    Returns the members as a tuple; raises ``ValueError`` naming the
    first offending field otherwise.
    """
    members = tuple(members)
    if not members:
        raise ValueError("an ensemble needs at least one member")
    base = members[0]
    for i, m in enumerate(members[1:], start=1):
        for f in dataclasses.fields(SimulationConfig):
            if f.name in FUSIBLE_FIELDS:
                continue
            a, b = getattr(base, f.name), getattr(m, f.name)
            if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
                same = (
                    a is not None and b is not None and np.array_equal(a, b)
                )
            else:
                same = a == b
            if not same:
                raise ValueError(
                    f"ensemble members must agree on {f.name!r} "
                    f"(member {i} differs from member 0); only "
                    f"{sorted(FUSIBLE_FIELDS)} may vary"
                )
    return members


@dataclass(frozen=True)
class SweepSpec:
    """One swept parameter: ``steps`` values linearly spaced on
    ``[lo, hi]``, assigned to replicas cyclically (replica r gets value
    ``r % steps``)."""

    param: str
    lo: float
    hi: float
    steps: int

    def __post_init__(self):
        if self.param not in SWEEPABLE_PARAMS:
            raise ValueError(
                f"cannot sweep {self.param!r}; sweepable parameters are "
                f"{SWEEPABLE_PARAMS}"
            )
        if self.steps < 1:
            raise ValueError("sweep needs at least one step")

    @classmethod
    def parse(cls, text: str) -> "SweepSpec":
        """Parse the CLI form ``param=lo:hi:steps``."""
        try:
            param, rest = text.split("=", 1)
            lo, hi, steps = rest.split(":")
            return cls(param.strip(), float(lo), float(hi), int(steps))
        except ValueError as exc:
            if "cannot sweep" in str(exc) or "at least one" in str(exc):
                raise
            raise ValueError(
                f"bad sweep spec {text!r}; expected param=lo:hi:steps"
            ) from None

    def values(self) -> np.ndarray:
        if self.steps == 1:
            return np.array([self.lo])
        return np.linspace(self.lo, self.hi, self.steps)


@dataclass(frozen=True)
class EnsembleSpec:
    """N replicas of a base problem: replica r runs with seed
    ``base.seed + r * seed_stride`` and any swept parameter values."""

    base: SimulationConfig
    nreplicas: int
    seed_stride: int = 1
    sweeps: tuple[SweepSpec, ...] = ()

    def __post_init__(self):
        if self.nreplicas < 1:
            raise ValueError("nreplicas must be >= 1")

    def members(self) -> tuple[SimulationConfig, ...]:
        """Expand into the member configs (validated fusible)."""
        out = []
        sweep_values = [(s, s.values()) for s in self.sweeps]
        for r in range(self.nreplicas):
            changes: dict = {"seed": self.base.seed + r * self.seed_stride}
            source = self.base.source
            for sweep, vals in sweep_values:
                v = float(vals[r % len(vals)])
                if sweep.param.startswith("source."):
                    source = dataclasses.replace(
                        source, **{sweep.param.split(".", 1)[1]: v}
                    )
                else:
                    changes[sweep.param] = v
            if source is not self.base.source:
                changes["source"] = source
            out.append(self.base.with_(**changes))
        return validate_members(out)
