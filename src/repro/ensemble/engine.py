"""The ensemble engine: fuse, run, and unfuse N replica runs.

``run_ensemble`` samples every member's source into one
:class:`~repro.particles.arena.EnsembleArena` (replica-major, each
history keeping the exact ``(seed, particle_id)`` RNG key it would have
standalone), runs one fused transport — Over Events passes or
segment-scheduled Over Particles blocks across ``replicas × histories``
lanes — and returns both the fused totals and per-replica results whose
counters, tallies and population fingerprints are bit-identical to N
standalone serial runs.

With ``nworkers > 1`` the fused arena is re-homed into shared memory and
sharded across the existing fault-tolerant worker pool by *replica
blocks* (shards never split a replica), reusing the same 36 B
``(shm_name, n_total, lo, hi)`` hand-off, watchdog, retry and degraded
drain machinery.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import Scheme, SimulationConfig
from repro.core.counters import Counters
from repro.core.over_events import run_over_events
from repro.ensemble.lanes import EnsembleLanes
from repro.ensemble.op import run_over_particles_fused
from repro.ensemble.spec import EnsembleSpec, validate_members
from repro.mesh.structured import StructuredMesh
from repro.mesh.tally import EnergyDepositionTally
from repro.obs.spans import NULL_RECORDER
from repro.particles.arena import EnsembleArena
from repro.particles.source import sample_source

__all__ = [
    "EnsembleJob",
    "EnsembleResult",
    "ReplicaResult",
    "population_fingerprint",
    "run_ensemble",
    "run_ensemble_looped",
]

#: The per-history state a replica's fingerprint hashes (canonical birth
#: order, so the fingerprint is invariant to storage-order differences).
STATE_FIELDS = (
    "x", "y", "omega_x", "omega_y", "energy", "weight",
    "rng_counter", "alive", "cellx", "celly",
)


def population_fingerprint(arena) -> str:
    """SHA-256 over the physics state of a population, in birth order."""
    order = np.argsort(arena.particle_id, kind="stable")
    h = hashlib.sha256()
    for name in STATE_FIELDS:
        h.update(np.ascontiguousarray(getattr(arena, name)[order]).tobytes())
    return h.hexdigest()


@dataclass
class ReplicaResult:
    """One member's unfused result (bit-identical to its standalone run)."""

    replica: int
    config: SimulationConfig
    counters: Counters
    tally: EnergyDepositionTally
    arena: EnsembleArena

    def fingerprint(self) -> str:
        return population_fingerprint(self.arena)


@dataclass
class EnsembleResult:
    """Fused totals plus the per-replica breakdown."""

    members: tuple
    scheme: Scheme
    replicas: list[ReplicaResult]
    counters: Counters
    tally: EnergyDepositionTally
    arena: EnsembleArena
    wallclock_s: float
    nworkers: int = 1

    @property
    def nreplicas(self) -> int:
        return len(self.replicas)

    def total_histories(self) -> int:
        return sum(r.counters.nparticles for r in self.replicas)


@dataclass
class EnsembleJob:
    """The picklable work unit shipped to pool workers.

    Rides through the pool's existing ``config`` slot: ``_run_ranges``
    duck-dispatches to :meth:`run_ranges` and ``_worker_main`` attaches
    the shared arena with :attr:`arena_cls` — the shard handle itself is
    unchanged (36 B).
    """

    members: tuple
    #: Particle offset of each replica's block in the fused arena (R+1).
    bounds: tuple
    nx: int
    ny: int

    arena_cls = EnsembleArena

    def run_ranges(self, scheme, population, ranges, recorder=None,
                   probe=None):
        """Run the fused transport over replica-aligned shard ranges;
        returns the pool payload dict plus per-replica books.

        ``probe`` feeds the live plane: OE publishes per census step via
        the stepper, the fused OP driver at shard commit only (its
        per-replica counters fold at finalisation)."""
        t0 = time.perf_counter()
        bounds = np.asarray(self.bounds, dtype=np.int64)
        tally = EnergyDepositionTally(self.nx, self.ny)
        counters = None
        arena_out = None
        replica_counters: dict[int, Counters] = {}
        replica_tallies: dict[int, EnergyDepositionTally] = {}
        histories = 0
        for lo, hi in ranges:
            r0 = int(np.searchsorted(bounds, lo))
            r1 = int(np.searchsorted(bounds, hi))
            if bounds[r0] != lo or bounds[r1] != hi:
                raise ValueError(
                    f"ensemble shard [{lo}, {hi}) does not align with "
                    "replica boundaries"
                )
            sub = self.members[r0:r1]
            view = population.view(lo, hi).copy()
            view.replica_id -= r0
            lanes = EnsembleLanes(sub, view.replica_id, self.nx, self.ny)
            if scheme is Scheme.OVER_EVENTS:
                res = run_over_events(
                    sub[0], arena=view, lanes=lanes, recorder=recorder,
                    probe=probe,
                )
            else:
                res = run_over_particles_fused(
                    sub, view, lanes, recorder=recorder
                )
            if probe is not None and probe.enabled:
                probe.commit_shard(res.counters, hi - lo)
            res.arena.replica_id += r0
            for k in range(len(sub)):
                replica_counters[r0 + k] = lanes.counters[k]
                replica_tallies[r0 + k] = lanes.tallies[k]
            tally.deposition += res.tally.deposition
            tally.flush_counts += res.tally.flush_counts
            tally.flushes += res.tally.flushes
            if counters is None:
                counters = res.counters
            else:
                counters.merge_disjoint(res.counters)
            if arena_out is None:
                arena_out = res.arena
            else:
                arena_out.extend(res.arena)
            histories += hi - lo
        return {
            "tally": tally,
            "counters": counters if counters is not None else Counters(),
            "arena": arena_out,
            "busy_s": time.perf_counter() - t0,
            "histories": histories,
            "chunks": len(ranges),
            "replica_counters": replica_counters,
            "replica_tallies": replica_tallies,
        }


def _expand(spec_or_members) -> tuple[SimulationConfig, ...]:
    if isinstance(spec_or_members, EnsembleSpec):
        return spec_or_members.members()
    return validate_members(spec_or_members)


def _fused_from_replicas(replica_counters, replica_tallies, arena, nx, ny):
    """Fold per-replica books into fused totals (replica-major order)."""
    nrep = len(replica_counters)
    tally = EnergyDepositionTally(nx, ny)
    counters = Counters()
    for r in range(nrep):
        tally.deposition += replica_tallies[r].deposition
        tally.flush_counts += replica_tallies[r].flush_counts
        tally.flushes += replica_tallies[r].flushes
    for fname in Counters._SCALAR_FIELDS:
        setattr(counters, fname, sum(
            getattr(replica_counters[r], fname) for r in range(nrep)
        ))
    counters.collisions_per_particle = np.concatenate([
        replica_counters[r].collisions_per_particle for r in range(nrep)
    ]) if nrep else np.zeros(0, dtype=np.int64)
    counters.facets_per_particle = np.concatenate([
        replica_counters[r].facets_per_particle for r in range(nrep)
    ]) if nrep else np.zeros(0, dtype=np.int64)
    counters.tally_conflict_probability = tally.conflict_probability()
    counters.arena_nbytes = arena.nbytes()
    return counters, tally


def run_ensemble(
    spec_or_members,
    scheme: Scheme = Scheme.OVER_EVENTS,
    *,
    nworkers: int = 1,
    max_retries: int = 2,
    shard_timeout: float | None = None,
    max_worker_respawns: int = 3,
    fault_plan=None,
    recorder=None,
    live=None,
) -> EnsembleResult:
    """Fuse the ensemble members into one arena and run them as one
    dispatch per event per census step.

    Parameters
    ----------
    spec_or_members:
        An :class:`~repro.ensemble.spec.EnsembleSpec` or an explicit
        sequence of member configs (validated fusible).
    scheme:
        Traversal order for the fused run.
    nworkers:
        ``1`` runs fused in-process; ``> 1`` shards the fused arena by
        replica blocks across the fault-tolerant worker pool.
    max_retries / shard_timeout / max_worker_respawns / fault_plan:
        Pool recovery knobs (as in ``Simulation.run``); ignored when
        ``nworkers == 1``.
    recorder:
        Optional :class:`repro.obs.Recorder`; receives the fused span
        tree plus one ``ensemble_replica`` event per member carrying its
        per-replica counter attribution.
    live:
        Optional :class:`repro.obs.live.LiveAggregator` attaching the
        live observability plane (purely observational; see
        ``run_pool``).  The serial OE path streams per census step; the
        fused OP path reports at completion.
    """
    t0 = time.perf_counter()
    rec = NULL_RECORDER if recorder is None else recorder
    members = _expand(spec_or_members)
    nrep = len(members)
    base = members[0]
    if live is not None:
        live.update_run(
            problem=getattr(base, "name", "") or "",
            nparticles=int(sum(m.nparticles for m in members)),
            ntimesteps=int(base.ntimesteps),
            scheme=scheme.value,
            nworkers=int(nworkers),
            replicas=nrep,
            mode="ensemble",
        )
    # Build the cross-section backend once for the whole ensemble
    # (materials are a uniform field — validate_members enforces it).
    from repro.xs.provider import XsMode

    provider = base.resolved_provider()
    if provider.mode is XsMode.MULTIGROUP:
        run_members = tuple(
            m.with_(materials=provider.materials) for m in members
        )
    else:
        run_members = members
    run_base = run_members[0]
    mesh = StructuredMesh(
        base.nx, base.ny, base.width, base.height, base.density
    )
    with rec.span("ensemble_source", replicas=nrep):
        member_arenas = [
            sample_source(
                mesh, m.source, m.nparticles, m.seed, m.dt,
                provider=provider,
            )
            for m in run_members
        ]
    fused = EnsembleArena.fuse(member_arenas)
    bounds = np.concatenate(
        ([0], np.cumsum([len(a) for a in member_arenas]))
    ).astype(np.int64)

    with rec.span(
        "ensemble_run", replicas=nrep, scheme=scheme.name,
        nworkers=nworkers,
    ):
        if nworkers <= 1:
            lanes = EnsembleLanes(
                run_members, fused.replica_id, base.nx, base.ny
            )
            inner_rec = rec if rec.enabled else None
            probe = live.probe(0) if live is not None else None
            if scheme is Scheme.OVER_EVENTS:
                fused_result = run_over_events(
                    run_base, arena=fused, lanes=lanes, recorder=inner_rec,
                    provider=provider, probe=probe,
                )
            else:
                fused_result = run_over_particles_fused(
                    run_members, fused, lanes, recorder=inner_rec,
                    provider=provider,
                )
            if probe is not None:
                probe.commit_shard(fused_result.counters, len(fused))
            final = fused_result.arena
            replica_counters = list(lanes.counters)
            replica_tallies = list(lanes.tallies)
            fused_counters = fused_result.counters
            fused_tally = fused_result.tally
        else:
            final, replica_counters, replica_tallies = _run_ensemble_pool(
                run_members, fused, bounds, scheme, nworkers,
                max_retries=max_retries,
                shard_timeout=shard_timeout,
                max_worker_respawns=max_worker_respawns,
                fault_plan=fault_plan,
                recorder=rec,
                live=live,
            )
            fused_counters, fused_tally = _fused_from_replicas(
                replica_counters, replica_tallies, final, base.nx, base.ny
            )

    replicas = []
    rep_field = final.replica_id
    for r in range(nrep):
        sel = np.nonzero(rep_field == r)[0]
        replicas.append(ReplicaResult(
            replica=r,
            config=members[r],
            counters=replica_counters[r],
            tally=replica_tallies[r],
            arena=final.subset(sel),
        ))
    if rec.enabled:
        for rr in replicas:
            rec.event(
                "ensemble_replica",
                replica=rr.replica,
                seed=int(members[rr.replica].seed),
                histories=int(rr.counters.nparticles),
                collisions=int(rr.counters.collisions),
                rng_draws=int(rr.counters.rng_draws),
                escaped_energy=float(rr.counters.escaped_energy),
            )

    if live is not None:
        live.mark_done()
    return EnsembleResult(
        members=members,
        scheme=scheme,
        replicas=replicas,
        counters=fused_counters,
        tally=fused_tally,
        arena=final,
        wallclock_s=time.perf_counter() - t0,
        nworkers=nworkers,
    )


def _run_ensemble_pool(
    run_members, fused, bounds, scheme, nworkers, *,
    max_retries, shard_timeout, max_worker_respawns, fault_plan, recorder,
    live=None,
):
    """Shard the fused arena by replica blocks across the worker pool."""
    from repro.parallel.pool import PoolOptions, _Dispatcher, _pick_context

    rec = NULL_RECORDER if recorder is None else recorder
    nrep = len(run_members)
    base = run_members[0]
    options = PoolOptions(
        nworkers=nworkers,
        max_retries=max_retries,
        shard_timeout=shard_timeout,
        max_worker_respawns=max_worker_respawns,
        fault_plan=fault_plan,
    )
    job = EnsembleJob(
        members=run_members,
        bounds=tuple(int(b) for b in bounds),
        nx=base.nx, ny=base.ny,
    )
    nshards = min(nworkers, nrep)
    rb = np.linspace(0, nrep, nshards + 1).astype(np.int64)
    shards = [
        (int(bounds[rb[i]]), int(bounds[rb[i + 1]]))
        for i in range(nshards)
        if rb[i + 1] > rb[i]
    ]
    shared_pop = fused.to_shared()
    ctx = _pick_context(options)
    dispatcher = _Dispatcher(
        job, scheme, shared_pop, shards, options, ctx, recorder=rec,
        live=live,
    )
    try:
        with rec.span(
            "ensemble_dispatch", nworkers=nworkers, nshards=len(shards)
        ):
            results = dispatcher.run()
    finally:
        for slot in dispatcher.slots:
            if slot.proc is not None and slot.proc.is_alive():
                slot.proc.terminate()
                slot.proc.join(5.0)
        shared_pop.close(unlink=True)

    replica_counters: list = [None] * nrep
    replica_tallies: list = [None] * nrep
    final = None
    for sid in sorted(results):
        payload = results[sid]
        if final is None:
            final = payload["arena"]
        else:
            final.extend(payload["arena"])
        for r, c in payload["replica_counters"].items():
            replica_counters[r] = c
        for r, t in payload["replica_tallies"].items():
            replica_tallies[r] = t
    # Restore replica-major order (stable — within-replica order, which
    # parity depends on, is preserved).
    final.sort_by("replica_id")
    return final, replica_counters, replica_tallies


@dataclass
class LoopedEnsemble:
    """Baseline: the same members run one at a time through
    ``Simulation.run`` (each paying full per-run setup)."""

    members: tuple
    scheme: Scheme
    results: list = field(default_factory=list)
    wallclock_s: float = 0.0


def run_ensemble_looped(
    spec_or_members, scheme: Scheme = Scheme.OVER_EVENTS
) -> LoopedEnsemble:
    """Run every member standalone, back to back — the baseline the
    fused engine's throughput and parity are measured against."""
    from repro.core.simulation import Simulation

    members = _expand(spec_or_members)
    t0 = time.perf_counter()
    results = [Simulation(m).run(scheme) for m in members]
    return LoopedEnsemble(
        members=members,
        scheme=scheme,
        results=results,
        wallclock_s=time.perf_counter() - t0,
    )
