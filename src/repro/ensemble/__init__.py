"""Mega-batch ensemble engine: fuse N independent replica runs — same
problem, different seeds and/or swept config parameters — into a single
:class:`~repro.particles.arena.EnsembleArena` so every kernel dispatch
operates on ``replicas × histories`` lanes at once.

The counter-based Threefry RNG is keyed on ``(replica seed, history
id)``, so each replica's draw sequences — and therefore its counters,
tally and final population fingerprint — are bit-identical to the run it
would have produced standalone; the parity suite asserts exactly that.
"""

from repro.ensemble.engine import (
    EnsembleResult,
    ReplicaResult,
    population_fingerprint,
    run_ensemble,
    run_ensemble_looped,
)
from repro.ensemble.lanes import EnsembleLanes
from repro.ensemble.spec import (
    FUSIBLE_FIELDS,
    SWEEPABLE_PARAMS,
    EnsembleSpec,
    SweepSpec,
    validate_members,
)

__all__ = [
    "EnsembleLanes",
    "EnsembleResult",
    "EnsembleSpec",
    "FUSIBLE_FIELDS",
    "ReplicaResult",
    "SWEEPABLE_PARAMS",
    "SweepSpec",
    "population_fingerprint",
    "run_ensemble",
    "run_ensemble_looped",
    "validate_members",
]
