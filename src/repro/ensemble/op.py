"""Fused Over Particles driver for ensembles.

Reuses the standalone driver's ``_SweepContext``/``_Block`` machinery
unchanged; fusion is pure scheduling: blocks never span a replica
boundary, and the context's config/counters/tally/lookup-stats bindings
are swapped per replica segment.  Restricted to one replica, the exact
sequence of block waves, RNG draws, bank drains and tally flushes equals
that replica's standalone run — hence bitwise-identical results — while
the expensive per-run setup (mesh, resolved cross-section tables, kernel
dispatch, workspace) is paid once for the whole ensemble.

Between census steps the arena is re-sorted stably by ``replica_id`` so
each replica is one contiguous run again (children were appended at the
end); a stable sort preserves the within-replica order, which is exactly
the standalone arena order, so block alignment also matches standalone
on every timestep.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import Scheme
from repro.core.counters import Counters
from repro.core.over_particles import _Block, _SweepContext
from repro.core.stepper import census_dt_reset, drive_census_loop
from repro.kernels import KernelDispatch, Workspace
from repro.mesh.structured import StructuredMesh
from repro.mesh.tally import EnergyDepositionTally
from repro.obs.spans import NULL_RECORDER
from repro.xs.lookup import LookupStats

__all__ = ["run_over_particles_fused"]


def _segments_of(rep: np.ndarray, offset: int = 0):
    """Contiguous ``(replica, lo, hi)`` runs of ``rep``, offset globally."""
    if rep.size == 0:
        return []
    cuts = np.nonzero(rep[1:] != rep[:-1])[0] + 1
    bounds = np.concatenate(([0], cuts, [rep.size]))
    return [
        (int(rep[lo]), offset + int(lo), offset + int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]


def run_over_particles_fused(members, arena, lanes, recorder=None,
                             provider=None):
    """Run the fused depth-first sweep; returns the fused
    ``TransportResult`` (per-replica books live on ``lanes``)."""
    from repro.core.simulation import TransportResult

    t0 = time.perf_counter()
    rec = NULL_RECORDER if recorder is None else recorder
    base = members[0]
    mesh = StructuredMesh(
        base.nx, base.ny, base.width, base.height, base.density
    )
    tally = EnergyDepositionTally(base.nx, base.ny)
    dispatch = KernelDispatch(recorder=rec if rec.enabled else None)
    ws = Workspace()
    ctx = _SweepContext(base, mesh, tally, dispatch, ws, provider=provider)
    nrep = lanes.nreplicas
    rep_stats = [LookupStats() for _ in range(nrep)]
    ctx.coll_pp = [0] * len(arena)
    ctx.facet_pp = [0] * len(arena)
    birth = np.bincount(lanes.rep, minlength=nrep)
    for r in range(nrep):
        lanes.counters[r].rng_draws += 4 * int(birth[r])
    block_size = base.op_block_size

    def bind(r: int) -> None:
        ctx.config = members[r]
        ctx.counters = lanes.counters[r]
        ctx.tally = lanes.tallies[r]
        ctx.lookup_stats = rep_stats[r]

    def begin_step(step: int) -> None:
        if step > 0:
            order = arena.sort_by("replica_id")
            lanes.rep = lanes.rep[order]
            ctx.coll_pp = [ctx.coll_pp[i] for i in order]
            ctx.facet_pp = [ctx.facet_pp[i] for i in order]
            census_dt_reset(
                arena.dt_to_census, arena.alive, base.dt, lanes
            )

    def run_step(step: int) -> None:
        segments = _segments_of(lanes.rep)
        while segments:
            for r, lo, hi in segments:
                bind(r)
                cursor = lo
                while cursor < hi:
                    bhi = min(cursor + block_size, hi)
                    idx = cursor + np.nonzero(
                        arena.alive[cursor:bhi]
                    )[0]
                    if idx.size:
                        _Block(ctx, arena, idx).run()
                    cursor = bhi
            # All current segments swept: drain the bank exactly
            # as the standalone driver would at its arena end —
            # deterministic (parent, event, child) order; each
            # child inherits its parent's replica and the new
            # runs become the next round of segments.
            if ctx.bank:
                ctx.bank.sort(key=lambda entry: entry[:3])
                children = [entry[3] for entry in ctx.bank]
                parent_gi = np.array(
                    [entry[0] for entry in ctx.bank], dtype=np.int64
                )
                child_rep = lanes.rep[parent_gi]
                old_len = len(arena)
                arena.append_records(children)
                arena.replica_id[old_len:] = child_rep
                lanes.rep = np.concatenate([lanes.rep, child_rep])
                ctx.coll_pp.extend([0] * len(children))
                ctx.facet_pp.extend([0] * len(children))
                ctx.bank = []
                segments = _segments_of(child_rep, offset=old_len)
            else:
                segments = []

    drive_census_loop(
        rec, base.ntimesteps,
        {"scheme": "over_particles", "ensemble_replicas": nrep},
        begin_step, run_step,
    )

    rep = lanes.rep
    coll = np.asarray(ctx.coll_pp, dtype=np.int64)
    facet = np.asarray(ctx.facet_pp, dtype=np.int64)
    counters = Counters()
    for r in range(nrep):
        sel = rep == r
        rc = lanes.counters[r]
        rc.nparticles = int(sel.sum())
        rc.xs_lookups = rep_stats[r].lookups
        rc.xs_binary_probes = rep_stats[r].binary_probes
        rc.xs_linear_probes = rep_stats[r].linear_probes
        rc.collisions_per_particle = coll[sel]
        rc.facets_per_particle = facet[sel]
        rc.tally_conflict_probability = (
            lanes.tallies[r].conflict_probability()
        )
        tally.deposition += lanes.tallies[r].deposition
        tally.flush_counts += lanes.tallies[r].flush_counts
        tally.flushes += lanes.tallies[r].flushes
    for fname in Counters._SCALAR_FIELDS:
        setattr(counters, fname, sum(
            getattr(lanes.counters[r], fname) for r in range(nrep)
        ))
    counters.nparticles = len(arena)
    counters.collisions_per_particle = coll
    counters.facets_per_particle = facet
    counters.tally_conflict_probability = tally.conflict_probability()
    counters.kernel_profile = dispatch.profile()
    counters.workspace_allocations = ws.allocations
    counters.workspace_reuses = ws.reuses
    counters.arena_nbytes = arena.nbytes()

    return TransportResult(
        config=base,
        scheme=Scheme.OVER_PARTICLES,
        tally=tally,
        counters=counters,
        arena=arena,
        wallclock_s=time.perf_counter() - t0,
    )
