"""Seed-only ensemble fusion for the 3-D volume extension.

The 3-D scheme has no fission or variance reduction, so the population
is static and replica blocks never fragment: fusion is just
concatenation plus a per-lane seed array on the counter-based RNG.
Members may differ **only** in seed — the 3-D driver reads cutoffs and
timestep from the single config, so nothing else is per-lane.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time

import numpy as np

from repro.core.counters import Counters
from repro.rng.stream import VectorParticleRNG
from repro.volume.driver3 import (
    Transport3DResult,
    _sample_source_3d,
    run_over_events_3d,
)
from repro.volume.mesh3 import StructuredMesh3D, Tally3D
from repro.volume.problems3 import Volume3DConfig

__all__ = [
    "EnsembleLanes3",
    "Replica3Result",
    "population_fingerprint_3d",
    "run_ensemble_3d",
    "validate_members_3d",
]

#: Per-history state hashed into a 3-D replica fingerprint.
STATE_FIELDS_3D = (
    "x", "y", "z", "ox", "oy", "oz", "energy", "weight",
    "rng_counter", "alive", "cellx", "celly", "cellz",
)


def population_fingerprint_3d(arena) -> str:
    """SHA-256 over the 3-D physics state, in birth (particle-id) order."""
    order = np.argsort(arena.particle_id, kind="stable")
    h = hashlib.sha256()
    for name in STATE_FIELDS_3D:
        h.update(np.ascontiguousarray(arena[name][order]).tobytes())
    return h.hexdigest()


def validate_members_3d(members) -> tuple[Volume3DConfig, ...]:
    """3-D fusion is seed-only: everything else must be uniform."""
    members = tuple(members)
    if not members:
        raise ValueError("an ensemble needs at least one member")
    base = members[0]
    for i, m in enumerate(members[1:], start=1):
        for f in dataclasses.fields(Volume3DConfig):
            if f.name == "seed":
                continue
            a, b = getattr(base, f.name), getattr(m, f.name)
            if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
                same = a is not None and b is not None and np.array_equal(a, b)
            else:
                same = a == b
            if not same:
                raise ValueError(
                    f"3-D ensemble members must agree on {f.name!r} "
                    f"(member {i} differs); only the seed may vary"
                )
    return members


class EnsembleLanes3:
    """Replica-indexed books for one fused 3-D run (static population)."""

    def __init__(self, members, rep: np.ndarray):
        self.members = tuple(members)
        self.nreplicas = len(self.members)
        self.rep = np.asarray(rep, dtype=np.int64).copy()
        self.seeds = np.array([m.seed for m in self.members], dtype=np.uint64)
        self.counters = [Counters() for _ in self.members]
        base = self.members[0]
        self.tallies = [
            Tally3D(base.nx, base.ny, base.nz) for _ in self.members
        ]


@dataclasses.dataclass
class Replica3Result:
    """One member's unfused 3-D result."""

    replica: int
    config: Volume3DConfig
    counters: Counters
    tally: Tally3D
    arena: object

    def fingerprint(self) -> str:
        return population_fingerprint_3d(self.arena)


@dataclasses.dataclass
class Ensemble3Result:
    members: tuple
    replicas: list
    fused: Transport3DResult
    wallclock_s: float


def run_ensemble_3d(members, recorder=None) -> Ensemble3Result:
    """Fuse seed-only 3-D members into one breadth-first dispatch."""
    t0 = time.perf_counter()
    members = validate_members_3d(members)
    nrep = len(members)
    base = members[0]
    mesh = StructuredMesh3D(
        base.nx, base.ny, base.nz,
        base.width, base.height, base.depth, base.density,
    )
    arenas = [_sample_source_3d(m, mesh)[0] for m in members]
    sizes = [len(a) for a in arenas]
    fused = arenas[0]
    for extra in arenas[1:]:
        fused.extend(extra)
    rep = np.repeat(np.arange(nrep, dtype=np.int64), sizes)
    lanes = EnsembleLanes3(members, rep)
    rng = VectorParticleRNG(
        lanes.seeds[rep], fused.particle_id, fused.rng_counter
    )
    result = run_over_events_3d(
        base, recorder, arena=fused, rng=rng, lanes=lanes
    )
    replicas = []
    for r in range(nrep):
        sel = np.nonzero(rep == r)[0]
        replicas.append(Replica3Result(
            replica=r,
            config=members[r],
            counters=lanes.counters[r],
            tally=lanes.tallies[r],
            arena=result.arena.subset(sel),
        ))
    return Ensemble3Result(
        members=members,
        replicas=replicas,
        fused=result,
        wallclock_s=time.perf_counter() - t0,
    )
