"""Per-lane ensemble state threaded through the fused drivers.

The fused arena carries ``replica_id`` per particle; this object carries
everything *indexed by* replica: the per-member seeds/cutoffs/timestep
(gathered per lane where a kernel needs them) and the per-replica
Counters/tally books each member's events are attributed to, so every
replica's accounting stays bit-identical to its standalone serial run.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import Counters
from repro.mesh.tally import EnergyDepositionTally

__all__ = ["EnsembleLanes"]


class EnsembleLanes:
    """Replica-indexed state for one fused run.

    ``rep`` is the per-particle replica index, grown in lock-step with
    the arena as secondaries/clones are banked (a child inherits its
    parent's replica).
    """

    def __init__(self, members, rep: np.ndarray, nx: int, ny: int):
        self.members = tuple(members)
        self.nreplicas = len(self.members)
        self.rep = np.asarray(rep, dtype=np.int64).copy()
        if self.rep.size and (
            self.rep.min() < 0 or self.rep.max() >= self.nreplicas
        ):
            raise ValueError("replica ids out of range for the member list")
        self.seeds = np.array(
            [m.seed for m in self.members], dtype=np.uint64
        )
        self.ecut = np.array(
            [m.energy_cutoff_ev for m in self.members], dtype=np.float64
        )
        self.wcut = np.array(
            [m.weight_cutoff for m in self.members], dtype=np.float64
        )
        self.dt = np.array([m.dt for m in self.members], dtype=np.float64)
        self.counters = [Counters() for _ in self.members]
        self.tallies = [
            EnergyDepositionTally(nx, ny) for _ in self.members
        ]
