"""Adaptive per-census-step scheme scheduler.

``AdaptiveScheduler`` implements the plan protocol consumed by
:func:`repro.core.stepper.run_stepped` (``decide(step, stepper)`` plus
a ``fixed_scheme`` property).  It is purely a *scheduling* policy: it
never touches particle state directly, only returns
:class:`~repro.core.stepper.StepDecision` objects, so every run it
steers is bit-identical in physics to the corresponding fixed-scheme
run — the parity guarantee lives in the stepper, not here.

Policy
------
1. **Probe** — step 0 runs the first scheme in ``probe_order``, step 1
   the other (when the run is long enough to amortise the probe).
2. **Measure** — between ``decide`` calls the scheduler reads the live
   event-counter delta from ``stepper.counters`` and the wall-clock
   delta, giving an events/sec rate for whichever scheme just ran.
3. **Exploit** — from step 2 on, pick the scheme with the best measured
   rate; the incumbent keeps the slot unless the challenger's rate
   beats it by ``switch_margin`` (hysteresis, avoids flapping on
   noise).
4. **Re-probe** — measured rates go stale as the population decays; if
   the alive count has shifted by more than ``reprobe_ratio`` since a
   scheme was last timed, it gets one fresh probe step.  A challenger
   that is abandoned again after a single step was a *failed
   challenge*; after ``max_challenges`` failures the scheme is retired
   for the rest of the run, so flapping overhead is bounded.
5. **Shape** — OP block size tracks the alive count: one full-width
   block amortises per-block dispatch overhead in the vectorised
   backend and tiny late-time populations don't pay for mostly-empty
   waves.  A switch into OE on a mostly-dead arena requests
   ``compact=True`` so event passes stop scanning corpses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import Scheme, SimulationConfig
from repro.core.stepper import StepDecision

__all__ = ["AdaptiveOptions", "AdaptiveScheduler"]

_FIXED_SCHEMES = (Scheme.OVER_PARTICLES, Scheme.OVER_EVENTS)


@dataclass(frozen=True)
class AdaptiveOptions:
    """Tuning knobs for :class:`AdaptiveScheduler`."""

    #: Scheme probed at step 0; the other is probed at step 1.  Step 0
    #: is atypical — pure fresh emission, no census carry-over — so its
    #: measured rate runs hot.  OP leads by default: the inflated
    #: opening rate then belongs to the scheme whose challenge is
    #: cheapest to retire (one bounded flap step, then a strike), while
    #: the scheme probed second faces the comparison with a fresh,
    #: representative measurement.
    probe_order: tuple[Scheme, Scheme] = _FIXED_SCHEMES
    #: Challenger must beat the incumbent's rate by this factor.
    switch_margin: float = 1.15
    #: Re-probe a scheme when ``alive`` has shifted by this factor
    #: since it was last measured.
    reprobe_ratio: float = 2.0
    #: Request ``compact=True`` when switching into OE with more than
    #: this fraction of the arena dead.
    compact_dead_fraction: float = 0.5
    #: Never shrink the OP block below this.
    min_block_size: int = 8
    #: Retire a scheme after this many failed challenges (picked on a
    #: rate/re-probe decision, then abandoned after a single step).
    max_challenges: int = 1

    def __post_init__(self):
        if tuple(sorted(self.probe_order, key=lambda s: s.value)) != tuple(
            sorted(_FIXED_SCHEMES, key=lambda s: s.value)
        ):
            raise ValueError(
                "probe_order must be a permutation of "
                "(OVER_PARTICLES, OVER_EVENTS)"
            )
        if self.switch_margin < 1.0:
            raise ValueError("switch_margin must be >= 1.0")
        if self.reprobe_ratio <= 1.0:
            raise ValueError("reprobe_ratio must be > 1.0")
        if not 0.0 < self.compact_dead_fraction <= 1.0:
            raise ValueError("compact_dead_fraction must be in (0, 1]")
        if self.min_block_size < 1:
            raise ValueError("min_block_size must be >= 1")
        if self.max_challenges < 1:
            raise ValueError("max_challenges must be >= 1")


class _Rate:
    """Last measured events/sec for one scheme."""

    __slots__ = ("events_per_s", "alive_at_measure")

    def __init__(self, events_per_s: float, alive_at_measure: int):
        self.events_per_s = events_per_s
        self.alive_at_measure = alive_at_measure


class AdaptiveScheduler:
    """Telemetry-driven plan: probe both schemes, then exploit."""

    def __init__(self, config: SimulationConfig,
                 options: AdaptiveOptions | None = None):
        self.config = config
        self.options = options or AdaptiveOptions()
        self._rates: dict[Scheme, _Rate] = {}
        self._strikes: dict[Scheme, int] = {}
        self._pending: tuple[Scheme, int, float] | None = None
        #: ``(step, StepDecision)`` history, for traces and tests.
        self.decisions: list[tuple[int, StepDecision]] = []

    @property
    def fixed_scheme(self) -> None:
        """Never a fixed scheme — the stepper announces every switch."""
        return None

    # ------------------------------------------------------------------
    def _settle(self, stepper) -> None:
        """Fold the just-finished step into the rate table."""
        if self._pending is None:
            return
        scheme, events_before, t_before = self._pending
        self._pending = None
        d_events = stepper.counters.total_events - events_before
        d_t = time.perf_counter() - t_before
        if d_events <= 0 or d_t <= 0.0:
            return  # empty or unmeasurable step: keep the old rate
        self._rates[scheme] = _Rate(d_events / d_t, stepper.alive_count())

    def _pick(self, step: int, stepper, alive: int) -> tuple[Scheme, str]:
        opt = self.options
        if step < 2 and len(self._rates) < 2:
            probe = opt.probe_order[step % 2]
            if step == 1 and stepper.run_config.ntimesteps < 3:
                # Too short to amortise a second probe: stay put.
                incumbent = self.decisions[-1][1].scheme
                return incumbent, "short-run"
            return probe, "probe"
        incumbent = self.decisions[-1][1].scheme
        challenger = (
            Scheme.OVER_EVENTS if incumbent is Scheme.OVER_PARTICLES
            else Scheme.OVER_PARTICLES
        )
        if self._rates.get(challenger) is None:
            return challenger, "probe"
        if self._strikes.get(challenger, 0) >= opt.max_challenges:
            return incumbent, "hold"
        inc_rate = self._rates[incumbent].events_per_s
        # The incumbent's rate refreshes every step for free; the
        # challenger's goes stale as the population decays.  Rates fall
        # roughly with the alive count once per-step overhead dominates,
        # so never extrapolate a stale rate upward: discount it by the
        # population shrink since it was measured.  Without this, a
        # scheme probed on a dense early population looks ever better as
        # the incumbent's fresh rate decays, and the scheduler flaps.
        cha = self._rates[challenger]
        ratio = alive / max(1, cha.alive_at_measure)
        cha_rate = cha.events_per_s * min(1.0, ratio)
        # Re-probe only when the alive count drifted AND the challenger
        # was competitive when last measured — re-timing a scheme that
        # lost decisively costs a full census step for no information.
        drifted = (
            ratio > opt.reprobe_ratio or ratio < 1.0 / opt.reprobe_ratio
        )
        if drifted and cha_rate * opt.reprobe_ratio >= inc_rate:
            self._note_failed_challenge(incumbent)
            return challenger, "reprobe"
        if cha_rate > opt.switch_margin * inc_rate:
            self._note_failed_challenge(incumbent)
            return challenger, (
                f"rate {cha_rate / max(inc_rate, 1e-30):.2f}x"
            )
        return incumbent, "hold"

    def _note_failed_challenge(self, incumbent: Scheme) -> None:
        """Strike ``incumbent`` if it was a one-step challenger.

        Called when the pick is about to switch away from ``incumbent``.
        If the incumbent itself took over on a rate/re-probe decision
        exactly one step ago, that challenge failed: it gets a strike,
        and after ``max_challenges`` strikes the scheme is retired from
        consideration (probes are never struck).
        """
        last = self.decisions[-1][1]
        challenged = last.reason == "reprobe" or (
            last.reason or ""
        ).startswith("rate")
        one_step = (
            len(self.decisions) >= 2
            and self.decisions[-2][1].scheme is not incumbent
        )
        if challenged and one_step:
            self._strikes[incumbent] = self._strikes.get(incumbent, 0) + 1

    def decide(self, step: int, stepper) -> StepDecision:
        self._settle(stepper)
        alive = stepper.alive_count()
        scheme, reason = self._pick(step, stepper, alive)

        block_size = None
        compact = False
        if scheme is Scheme.OVER_PARTICLES and alive > 0:
            base_block = stepper.run_config.op_block_size
            shaped = max(self.options.min_block_size, alive)
            if shaped != base_block:
                block_size = shaped
        prev = self.decisions[-1][1].scheme if self.decisions else None
        if scheme is Scheme.OVER_EVENTS and prev is Scheme.OVER_PARTICLES:
            total = len(stepper.arena)
            dead_frac = 1.0 - alive / total if total else 0.0
            compact = dead_frac > self.options.compact_dead_fraction

        decision = StepDecision(
            scheme=scheme, block_size=block_size, compact=compact,
            reason=reason,
        )
        self.decisions.append((step, decision))
        self._pending = (
            scheme, stepper.counters.total_events, time.perf_counter()
        )
        return decision
