"""Telemetry-driven adaptive scheme scheduling.

The source paper's central finding is that the OP-vs-OE winner depends
on problem character; this package makes the choice a live, per-census-
step decision on top of the unified stepper
(:mod:`repro.core.stepper`).  The scheduler probes both schemes, reads
measured event rates and the alive-population shape, and switches
scheme / block size mid-run — physics stays bit-identical to either
fixed scheme (the stepper's parity guarantee).
"""

from repro.adaptive.scheduler import AdaptiveOptions, AdaptiveScheduler

__all__ = ["AdaptiveOptions", "AdaptiveScheduler"]
