"""Command-line interface.

    python -m repro run --problem csp --nx 128 --particles 500
    python -m repro run --problem csp --workers 2 --telemetry t.json
    python -m repro run --workers 2 --serve-metrics 8787
    python -m repro report t.json
    python -m repro capacity plan results/BENCH_4.json --slo 0.5 --rate 10
    python -m repro bench run --tier quick
    python -m repro bench compare results/BENCH_1.json BENCH_2.json
    python -m repro predict --problem csp --machine p100
    python -m repro characterise --problem stream
    python -m repro figures

``run`` executes the real transport on this host; ``report`` renders a
:class:`~repro.obs.telemetry.RunTelemetry` artifact written by
``--telemetry`` (human summary, JSONL, Chrome trace, or Prometheus
text); ``predict`` prices a paper-scale run on one of the five modelled
devices; ``characterise`` prints the scale-free workload statistics;
``figures`` prints the cross-architecture summary tables (the Fig
9/10/11/14 pipeline).  The full figure suite with assertions lives in
``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import PROBLEM_FACTORIES, Scheme, Simulation
from repro.core.validation import energy_balance_error, population_accounted
from repro.machine import ALL_MACHINES, CPUS, GPUS
from repro.mesh.boundary import BoundaryCondition

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Exploring On-Node Parallelism with Neutral' "
            "(Martineau & McIntosh-Smith, CLUSTER 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the transport on this host")
    run.add_argument("--problem", choices=sorted(PROBLEM_FACTORIES), default="csp")
    run.add_argument("--nx", type=int, default=128, help="mesh cells per axis")
    run.add_argument("--particles", type=int, default=500)
    run.add_argument(
        "--scheme",
        choices=[s.value for s in Scheme],
        default=Scheme.OVER_PARTICLES.value,
        help="over_particles, over_events, or auto (adaptive: probe "
        "both schemes, then switch per census step on measured rates)",
    )
    run.add_argument(
        "--switch-trace",
        action="store_true",
        help="print the scheduler's scheme decisions per census step "
        "(most useful with --scheme auto)",
    )
    run.add_argument("--timesteps", type=int, default=1)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--xs-mode",
        choices=["multigroup", "ce"],
        default="multigroup",
        help="cross-section backend: the paper's multigroup tables or the "
        "continuous-energy union-grid library (synthetic, hermetic)",
    )
    run.add_argument(
        "--boundary",
        choices=[b.value for b in BoundaryCondition],
        default=BoundaryCondition.REFLECTIVE.value,
    )
    run.add_argument("--russian-roulette", action="store_true")
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for real parallel execution (1 = in-process)",
    )
    run.add_argument(
        "--schedule",
        choices=["static", "dynamic"],
        default="static",
        help="pool work distribution: contiguous blocks or a shared chunk queue",
    )
    run.add_argument(
        "--chunk",
        type=int,
        default=64,
        help="histories per dynamic-queue entry",
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="per-shard retry budget after a worker death, hang, or error",
    )
    run.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="declare a worker hung when one shard runs longer than this",
    )
    run.add_argument(
        "--max-respawns",
        type=int,
        default=3,
        help="pool-wide replacement-worker budget before degraded draining",
    )
    run.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults for recovery demos, e.g. "
        "'kill:worker=1;raise:shard=0,attempts=-1' "
        "(kinds: kill, delay, raise, drop_heartbeat)",
    )
    run.add_argument(
        "--show-tally",
        action="store_true",
        help="render the deposition field as an ASCII heatmap (Fig 2)",
    )
    run.add_argument(
        "--profile-kernels",
        action="store_true",
        help="print the per-kernel call/wall-clock profile of the run",
    )
    run.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="record spans/events and write the unified RunTelemetry "
        "artifact (JSON) to this path; inspect it with 'repro report'",
    )
    run.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the live observability plane over HTTP while the run "
        "steps: GET /metrics (Prometheus text), /snapshot (JSON), "
        "/healthz (0 = ephemeral port)",
    )
    run.add_argument(
        "--drift-baseline",
        default=None,
        metavar="BENCH_JSON",
        help="a BENCH_*.json artifact whose measured events/s arms the "
        "perf-drift watchdog on the live plane",
    )
    run.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="directory for pooled workers' flight-recorder dumps "
        "(requires --telemetry; default: a private temp dir)",
    )

    run3d = sub.add_parser("run3d", help="run the 3-D extension on this host")
    run3d.add_argument(
        "--problem", choices=["stream3", "scatter3", "csp3"], default="csp3"
    )
    run3d.add_argument("--n", type=int, default=24, help="mesh cells per axis")
    run3d.add_argument("--particles", type=int, default=100)
    run3d.add_argument(
        "--scheme",
        choices=[Scheme.OVER_PARTICLES.value, Scheme.OVER_EVENTS.value],
        default=Scheme.OVER_PARTICLES.value,
    )
    run3d.add_argument("--seed", type=int, default=7)
    run3d.add_argument(
        "--xs-mode",
        choices=["multigroup", "ce"],
        default="multigroup",
        help="cross-section backend: multigroup tables or the "
        "continuous-energy union-grid library",
    )
    run3d.add_argument(
        "--profile-kernels",
        action="store_true",
        help="print the per-kernel call/wall-clock profile of the run",
    )
    run3d.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="record spans/events and write the unified RunTelemetry "
        "artifact (JSON) to this path; inspect it with 'repro report'",
    )
    run3d.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the live plane over HTTP (/metrics, /snapshot, "
        "/healthz); the 3-D drivers publish once at completion",
    )

    ensemble = sub.add_parser(
        "ensemble",
        help="fuse N replica runs into one arena-wide dispatch",
    )
    ens_sub = ensemble.add_subparsers(dest="ensemble_command", required=True)
    ens_run = ens_sub.add_parser(
        "run",
        help="run a fused replica ensemble (optionally sweeping a parameter)",
    )
    ens_run.add_argument(
        "--problem", choices=sorted(PROBLEM_FACTORIES), default="csp"
    )
    ens_run.add_argument("--nx", type=int, default=64)
    ens_run.add_argument("--particles", type=int, default=200)
    ens_run.add_argument(
        "--scheme",
        choices=[Scheme.OVER_PARTICLES.value, Scheme.OVER_EVENTS.value],
        default=Scheme.OVER_EVENTS.value,
    )
    ens_run.add_argument("--timesteps", type=int, default=1)
    ens_run.add_argument("--seed", type=int, default=7)
    ens_run.add_argument(
        "--xs-mode",
        choices=["multigroup", "ce"],
        default="multigroup",
        help="cross-section backend: multigroup tables or the "
        "continuous-energy union-grid library",
    )
    ens_run.add_argument(
        "--seed-stride", type=int, default=1,
        help="replica r runs with seed + r*stride",
    )
    ens_run.add_argument(
        "--replicas", type=int, default=8, metavar="N",
        help="number of fused replica runs",
    )
    ens_run.add_argument(
        "--sweep", action="append", default=[], metavar="PARAM=LO:HI:STEPS",
        help="sweep a parameter across replicas (repeatable); sweepable: "
        "energy_cutoff_ev, weight_cutoff, dt, source.energy_ev, "
        "source.weight",
    )
    ens_run.add_argument(
        "--workers", type=int, default=1,
        help="shard the fused arena by replica blocks across this many "
        "worker processes (1 = in-process)",
    )
    ens_run.add_argument(
        "--compare-looped", action="store_true",
        help="also run the members one at a time and report the fused "
        "speedup and per-replica parity",
    )
    ens_run.add_argument(
        "--per-replica", action="store_true",
        help="print one counter line per replica",
    )
    ens_run.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="record spans/events (incl. per-replica attribution events) "
        "and write the RunTelemetry artifact to this path",
    )
    ens_run.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the live observability plane over HTTP while the "
        "fused dispatch steps (/metrics, /snapshot, /healthz)",
    )

    report = sub.add_parser(
        "report", help="render a RunTelemetry artifact written by --telemetry"
    )
    report.add_argument("telemetry", help="path to a telemetry JSON artifact")
    report.add_argument(
        "--format",
        choices=["summary", "jsonl", "chrome", "prometheus"],
        default="summary",
        help="summary (human), jsonl (one record/line), chrome "
        "(chrome://tracing / Perfetto trace), prometheus (text exposition)",
    )
    report.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the rendering to this file instead of stdout",
    )

    bench = sub.add_parser(
        "bench",
        help="run/compare the versioned BENCH_<n>.json perf trajectory",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run a bench tier and emit a BENCH_<n>.json artifact"
    )
    bench_run.add_argument(
        "--tier", choices=["quick", "full"], default="quick",
        help="quick: the CI-gated subset; full: every registered bench",
    )
    bench_run.add_argument(
        "--bench", action="append", default=None, metavar="NAME",
        help="restrict to named benches (repeatable)",
    )
    bench_run.add_argument(
        "--repeats", type=int, default=None,
        help="override each spec's repeat count",
    )
    bench_run.add_argument(
        "--warmup", type=int, default=None,
        help="override each spec's warmup count",
    )
    bench_run.add_argument(
        "--output", default=None, metavar="PATH",
        help="artifact path (default: next free results/BENCH_<n>.json)",
    )
    bench_run.add_argument(
        "--recalibrate", action="store_true",
        help="also refit the machine-model event costs from the measured "
        "kernel timings and print the model-vs-measured error",
    )

    bench_compare = bench_sub.add_parser(
        "compare",
        help="diff two artifacts; exit 1 on out-of-band regressions",
    )
    bench_compare.add_argument("baseline", help="baseline BENCH_*.json")
    bench_compare.add_argument("candidate", help="candidate BENCH_*.json")
    bench_compare.add_argument(
        "--scale", type=float, default=3.0,
        help="noise bands a median may move before it gates (default 3)",
    )
    bench_compare.add_argument(
        "--assume-same-host", action="store_true",
        help="gate absolute timings even when host fingerprints differ",
    )

    bench_list = bench_sub.add_parser(
        "list", help="list the registered benches"
    )
    bench_list.add_argument(
        "--tier", choices=["quick", "full"], default="full",
    )

    bench_recal = bench_sub.add_parser(
        "recalibrate",
        help="refit machine-model event costs from an artifact's "
        "kernel timings",
    )
    bench_recal.add_argument("artifact", help="a BENCH_*.json artifact")
    bench_recal.add_argument(
        "--bench", default=None,
        help="which bench's kernel profile to fit (default: first with one)",
    )

    capacity = sub.add_parser(
        "capacity",
        help="size workers/fleets from the calibrated scaling model",
    )
    cap_sub = capacity.add_subparsers(dest="capacity_command", required=True)
    cap_plan = cap_sub.add_parser(
        "plan",
        help="plan worker counts for a latency SLO (or reproduce the "
        "benched worker count) from a BENCH_*.json artifact",
    )
    cap_plan.add_argument("artifact", help="a BENCH_*.json artifact")
    cap_plan.add_argument(
        "--bench", default=None,
        help="the pool_speedup_* bench supplying the serial/pooled "
        "latencies (default: pool_speedup_csp)",
    )
    cap_plan.add_argument(
        "--workers", type=int, default=2,
        help="worker count the bench's pooled measurement ran with",
    )
    cap_plan.add_argument(
        "--slo", type=float, default=None, metavar="SECONDS",
        help="latency SLO to size for; omit to reproduce the benched "
        "worker count from the measured pooled latency",
    )
    cap_plan.add_argument(
        "--rate", type=float, default=None, metavar="JOBS_PER_S",
        help="traffic rate — sizes the whole fleet via Little's law "
        "(needs --slo)",
    )

    predict = sub.add_parser(
        "predict", help="price a paper-scale run on a modelled device"
    )
    predict.add_argument("--problem", choices=sorted(PROBLEM_FACTORIES), default="csp")
    predict.add_argument("--machine", choices=sorted(ALL_MACHINES), default="broadwell")
    predict.add_argument(
        "--scheme",
        choices=[Scheme.OVER_PARTICLES.value, Scheme.OVER_EVENTS.value],
        default=Scheme.OVER_PARTICLES.value,
    )

    char = sub.add_parser(
        "characterise", help="print the workload statistics at paper scale"
    )
    char.add_argument("--problem", choices=sorted(PROBLEM_FACTORIES), default="csp")

    figures = sub.add_parser(
        "figures", help="print the cross-architecture tables"
    )
    figures.add_argument(
        "--output",
        default=None,
        help="also write the tables (plus workload characterisation) to "
        "this markdown file",
    )
    return parser


def _start_live_plane(args, recorder=None):
    """Build the live aggregator + HTTP endpoint for ``--serve-metrics``.

    Returns ``(live, server)`` — both ``None`` when the flag is absent.
    The server is already started; the caller owns closing it.
    """
    port = getattr(args, "serve_metrics", None)
    if port is None:
        return None, None
    from repro.obs import (
        LiveAggregator,
        MetricsServer,
        drift_band_from_artifact,
    )

    drift = None
    baseline = getattr(args, "drift_baseline", None)
    if baseline:
        from repro.bench import load_bench_artifact

        drift = drift_band_from_artifact(load_bench_artifact(baseline))
    live = LiveAggregator(drift=drift, recorder=recorder)
    server = MetricsServer(live, port=port)
    server.start()
    print(f"live metrics: {server.url('/metrics')} "
          f"(also /snapshot, /healthz)")
    if drift is not None:
        print(f"drift watchdog: expecting "
              f"{drift.expected_events_per_s:,.0f} events/s "
              f"±{drift.rel_band:.0%} ({drift.source})")
    return live, server


def _cmd_run(args: argparse.Namespace) -> int:
    cfg = PROBLEM_FACTORIES[args.problem](
        nx=args.nx,
        nparticles=args.particles,
        ntimesteps=args.timesteps,
        seed=args.seed,
        boundary=BoundaryCondition(args.boundary),
        use_russian_roulette=args.russian_roulette,
        xs_mode=args.xs_mode,
    )
    from repro.parallel import FaultPlan, ScheduleKind, simulate_parallel_for

    schedule = ScheduleKind(args.schedule)
    fault_plan = (
        FaultPlan.parse(args.fault_plan) if args.fault_plan else None
    )
    recorder = None
    if args.telemetry or args.switch_trace:
        from repro.obs import Recorder

        recorder = Recorder()
    try:
        live, server = _start_live_plane(args, recorder)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result = Simulation(cfg).run(
            Scheme(args.scheme),
            nworkers=args.workers,
            schedule=schedule,
            chunk=args.chunk,
            max_retries=args.max_retries,
            shard_timeout=args.shard_timeout,
            max_worker_respawns=args.max_respawns,
            fault_plan=fault_plan,
            recorder=recorder,
            live=live,
            flight_dir=args.flight_dir,
        )
    finally:
        if server is not None:
            server.close()
    c = result.counters
    print(f"problem={cfg.name} mesh={cfg.nx}x{cfg.ny} particles={cfg.nparticles} "
          f"scheme={args.scheme}")
    print(f"events: collisions={c.collisions} facets={c.facets} "
          f"census={c.census_events} terminations={c.terminations} "
          f"escapes={c.escapes}")
    print(f"per-particle: collisions={c.mean_collisions_per_particle():.2f} "
          f"facets={c.mean_facets_per_particle():.2f}")
    print(f"deposition total: {result.tally.total():.4e} eV")
    print(f"energy balance error: {energy_balance_error(result):.2e}")
    print(f"population accounted: {population_accounted(result)}")
    print(f"host wall-clock: {result.wallclock_s:.3f} s")
    if args.switch_trace:
        _print_switch_trace(recorder)
    pool = result.pool
    if pool is not None and pool.nworkers > 1:
        print(f"pool: {pool.nworkers} workers, {pool.schedule.value} schedule "
              f"(chunk {pool.chunk}, {pool.start_method} start), "
              f"{pool.chunks_dispatched()} chunks dispatched")
        for w in pool.workers:
            print(f"  worker {w.worker_id}: histories={w.histories} "
                  f"(final {w.final_histories}) events={w.events} "
                  f"chunks={w.chunks} busy={w.busy_s:.3f}s")
        # Measured imbalance next to what the scheduling model predicts for
        # the same per-history work under the same schedule.
        modelled = simulate_parallel_for(
            c.events_per_particle(), pool.nworkers, schedule, args.chunk
        )
        print(f"load imbalance (max/mean): measured events "
              f"{pool.event_imbalance():.3f}, busy time "
              f"{pool.busy_imbalance():.3f}; modelled "
              f"{modelled.load_imbalance():.3f}")
        if fault_plan is not None:
            print(f"fault plan: {fault_plan.describe()}")
        if pool.rebalances:
            print(f"rebalance: {pool.rebalances} reserve shard splits")
        if pool.recovered():
            print(f"recovery: {pool.workers_lost} workers lost, "
                  f"{pool.respawns} respawned, {pool.retries} shard retries")
        if pool.degraded:
            print(f"DEGRADED MODE: {pool.degraded_reason} — "
                  f"{pool.shards_drained_in_process} shards drained "
                  f"in-process by the parent")
    if args.profile_kernels:
        from repro.kernels import format_profile

        print("kernel profile (ranked by wall-clock):")
        print(format_profile(c.kernel_profile))
        print(f"workspace buffers: {c.workspace_allocations} allocations, "
              f"{c.workspace_reuses} reuses")
        arena = result.arena
        print(f"arena storage: {c.arena_nbytes} B for {len(arena)} "
              f"particles ({type(arena).bytes_per_particle()} B/particle "
              f"SoA vs {type(arena).bytes_per_particle_aos()} B AoS record)")
        if c.xs_bin_reuses:
            print(f"xs bin reuse: {c.xs_bin_reuses} of {c.xs_lookups} "
                  f"lookups skipped the search")
    if args.show_tally:
        from repro.analysis.viz import render_heatmap

        print(render_heatmap(
            result.tally.deposition, title="energy deposition (log scale)"
        ))
    if args.telemetry:
        _write_telemetry(result, recorder, args.telemetry)
    return 0


def _print_switch_trace(recorder) -> None:
    """Print the scheduler's per-step scheme decisions from the run's
    ``scheme_switch`` events (fixed-scheme runs emit none)."""
    switches = [e for e in recorder.events if e.name == "scheme_switch"]
    if not switches:
        print("switch trace: no scheme switches recorded "
              "(fixed-scheme run)")
        return
    print(f"switch trace ({len(switches)} decisions):")
    for e in sorted(switches, key=lambda e: (e.attrs.get("step", 0), e.t)):
        a = e.attrs
        src = ""
        if e.source:
            tags = ",".join(f"{k}={v}" for k, v in sorted(e.source.items()))
            src = f" [{tags}]"
        arrow = f"{a.get('prev') or '-'} -> {a['scheme']}"
        block = a.get("block_size") or 0
        extra = f" block={block}" if block else ""
        print(f"  step {a.get('step', '?')}: {arrow}{extra} "
              f"alive={a.get('alive', '?')} ({a.get('reason', '')}){src}")


def _write_telemetry(result, recorder, path) -> None:
    """Assemble, validate, and dump the RunTelemetry artifact."""
    from repro.obs import build_run_telemetry, validate_telemetry

    telemetry = build_run_telemetry(result, recorder)
    validate_telemetry(telemetry.to_dict())
    telemetry.dump(path)
    print(f"telemetry: {len(telemetry.spans)} spans, "
          f"{len(telemetry.events)} events -> {path}")


def _cmd_ensemble(args: argparse.Namespace) -> int:
    handlers = {"run": _cmd_ensemble_run}
    return handlers[args.ensemble_command](args)


def _cmd_ensemble_run(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.problems import PROBLEM_FACTORIES as factories
    from repro.ensemble import (
        EnsembleSpec,
        SweepSpec,
        population_fingerprint,
        run_ensemble,
        run_ensemble_looped,
    )

    base = factories[args.problem](
        nx=args.nx,
        nparticles=args.particles,
        ntimesteps=args.timesteps,
        seed=args.seed,
        xs_mode=args.xs_mode,
    )
    try:
        sweeps = tuple(SweepSpec.parse(s) for s in args.sweep)
        spec = EnsembleSpec(
            base, args.replicas, seed_stride=args.seed_stride, sweeps=sweeps
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    recorder = None
    if args.telemetry:
        from repro.obs import Recorder

        recorder = Recorder()
    scheme = Scheme(args.scheme)
    try:
        live, server = _start_live_plane(args, recorder)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        ens = run_ensemble(
            spec, scheme, nworkers=args.workers, recorder=recorder,
            live=live,
        )
    finally:
        if server is not None:
            server.close()
    c = ens.counters
    print(f"ensemble: {ens.nreplicas} replicas x {base.nparticles} histories "
          f"({args.problem}, {base.nx}x{base.ny} mesh, {args.scheme}, "
          f"{args.workers} worker{'s' if args.workers != 1 else ''})")
    for s in sweeps:
        print(f"sweep: {s.param} over [{s.lo}, {s.hi}] in {s.steps} steps "
              f"(cyclic across replicas)")
    print(f"fused events: collisions={c.collisions} facets={c.facets} "
          f"census={c.census_events} terminations={c.terminations} "
          f"escapes={c.escapes}")
    print(f"fused deposition total: {ens.tally.total():.4e} eV")
    print(f"fused wall-clock: {ens.wallclock_s:.3f} s "
          f"({ens.total_histories()} histories)")
    if args.per_replica:
        for rr in ens.replicas:
            rc = rr.counters
            print(f"  replica {rr.replica}: seed={rr.config.seed} "
                  f"collisions={rc.collisions} census={rc.census_events} "
                  f"escapes={rc.escapes} "
                  f"fingerprint={rr.fingerprint()[:12]}")
    if args.compare_looped:
        looped = run_ensemble_looped(spec, scheme)
        speedup = looped.wallclock_s / max(ens.wallclock_s, 1e-12)
        parity = all(
            population_fingerprint(rr.arena)
            == population_fingerprint(res.arena)
            and np.array_equal(rr.tally.deposition, res.tally.deposition)
            for rr, res in zip(ens.replicas, looped.results)
        )
        print(f"looped baseline: {looped.wallclock_s:.3f} s -> "
              f"fused speedup {speedup:.2f}x")
        print(f"per-replica parity vs looped: "
              f"{'BIT-IDENTICAL' if parity else 'MISMATCH'}")
        if not parity:
            return 1
    if args.telemetry:
        from repro.core.simulation import TransportResult

        fused_result = TransportResult(
            config=ens.members[0],
            scheme=scheme,
            tally=ens.tally,
            counters=ens.counters,
            arena=ens.arena,
            wallclock_s=ens.wallclock_s,
        )
        _write_telemetry(fused_result, recorder, args.telemetry)
    return 0


def _cmd_run3d(args: argparse.Namespace) -> int:
    from repro.volume import (
        csp3_problem,
        energy_balance_error_3d,
        population_accounted_3d,
        run_over_events_3d,
        run_over_particles_3d,
        scatter3_problem,
        stream3_problem,
    )

    factory = {
        "stream3": stream3_problem,
        "scatter3": scatter3_problem,
        "csp3": csp3_problem,
    }[args.problem]
    cfg = factory(
        n=args.n, nparticles=args.particles, seed=args.seed,
        xs_mode=args.xs_mode,
    )
    driver = (
        run_over_particles_3d
        if Scheme(args.scheme) is Scheme.OVER_PARTICLES
        else run_over_events_3d
    )
    recorder = None
    if args.telemetry:
        from repro.obs import Recorder

        recorder = Recorder()
    try:
        live, server = _start_live_plane(args, recorder)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if live is not None:
            live.update_run(
                problem=cfg.name, nparticles=int(cfg.nparticles),
                ntimesteps=1, scheme=args.scheme, nworkers=0, mode="run3d",
            )
        result = driver(cfg, recorder=recorder)
        if live is not None:
            # The 3-D drivers are not probe-threaded per census step;
            # publish the final totals so the endpoint still reports the
            # finished run truthfully.
            rc = result.counters
            live.observe_worker(
                0,
                events=int(rc.total_events),
                alive=int(result.arena.alive.sum()),
                xs_lookups=int(rc.xs_lookups),
                xs_probes=int(rc.xs_binary_probes + rc.xs_linear_probes),
                histories=int(cfg.nparticles),
                shards=1,
                steps=1,
            )
            live.mark_done()
    finally:
        if server is not None:
            server.close()
    c = result.counters
    print(f"problem={cfg.name} mesh={cfg.nx}³ particles={cfg.nparticles} "
          f"scheme={args.scheme}")
    print(f"events: collisions={c.collisions} facets={c.facets} "
          f"census={c.census_events}")
    print(f"energy balance error: {energy_balance_error_3d(result):.2e}")
    print(f"population accounted: {population_accounted_3d(result)}")
    print(f"host wall-clock: {result.wallclock_s:.3f} s")
    if args.profile_kernels:
        from repro.kernels import format_profile

        print("kernel profile (ranked by wall-clock):")
        print(format_profile(c.kernel_profile))
        arena = result.arena
        print(f"arena storage: {c.arena_nbytes} B for {len(arena)} "
              f"particles ({type(arena).bytes_per_particle()} B/particle "
              f"SoA)")
    if args.telemetry:
        _write_telemetry(result, recorder, args.telemetry)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        TelemetrySchemaError,
        format_summary,
        load_telemetry,
        to_chrome_trace,
        to_jsonl,
        to_prometheus,
    )

    # One-line diagnoses for the operator-facing failure modes: a path
    # that is not there, a file that is not JSON, JSON that is not a
    # RunTelemetry artifact.
    try:
        telemetry = load_telemetry(args.telemetry)
    except FileNotFoundError:
        print(f"error: no telemetry artifact at {args.telemetry}",
              file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot read {args.telemetry}: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {args.telemetry} is not valid JSON ({exc})",
              file=sys.stderr)
        return 1
    except TelemetrySchemaError as exc:
        first = exc.problems[0] if exc.problems else "schema mismatch"
        more = len(exc.problems) - 1
        suffix = f" (+{more} more)" if more > 0 else ""
        print(f"error: {args.telemetry} is not a valid RunTelemetry "
              f"artifact: {first}{suffix}", file=sys.stderr)
        return 1
    if args.format == "summary":
        text = format_summary(telemetry)
    elif args.format == "jsonl":
        text = to_jsonl(telemetry)
    elif args.format == "chrome":
        text = json.dumps(to_chrome_trace(telemetry))
    else:
        text = to_prometheus(telemetry)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            text if text.endswith("\n") else text + "\n"
        )
        print(f"written: {args.output}")
    else:
        print(text)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    handlers = {
        "run": _cmd_bench_run,
        "compare": _cmd_bench_compare,
        "list": _cmd_bench_list,
        "recalibrate": _cmd_bench_recalibrate,
    }
    return handlers[args.bench_command](args)


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import (
        bench_sequence_of,
        build_bench_artifact,
        next_bench_path,
        run_tier,
    )

    results = run_tier(
        args.tier, repeats=args.repeats, warmup=args.warmup,
        names=args.bench,
        progress=lambda name: print(f"bench: {name} ..."),
    )
    path = Path(args.output) if args.output else next_bench_path("results")
    artifact = build_bench_artifact(
        results, tier=args.tier, sequence=bench_sequence_of(path)
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    artifact.dump(path)
    for r in results:
        wall = artifact.benches[r.spec.name]["wallclock_s"]
        line = (f"  {r.spec.name}: median {wall['median']:.4f} s "
                f"(IQR {wall['iqr']:.4f}, {r.repeats} repeats)")
        if r.warnings:
            line += f"  WARNINGS: {', '.join(r.warnings)}"
        print(line)
    print(f"artifact: {len(results)} benches -> {path}")
    if args.recalibrate:
        from repro.perfmodel import recalibrate_from_artifact

        print()
        print("machine-model recalibration from measured kernel timings:")
        print(recalibrate_from_artifact(artifact).format())
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import compare_artifacts, load_bench_artifact

    base = load_bench_artifact(args.baseline)
    cand = load_bench_artifact(args.candidate)
    report = compare_artifacts(
        base, cand, scale=args.scale,
        assume_same_host=args.assume_same_host,
    )
    print(report.format())
    return 0 if report.ok else 1


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from repro.bench import specs_for_tier
    from repro.bench.reporting import format_table

    specs = specs_for_tier(args.tier)
    rows = [
        [s.name, s.tier, s.version, s.default_repeats,
         len(s.metrics), s.description]
        for s in specs
    ]
    print(format_table(
        ["bench", "tier", "version", "repeats", "metrics", "description"],
        rows,
    ))
    return 0


def _cmd_bench_recalibrate(args: argparse.Namespace) -> int:
    from repro.bench import load_bench_artifact
    from repro.perfmodel import recalibrate_from_artifact

    artifact = load_bench_artifact(args.artifact)
    report = recalibrate_from_artifact(artifact, bench=args.bench)
    print(report.format())
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    handlers = {"plan": _cmd_capacity_plan}
    return handlers[args.capacity_command](args)


def _cmd_capacity_plan(args: argparse.Namespace) -> int:
    from repro.bench import load_bench_artifact
    from repro.perfmodel import plan_capacity, scenario_from_artifact
    from repro.perfmodel.capacity import DEFAULT_BENCH

    try:
        artifact = load_bench_artifact(args.artifact)
        scenario = scenario_from_artifact(
            artifact,
            bench=args.bench or DEFAULT_BENCH,
            nworkers=args.workers,
        )
        plan = plan_capacity(scenario, latency_slo=args.slo, rate=args.rate)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(scenario.format())
    print(plan.format())
    return 0 if plan.feasible else 1


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.bench import standard_cpu_time, standard_gpu_time

    scheme = Scheme(args.scheme)
    if args.machine in CPUS:
        p = standard_cpu_time(args.problem, args.machine, scheme)
        print(f"{args.machine} / {args.problem} / {args.scheme}")
        print(f"predicted runtime: {p.seconds:.2f} s  (bound: {p.bound})")
        print(f"achieved bandwidth: {p.achieved_bandwidth_gbs:.1f} GB/s")
        print(f"tally share: {p.tally_fraction:.0%}")
        print(f"core utilisation: {p.utilization:.0%}")
    else:
        p = standard_gpu_time(args.problem, args.machine, scheme)
        print(f"{args.machine} / {args.problem} / {args.scheme}")
        print(f"predicted runtime: {p.seconds:.2f} s  (bound: {p.bound})")
        print(f"achieved bandwidth: {p.achieved_bandwidth_gbs:.1f} GB/s")
        print(f"occupancy: {p.occupancy:.2f} "
              f"({p.active_warps_per_sm} warps/SM, "
              f"{p.registers_per_thread} registers)")
    return 0


def _cmd_characterise(args: argparse.Namespace) -> int:
    from repro.bench import PAPER_SCALE, paper_workload

    w = paper_workload(args.problem)
    nparticles, nx = PAPER_SCALE[args.problem]
    print(f"{args.problem} at paper scale ({nx}² mesh, {nparticles:.0e} particles):")
    print(f"  facets/particle:     {w.facets_pp:.1f}")
    print(f"  collisions/particle: {w.collisions_pp:.2f}")
    print(f"  reflections/particle:{w.reflections_pp:.2f}")
    print(f"  tally flushes/part.: {w.flushes_pp:.1f}")
    print(f"  xs lookups/particle: {w.lookups_pp:.2f}")
    print(f"  event mix (coll/facet/census): "
          f"{w.event_mix[0]:.4f}/{w.event_mix[1]:.4f}/{w.event_mix[2]:.4f}")
    print(f"  work imbalance (cv): {w.work_cv:.2f}")
    print(f"  tally conflict probability: {w.conflict_probability:.2e}")
    return 0


def _figures_text() -> str:
    from repro.bench import (
        PAPER_SCALE,
        format_table,
        paper_workload,
        standard_cpu_time,
        standard_gpu_time,
    )

    problems = ("stream", "scatter", "csp")
    sections = []

    lines = ["## Workload characterisation at paper scale (4000²)", ""]
    rows = []
    for p in problems:
        w = paper_workload(p)
        rows.append([p, f"{PAPER_SCALE[p][0]:.0e}", w.facets_pp, w.collisions_pp])
    lines.append(format_table(
        ["problem", "particles", "facets/particle", "collisions/particle"], rows
    ))
    sections.append("\n".join(lines))

    lines = ["## Over Particles runtimes, seconds (Fig 14 pipeline)", ""]
    rows = []
    for p in problems:
        rows.append(
            [p]
            + [standard_cpu_time(p, m).seconds for m in CPUS]
            + [standard_gpu_time(p, m).seconds for m in GPUS]
        )
    lines.append(format_table(["problem"] + list(CPUS) + list(GPUS), rows))
    sections.append("\n".join(lines))

    lines = ["## Over Events / Over Particles slowdown (Figs 9-13)", ""]
    rows = []
    for p in problems:
        row = [p]
        for m in CPUS:
            row.append(
                standard_cpu_time(p, m, Scheme.OVER_EVENTS).seconds
                / standard_cpu_time(p, m).seconds
            )
        for m in GPUS:
            row.append(
                standard_gpu_time(p, m, Scheme.OVER_EVENTS).seconds
                / standard_gpu_time(p, m).seconds
            )
        rows.append(row)
    lines.append(format_table(["problem"] + list(CPUS) + list(GPUS), rows))
    sections.append("\n".join(lines))

    return "\n\n".join(sections) + "\n"


def _cmd_figures(args: argparse.Namespace) -> int:
    text = _figures_text()
    print(text)
    output = getattr(args, "output", None)
    if output:
        from pathlib import Path

        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = (
            "# Cross-architecture summary (model output)\n\n"
            "Generated by `python -m repro figures --output ...`; the full "
            "per-figure suite with assertions lives in `benchmarks/`.\n\n"
        )
        path.write_text(header + text)
        print(f"written: {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "run3d": _cmd_run3d,
        "ensemble": _cmd_ensemble,
        "report": _cmd_report,
        "bench": _cmd_bench,
        "capacity": _cmd_capacity,
        "predict": _cmd_predict,
        "characterise": _cmd_characterise,
        "figures": _cmd_figures,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
