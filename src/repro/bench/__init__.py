"""Benchmark harness shared by the ``benchmarks/`` figure suite.

:mod:`repro.bench.runner` measures the reference workloads (real transport
at reduced scale, characterised and rescaled to the paper's problem sizes)
and caches them per process, so every figure bench prices the *same*
measured algorithm.  :mod:`repro.bench.reporting` renders the rows/series
each figure reports.
"""

from repro.bench.runner import (
    DEVICE_BASELINES,
    PAPER_SCALE,
    KernelProfile,
    MeasuredSpeedup,
    RecoveryOverhead,
    ShardHandoff,
    measured_kernel_profile,
    measured_recovery_overhead,
    measured_shard_handoff,
    measured_speedup,
    measured_telemetry,
    measured_workload,
    paper_workload,
    standard_cpu_time,
    standard_gpu_time,
)
from repro.bench.reporting import format_table, format_series, print_header

__all__ = [
    "DEVICE_BASELINES",
    "PAPER_SCALE",
    "KernelProfile",
    "MeasuredSpeedup",
    "RecoveryOverhead",
    "ShardHandoff",
    "measured_kernel_profile",
    "measured_recovery_overhead",
    "measured_shard_handoff",
    "measured_speedup",
    "measured_telemetry",
    "measured_workload",
    "paper_workload",
    "standard_cpu_time",
    "standard_gpu_time",
    "format_table",
    "format_series",
    "print_header",
]
