"""Benchmark harness shared by the ``benchmarks/`` figure suite.

:mod:`repro.bench.runner` measures the reference workloads (real transport
at reduced scale, characterised and rescaled to the paper's problem sizes)
and caches them per process, so every figure bench prices the *same*
measured algorithm.  :mod:`repro.bench.reporting` renders the rows/series
each figure reports.

:mod:`repro.bench.registry` names and versions the measurements as
benchmark specs, :mod:`repro.bench.artifact` serialises a registry run
as a schema-validated ``BENCH_<n>.json``, and
:mod:`repro.bench.compare` diffs two artifacts with a noise-band
regression gate (the ``repro bench`` CLI and the CI ``bench-regression``
job drive all three).
"""

from repro.bench.artifact import (
    BenchArtifact,
    BenchSchemaError,
    bench_sequence_of,
    load_bench_artifact,
    next_bench_path,
    validate_bench_artifact,
)
from repro.bench.compare import (
    ComparisonReport,
    MetricDelta,
    compare_artifacts,
    hosts_match,
)
from repro.bench.registry import (
    REGISTRY,
    BenchResult,
    BenchSpec,
    BenchTimingError,
    MetricSpec,
    build_bench_artifact,
    run_bench,
    run_tier,
    specs_for_tier,
)
from repro.bench.runner import (
    DEVICE_BASELINES,
    PAPER_SCALE,
    AdaptiveCrossover,
    CeCrossover,
    KernelProfile,
    LiveOverhead,
    MeasuredSpeedup,
    RecoveryOverhead,
    ShardHandoff,
    measured_adaptive_crossover,
    measured_ce_crossover,
    measured_kernel_profile,
    measured_live_overhead,
    measured_recovery_overhead,
    measured_shard_handoff,
    measured_speedup,
    measured_telemetry,
    measured_workload,
    paper_workload,
    standard_cpu_time,
    standard_gpu_time,
)
from repro.bench.reporting import format_table, format_series, print_header

__all__ = [
    "BenchArtifact",
    "BenchResult",
    "BenchSchemaError",
    "BenchSpec",
    "BenchTimingError",
    "ComparisonReport",
    "MetricDelta",
    "MetricSpec",
    "REGISTRY",
    "bench_sequence_of",
    "build_bench_artifact",
    "compare_artifacts",
    "hosts_match",
    "load_bench_artifact",
    "next_bench_path",
    "run_bench",
    "run_tier",
    "specs_for_tier",
    "validate_bench_artifact",
    "DEVICE_BASELINES",
    "PAPER_SCALE",
    "AdaptiveCrossover",
    "CeCrossover",
    "KernelProfile",
    "LiveOverhead",
    "MeasuredSpeedup",
    "RecoveryOverhead",
    "ShardHandoff",
    "measured_adaptive_crossover",
    "measured_ce_crossover",
    "measured_kernel_profile",
    "measured_live_overhead",
    "measured_recovery_overhead",
    "measured_shard_handoff",
    "measured_speedup",
    "measured_telemetry",
    "measured_workload",
    "paper_workload",
    "standard_cpu_time",
    "standard_gpu_time",
    "format_table",
    "format_series",
    "print_header",
]
