"""Plain-text rendering of figure rows/series.

Every bench prints the same rows/series the paper's figure reports, with a
"paper" column alongside the model's value where the paper states a number
(EXPERIMENTS.md aggregates these).  Run a bench directly
(``python benchmarks/test_fig09_broadwell.py``) to see its table without
pytest's capture.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["print_header", "format_table", "format_series"]


def print_header(title: str) -> None:
    """Banner for one figure's output."""
    line = "=" * max(len(title), 20)
    print(f"\n{line}\n{title}\n{line}")


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Fixed-width table; floats formatted, everything else ``str()``-ed.

    Every row must have exactly one cell per header — a ragged row used
    to surface as an ``IndexError`` deep in the width computation.
    """
    str_rows = []
    for rownum, row in enumerate(rows):
        cells = [
            float_fmt.format(v) if isinstance(v, float) else str(v)
            for v in row
        ]
        if len(cells) != len(headers):
            raise ValueError(
                f"row {rownum} has {len(cells)} cells for "
                f"{len(headers)} headers: {cells!r}"
            )
        str_rows.append(cells)
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """One labelled series, x→y pairs on one line each.

    ``xs`` and ``ys`` must be the same length — ``zip`` used to drop
    the tail of the longer sequence silently.
    """
    if len(xs) != len(ys):
        raise ValueError(
            f"series {name!r}: {len(xs)} x values vs {len(ys)} y values"
        )
    lines = [f"series: {name}"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x}: {y:.3f}")
    return "\n".join(lines)
