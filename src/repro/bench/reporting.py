"""Plain-text rendering of figure rows/series.

Every bench prints the same rows/series the paper's figure reports, with a
"paper" column alongside the model's value where the paper states a number
(EXPERIMENTS.md aggregates these).  Run a bench directly
(``python benchmarks/test_fig09_broadwell.py``) to see its table without
pytest's capture.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["print_header", "format_table", "format_series"]


def print_header(title: str) -> None:
    """Banner for one figure's output."""
    line = "=" * max(len(title), 20)
    print(f"\n{line}\n{title}\n{line}")


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Fixed-width table; floats formatted, everything else ``str()``-ed."""
    str_rows = []
    for row in rows:
        str_rows.append(
            [
                float_fmt.format(v) if isinstance(v, float) else str(v)
                for v in row
            ]
        )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """One labelled series, x→y pairs on one line each."""
    lines = [f"series: {name}"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x}: {y:.3f}")
    return "\n".join(lines)
