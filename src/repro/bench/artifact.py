"""The versioned ``BENCH_<n>.json`` benchmark artifact.

One :class:`BenchArtifact` records the outcome of a registry run — per
bench the wall-clock and metric sample statistics (median + IQR noise
band), the hot-kernel profile where the bench produced one, and the host
fingerprint / git provenance the comparator needs to decide which
metrics are comparable across artifacts.

The artifact follows the same discipline as
:mod:`repro.obs.telemetry`: a named, versioned schema
(``repro.bench`` version :data:`SCHEMA_VERSION`), canonical JSON
(sorted keys, fixed separators, byte-stable ``dump → load → dump``),
and a hand-rolled structural validator with no external dependency.

Artifacts are *sequenced*: ``BENCH_1.json``, ``BENCH_2.json``, … under
``results/`` form the repo's machine-readable perf trajectory.
:func:`next_bench_path` picks the next free sequence number.
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "BenchSchemaError",
    "BenchArtifact",
    "host_fingerprint",
    "git_provenance",
    "validate_bench_artifact",
    "load_bench_artifact",
    "next_bench_path",
    "bench_sequence_of",
]

SCHEMA_NAME = "repro.bench"
SCHEMA_VERSION = 1

_BENCH_FILE_RE = re.compile(r"^BENCH_(\d+)\.json$")


class BenchSchemaError(ValueError):
    """An artifact dict does not conform to the bench schema."""

    def __init__(self, problems: list[str]):
        self.problems = list(problems)
        super().__init__(
            "bench artifact failed schema validation:\n  "
            + "\n  ".join(self.problems)
        )


def host_fingerprint() -> dict:
    """Identify the measuring host well enough to know whether two
    artifacts' absolute timings are comparable."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or platform.machine(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
    }


def git_provenance(repo_dir=None) -> dict:
    """Current commit sha and dirty flag; degrades to ``unknown`` when
    git (or the repository) is unavailable."""
    cwd = str(repo_dir) if repo_dir else None
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout
        return {"sha": sha, "dirty": bool(status.strip())}
    except (OSError, subprocess.SubprocessError):
        return {"sha": "unknown", "dirty": False}


@dataclass
class BenchArtifact:
    """One registry run in serialisable form.

    ``benches`` maps bench name to its result section::

        {
          "spec": {"kind": ..., "tier": ..., "version": int},
          "repeats": int, "warmup": int,
          "wallclock_s": {metric section},
          "metrics": {name: {metric section}},
          "kernel_profile": {...} | null,
          "warnings": [...],
        }

    where a *metric section* is ``{"samples": [...], "median": float,
    "iqr": float, "direction": "lower"|"higher"|"info",
    "rel_floor": float, "timing": bool}`` — self-describing, so the
    comparator needs no access to the registry that produced it.
    """

    meta: dict
    benches: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": {"name": SCHEMA_NAME, "version": SCHEMA_VERSION},
            "meta": self.meta,
            "benches": self.benches,
        }

    def to_json(self) -> str:
        """Canonical JSON — sorted keys, fixed separators — so repeated
        dumps of one artifact are byte-identical."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def dump(self, path) -> None:
        validate_bench_artifact(self.to_dict())
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, d: dict) -> "BenchArtifact":
        validate_bench_artifact(d)
        return cls(meta=d["meta"], benches=d["benches"])

    # -- convenience accessors ------------------------------------------
    def bench_names(self) -> list[str]:
        return sorted(self.benches)

    def median(self, bench: str, metric: str = "wallclock_s") -> float:
        section = self.benches[bench]
        if metric == "wallclock_s":
            return section["wallclock_s"]["median"]
        return section["metrics"][metric]["median"]


def load_bench_artifact(path) -> BenchArtifact:
    """Read and schema-validate an artifact file."""
    return BenchArtifact.from_dict(json.loads(Path(path).read_text()))


def bench_sequence_of(path) -> int | None:
    """The ``<n>`` of a ``BENCH_<n>.json`` filename, or ``None``."""
    m = _BENCH_FILE_RE.match(Path(path).name)
    return int(m.group(1)) if m else None


def next_bench_path(directory) -> Path:
    """The next free ``BENCH_<n>.json`` in ``directory``."""
    directory = Path(directory)
    taken = [
        seq for p in directory.glob("BENCH_*.json")
        if (seq := bench_sequence_of(p)) is not None
    ]
    return directory / f"BENCH_{max(taken, default=0) + 1}.json"


# ---------------------------------------------------------------------------
# Schema validation (hand-rolled: no external jsonschema dependency)
# ---------------------------------------------------------------------------

_NUM = (int, float)
_DIRECTIONS = {"lower", "higher", "info"}


def _check_metric_section(section, label, problems) -> None:
    if not isinstance(section, dict):
        problems.append(f"{label} must be an object")
        return
    samples = section.get("samples")
    if not isinstance(samples, list) or not samples:
        problems.append(f"{label}.samples must be a non-empty list")
    elif not all(
        isinstance(v, _NUM) and not isinstance(v, bool) for v in samples
    ):
        problems.append(f"{label}.samples must be numeric")
    for key in ("median", "iqr", "rel_floor"):
        v = section.get(key)
        if not isinstance(v, _NUM) or isinstance(v, bool):
            problems.append(f"{label}.{key} must be numeric")
    if section.get("direction") not in _DIRECTIONS:
        problems.append(
            f"{label}.direction must be one of {sorted(_DIRECTIONS)}"
        )
    if not isinstance(section.get("timing"), bool):
        problems.append(f"{label}.timing must be a boolean")


def validate_bench_artifact(d: dict) -> None:
    """Structurally validate an artifact dict; raise
    :class:`BenchSchemaError` listing every problem found."""
    problems: list[str] = []
    if not isinstance(d, dict):
        raise BenchSchemaError(["artifact is not an object"])

    schema = d.get("schema")
    if not isinstance(schema, dict):
        problems.append("missing 'schema' section")
    else:
        if schema.get("name") != SCHEMA_NAME:
            problems.append(
                f"schema.name is {schema.get('name')!r}, "
                f"expected {SCHEMA_NAME!r}"
            )
        version = schema.get("version")
        if not isinstance(version, int) or isinstance(version, bool):
            problems.append("schema.version must be an integer")
        elif version > SCHEMA_VERSION:
            problems.append(
                f"schema.version {version} is newer than this reader "
                f"({SCHEMA_VERSION})"
            )

    meta = d.get("meta")
    if not isinstance(meta, dict):
        problems.append("'meta' must be an object")
    else:
        if not isinstance(meta.get("host"), dict):
            problems.append("meta.host must be an object")
        git = meta.get("git")
        if not isinstance(git, dict) or not isinstance(git.get("sha"), str):
            problems.append("meta.git must be an object with a 'sha'")
        if not isinstance(meta.get("tier"), str):
            problems.append("meta.tier must be a string")
        res = meta.get("timer_resolution_s")
        if not isinstance(res, _NUM) or isinstance(res, bool):
            problems.append("meta.timer_resolution_s must be numeric")

    benches = d.get("benches")
    if not isinstance(benches, dict):
        problems.append("'benches' must be an object")
        raise BenchSchemaError(problems)

    for name, section in benches.items():
        label = f"benches[{name!r}]"
        if not isinstance(section, dict):
            problems.append(f"{label} must be an object")
            continue
        spec = section.get("spec")
        if not isinstance(spec, dict) or not isinstance(
            spec.get("version"), int
        ):
            problems.append(f"{label}.spec must carry an integer 'version'")
        for key in ("repeats", "warmup"):
            if not isinstance(section.get(key), int):
                problems.append(f"{label}.{key} must be an integer")
        _check_metric_section(
            section.get("wallclock_s"), f"{label}.wallclock_s", problems
        )
        metrics = section.get("metrics")
        if not isinstance(metrics, dict):
            problems.append(f"{label}.metrics must be an object")
        else:
            for mname, msection in metrics.items():
                _check_metric_section(
                    msection, f"{label}.metrics[{mname!r}]", problems
                )
        profile = section.get("kernel_profile", None)
        if profile is not None:
            if not isinstance(profile, dict):
                problems.append(f"{label}.kernel_profile must be an object "
                                "or null")
            else:
                for kname, row in profile.items():
                    if (not isinstance(row, list) or len(row) != 3
                            or not all(isinstance(v, _NUM) for v in row)):
                        problems.append(
                            f"{label}.kernel_profile[{kname!r}] must be "
                            "[calls, items, seconds]"
                        )
        if not isinstance(section.get("warnings", []), list):
            problems.append(f"{label}.warnings must be a list")

    if problems:
        raise BenchSchemaError(problems)
