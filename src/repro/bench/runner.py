"""Workload measurement and standard model evaluations for the benches.

Every figure bench follows the same pipeline (DESIGN.md §4):

1. run the real transport at reduced scale (96² mesh, 60 histories) and
   characterise it — cached per process, one run per problem;
2. rescale to the paper's sizes (4000² mesh; 10⁶ histories for stream/csp,
   10⁷ for scatter);
3. evaluate the machine models under the experiment's options.

``standard_cpu_time``/``standard_gpu_time`` encode the paper's baseline
configuration per device (thread counts, affinities, memory choice) so the
figure benches stay declarative.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from functools import lru_cache

from repro.core import PROBLEM_FACTORIES, Scheme, Simulation
from repro.core.config import Layout
from repro.machine import CPUS, GPUS
from repro.parallel.affinity import Affinity
from repro.parallel.faults import FaultPlan, KillWorker
from repro.parallel.schedule import ScheduleKind, simulate_parallel_for
from repro.perfmodel import (
    CPUOptions,
    GPUOptions,
    Workload,
    predict_cpu,
    predict_gpu,
)

__all__ = [
    "PAPER_SCALE",
    "MEASUREMENT_NX",
    "MEASUREMENT_PARTICLES",
    "DEVICE_BASELINES",
    "measured_workload",
    "KernelProfile",
    "measured_kernel_profile",
    "paper_workload",
    "standard_cpu_time",
    "standard_gpu_time",
    "MeasuredSpeedup",
    "measured_speedup",
    "LiveOverhead",
    "measured_live_overhead",
    "RecoveryOverhead",
    "measured_recovery_overhead",
    "ShardHandoff",
    "measured_shard_handoff",
    "EnsembleThroughput",
    "measured_ensemble_throughput",
    "AdaptiveCrossover",
    "measured_adaptive_crossover",
    "CeCrossover",
    "measured_ce_crossover",
    "measured_telemetry",
]

#: Paper-scale targets per problem: (nparticles, mesh_nx) — §IV-B.
PAPER_SCALE = {
    "stream": (1_000_000, 4000),
    "scatter": (10_000_000, 4000),
    "csp": (1_000_000, 4000),
}

#: Reduced scale at which the real transport is measured.
MEASUREMENT_NX = 96
MEASUREMENT_PARTICLES = 60

#: Per-device baseline run configuration used across figures:
#: (nthreads, affinity, use_fast_memory).  Broadwell runs 88 threads
#: compact (§VII-A); KNL 256 threads scattered (§VII-B) from MCDRAM;
#: POWER8 160 threads spread (§VII-C).
DEVICE_BASELINES = {
    "broadwell": (88, Affinity.COMPACT, False),
    "knl": (256, Affinity.SCATTER, True),
    "power8": (160, Affinity.SCATTER, False),
}


@lru_cache(maxsize=None)
def _measured_workload_cached(problem: str) -> Workload:
    if problem not in PROBLEM_FACTORIES:
        raise KeyError(f"unknown problem {problem!r}")
    cfg = PROBLEM_FACTORIES[problem](
        nx=MEASUREMENT_NX, nparticles=MEASUREMENT_PARTICLES
    )
    result = Simulation(cfg).run(Scheme.OVER_EVENTS)
    return Workload.from_result(result)


def _workload_copy(w: Workload) -> Workload:
    # The cache hands the same Workload to every caller, and its
    # work_samples array is writable — one bench scaling it in place
    # would poison every later bench in the process.
    return replace(w, work_samples=w.work_samples.copy())


def measured_workload(problem: str) -> Workload:
    """Characterise one real reduced-scale transport run.

    The underlying transport is cached per process (one run per
    problem); every call returns a defensive copy, so mutating the
    returned record cannot leak into other callers.
    """
    return _workload_copy(_measured_workload_cached(problem))


@lru_cache(maxsize=None)
def _paper_workload_cached(problem: str) -> Workload:
    nparticles, nx = PAPER_SCALE[problem]
    return _measured_workload_cached(problem).scaled(nparticles, nx)


def paper_workload(problem: str) -> Workload:
    """The measured workload rescaled to the paper's problem size
    (cached transport, defensive copy per call)."""
    return _workload_copy(_paper_workload_cached(problem))


@dataclass(frozen=True)
class KernelProfile:
    """Measured per-kernel cost breakdown of one reduced-scale run.

    The raw profile comes off the driver's dispatch table
    (``Counters.kernel_profile``); this record adds the workspace-churn
    and bin-reuse evidence that the kernel layer actually removed the
    per-pass allocations and redundant searches it claims to.
    """

    problem: str
    scheme: Scheme
    wallclock_s: float
    profile: dict
    workspace_allocations: int
    workspace_reuses: int
    xs_lookups: int
    xs_bin_reuses: int

    def hot_ranking(self) -> list[str]:
        """Kernel names ranked by total wall-clock, hottest first."""
        return [
            name
            for name, _ in sorted(
                self.profile.items(), key=lambda kv: kv[1][2], reverse=True
            )
        ]

    @property
    def buffer_reuse_fraction(self) -> float:
        """Fraction of workspace requests served without allocating."""
        total = self.workspace_allocations + self.workspace_reuses
        return self.workspace_reuses / total if total else 0.0

    def format(self) -> str:
        """The ranked table ``repro run --profile-kernels`` prints."""
        from repro.kernels import format_profile

        return format_profile(self.profile)


def _measure_kernel_profile(
    problem: str, scheme: Scheme = Scheme.OVER_EVENTS
) -> KernelProfile:
    """One fresh (uncached) profiled run — the benchmark registry calls
    this directly so every repeat is a real measurement."""
    if problem not in PROBLEM_FACTORIES:
        raise KeyError(f"unknown problem {problem!r}")
    cfg = PROBLEM_FACTORIES[problem](
        nx=MEASUREMENT_NX, nparticles=MEASUREMENT_PARTICLES
    )
    result = Simulation(cfg).run(scheme)
    c = result.counters
    return KernelProfile(
        problem=problem,
        scheme=scheme,
        wallclock_s=result.wallclock_s,
        profile=dict(c.kernel_profile),
        workspace_allocations=c.workspace_allocations,
        workspace_reuses=c.workspace_reuses,
        xs_lookups=c.xs_lookups,
        xs_bin_reuses=c.xs_bin_reuses,
    )


_measured_kernel_profile_cached = lru_cache(maxsize=None)(
    _measure_kernel_profile
)


def measured_kernel_profile(
    problem: str, scheme: Scheme = Scheme.OVER_EVENTS
) -> KernelProfile:
    """Run one reduced-scale problem and capture its kernel profile.

    The run is cached per (problem, scheme); the returned record's
    ``profile`` rows are defensive copies — the cached dict used to be
    handed out shared, so one caller mutating a row poisoned every
    later profile fetched in the process.
    """
    kp = _measured_kernel_profile_cached(problem, scheme)
    return replace(kp, profile={k: list(v) for k, v in kp.profile.items()})


def measured_telemetry(
    problem: str,
    scheme: Scheme = Scheme.OVER_EVENTS,
    nworkers: int | None = None,
    schedule: ScheduleKind = ScheduleKind.STATIC,
    chunk: int = 64,
    nx: int = MEASUREMENT_NX,
    nparticles: int = MEASUREMENT_PARTICLES,
):
    """Run one reduced-scale problem with full telemetry attached.

    Returns the schema-validated
    :class:`~repro.obs.telemetry.RunTelemetry` artifact — the same object
    ``repro run --telemetry`` dumps — so benches can assert on span
    structure, kernel shares, or the pool ledger without shelling out.
    ``nworkers=None`` runs the serial driver (parent spans only);
    an integer routes through the pool and merges worker span payloads.
    """
    from repro.obs import Recorder, build_run_telemetry, validate_telemetry

    if problem not in PROBLEM_FACTORIES:
        raise KeyError(f"unknown problem {problem!r}")
    cfg = PROBLEM_FACTORIES[problem](nx=nx, nparticles=nparticles)
    recorder = Recorder()
    result = Simulation(cfg).run(
        scheme, nworkers=nworkers, schedule=schedule, chunk=chunk,
        recorder=recorder,
    )
    telemetry = build_run_telemetry(result, recorder)
    validate_telemetry(telemetry.to_dict())
    return telemetry


def standard_cpu_time(
    problem: str,
    machine: str,
    scheme: Scheme = Scheme.OVER_PARTICLES,
    **option_overrides,
):
    """Predict seconds for a problem on a CPU under its baseline config.

    Returns the full :class:`repro.perfmodel.cpu_model.CPUPrediction`.
    """
    spec = CPUS[machine]
    nthreads, affinity, fast = DEVICE_BASELINES[machine]
    layout = Layout.SOA if scheme is Scheme.OVER_EVENTS else Layout.AOS
    opts = dict(
        nthreads=nthreads,
        scheme=scheme,
        layout=layout,
        affinity=affinity,
        use_fast_memory=fast,
    )
    opts.update(option_overrides)
    return predict_cpu(paper_workload(problem), spec, CPUOptions(**opts))


@dataclass(frozen=True)
class MeasuredSpeedup:
    """Model-vs-reality record for one pooled run on this host.

    The machine models predict runtimes for the paper's devices; this is
    the *measured* path — a real worker-pool execution timed against the
    serial driver — so the modelled scheduling behaviour (load imbalance
    under STATIC/DYNAMIC) can be checked against the host's actual one.
    """

    problem: str
    scheme: Scheme
    schedule: ScheduleKind
    nworkers: int
    serial_s: float
    parallel_s: float
    measured_imbalance: float
    modelled_imbalance: float
    #: Full RunTelemetry artifact of the pooled run (``capture_telemetry``).
    telemetry: object | None = None
    #: Measurement-quality flags (e.g. ``"timer_underflow:parallel"``);
    #: non-empty means the ratios below are not trustworthy.
    warnings: tuple = ()

    @property
    def speedup(self) -> float:
        """Serial wall-clock over pooled wall-clock.

        A zero pooled time is timer underflow, not a real measurement —
        returning a finite sentinel here used to hide it (and propagate
        a fake 1.0 into :attr:`parallel_efficiency` on fast hosts), so
        it now surfaces as ``inf`` alongside a :attr:`warnings` flag.
        """
        if self.parallel_s == 0:
            return float("inf")
        return self.serial_s / self.parallel_s

    @property
    def parallel_efficiency(self) -> float:
        """Speedup over worker count (1.0 is ideal scaling)."""
        return self.speedup / self.nworkers


def measured_speedup(
    problem: str,
    nworkers: int,
    scheme: Scheme = Scheme.OVER_PARTICLES,
    schedule: ScheduleKind = ScheduleKind.STATIC,
    chunk: int = 64,
    nx: int = MEASUREMENT_NX,
    nparticles: int = 4 * MEASUREMENT_PARTICLES,
    capture_telemetry: bool = False,
) -> MeasuredSpeedup:
    """Time one problem serially and on the worker pool, on this host.

    Runs the same reduced-scale configuration the workload measurements
    use (scaled up ×4 in histories so there is enough work to shard),
    then reports the measured speedup and load imbalance next to what the
    scheduling model predicts for the same per-history work distribution.
    ``capture_telemetry=True`` attaches the pooled run's full
    :class:`~repro.obs.telemetry.RunTelemetry` artifact (bit-identity of
    the physics is unaffected; only the pooled wall-clock absorbs the
    recording overhead).
    """
    if problem not in PROBLEM_FACTORIES:
        raise KeyError(f"unknown problem {problem!r}")
    cfg = PROBLEM_FACTORIES[problem](nx=nx, nparticles=nparticles)
    sim = Simulation(cfg)
    serial = sim.run(scheme)
    recorder = None
    if capture_telemetry:
        from repro.obs import Recorder

        recorder = Recorder()
    pooled = sim.run(
        scheme, nworkers=nworkers, schedule=schedule, chunk=chunk,
        recorder=recorder,
    )
    modelled = simulate_parallel_for(
        serial.counters.events_per_particle(), nworkers, schedule, chunk
    )
    telemetry = None
    if capture_telemetry:
        from repro.obs import build_run_telemetry

        telemetry = build_run_telemetry(pooled, recorder)
    resolution = time.get_clock_info("perf_counter").resolution
    warnings = tuple(
        f"timer_underflow:{label}"
        for label, seconds in (
            ("serial", serial.wallclock_s),
            ("parallel", pooled.wallclock_s),
        )
        if seconds <= resolution
    )
    return MeasuredSpeedup(
        problem=problem,
        scheme=scheme,
        schedule=schedule,
        nworkers=nworkers,
        serial_s=serial.wallclock_s,
        parallel_s=pooled.wallclock_s,
        measured_imbalance=pooled.pool.busy_imbalance(),
        modelled_imbalance=modelled.load_imbalance(),
        telemetry=telemetry,
        warnings=warnings,
    )


@dataclass(frozen=True)
class LiveOverhead:
    """Cost of attaching the live observability plane, on this host.

    Two identical serial runs — one plain, one with a
    :class:`~repro.obs.live.LiveAggregator` fed per census step and a
    :class:`~repro.obs.server.MetricsServer` scraped over real HTTP —
    plus the plane's two standing invariants measured as metrics:
    ``live_parity`` (population fingerprints bit-identical between the
    runs) and ``endpoint_ok`` (the endpoint served schema-valid JSON and
    Prometheus text whose event total matches the run's exact counter).
    """

    problem: str
    scheme: Scheme
    off_s: float
    on_s: float
    #: 1.0 when the observed run fingerprints identically to the plain one.
    live_parity: float
    #: 1.0 when /snapshot and /metrics served consistent, valid views.
    endpoint_ok: float
    events_total: int
    warnings: tuple = ()

    @property
    def overhead(self) -> float:
        """Fractional slowdown with the plane attached (may go negative
        within host jitter — the probe work is per census step, tiny)."""
        if self.off_s == 0:
            return 0.0
        return self.on_s / self.off_s - 1.0


def measured_live_overhead(
    problem: str = "csp",
    scheme: Scheme = Scheme.OVER_PARTICLES,
    nx: int = MEASUREMENT_NX,
    nparticles: int = 4 * MEASUREMENT_PARTICLES,
    ntimesteps: int = 4,
) -> LiveOverhead:
    """Time one serial configuration plain and with the live plane on.

    Several census steps keep the probe on its real per-step cadence;
    the metrics server is bound to an ephemeral port and scraped once
    after the observed run so the bench exercises the full serve path,
    not just the aggregator.
    """
    import json
    import urllib.request

    from repro.ensemble import population_fingerprint
    from repro.obs import LiveAggregator, MetricsServer

    if problem not in PROBLEM_FACTORIES:
        raise KeyError(f"unknown problem {problem!r}")
    cfg = PROBLEM_FACTORIES[problem](
        nx=nx, nparticles=nparticles, ntimesteps=ntimesteps
    )
    sim = Simulation(cfg)
    off = sim.run(scheme)
    live = LiveAggregator()
    endpoint_ok = 0.0
    with MetricsServer(live, port=0) as server:
        on = sim.run(scheme, live=live)
        try:
            with urllib.request.urlopen(
                server.url("/snapshot"), timeout=5
            ) as resp:
                snap = json.loads(resp.read())
            with urllib.request.urlopen(
                server.url("/metrics"), timeout=5
            ) as resp:
                text = resp.read().decode("utf-8")
            if (
                snap["schema"]["name"] == "repro.live_snapshot"
                and snap["aggregate"]["events_total"]
                == int(on.counters.total_events)
                and "repro_live_events_total" in text
            ):
                endpoint_ok = 1.0
        except (OSError, ValueError, KeyError):
            endpoint_ok = 0.0
    parity = (
        population_fingerprint(off.arena)
        == population_fingerprint(on.arena)
    )
    resolution = time.get_clock_info("perf_counter").resolution
    warnings = tuple(
        f"timer_underflow:{label}"
        for label, seconds in (
            ("off", off.wallclock_s),
            ("on", on.wallclock_s),
        )
        if seconds <= resolution
    )
    return LiveOverhead(
        problem=problem,
        scheme=scheme,
        off_s=off.wallclock_s,
        on_s=on.wallclock_s,
        live_parity=1.0 if parity else 0.0,
        endpoint_ok=endpoint_ok,
        events_total=int(on.counters.total_events),
        warnings=warnings,
    )


@dataclass(frozen=True)
class RecoveryOverhead:
    """Cost of surviving a worker loss, measured on this host.

    Two identical pooled runs, one undisturbed and one with a
    deterministic worker kill injected; since recovery re-executes the
    lost shard bit-identically, the *only* difference is wall-clock —
    which is exactly the recovery overhead a long campaign pays per
    failure.
    """

    problem: str
    scheme: Scheme
    schedule: ScheduleKind
    nworkers: int
    clean_s: float
    faulted_s: float
    retries: int
    respawns: int
    degraded: bool
    #: Final particle states bit-identical between the two runs.
    states_identical: bool
    #: RunTelemetry of the faulted run (``capture_telemetry``) — its
    #: recovery_events() show the kill/respawn/retry sequence paid for.
    telemetry: object | None = None

    @property
    def overhead(self) -> float:
        """Fractional slowdown of the faulted run (0.0 = free recovery)."""
        if self.clean_s == 0:
            return 0.0
        return self.faulted_s / self.clean_s - 1.0


def measured_recovery_overhead(
    problem: str,
    nworkers: int = 2,
    scheme: Scheme = Scheme.OVER_PARTICLES,
    schedule: ScheduleKind = ScheduleKind.DYNAMIC,
    chunk: int = 16,
    nx: int = MEASUREMENT_NX,
    nparticles: int = 4 * MEASUREMENT_PARTICLES,
    capture_telemetry: bool = False,
) -> RecoveryOverhead:
    """Measure the wall-clock cost of losing (and replacing) one worker.

    Runs the reduced-scale configuration twice on the pool: undisturbed,
    then with worker 0 hard-killed mid-shard after completing one chunk.
    Returns the paired timings plus the recovery ledger of the faulted
    run and a bit-identity check of the final particle states — the
    determinism claim the chaos suite asserts, measured here for its
    *cost* instead.
    """
    if problem not in PROBLEM_FACTORIES:
        raise KeyError(f"unknown problem {problem!r}")
    if nworkers < 2:
        raise ValueError("recovery needs at least two workers")
    cfg = PROBLEM_FACTORIES[problem](nx=nx, nparticles=nparticles)
    sim = Simulation(cfg)
    clean = sim.run(scheme, nworkers=nworkers, schedule=schedule, chunk=chunk)
    recorder = None
    if capture_telemetry:
        from repro.obs import Recorder

        recorder = Recorder()
    faulted = sim.run(
        scheme, nworkers=nworkers, schedule=schedule, chunk=chunk,
        fault_plan=FaultPlan((KillWorker(worker=0, after_chunks=1),)),
        recorder=recorder,
    )
    import numpy as np

    identical = len(clean.arena) == len(faulted.arena) and all(
        np.array_equal(getattr(clean.arena, f), getattr(faulted.arena, f))
        for f in ("particle_id", "x", "y", "energy", "rng_counter")
    )
    telemetry = None
    if capture_telemetry:
        from repro.obs import build_run_telemetry

        telemetry = build_run_telemetry(faulted, recorder)
    return RecoveryOverhead(
        problem=problem,
        scheme=scheme,
        schedule=schedule,
        nworkers=nworkers,
        clean_s=clean.wallclock_s,
        faulted_s=faulted.wallclock_s,
        retries=faulted.pool.retries,
        respawns=faulted.pool.respawns,
        degraded=faulted.pool.degraded,
        states_identical=identical,
        telemetry=telemetry,
    )


@dataclass(frozen=True)
class ShardHandoff:
    """Cost of handing one shard of the population to a worker process.

    Three mechanisms for the same ``[lo, hi)`` slice of histories:

    * pickling the detached AoS records (the pre-arena hand-off);
    * pickling the SoA arena slice (per-field arrays, still a copy);
    * the zero-copy path — ship only the ``(shm_name, n_total, lo, hi)``
      handle and let the worker map the parent's shared-memory buffer.

    Payload bytes measure serialisation traffic through the task queue;
    the timings measure the receiving side (unpickle vs. shm attach).
    """

    problem: str
    nparticles: int
    shard_lo: int
    shard_hi: int
    #: ``pickle.dumps`` size of the shard as ``list[Particle]``.
    pickled_particles_bytes: int
    #: ``pickle.dumps`` size of the shard as an arena slice copy.
    pickled_arena_bytes: int
    #: ``pickle.dumps`` size of the shared-memory shard handle.
    handle_bytes: int
    unpickle_particles_s: float
    unpickle_arena_s: float
    attach_s: float

    @property
    def payload_reduction(self) -> float:
        """AoS-pickle bytes over handle bytes (the zero-copy win)."""
        if self.handle_bytes == 0:
            return 1.0
        return self.pickled_particles_bytes / self.handle_bytes


@lru_cache(maxsize=None)
def _handoff_population_cached(problem: str, nparticles: int, nx: int):
    """Derive the hand-off workload once per configuration.

    The hand-off microbench measures pickle/attach costs, not source
    sampling or cross-section resolution — yet every repeat used to
    re-derive the config, materials, mesh, and population from scratch,
    dominating the bench's own wall-clock with setup the metric never
    looks at.  Cached per process like ``_measured_workload_cached``.
    """
    from repro.mesh.structured import StructuredMesh
    from repro.particles.source import sample_source

    if problem not in PROBLEM_FACTORIES:
        raise KeyError(f"unknown problem {problem!r}")
    cfg = PROBLEM_FACTORIES[problem](nx=nx, nparticles=nparticles)
    mesh = StructuredMesh(cfg.nx, cfg.ny, cfg.width, cfg.height, cfg.density)
    return sample_source(
        mesh, cfg.source, cfg.nparticles, cfg.seed, cfg.dt,
        provider=cfg.resolved_provider(),
    )


def _handoff_population(problem: str, nparticles: int, nx: int):
    """Defensive copy of the cached hand-off population — callers time
    ``to_shared``/pickling against it and must not see shared state."""
    return _handoff_population_cached(problem, nparticles, nx).copy()


def measured_shard_handoff(
    problem: str = "csp",
    nparticles: int = 4 * MEASUREMENT_PARTICLES,
    nshards: int = 4,
    nx: int = MEASUREMENT_NX,
    repeats: int = 5,
) -> ShardHandoff:
    """Microbenchmark the shard hand-off payload and receive cost.

    Samples the real source population (cached per configuration — the
    derivation is setup, not the thing being measured), takes the first
    of ``nshards`` contiguous shards, and measures the three hand-off
    mechanisms on this host (best of ``repeats`` for the timings).
    """
    import pickle
    import time

    from repro.particles.arena import ParticleArena, shard_handle_nbytes

    population = _handoff_population(problem, nparticles, nx)
    lo, hi = 0, max(1, len(population) // max(1, nshards))

    aos_payload = pickle.dumps(population.view(lo, hi).as_particles())
    arena_payload = pickle.dumps(population.view(lo, hi).copy())

    def _best(fn) -> float:
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        return best

    unpickle_particles_s = _best(lambda: pickle.loads(aos_payload))
    unpickle_arena_s = _best(lambda: pickle.loads(arena_payload))

    shared = population.to_shared()
    try:
        handle = (shared.shm_name, len(shared), lo, hi)

        def _attach():
            view = ParticleArena.attach(shared.shm_name, len(shared), lo, hi)
            view.close()

        attach_s = _best(_attach)
        handle_bytes = shard_handle_nbytes(handle)
    finally:
        shared.close(unlink=True)

    return ShardHandoff(
        problem=problem,
        nparticles=nparticles,
        shard_lo=lo,
        shard_hi=hi,
        pickled_particles_bytes=len(aos_payload),
        pickled_arena_bytes=len(arena_payload),
        handle_bytes=handle_bytes,
        unpickle_particles_s=unpickle_particles_s,
        unpickle_arena_s=unpickle_arena_s,
        attach_s=attach_s,
    )


@dataclass(frozen=True)
class EnsembleThroughput:
    """Fused-ensemble throughput against the looped baseline.

    The fused engine runs N replicas as one arena-wide dispatch per event
    per census step, paying problem setup (cross-section tables, mesh,
    kernel dispatch, workspace) once; the baseline loops
    ``Simulation.run`` over the same members, paying it N times.
    ``parity`` is a deterministic algorithm fact (1.0 = every replica's
    tally and population fingerprint bit-identical to its standalone
    run), gated exactly; the timings compare same-host only.
    """

    problem: str
    scheme: Scheme
    nreplicas: int
    nparticles: int
    fused_s: float
    looped_s: float
    #: 1.0 when every replica is bit-identical to its standalone run.
    parity: float
    total_histories: int
    warnings: tuple = ()

    @property
    def speedup_vs_looped(self) -> float:
        if self.fused_s == 0:
            return float("inf")
        return self.looped_s / self.fused_s

    @property
    def fused_histories_per_s(self) -> float:
        if self.fused_s == 0:
            return float("inf")
        return self.total_histories / self.fused_s


def measured_ensemble_throughput(
    problem: str = "csp",
    nreplicas: int = 32,
    nparticles: int = MEASUREMENT_PARTICLES,
    nx: int = 64,
    scheme: Scheme = Scheme.OVER_EVENTS,
    sweep: str | None = "weight_cutoff=0.05:0.3:8",
) -> EnsembleThroughput:
    """Time a fused replica ensemble against the looped baseline.

    Runs the same member set twice — once through
    :func:`repro.ensemble.run_ensemble` (one fused arena), once through
    :func:`repro.ensemble.run_ensemble_looped` (``Simulation.run`` per
    member, the honest pre-ensemble workflow) — and verifies per-replica
    bit-parity between the two while at it.
    """
    import numpy as np

    from repro.ensemble import (
        EnsembleSpec,
        SweepSpec,
        population_fingerprint,
        run_ensemble,
        run_ensemble_looped,
    )

    if problem not in PROBLEM_FACTORIES:
        raise KeyError(f"unknown problem {problem!r}")
    base = PROBLEM_FACTORIES[problem](nx=nx, nparticles=nparticles)
    sweeps = (SweepSpec.parse(sweep),) if sweep else ()
    spec = EnsembleSpec(base, nreplicas, sweeps=sweeps)
    fused = run_ensemble(spec, scheme)
    looped = run_ensemble_looped(spec, scheme)
    parity = all(
        population_fingerprint(rr.arena) == population_fingerprint(res.arena)
        and np.array_equal(rr.tally.deposition, res.tally.deposition)
        for rr, res in zip(fused.replicas, looped.results)
    )
    resolution = time.get_clock_info("perf_counter").resolution
    warnings = tuple(
        f"timer_underflow:{label}"
        for label, seconds in (
            ("fused", fused.wallclock_s),
            ("looped", looped.wallclock_s),
        )
        if seconds <= resolution
    )
    return EnsembleThroughput(
        problem=problem,
        scheme=scheme,
        nreplicas=nreplicas,
        nparticles=nparticles,
        fused_s=fused.wallclock_s,
        looped_s=looped.wallclock_s,
        parity=1.0 if parity else 0.0,
        total_histories=fused.total_histories(),
        warnings=warnings,
    )


@dataclass(frozen=True)
class AdaptiveCrossover:
    """Adaptive scheduling against both fixed schemes, on this host.

    Three runs of the same multi-census-step configuration — pure OP,
    pure OE, and ``Scheme.AUTO`` (the telemetry-driven scheduler of
    :mod:`repro.adaptive`) — plus a bit-parity check: scheme switching
    happens only at census boundaries over counter-based RNG streams, so
    the adaptive run's final population must fingerprint-match the fixed
    runs exactly.  The CI gate asserts ``adaptive_efficiency`` stays
    near 1.0: the scheduler may pay a bounded probe cost but must not
    lose to simply picking the better fixed scheme.
    """

    problem: str
    ntimesteps: int
    op_s: float
    oe_s: float
    auto_s: float
    #: Scheme decisions the scheduler announced (≥ 1; > 1 means it
    #: actually switched at least once after the opening step).
    decisions: int
    #: 1.0 when the AUTO population fingerprint equals the fixed runs'.
    parity: float
    warnings: tuple = ()

    @property
    def best_fixed_s(self) -> float:
        return min(self.op_s, self.oe_s)

    @property
    def adaptive_efficiency(self) -> float:
        """Best fixed wall-clock over adaptive wall-clock (1.0 = the
        scheduler matched the better fixed scheme; > 1.0 = beat it)."""
        if self.auto_s == 0:
            return float("inf")
        return self.best_fixed_s / self.auto_s


def measured_adaptive_crossover(
    problem: str = "csp",
    ntimesteps: int = 16,
    nx: int = MEASUREMENT_NX,
    nparticles: int = 4 * MEASUREMENT_PARTICLES,
    repeats: int = 2,
) -> AdaptiveCrossover:
    """Time pure OP, pure OE, and AUTO on one multi-step configuration.

    Multiple census steps give the scheduler room to probe both schemes
    and settle; the population decays over the steps, so the OP-vs-OE
    balance genuinely shifts within the run — the situation the adaptive
    scheduler exists for.  All three variants go through the same
    :func:`~repro.core.stepper.run_stepped` entry point (no recorder on
    any of them), each timed ``repeats`` times interleaved with the
    others and reported as its best wall-clock: the efficiency ratio is
    a scheduling-policy comparison, not a fixture-overhead one, and
    best-of-N keeps one noisy step on a shared host from failing the CI
    gate.
    """
    from repro.adaptive import AdaptiveScheduler
    from repro.core.stepper import run_stepped
    from repro.ensemble.engine import population_fingerprint

    if problem not in PROBLEM_FACTORIES:
        raise KeyError(f"unknown problem {problem!r}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    cfg = PROBLEM_FACTORIES[problem](
        nx=nx, nparticles=nparticles, ntimesteps=ntimesteps
    )
    results = {}
    times: dict[str, list[float]] = {"op": [], "oe": [], "auto": []}
    scheduler = None
    for _ in range(repeats):
        results["op"] = run_stepped(cfg, Scheme.OVER_PARTICLES)
        times["op"].append(results["op"].wallclock_s)
        results["oe"] = run_stepped(cfg, Scheme.OVER_EVENTS)
        times["oe"].append(results["oe"].wallclock_s)
        scheduler = AdaptiveScheduler(cfg)
        results["auto"] = run_stepped(cfg, scheduler)
        times["auto"].append(results["auto"].wallclock_s)
    schemes = [d.scheme for _, d in scheduler.decisions]
    decisions = 1 + sum(
        1 for prev, cur in zip(schemes, schemes[1:]) if cur is not prev
    )
    parity = (
        population_fingerprint(results["auto"].arena)
        == population_fingerprint(results["op"].arena)
        == population_fingerprint(results["oe"].arena)
    )
    op_s, oe_s, auto_s = (min(times[k]) for k in ("op", "oe", "auto"))
    resolution = time.get_clock_info("perf_counter").resolution
    warnings = tuple(
        f"timer_underflow:{label}"
        for label, seconds in (
            ("over_particles", op_s),
            ("over_events", oe_s),
            ("auto", auto_s),
        )
        if seconds <= resolution
    )
    return AdaptiveCrossover(
        problem=problem,
        ntimesteps=ntimesteps,
        op_s=op_s,
        oe_s=oe_s,
        auto_s=auto_s,
        decisions=decisions,
        parity=1.0 if parity else 0.0,
        warnings=warnings,
    )


@dataclass(frozen=True)
class CeCrossover:
    """Scheme crossover under the continuous-energy backend, on this host.

    The union-grid lookup is the paper's search-cost story turned up: one
    binary/cached-linear search plus a per-nuclide gather-and-interpolate
    per refresh, instead of one cheap table walk per reaction.  That
    shifts where the OP-vs-OE balance sits (XSBench's thesis: the lookup
    dominates), so this bench times pure OP, pure OE, and ``Scheme.AUTO``
    on the same CE configuration and reports the ratio — plus the
    OP ≡ OE ≡ AUTO population-fingerprint parity that proves the backend
    keeps the scheme-equivalence contract.
    """

    problem: str
    ntimesteps: int
    #: Per-nuclide grid points requested (``xs_nentries``).
    npoints: int
    #: Resulting union-grid size of material 0.
    union_points: int
    op_s: float
    oe_s: float
    auto_s: float
    #: Exact lookup/probe counters from the fixed-scheme runs.
    xs_lookups: int
    op_linear_probes: int
    oe_binary_probes: int
    #: 1.0 when OP, OE and AUTO populations fingerprint-match.
    parity: float
    warnings: tuple = ()

    @property
    def oe_op_ratio(self) -> float:
        """OE wall-clock over OP wall-clock under CE lookups (< 1.0 means
        the breadth-first scheme wins once the lookup dominates)."""
        if self.op_s == 0:
            return float("inf")
        return self.oe_s / self.op_s

    @property
    def best_fixed_s(self) -> float:
        return min(self.op_s, self.oe_s)

    @property
    def adaptive_efficiency(self) -> float:
        """Best fixed wall-clock over AUTO wall-clock under CE."""
        if self.auto_s == 0:
            return float("inf")
        return self.best_fixed_s / self.auto_s


def measured_ce_crossover(
    problem: str = "csp",
    ntimesteps: int = 6,
    nx: int = MEASUREMENT_NX,
    nparticles: int = 2 * MEASUREMENT_PARTICLES,
    npoints: int = 1500,
    repeats: int = 2,
) -> CeCrossover:
    """Time OP, OE, and AUTO on one continuous-energy configuration.

    Same interleaved best-of-N discipline as
    :func:`measured_adaptive_crossover`; ``npoints`` keeps the synthetic
    per-nuclide grids small enough for a quick-tier bench while the union
    grid (the sum of the jittered nuclide grids) stays large enough that
    the search cost is real.
    """
    from repro.adaptive import AdaptiveScheduler
    from repro.core.stepper import run_stepped
    from repro.ensemble.engine import population_fingerprint

    if problem not in PROBLEM_FACTORIES:
        raise KeyError(f"unknown problem {problem!r}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    cfg = PROBLEM_FACTORIES[problem](
        nx=nx, nparticles=nparticles, ntimesteps=ntimesteps,
        xs_mode="ce", xs_nentries=npoints,
    )
    results = {}
    times: dict[str, list[float]] = {"op": [], "oe": [], "auto": []}
    for _ in range(repeats):
        results["op"] = run_stepped(cfg, Scheme.OVER_PARTICLES)
        times["op"].append(results["op"].wallclock_s)
        results["oe"] = run_stepped(cfg, Scheme.OVER_EVENTS)
        times["oe"].append(results["oe"].wallclock_s)
        results["auto"] = run_stepped(cfg, AdaptiveScheduler(cfg))
        times["auto"].append(results["auto"].wallclock_s)
    parity = (
        population_fingerprint(results["auto"].arena)
        == population_fingerprint(results["op"].arena)
        == population_fingerprint(results["oe"].arena)
    )
    op_s, oe_s, auto_s = (min(times[k]) for k in ("op", "oe", "auto"))
    resolution = time.get_clock_info("perf_counter").resolution
    warnings = tuple(
        f"timer_underflow:{label}"
        for label, seconds in (
            ("over_particles", op_s),
            ("over_events", oe_s),
            ("auto", auto_s),
        )
        if seconds <= resolution
    )
    return CeCrossover(
        problem=problem,
        ntimesteps=ntimesteps,
        npoints=npoints,
        union_points=cfg.resolved_provider().union_points(0),
        op_s=op_s,
        oe_s=oe_s,
        auto_s=auto_s,
        xs_lookups=results["op"].counters.xs_lookups,
        op_linear_probes=results["op"].counters.xs_linear_probes,
        oe_binary_probes=results["oe"].counters.xs_binary_probes,
        parity=1.0 if parity else 0.0,
        warnings=warnings,
    )


def standard_gpu_time(
    problem: str,
    machine: str,
    scheme: Scheme = Scheme.OVER_PARTICLES,
    **option_overrides,
):
    """Predict seconds for a problem on a GPU; returns the prediction."""
    spec = GPUS[machine]
    return predict_gpu(
        paper_workload(problem),
        spec,
        GPUOptions(scheme=scheme, **option_overrides),
    )
