"""Workload measurement and standard model evaluations for the benches.

Every figure bench follows the same pipeline (DESIGN.md §4):

1. run the real transport at reduced scale (96² mesh, 60 histories) and
   characterise it — cached per process, one run per problem;
2. rescale to the paper's sizes (4000² mesh; 10⁶ histories for stream/csp,
   10⁷ for scatter);
3. evaluate the machine models under the experiment's options.

``standard_cpu_time``/``standard_gpu_time`` encode the paper's baseline
configuration per device (thread counts, affinities, memory choice) so the
figure benches stay declarative.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core import PROBLEM_FACTORIES, Scheme, Simulation
from repro.core.config import Layout
from repro.machine import CPUS, GPUS
from repro.parallel.affinity import Affinity
from repro.perfmodel import (
    CPUOptions,
    GPUOptions,
    Workload,
    predict_cpu,
    predict_gpu,
)

__all__ = [
    "PAPER_SCALE",
    "MEASUREMENT_NX",
    "MEASUREMENT_PARTICLES",
    "DEVICE_BASELINES",
    "measured_workload",
    "paper_workload",
    "standard_cpu_time",
    "standard_gpu_time",
]

#: Paper-scale targets per problem: (nparticles, mesh_nx) — §IV-B.
PAPER_SCALE = {
    "stream": (1_000_000, 4000),
    "scatter": (10_000_000, 4000),
    "csp": (1_000_000, 4000),
}

#: Reduced scale at which the real transport is measured.
MEASUREMENT_NX = 96
MEASUREMENT_PARTICLES = 60

#: Per-device baseline run configuration used across figures:
#: (nthreads, affinity, use_fast_memory).  Broadwell runs 88 threads
#: compact (§VII-A); KNL 256 threads scattered (§VII-B) from MCDRAM;
#: POWER8 160 threads spread (§VII-C).
DEVICE_BASELINES = {
    "broadwell": (88, Affinity.COMPACT, False),
    "knl": (256, Affinity.SCATTER, True),
    "power8": (160, Affinity.SCATTER, False),
}


@lru_cache(maxsize=None)
def measured_workload(problem: str) -> Workload:
    """Characterise one real reduced-scale transport run (cached)."""
    if problem not in PROBLEM_FACTORIES:
        raise KeyError(f"unknown problem {problem!r}")
    cfg = PROBLEM_FACTORIES[problem](
        nx=MEASUREMENT_NX, nparticles=MEASUREMENT_PARTICLES
    )
    result = Simulation(cfg).run(Scheme.OVER_EVENTS)
    return Workload.from_result(result)


@lru_cache(maxsize=None)
def paper_workload(problem: str) -> Workload:
    """The measured workload rescaled to the paper's problem size."""
    nparticles, nx = PAPER_SCALE[problem]
    return measured_workload(problem).scaled(nparticles, nx)


def standard_cpu_time(
    problem: str,
    machine: str,
    scheme: Scheme = Scheme.OVER_PARTICLES,
    **option_overrides,
):
    """Predict seconds for a problem on a CPU under its baseline config.

    Returns the full :class:`repro.perfmodel.cpu_model.CPUPrediction`.
    """
    spec = CPUS[machine]
    nthreads, affinity, fast = DEVICE_BASELINES[machine]
    layout = Layout.SOA if scheme is Scheme.OVER_EVENTS else Layout.AOS
    opts = dict(
        nthreads=nthreads,
        scheme=scheme,
        layout=layout,
        affinity=affinity,
        use_fast_memory=fast,
    )
    opts.update(option_overrides)
    return predict_cpu(paper_workload(problem), spec, CPUOptions(**opts))


def standard_gpu_time(
    problem: str,
    machine: str,
    scheme: Scheme = Scheme.OVER_PARTICLES,
    **option_overrides,
):
    """Predict seconds for a problem on a GPU; returns the prediction."""
    spec = GPUS[machine]
    return predict_gpu(
        paper_workload(problem),
        spec,
        GPUOptions(scheme=scheme, **option_overrides),
    )
