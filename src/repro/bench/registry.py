"""Named, versioned benchmark specs over the ``measured_*`` helpers.

The registry turns the ad-hoc measurement helpers of
:mod:`repro.bench.runner` into a stable perf surface: each
:class:`BenchSpec` names one measurement, pins the configuration it runs
at, declares which of its metrics are regression-gated (and in which
direction), and carries a spec version so a comparator can refuse to
diff artifacts produced by incompatible specs.

Running a spec executes it ``warmup + repeats`` times, keeps one sample
per repeat for the wall-clock and every metric, and summarises each as
``median`` + ``iqr`` — the IQR is the *measured noise band* the
comparator uses to separate regression from host jitter.  Samples below
the host timer's resolution are rejected (:class:`BenchTimingError`)
rather than averaged: a sub-resolution timing is indistinguishable from
zero and would silently deflate the noise band.

Two tiers: ``quick`` (small enough for the CI gate, a few seconds of
transport) and ``full`` (adds the remaining problems).  The committed
``results/BENCH_1.json`` baseline is a quick-tier run.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.artifact import (
    BenchArtifact,
    git_provenance,
    host_fingerprint,
)

__all__ = [
    "BenchTimingError",
    "MetricSpec",
    "BenchSample",
    "BenchSpec",
    "BenchResult",
    "REGISTRY",
    "TIERS",
    "specs_for_tier",
    "run_bench",
    "run_tier",
    "build_bench_artifact",
    "min_measurable_seconds",
]


class BenchTimingError(RuntimeError):
    """A bench produced samples the statistics cannot honestly summarise
    (sub-timer-resolution or non-finite)."""


def min_measurable_seconds() -> float:
    """The smallest wall-clock sample the registry accepts.

    Four ticks of the monotonic clock: below that, quantisation noise is
    the same order as the measurement itself.
    """
    return max(4.0 * time.get_clock_info("perf_counter").resolution, 1e-9)


@dataclass(frozen=True)
class MetricSpec:
    """How one metric participates in regression comparison.

    ``direction`` — ``"lower"`` (regression when it grows), ``"higher"``
    (regression when it shrinks), or ``"info"`` (recorded, never gated).
    ``rel_floor`` — minimum relative noise band, for metrics whose
    repeat-to-repeat IQR understates their cross-run variance (pooled
    wall-clocks on a shared host).  ``timing`` marks host-dependent
    measurements that only compare across identical host fingerprints.
    ``signed`` marks derived timing metrics (differences of durations)
    that may legitimately be negative or sub-resolution; the timer floor
    check only applies to raw, non-negative duration samples.
    """

    direction: str = "lower"
    rel_floor: float = 0.0
    timing: bool = False
    signed: bool = False

    def __post_init__(self):
        if self.direction not in ("lower", "higher", "info"):
            raise ValueError(f"bad direction {self.direction!r}")
        if self.rel_floor < 0:
            raise ValueError("rel_floor must be non-negative")


@dataclass(frozen=True)
class BenchSample:
    """One measured execution of a bench."""

    wallclock_s: float
    metrics: dict
    kernel_profile: dict | None = None


@dataclass(frozen=True)
class BenchSpec:
    """One named benchmark: a runner plus its comparison contract."""

    name: str
    tier: str
    version: int
    description: str
    runner: Callable[[], BenchSample]
    metrics: dict = field(default_factory=dict)
    #: The bench's own wall-clock comparison contract.
    wallclock: MetricSpec = MetricSpec(
        direction="lower", rel_floor=0.35, timing=True
    )
    default_repeats: int = 3
    default_warmup: int = 1


@dataclass(frozen=True)
class BenchResult:
    """Repeat statistics of one bench run."""

    spec: BenchSpec
    repeats: int
    warmup: int
    wallclock_samples: tuple
    metric_samples: dict
    kernel_profile: dict | None
    warnings: tuple


def _summary(samples, mspec: MetricSpec) -> dict:
    """The self-describing metric section stored in the artifact."""
    ordered = sorted(samples)
    n = len(ordered)
    mid = n // 2
    median = (
        ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])
    )
    # Quartiles by the nearest-rank method — crude but monotone, and the
    # band only has to bound same-host jitter, not estimate sigma.
    q1 = ordered[max(0, (n - 1) // 4)]
    q3 = ordered[min(n - 1, (3 * (n - 1) + 3) // 4)]
    return {
        "samples": [float(v) for v in samples],
        "median": float(median),
        "iqr": float(q3 - q1),
        "direction": mspec.direction,
        "rel_floor": float(mspec.rel_floor),
        "timing": bool(mspec.timing),
    }


def _check_samples(
    name: str, label: str, samples, timing: bool, signed: bool = False
) -> None:
    floor = min_measurable_seconds()
    for v in samples:
        if not math.isfinite(v):
            raise BenchTimingError(
                f"bench {name!r}: {label} sample {v!r} is not finite"
            )
        if timing and not signed and v < floor:
            raise BenchTimingError(
                f"bench {name!r}: {label} sample {v:.3e}s is below the "
                f"timer resolution floor ({floor:.3e}s) — the measurement "
                "cannot be averaged honestly; increase the work per repeat"
            )


def run_bench(
    spec: BenchSpec, repeats: int | None = None, warmup: int | None = None
) -> BenchResult:
    """Execute one spec ``warmup`` + ``repeats`` times and summarise."""
    repeats = spec.default_repeats if repeats is None else repeats
    warmup = spec.default_warmup if warmup is None else warmup
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        spec.runner()

    wallclocks: list[float] = []
    metric_samples: dict[str, list[float]] = {m: [] for m in spec.metrics}
    profile = None
    warnings: list[str] = []
    for _ in range(repeats):
        sample = spec.runner()
        wallclocks.append(float(sample.wallclock_s))
        for mname in spec.metrics:
            if mname not in sample.metrics:
                raise KeyError(
                    f"bench {spec.name!r} runner did not report declared "
                    f"metric {mname!r}"
                )
            metric_samples[mname].append(float(sample.metrics[mname]))
        extra = sample.metrics.get("warnings", ())
        for w in extra:
            if w not in warnings:
                warnings.append(w)
        if sample.kernel_profile is not None:
            profile = {k: list(v) for k, v in sample.kernel_profile.items()}

    _check_samples(spec.name, "wallclock_s", wallclocks,
                   spec.wallclock.timing, spec.wallclock.signed)
    for mname, mspec in spec.metrics.items():
        _check_samples(spec.name, mname, metric_samples[mname],
                       mspec.timing, mspec.signed)

    return BenchResult(
        spec=spec,
        repeats=repeats,
        warmup=warmup,
        wallclock_samples=tuple(wallclocks),
        metric_samples={m: tuple(v) for m, v in metric_samples.items()},
        kernel_profile=profile,
        warnings=tuple(warnings),
    )


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

def _transport_bench(problem: str, scheme_name: str) -> BenchSample:
    """One reduced-scale transport run with its kernel profile."""
    from repro.bench.runner import _measure_kernel_profile
    from repro.core import Scheme

    kp = _measure_kernel_profile(problem, Scheme(scheme_name))
    calls = sum(int(row[0]) for row in kp.profile.values())
    items = sum(int(row[1]) for row in kp.profile.values())
    return BenchSample(
        wallclock_s=kp.wallclock_s,
        metrics={
            "kernel_calls": float(calls),
            "kernel_items": float(items),
            "workspace_allocations": float(kp.workspace_allocations),
            "buffer_reuse_fraction": kp.buffer_reuse_fraction,
            "xs_lookups": float(kp.xs_lookups),
        },
        kernel_profile=kp.profile,
    )


_TRANSPORT_METRICS = {
    # Algorithm facts: deterministic, host-independent, zero-band gated.
    "kernel_calls": MetricSpec(direction="lower"),
    "kernel_items": MetricSpec(direction="lower"),
    "workspace_allocations": MetricSpec(direction="lower"),
    "buffer_reuse_fraction": MetricSpec(direction="higher",
                                        rel_floor=0.01),
    "xs_lookups": MetricSpec(direction="info"),
}


def _pool_speedup_bench(problem: str) -> BenchSample:
    from repro.bench.runner import measured_speedup

    r = measured_speedup(problem, nworkers=2)
    return BenchSample(
        wallclock_s=r.serial_s + r.parallel_s,
        metrics={
            "speedup": r.speedup,
            "parallel_efficiency": r.parallel_efficiency,
            "serial_s": r.serial_s,
            "parallel_s": r.parallel_s,
            "measured_imbalance": r.measured_imbalance,
            "warnings": r.warnings,
        },
    )


def _shard_handoff_bench() -> BenchSample:
    from repro.bench.runner import measured_shard_handoff

    t0 = time.perf_counter()
    r = measured_shard_handoff()
    wall = time.perf_counter() - t0
    return BenchSample(
        wallclock_s=wall,
        metrics={
            "handle_bytes": float(r.handle_bytes),
            "pickled_particles_bytes": float(r.pickled_particles_bytes),
            "pickled_arena_bytes": float(r.pickled_arena_bytes),
            "payload_reduction": r.payload_reduction,
            "attach_s": r.attach_s,
            "unpickle_particles_s": r.unpickle_particles_s,
        },
    )


def _recovery_bench(problem: str) -> BenchSample:
    from repro.bench.runner import measured_recovery_overhead

    r = measured_recovery_overhead(problem, nworkers=2)
    return BenchSample(
        wallclock_s=r.clean_s + r.faulted_s,
        metrics={
            "recovery_overhead": r.overhead,
            "clean_s": r.clean_s,
            "faulted_s": r.faulted_s,
            "retries": float(r.retries),
            "respawns": float(r.respawns),
            "states_identical": 1.0 if r.states_identical else 0.0,
        },
    )


def _ensemble_bench(problem: str, nreplicas: int = 32) -> BenchSample:
    from repro.bench.runner import measured_ensemble_throughput

    r = measured_ensemble_throughput(problem, nreplicas=nreplicas)
    return BenchSample(
        wallclock_s=r.fused_s + r.looped_s,
        metrics={
            "speedup_vs_looped": r.speedup_vs_looped,
            "fused_s": r.fused_s,
            "looped_s": r.looped_s,
            "fused_histories_per_s": r.fused_histories_per_s,
            "ensemble_parity": r.parity,
            "replicas": float(r.nreplicas),
            "warnings": r.warnings,
        },
    )


def _adaptive_crossover_bench(problem: str) -> BenchSample:
    from repro.bench.runner import measured_adaptive_crossover

    r = measured_adaptive_crossover(problem)
    return BenchSample(
        wallclock_s=r.op_s + r.oe_s + r.auto_s,
        metrics={
            "adaptive_efficiency": r.adaptive_efficiency,
            "op_s": r.op_s,
            "oe_s": r.oe_s,
            "auto_s": r.auto_s,
            "scheduler_decisions": float(r.decisions),
            "adaptive_parity": r.parity,
            "warnings": r.warnings,
        },
    )


def _ce_crossover_bench(problem: str) -> BenchSample:
    from repro.bench.runner import measured_ce_crossover

    r = measured_ce_crossover(problem)
    return BenchSample(
        wallclock_s=r.op_s + r.oe_s + r.auto_s,
        metrics={
            "ce_parity": r.parity,
            "oe_op_ratio": r.oe_op_ratio,
            "adaptive_efficiency": r.adaptive_efficiency,
            "op_s": r.op_s,
            "oe_s": r.oe_s,
            "auto_s": r.auto_s,
            "union_points": float(r.union_points),
            "xs_lookups": float(r.xs_lookups),
            "op_linear_probes": float(r.op_linear_probes),
            "oe_binary_probes": float(r.oe_binary_probes),
            "warnings": r.warnings,
        },
    )


def _live_overhead_bench(problem: str) -> BenchSample:
    from repro.bench.runner import measured_live_overhead

    r = measured_live_overhead(problem)
    return BenchSample(
        wallclock_s=r.off_s + r.on_s,
        metrics={
            "live_parity": r.live_parity,
            "endpoint_ok": r.endpoint_ok,
            "off_s": r.off_s,
            "on_s": r.on_s,
            "live_overhead": r.overhead,
            "events_total": float(r.events_total),
            "warnings": r.warnings,
        },
    )


def _arena_bench(problem: str) -> BenchSample:
    from repro.bench.runner import (
        MEASUREMENT_NX,
        MEASUREMENT_PARTICLES,
    )
    from repro.core import PROBLEM_FACTORIES, Scheme, Simulation

    cfg = PROBLEM_FACTORIES[problem](
        nx=MEASUREMENT_NX, nparticles=MEASUREMENT_PARTICLES
    )
    result = Simulation(cfg).run(Scheme.OVER_EVENTS)
    arena = result.arena
    return BenchSample(
        wallclock_s=result.wallclock_s,
        metrics={
            "arena_nbytes": float(result.counters.arena_nbytes),
            "bytes_per_particle": float(
                type(arena).bytes_per_particle()
            ),
            "final_population": float(len(arena)),
        },
    )


def _spec(name, tier, description, runner, metrics, *, version=1,
          repeats=3, warmup=1, wallclock=None) -> BenchSpec:
    return BenchSpec(
        name=name, tier=tier, version=version, description=description,
        runner=runner, metrics=metrics,
        wallclock=wallclock or MetricSpec(
            direction="lower", rel_floor=0.35, timing=True
        ),
        default_repeats=repeats, default_warmup=warmup,
    )


_POOL_METRICS = {
    "speedup": MetricSpec(direction="higher", rel_floor=0.5, timing=True),
    "parallel_efficiency": MetricSpec(direction="info", timing=True),
    "serial_s": MetricSpec(direction="lower", rel_floor=0.5, timing=True),
    "parallel_s": MetricSpec(direction="lower", rel_floor=0.5, timing=True),
    "measured_imbalance": MetricSpec(direction="info"),
}

_HANDOFF_METRICS = {
    "handle_bytes": MetricSpec(direction="lower"),
    "pickled_particles_bytes": MetricSpec(direction="info"),
    "pickled_arena_bytes": MetricSpec(direction="info"),
    "payload_reduction": MetricSpec(direction="higher", rel_floor=0.05),
    "attach_s": MetricSpec(direction="lower", rel_floor=1.0, timing=True),
    "unpickle_particles_s": MetricSpec(direction="info", timing=True),
}

_RECOVERY_METRICS = {
    "recovery_overhead": MetricSpec(direction="info", timing=True, signed=True),
    "clean_s": MetricSpec(direction="lower", rel_floor=0.5, timing=True),
    "faulted_s": MetricSpec(direction="info", timing=True),
    "retries": MetricSpec(direction="info"),
    "respawns": MetricSpec(direction="info"),
    "states_identical": MetricSpec(direction="higher"),
}

_ENSEMBLE_METRICS = {
    # Bit-parity of every replica vs its standalone run: a deterministic
    # algorithm fact, gated exactly (any drop below 1.0 is a regression).
    "ensemble_parity": MetricSpec(direction="higher"),
    "speedup_vs_looped": MetricSpec(
        direction="higher", rel_floor=0.35, timing=True
    ),
    "fused_s": MetricSpec(direction="lower", rel_floor=0.5, timing=True),
    "looped_s": MetricSpec(direction="info", timing=True),
    "fused_histories_per_s": MetricSpec(direction="info", timing=True),
    "replicas": MetricSpec(direction="info"),
}

_ADAPTIVE_METRICS = {
    # Physics bit-parity of the AUTO run vs both fixed schemes: a
    # deterministic algorithm fact, gated exactly.
    "adaptive_parity": MetricSpec(direction="higher"),
    # The scheduler must roughly match the better fixed scheme; the wide
    # band absorbs probe-step cost and host jitter, the CI smoke gate
    # additionally asserts the 0.95× floor on a fresh run.
    "adaptive_efficiency": MetricSpec(
        direction="higher", rel_floor=0.5, timing=True
    ),
    "op_s": MetricSpec(direction="lower", rel_floor=0.5, timing=True),
    "oe_s": MetricSpec(direction="lower", rel_floor=0.5, timing=True),
    "auto_s": MetricSpec(direction="lower", rel_floor=0.5, timing=True),
    "scheduler_decisions": MetricSpec(direction="info"),
}

_CE_METRICS = {
    # OP ≡ OE ≡ AUTO population-fingerprint parity under the CE backend:
    # a deterministic algorithm fact, gated exactly.
    "ce_parity": MetricSpec(direction="higher"),
    # Where the scheme balance sits once the union-grid lookup dominates;
    # host-dependent, informational.
    "oe_op_ratio": MetricSpec(direction="info", timing=True),
    "adaptive_efficiency": MetricSpec(direction="info", timing=True),
    "op_s": MetricSpec(direction="lower", rel_floor=0.5, timing=True),
    "oe_s": MetricSpec(direction="lower", rel_floor=0.5, timing=True),
    "auto_s": MetricSpec(direction="lower", rel_floor=0.5, timing=True),
    "union_points": MetricSpec(direction="info"),
    "xs_lookups": MetricSpec(direction="info"),
    "op_linear_probes": MetricSpec(direction="info"),
    "oe_binary_probes": MetricSpec(direction="info"),
}

_LIVE_METRICS = {
    # Standing invariants of the observability plane, both deterministic
    # algorithm facts gated exactly: fingerprints bit-identical with the
    # plane attached, and the endpoint serving a view consistent with the
    # run's exact counters.
    "live_parity": MetricSpec(direction="higher"),
    "endpoint_ok": MetricSpec(direction="higher"),
    "off_s": MetricSpec(direction="lower", rel_floor=0.5, timing=True),
    "on_s": MetricSpec(direction="lower", rel_floor=0.5, timing=True),
    "live_overhead": MetricSpec(direction="info", timing=True, signed=True),
    "events_total": MetricSpec(direction="info"),
}

_ARENA_METRICS = {
    "arena_nbytes": MetricSpec(direction="lower"),
    "bytes_per_particle": MetricSpec(direction="lower"),
    "final_population": MetricSpec(direction="info"),
}


def _build_registry() -> dict:
    specs = [
        _spec(
            "oe_transport_csp", "quick",
            "Over Events csp transport at measurement scale "
            "(96² mesh, 60 histories) with the hot-kernel profile",
            lambda: _transport_bench("csp", "over_events"),
            dict(_TRANSPORT_METRICS),
        ),
        _spec(
            "op_transport_csp", "quick",
            "Blocked Over Particles csp transport at measurement scale",
            lambda: _transport_bench("csp", "over_particles"),
            dict(_TRANSPORT_METRICS),
        ),
        _spec(
            "pool_speedup_csp", "quick",
            "Serial vs 2-worker pooled wall-clock (measured_speedup)",
            lambda: _pool_speedup_bench("csp"),
            dict(_POOL_METRICS), repeats=2, warmup=0,
        ),
        _spec(
            "shard_handoff", "quick",
            "Shard hand-off payload bytes and receive cost "
            "(measured_shard_handoff)",
            _shard_handoff_bench,
            dict(_HANDOFF_METRICS), repeats=2, warmup=0,
        ),
        _spec(
            "recovery_overhead_csp", "quick",
            "Wall-clock cost of losing one worker mid-run "
            "(measured_recovery_overhead)",
            lambda: _recovery_bench("csp"),
            dict(_RECOVERY_METRICS), repeats=1, warmup=0,
        ),
        _spec(
            "ensemble_throughput_csp", "quick",
            "32-replica fused ensemble (weight-cutoff sweep) vs the "
            "looped Simulation.run baseline, with bit-parity verified "
            "(measured_ensemble_throughput)",
            lambda: _ensemble_bench("csp"),
            dict(_ENSEMBLE_METRICS), repeats=2, warmup=0,
        ),
        _spec(
            "adaptive_crossover_csp", "quick",
            "Adaptive scheduler (scheme auto) vs pure OP and pure OE "
            "over 6 census steps, with bit-parity verified "
            "(measured_adaptive_crossover)",
            lambda: _adaptive_crossover_bench("csp"),
            dict(_ADAPTIVE_METRICS), repeats=2, warmup=0,
        ),
        _spec(
            "ce_lookup_csp", "quick",
            "Continuous-energy union-grid backend: OP vs OE vs AUTO "
            "crossover with bit-parity verified (measured_ce_crossover)",
            lambda: _ce_crossover_bench("csp"),
            dict(_CE_METRICS), repeats=2, warmup=0,
        ),
        _spec(
            "live_overhead_csp", "quick",
            "Serial csp run plain vs with the live metrics plane "
            "attached and scraped over HTTP, with bit-parity verified "
            "(measured_live_overhead)",
            lambda: _live_overhead_bench("csp"),
            dict(_LIVE_METRICS), repeats=2, warmup=0,
        ),
        _spec(
            "arena_footprint_csp", "quick",
            "Final-population arena byte accounting",
            lambda: _arena_bench("csp"),
            dict(_ARENA_METRICS), repeats=1, warmup=0,
        ),
    ]
    for problem in ("stream", "scatter"):
        for scheme in ("over_events", "over_particles"):
            specs.append(_spec(
                f"{'oe' if scheme == 'over_events' else 'op'}"
                f"_transport_{problem}",
                "full",
                f"{scheme} {problem} transport at measurement scale",
                lambda p=problem, s=scheme: _transport_bench(p, s),
                dict(_TRANSPORT_METRICS),
            ))
        specs.append(_spec(
            f"pool_speedup_{problem}", "full",
            f"Serial vs 2-worker pooled wall-clock, {problem}",
            lambda p=problem: _pool_speedup_bench(p),
            dict(_POOL_METRICS), repeats=2, warmup=0,
        ))
    specs.append(_spec(
        "ensemble_throughput_scatter", "full",
        "32-replica fused scatter ensemble vs the looped baseline",
        lambda: _ensemble_bench("scatter"),
        dict(_ENSEMBLE_METRICS), repeats=2, warmup=0,
    ))
    return {s.name: s for s in specs}


#: Every registered bench, by name.
REGISTRY: dict = _build_registry()

#: Tier membership: ``quick`` ⊂ ``full``.
TIERS = ("quick", "full")


def specs_for_tier(tier: str) -> list[BenchSpec]:
    """Quick-tier specs, or quick + full for ``tier="full"``."""
    if tier not in TIERS:
        raise KeyError(f"unknown tier {tier!r} (choose from {TIERS})")
    wanted = ("quick",) if tier == "quick" else TIERS
    return [s for s in REGISTRY.values() if s.tier in wanted]


def run_tier(
    tier: str,
    repeats: int | None = None,
    warmup: int | None = None,
    names: list[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[BenchResult]:
    """Run every bench of a tier (optionally restricted to ``names``)."""
    specs = specs_for_tier(tier)
    if names:
        unknown = sorted(set(names) - set(REGISTRY))
        if unknown:
            raise KeyError(f"unknown benches: {', '.join(unknown)}")
        specs = [s for s in specs if s.name in set(names)]
    results = []
    for spec in specs:
        if progress:
            progress(spec.name)
        results.append(run_bench(spec, repeats=repeats, warmup=warmup))
    return results


def build_bench_artifact(
    results: list[BenchResult], tier: str, sequence: int | None = None,
    claims: dict | None = None,
) -> BenchArtifact:
    """Assemble the ``BENCH_<n>.json`` artifact from tier results."""
    meta = {
        "tier": tier,
        "sequence": sequence,
        "host": host_fingerprint(),
        "git": git_provenance(),
        "timer_resolution_s": time.get_clock_info(
            "perf_counter"
        ).resolution,
        "created_by": "repro bench run",
    }
    if claims:
        meta["claims"] = dict(claims)
    benches = {}
    for r in results:
        benches[r.spec.name] = {
            "spec": {
                "tier": r.spec.tier,
                "version": r.spec.version,
                "description": r.spec.description,
            },
            "repeats": r.repeats,
            "warmup": r.warmup,
            "wallclock_s": _summary(r.wallclock_samples, r.spec.wallclock),
            "metrics": {
                m: _summary(r.metric_samples[m], mspec)
                for m, mspec in r.spec.metrics.items()
            },
            "kernel_profile": r.kernel_profile,
            "warnings": list(r.warnings),
        }
    return BenchArtifact(meta=meta, benches=benches)
