"""Diff two ``BENCH_<n>.json`` artifacts and flag out-of-band regressions.

The comparator is what turns the artifact trajectory into a gate: given
a *baseline* and a *candidate* artifact it walks every gated metric,
computes the noise band ``max(base IQR, cand IQR, rel_floor × |base
median|)`` and flags a regression when the candidate's median moves
against the metric's declared direction by more than ``scale`` bands.

Host discipline: absolute timings (``timing: true`` metric sections)
are only comparable between identical host fingerprints.  When the
hosts differ those metrics are *skipped* (reported, not gated) unless
``assume_same_host`` forces them — which keeps the CI gate meaningful
when the committed baseline came from a different machine: the
deterministic algorithm facts (kernel call/item counts, hand-off
payload bytes, arena footprint, workspace allocations) still gate
exactly, because they reproduce bit-for-bit on any host.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.artifact import BenchArtifact

__all__ = [
    "MetricDelta",
    "ComparisonReport",
    "compare_artifacts",
    "hosts_match",
]

#: Default number of noise bands a median may move before it gates.
DEFAULT_SCALE = 3.0

#: Fingerprint keys that must agree for absolute timings to be comparable.
_HOST_KEYS = ("platform", "machine", "processor", "python", "cpu_count")


def hosts_match(base_meta: dict, cand_meta: dict) -> bool:
    """True when two artifacts carry the same host fingerprint (so their
    absolute timings are comparable)."""
    base = base_meta.get("host", {})
    cand = cand_meta.get("host", {})
    return all(base.get(k) == cand.get(k) for k in _HOST_KEYS)


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-candidate outcome.

    ``status`` is one of ``ok`` (in band), ``regression`` (out of band,
    against the direction), ``improved`` (out of band, in the metric's
    favour), ``skipped_host`` (timing metric across different hosts),
    ``not_gated`` (direction ``info``), ``missing`` (bench or metric
    absent from the candidate) or ``new`` (absent from the baseline).
    """

    bench: str
    metric: str
    direction: str
    status: str
    base_median: float | None = None
    cand_median: float | None = None
    band: float = 0.0

    @property
    def delta(self) -> float | None:
        if self.base_median is None or self.cand_median is None:
            return None
        return self.cand_median - self.base_median

    def describe(self) -> str:
        loc = f"{self.bench}.{self.metric}"
        if self.base_median is None or self.cand_median is None:
            return f"{loc}: {self.status}"
        return (
            f"{loc}: {self.base_median:.6g} -> {self.cand_median:.6g} "
            f"(band {self.band:.3g}, {self.direction}) {self.status}"
        )


@dataclass(frozen=True)
class ComparisonReport:
    """Every metric delta between two artifacts, plus the verdict."""

    deltas: tuple
    host_match: bool
    scale: float
    base_sequence: int | None = None
    cand_sequence: int | None = None

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas
                if d.status in ("regression", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        from repro.bench.reporting import format_table

        rows = []
        for d in self.deltas:
            rows.append([
                d.bench,
                d.metric,
                "-" if d.base_median is None else f"{d.base_median:.6g}",
                "-" if d.cand_median is None else f"{d.cand_median:.6g}",
                f"{d.band:.3g}",
                d.direction,
                d.status,
            ])
        table = format_table(
            ["bench", "metric", "baseline", "candidate", "band",
             "direction", "status"],
            rows,
        )
        verdict = (
            "OK: no out-of-band regressions"
            if self.ok
            else f"REGRESSION: {len(self.regressions)} metric(s) out of band"
        )
        host_note = (
            "" if self.host_match
            else "\n(host fingerprints differ: timing metrics skipped)"
        )
        return f"{table}\n\n{verdict}{host_note}\n"


def _sections(artifact_bench: dict) -> dict:
    """Flatten one bench's wallclock + metric sections by metric name."""
    out = {"wallclock_s": artifact_bench["wallclock_s"]}
    out.update(artifact_bench["metrics"])
    return out


def _judge(base: dict, cand: dict, scale: float) -> tuple[str, float]:
    """Compare one metric section pair; return (status, band)."""
    direction = base["direction"]
    band = max(
        base["iqr"], cand["iqr"],
        base["rel_floor"] * abs(base["median"]),
    )
    if direction == "info":
        return "not_gated", band
    delta = cand["median"] - base["median"]
    threshold = scale * band
    if direction == "lower":
        if delta > threshold:
            return "regression", band
        if delta < -threshold:
            return "improved", band
    else:  # higher
        if delta < -threshold:
            return "regression", band
        if delta > threshold:
            return "improved", band
    return "ok", band


def compare_artifacts(
    base: BenchArtifact,
    cand: BenchArtifact,
    scale: float = DEFAULT_SCALE,
    assume_same_host: bool = False,
) -> ComparisonReport:
    """Diff every shared bench metric; see the module docstring for the
    gating rules."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    same_host = assume_same_host or hosts_match(base.meta, cand.meta)
    deltas: list[MetricDelta] = []

    for name in sorted(set(base.benches) | set(cand.benches)):
        b = base.benches.get(name)
        c = cand.benches.get(name)
        if b is None:
            deltas.append(MetricDelta(name, "*", "info", "new"))
            continue
        if c is None:
            deltas.append(MetricDelta(name, "*", "info", "missing"))
            continue
        if b["spec"]["version"] != c["spec"]["version"]:
            # The bench changed meaning between artifacts: its numbers
            # are not comparable, and silently gating them would compare
            # apples to oranges.  Surface it as informational.
            deltas.append(MetricDelta(
                name, "*", "info", "new",
            ))
            continue
        base_sections = _sections(b)
        cand_sections = _sections(c)
        for mname in sorted(set(base_sections) | set(cand_sections)):
            bs = base_sections.get(mname)
            cs = cand_sections.get(mname)
            if bs is None:
                deltas.append(MetricDelta(
                    name, mname, cs["direction"], "new",
                    cand_median=cs["median"],
                ))
                continue
            if cs is None:
                status = (
                    "missing" if bs["direction"] != "info" else "not_gated"
                )
                deltas.append(MetricDelta(
                    name, mname, bs["direction"], status,
                    base_median=bs["median"],
                ))
                continue
            if bs["timing"] and not same_host:
                deltas.append(MetricDelta(
                    name, mname, bs["direction"], "skipped_host",
                    base_median=bs["median"], cand_median=cs["median"],
                ))
                continue
            status, band = _judge(bs, cs, scale)
            deltas.append(MetricDelta(
                name, mname, bs["direction"], status,
                base_median=bs["median"], cand_median=cs["median"],
                band=band,
            ))

    return ComparisonReport(
        deltas=tuple(deltas),
        host_match=same_host,
        scale=scale,
        base_sequence=base.meta.get("sequence"),
        cand_sequence=cand.meta.get("sequence"),
    )
