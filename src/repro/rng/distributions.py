"""Samplers used by the transport physics.

The mini-app draws random numbers for (paper §IV-F):

* initial particle positions inside a bounded source region,
* initial (isotropic) directions,
* on a scattering collision: the scattering angle, the energy dampening,
  and the new number of mean-free-paths until the next collision.

Each sampler exists in scalar form (one particle, for Over Particles) and
vectorised form (arrays of draws, for Over Events).  Both consume the same
number of draws per call so the schemes stay in RNG lock-step.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels import batch as _batch

__all__ = [
    "sample_position_in_box",
    "sample_position_in_box_vec",
    "sample_isotropic_direction",
    "sample_isotropic_direction_vec",
    "sample_mean_free_paths",
    "sample_mean_free_paths_vec",
]


def sample_position_in_box(
    u1: float, u2: float, x0: float, x1: float, y0: float, y1: float
) -> tuple[float, float]:
    """Map two uniforms to a point in the axis-aligned box ``[x0,x1]×[y0,y1]``."""
    return x0 + u1 * (x1 - x0), y0 + u2 * (y1 - y0)


# Deprecated alias of the batch kernel.
sample_position_in_box_vec = _batch.sample_position_in_box


def sample_isotropic_direction(u: float) -> tuple[float, float]:
    """Map one uniform to a unit direction isotropic in the 2D plane.

    Uses numpy's cos/sin so the scalar (Over Particles) and vectorised
    (Over Events) paths produce bit-identical directions — libm and numpy's
    SIMD transcendentals can differ in the last ulp.
    """
    theta = 2.0 * math.pi * u
    return float(np.cos(theta)), float(np.sin(theta))


# Deprecated alias of the batch kernel.
sample_isotropic_direction_vec = _batch.sample_isotropic_direction


def sample_mean_free_paths(u: float) -> float:
    """Sample the optical distance to the next collision, ``-ln(1 - u)``.

    The flight distance through a medium of macroscopic total cross section
    Σ_t is exponentially distributed; in optical units (mean free paths) it
    is a unit exponential.  ``1 - u`` keeps the argument strictly positive
    because the uniform generator produces values in ``[0, 1)``.
    """
    # numpy's log for bit-parity with the vectorised path.
    return float(-np.log(1.0 - u))


# Deprecated alias of the batch kernel.
sample_mean_free_paths_vec = _batch.sample_mean_free_paths
