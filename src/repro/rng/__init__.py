"""Counter-based random number generation (Random123 / Threefry).

The paper (Section IV-F) selects Random123's Threefry counter-based RNG
(CBRNG) because it is stateless, reproducible and trivially parallel: each
particle carries a ``(key, counter)`` pair and every draw is a pure function
of that pair.  This package reimplements Threefry-2x64 from scratch in two
forms:

* :func:`repro.rng.threefry.threefry2x64` — scalar reference implementation
  operating on Python integers;
* :func:`repro.rng.threefry.threefry2x64_vec` — numpy-vectorised form used by
  the Over Events scheme, bit-identical to the scalar form.

:class:`repro.rng.stream.ParticleRNG` wraps the cipher into a per-particle
stream, and :mod:`repro.rng.distributions` provides the samplers the
transport physics needs (uniform reals, isotropic directions, exponential
numbers of mean-free-paths).
"""

from repro.rng.threefry import (
    THREEFRY_DEFAULT_ROUNDS,
    threefry2x64,
    threefry2x64_vec,
)
from repro.rng.stream import ParticleRNG, VectorParticleRNG, uniform_from_bits
from repro.rng.distributions import (
    sample_isotropic_direction,
    sample_isotropic_direction_vec,
    sample_mean_free_paths,
    sample_mean_free_paths_vec,
)

__all__ = [
    "THREEFRY_DEFAULT_ROUNDS",
    "threefry2x64",
    "threefry2x64_vec",
    "ParticleRNG",
    "VectorParticleRNG",
    "uniform_from_bits",
    "sample_isotropic_direction",
    "sample_isotropic_direction_vec",
    "sample_mean_free_paths",
    "sample_mean_free_paths_vec",
]
