"""Per-particle random number streams built on Threefry.

The mini-app stores a ``(key, counter)`` pair per particle (paper §IV-F):
the key identifies the particle (and the global seed), the counter advances
by one per random draw.  Because the generator is a pure function of the
pair, the Over Particles and Over Events schemes consume *identical* random
sequences for a given particle — which is what lets the test suite assert
that both schemes produce bit-identical tallies.

Draw discipline
---------------
Each draw ticks the counter once and returns the *low* output word converted
to a double in ``[0, 1)``.  A counter-tick-per-draw (rather than caching the
second word) is deliberately chosen so the scalar and vectorised paths stay
in lock-step without shared mutable cache state.
"""

from __future__ import annotations

import numpy as np

from repro.rng.threefry import THREEFRY_DEFAULT_ROUNDS, threefry2x64, threefry2x64_vec

__all__ = ["uniform_from_bits", "ParticleRNG", "VectorParticleRNG"]

#: 2**-53 — one ULP at 1.0; scaling a 53-bit integer by this gives [0, 1).
_INV_2_53 = 1.0 / 9007199254740992.0


def uniform_from_bits(bits: int | np.ndarray) -> float | np.ndarray:
    """Convert 64 random bits to a double uniform on ``[0, 1)``.

    Uses the top 53 bits so every representable output is equally likely and
    the result is always strictly less than 1.
    """
    if isinstance(bits, np.ndarray):
        return (bits >> np.uint64(11)).astype(np.float64) * _INV_2_53
    return (int(bits) >> 11) * _INV_2_53


class ParticleRNG:
    """Scalar counter-based stream for one particle.

    Parameters
    ----------
    seed:
        Global simulation seed (key word 0).
    particle_id:
        Unique particle identifier (key word 1).
    counter:
        Starting counter, normally 0; a particle restored from census resumes
        exactly where it left off.
    """

    __slots__ = ("seed", "particle_id", "counter", "rounds")

    def __init__(
        self,
        seed: int,
        particle_id: int,
        counter: int = 0,
        rounds: int = THREEFRY_DEFAULT_ROUNDS,
    ):
        if seed < 0 or particle_id < 0 or counter < 0:
            raise ValueError("seed, particle_id and counter must be non-negative")
        self.seed = seed & 0xFFFFFFFFFFFFFFFF
        self.particle_id = particle_id & 0xFFFFFFFFFFFFFFFF
        self.counter = counter
        self.rounds = rounds

    def next_uniform(self) -> float:
        """Draw one double uniform on ``[0, 1)``; advances the counter."""
        bits, _ = threefry2x64(
            (self.counter, 0), (self.seed, self.particle_id), self.rounds
        )
        self.counter += 1
        return uniform_from_bits(bits)

    def next_uniforms(self, n: int) -> list[float]:
        """Draw ``n`` uniforms (convenience for multi-draw events)."""
        return [self.next_uniform() for _ in range(n)]

    def clone(self) -> "ParticleRNG":
        """Copy the stream, preserving the counter position."""
        return ParticleRNG(self.seed, self.particle_id, self.counter, self.rounds)


class VectorParticleRNG:
    """Vectorised counter-based streams for an array of particles.

    Holds ``particle_id`` and ``counter`` arrays; each call to
    :meth:`next_uniform` draws one uniform per *selected* particle and ticks
    only those counters, reproducing exactly what the scalar streams would
    have produced.
    """

    def __init__(
        self,
        seed: int | np.ndarray,
        particle_ids: np.ndarray,
        counters: np.ndarray | None = None,
        rounds: int = THREEFRY_DEFAULT_ROUNDS,
    ):
        self.particle_ids = np.asarray(particle_ids, dtype=np.uint64).copy()
        if np.ndim(seed) == 0:
            self.seed = np.uint64(int(seed) & 0xFFFFFFFFFFFFFFFF)
        else:
            # Per-lane seeds (ensemble fusion): key word 0 varies by lane so
            # each replica's stream is bit-identical to a standalone run
            # seeded with its own scalar seed.
            seed = np.asarray(seed, dtype=np.uint64)
            if seed.shape != self.particle_ids.shape:
                raise ValueError("per-lane seed must match particle_ids in shape")
            self.seed = seed.copy()
        n = self.particle_ids.shape[0]
        if counters is None:
            self.counters = np.zeros(n, dtype=np.uint64)
        else:
            counters = np.asarray(counters, dtype=np.uint64)
            if counters.shape != self.particle_ids.shape:
                raise ValueError("counters must match particle_ids in shape")
            self.counters = counters.copy()
        self.rounds = rounds

    def __len__(self) -> int:
        return self.particle_ids.shape[0]

    def next_uniform(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Draw a uniform for each particle selected by ``mask``.

        Parameters
        ----------
        mask:
            Boolean array selecting which particles draw.  ``None`` draws for
            all particles.

        Returns
        -------
        numpy.ndarray
            Array of draws with length ``mask.sum()`` (or ``len(self)``).
        """
        if mask is None:
            ids = self.particle_ids
            ctrs = self.counters
            bits, _ = threefry2x64_vec(
                ctrs, np.uint64(0), self.seed, ids, self.rounds
            )
            with np.errstate(over="ignore"):
                self.counters += np.uint64(1)
            return uniform_from_bits(bits)

        mask = np.asarray(mask, dtype=bool)
        ids = self.particle_ids[mask]
        ctrs = self.counters[mask]
        seed = self.seed[mask] if np.ndim(self.seed) else self.seed
        bits, _ = threefry2x64_vec(ctrs, np.uint64(0), seed, ids, self.rounds)
        with np.errstate(over="ignore"):
            self.counters[mask] += np.uint64(1)
        return uniform_from_bits(bits)

    def scalar_stream(self, index: int) -> ParticleRNG:
        """Return the equivalent scalar stream for particle ``index``."""
        seed = self.seed[index] if np.ndim(self.seed) else self.seed
        return ParticleRNG(
            int(seed),
            int(self.particle_ids[index]),
            int(self.counters[index]),
            self.rounds,
        )
