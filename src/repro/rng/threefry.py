"""Threefry-2x64 counter-based random number generator.

Threefry is the Threefish block cipher with the tweak removed and the number
of rounds reduced, introduced by Salmon et al., *Parallel random numbers: as
easy as 1, 2, 3* (SC'11) — reference [16] of the paper.  It maps a 128-bit
counter and a 128-bit key to 128 bits of output, and passes the full
BigCrush battery at 20 rounds (13 rounds is "Crush-resistant" and is the
r123 default for the 2x64 variant; we default to the conservative 20 used by
``threefry2x64`` in the paper's mini-app).

Two interchangeable implementations are provided:

* :func:`threefry2x64` — scalar, on Python ints (arbitrary precision masked
  to 64 bits).  Used as the reference for known-answer tests and by the Over
  Particles scheme's per-particle stream.
* :func:`threefry2x64_vec` — vectorised over numpy ``uint64`` arrays with
  wrapping arithmetic, bit-identical to the scalar version.  Used by the
  Over Events scheme where thousands of particles draw at once.

The implementations follow the Random123 reference code: an 8-entry rotation
schedule, key injection every 4 rounds, and the Skein key-schedule parity
constant.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "THREEFRY_DEFAULT_ROUNDS",
    "SKEIN_KS_PARITY64",
    "ROTATION_2X64",
    "threefry2x64",
    "threefry2x64_vec",
]

#: Number of cipher rounds used by default (full Threefry-2x64-20).
THREEFRY_DEFAULT_ROUNDS = 20

#: Skein key-schedule parity constant for 64-bit words.
SKEIN_KS_PARITY64 = 0x1BD11BDAA9FC1A22

#: Rotation schedule for the 2x64 variant (repeats with period 8).
ROTATION_2X64 = (16, 42, 12, 31, 16, 32, 24, 21)

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _rotl64(x: int, r: int) -> int:
    """Rotate the 64-bit integer ``x`` left by ``r`` bits."""
    return ((x << r) | (x >> (64 - r))) & _MASK64


def threefry2x64(
    counter: tuple[int, int],
    key: tuple[int, int],
    rounds: int = THREEFRY_DEFAULT_ROUNDS,
) -> tuple[int, int]:
    """Encrypt a 128-bit counter with a 128-bit key (scalar reference).

    Parameters
    ----------
    counter:
        Two 64-bit words ``(c0, c1)``.
    key:
        Two 64-bit words ``(k0, k1)``.
    rounds:
        Number of mix rounds; 20 is the conservative default, 13 the
        Random123 "R" default.  Must be ``0 <= rounds <= 32``.

    Returns
    -------
    tuple[int, int]
        Two 64-bit words of output.
    """
    if not 0 <= rounds <= 32:
        raise ValueError(f"rounds must be in [0, 32], got {rounds}")

    ks0 = key[0] & _MASK64
    ks1 = key[1] & _MASK64
    ks2 = SKEIN_KS_PARITY64 ^ ks0 ^ ks1
    ks = (ks0, ks1, ks2)

    x0 = (counter[0] + ks0) & _MASK64
    x1 = (counter[1] + ks1) & _MASK64

    for i in range(rounds):
        x0 = (x0 + x1) & _MASK64
        x1 = _rotl64(x1, ROTATION_2X64[i % 8])
        x1 ^= x0
        if i % 4 == 3:
            inject = i // 4 + 1
            x0 = (x0 + ks[inject % 3]) & _MASK64
            x1 = (x1 + ks[(inject + 1) % 3] + inject) & _MASK64

    return x0, x1


def threefry2x64_vec(
    c0: np.ndarray,
    c1: np.ndarray,
    k0: np.ndarray,
    k1: np.ndarray,
    rounds: int = THREEFRY_DEFAULT_ROUNDS,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Threefry-2x64 over numpy ``uint64`` arrays.

    All four inputs broadcast against each other; the result has the
    broadcast shape.  Bit-identical to :func:`threefry2x64` element-wise.
    """
    if not 0 <= rounds <= 32:
        raise ValueError(f"rounds must be in [0, 32], got {rounds}")

    c0 = np.asarray(c0, dtype=np.uint64)
    c1 = np.asarray(c1, dtype=np.uint64)
    k0 = np.asarray(k0, dtype=np.uint64)
    k1 = np.asarray(k1, dtype=np.uint64)

    parity = np.uint64(SKEIN_KS_PARITY64)
    ks2 = parity ^ k0 ^ k1
    # Key schedule as a list so we can index with inject % 3.
    ks = (k0, k1, ks2)

    with np.errstate(over="ignore"):
        x0 = c0 + k0
        x1 = c1 + k1
        for i in range(rounds):
            rot = np.uint64(ROTATION_2X64[i % 8])
            inv = np.uint64(64 - ROTATION_2X64[i % 8])
            x0 = x0 + x1
            x1 = (x1 << rot) | (x1 >> inv)
            x1 = x1 ^ x0
            if i % 4 == 3:
                inject = i // 4 + 1
                x0 = x0 + ks[inject % 3]
                x1 = x1 + ks[(inject + 1) % 3] + np.uint64(inject)

    return x0, x1
