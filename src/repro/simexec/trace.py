"""Event traces: the recorded behaviour one real transport run produced.

A trace is the per-history sequence of (event kind, mesh cell) pairs in
execution order — everything the replay engine needs to time the run on a
machine model, including the *actual* tally-flush addresses whose
collisions drive atomic contention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SimulationConfig
from repro.core.over_particles import run_over_particles
from repro.physics.events import EventKind

__all__ = ["EventTrace", "record_trace", "synthetic_trace"]


@dataclass(frozen=True)
class EventTrace:
    """A transport run's event stream, grouped per history.

    Attributes
    ----------
    histories:
        One ``(kinds, cells)`` pair of int arrays per history, in the
        history's execution order.
    nx, ny:
        Mesh shape (cells are flat row-major indices).
    """

    histories: tuple
    nx: int
    ny: int

    @property
    def nhistories(self) -> int:
        return len(self.histories)

    @property
    def total_events(self) -> int:
        return sum(k.size for k, _ in self.histories)

    def event_counts(self) -> dict:
        """Total events by kind (one ``bincount`` per history)."""
        totals = np.zeros(len(EventKind), dtype=np.int64)
        for kinds, _ in self.histories:
            totals += np.bincount(kinds, minlength=len(EventKind))[
                : len(EventKind)
            ]
        return {kind: int(totals[int(kind)]) for kind in EventKind}


def record_trace(config: SimulationConfig) -> tuple[EventTrace, object]:
    """Run the Over Particles transport with tracing and package the trace.

    Returns ``(trace, result)`` — the result is the ordinary
    :class:`repro.core.simulation.TransportResult` so callers can reuse its
    counters/tally without a second run.
    """
    raw: list[tuple[int, int, int]] = []
    result = run_over_particles(config, trace=raw)

    n = result.counters.nparticles
    per_history_kinds: list[list[int]] = [[] for _ in range(n)]
    per_history_cells: list[list[int]] = [[] for _ in range(n)]
    for index, kind, cell in raw:
        per_history_kinds[index].append(kind)
        per_history_cells[index].append(cell)

    histories = tuple(
        (
            np.asarray(per_history_kinds[i], dtype=np.int64),
            np.asarray(per_history_cells[i], dtype=np.int64),
        )
        for i in range(n)
    )
    trace = EventTrace(histories=histories, nx=config.nx, ny=config.ny)
    return trace, result


def synthetic_trace(
    nhistories: int,
    events_per_history: int,
    mesh_nx: int,
    collision_fraction: float = 0.0,
    seed: int = 0,
) -> EventTrace:
    """Generate a random-walk trace over a (virtual) large mesh.

    Real traces are limited to meshes pure Python can transport in
    reasonable time, which are cache-resident — useless for studying
    DRAM-latency effects like SMT hiding.  A synthetic trace decouples the
    replay from the transport: each history random-walks over a
    ``mesh_nx²`` cell space (one-cell steps, like facet crossings), with
    the requested fraction of collision events interleaved.  The paired
    workload should use the same ``mesh_nx`` so the engine prices accesses
    against the intended working set.
    """
    if nhistories < 1 or events_per_history < 1:
        raise ValueError("need at least one history and one event")
    if not 0.0 <= collision_fraction < 1.0:
        raise ValueError("collision fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    histories = []
    moves = np.array([1, -1, mesh_nx, -mesh_nx], dtype=np.int64)
    ncells = mesh_nx * mesh_nx
    for _ in range(nhistories):
        start = rng.integers(0, ncells)
        steps = rng.choice(moves, size=events_per_history)
        cells = (start + np.cumsum(steps)) % ncells
        kinds = np.where(
            rng.random(events_per_history) < collision_fraction,
            int(EventKind.COLLISION),
            int(EventKind.FACET),
        ).astype(np.int64)
        kinds[-1] = int(EventKind.CENSUS)
        histories.append((kinds, cells))
    return EventTrace(histories=tuple(histories), nx=mesh_nx, ny=mesh_nx)
