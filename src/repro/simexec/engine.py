"""The discrete-event replay engine.

Replays a recorded :class:`repro.simexec.trace.EventTrace` over virtual
OpenMP threads against a CPU description, simulating the three shared
resources the analytic model prices in closed form:

* **issue** — each event's compute cycles advance only the owning thread's
  clock (SMT threads interleave on the core implicitly through the memory
  port below; compute overlap between SMT threads is what the analytic
  ``max(kC, ...)`` term captures and is reproduced here by construction);
* **the per-core memory port** — every random access must pass the core's
  port, which sustains ``MLP`` outstanding misses: an access starts no
  earlier than the port allows (``latency/MLP`` spacing) and completes a
  full latency after it starts (the dependent-chain floor).  One thread
  alone is latency-limited; SMT siblings fill the port up to its
  throughput — exactly the behaviour behind the paper's SMT results;
* **tally cache lines** — flushes lock their 64-byte line for the atomic
  duration; a concurrent flush to the same line (from the *actual*
  recorded addresses) waits and is counted as a conflict.

The engine and the analytic model share every cost constant, so their
agreement (benchmarked in ``test_model_vs_simulation.py``) tests the
model's *structure*, not its calibration.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.machine.spec import CPUSpec
from repro.parallel.affinity import Affinity, place_threads
from repro.parallel.schedule import ScheduleKind
from repro.perfmodel.costs import DEFAULT_CONSTANTS, ModelConstants
from repro.perfmodel.memory import random_access_latency_cycles
from repro.perfmodel.workload import Workload
from repro.physics.events import EventKind
from repro.simexec.trace import EventTrace

__all__ = ["SimExecOptions", "SimExecResult", "simulate_execution"]

#: Tally cells per 64-byte cache line (row-major, float64).
CELLS_PER_LINE = 8


@dataclass(frozen=True)
class SimExecOptions:
    """Replay configuration.

    Attributes
    ----------
    nthreads:
        Virtual thread count.
    affinity:
        Placement (determines SMT sharing and NUMA class per thread).
    schedule:
        STATIC carves contiguous history blocks; DYNAMIC pulls
        ``chunk``-sized blocks from a shared queue as threads free up.
    chunk:
        Dynamic chunk size.
    use_fast_memory:
        Price accesses against the fast region (KNL MCDRAM).
    jitter:
        Fractional per-event timing noise (deterministic, hash-derived).
        Real cores never execute in perfect lockstep; without jitter the
        replay forms *absorbing atomic convoys*: histories launched
        together stay phase-locked on the same tally lines forever, a
        pathology perfectly synchronous costs create and hardware timing
        noise dissolves.  ~10% is ample; 0 disables (and exposes the
        convoy effect, which one of the benches demonstrates on purpose).
    start_stagger_cycles:
        Thread launch skew (an OpenMP parallel region does not release
        all threads in the same cycle).
    privatized_tally:
        Flush into thread-private copies: plain stores, no line locks, no
        conflicts — the §VI-F optimisation, replayed.
    """

    nthreads: int
    affinity: Affinity = Affinity.COMPACT_CORES
    schedule: ScheduleKind = ScheduleKind.STATIC
    chunk: int = 16
    use_fast_memory: bool = False
    jitter: float = 0.1
    start_stagger_cycles: float = 200.0
    privatized_tally: bool = False

    def __post_init__(self) -> None:
        if self.nthreads < 1:
            raise ValueError("need at least one thread")
        if self.chunk < 1:
            raise ValueError(
                "chunk must be >= 1 (a dynamic replay pulls at least one "
                "history per acquisition)"
            )
        if self.jitter < 0.0:
            raise ValueError("jitter must be non-negative")
        if self.start_stagger_cycles < 0.0:
            raise ValueError("start_stagger_cycles must be non-negative")


@dataclass(frozen=True)
class SimExecResult:
    """Replay outcome.

    Attributes
    ----------
    seconds:
        Simulated wall-clock (makespan over threads).
    busy_cycles / stall_cycles:
        Per-thread compute cycles and wait cycles (port + line waits).
    atomic_conflicts:
        Flushes that found their cache line locked by another thread.
    events_executed:
        Total events replayed.
    """

    seconds: float
    busy_cycles: np.ndarray
    stall_cycles: np.ndarray
    atomic_conflicts: int
    events_executed: int

    @property
    def makespan_cycles(self) -> float:
        return float((self.busy_cycles + self.stall_cycles).max())

    def mean_utilization(self) -> float:
        """Busy fraction averaged over threads."""
        total = self.busy_cycles + self.stall_cycles
        ok = total > 0
        if not ok.any():
            return 1.0
        return float((self.busy_cycles[ok] / total[ok]).mean())


class _EventCosts:
    """Per-event compute cycles and memory-access latencies (shared with
    the analytic model through the same constants and latency function)."""

    def __init__(
        self,
        w: Workload,
        spec: CPUSpec,
        opt: SimExecOptions,
        con: ModelConstants,
        threads_per_core: float,
    ):
        issue = spec.issue_width
        probes = max(w.linear_probes_per_lookup, 2.0)
        if w.collisions_pp > 0:
            lookups_per_coll = w.lookups_pp / w.collisions_pp
        else:
            lookups_per_coll = 2.0  # never executed, but keep costs finite
        self.compute = {
            int(EventKind.COLLISION): (
                con.collision_alu_ops
                + lookups_per_coll * (con.lookup_alu_ops + probes * con.probe_alu_ops)
            ) / issue,
            int(EventKind.FACET): con.facet_alu_ops / issue,
            int(EventKind.CENSUS): con.census_alu_ops / issue,
        }

        def lat(ws, adjacent, remote):
            return random_access_latency_cycles(
                spec,
                ws,
                threads_per_core=threads_per_core,
                adjacent_fraction=adjacent,
                numa_remote_fraction=remote,
                use_fast_memory=opt.use_fast_memory,
                shared_capacity_scale=con.op_shared_capacity_scale,
            )

        mesh_bytes = w.mesh_bytes()
        self.mesh_latency = {
            remote: lat(mesh_bytes, con.density_adjacent_fraction, 1.0 if remote else 0.0)
            for remote in (False, True)
        }
        self.table_latency = {
            remote: lat(w.xs_table_bytes, 0.0, 1.0 if remote else 0.0)
            for remote in (False, True)
        }
        self.atomic_cycles = spec.atomic_latency_cycles


def simulate_execution(
    trace: EventTrace,
    workload: Workload,
    spec: CPUSpec,
    options: SimExecOptions,
    constants: ModelConstants = DEFAULT_CONSTANTS,
) -> SimExecResult:
    """Replay the trace on ``options.nthreads`` virtual threads.

    Returns the simulated wall-clock and the per-thread accounting.
    """
    nthreads = options.nthreads
    if nthreads < 1:
        raise ValueError("need at least one thread")
    placement = place_threads(
        nthreads, spec.sockets, spec.cores_per_socket, spec.smt_per_core,
        options.affinity,
    )

    # thread -> (core, socket): replay placement in slot order.
    core_of_thread = np.zeros(nthreads, dtype=np.int64)
    cursor = 0
    for core, count in enumerate(placement.per_core):
        for _ in range(int(count)):
            core_of_thread[cursor] = core
            cursor += 1
    socket_of_thread = core_of_thread // spec.cores_per_socket

    mlp = constants.mem_concurrency_for(spec.name)
    costs = _EventCosts(
        workload, spec, options, constants, placement.threads_per_core
    )

    # --- work distribution -------------------------------------------------
    n = trace.nhistories
    if options.schedule is ScheduleKind.STATIC:
        bounds = np.linspace(0, n, nthreads + 1).astype(np.int64)
        queues = [
            deque(range(bounds[t], bounds[t + 1])) for t in range(nthreads)
        ]
        shared: list[int] = []
    else:
        queues = [deque() for _ in range(nthreads)]
        shared = list(range(n))

    # --- resources ----------------------------------------------------------
    core_port_time: dict[int, float] = {}
    line_busy_until: dict[int, float] = {}
    busy = np.zeros(nthreads)
    stall = np.zeros(nthreads)
    # Launch skew: threads leave the parallel-region barrier staggered.
    clock = np.arange(nthreads, dtype=np.float64) * options.start_stagger_cycles
    conflicts = 0
    executed = 0
    next_shared = 0

    # Deterministic per-event timing noise (see SimExecOptions.jitter):
    # a multiplicative Weyl-sequence hash in [1-j, 1+j], applied to the
    # whole event duration (compute *and* memory) — cache-hit variation,
    # prefetch timing and DRAM scheduling perturb the memory part at least
    # as much as the ALU part.
    jitter = options.jitter
    _phase = [0] * nthreads

    def _jitter_factor(t: int) -> float:
        if jitter <= 0.0:
            return 1.0
        _phase[t] = (_phase[t] + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        frac = ((_phase[t] ^ (t * 0x517CC1B7)) >> 40) / float(1 << 24)
        return 1.0 - jitter + 2.0 * jitter * frac

    def memory_access(t: int, latency: float) -> None:
        nonlocal conflicts
        latency = latency * _jitter_factor(t)
        core = int(core_of_thread[t])
        start = max(clock[t], core_port_time.get(core, 0.0))
        stall[t] += start - clock[t]
        core_port_time[core] = start + latency / mlp
        stall[t] += latency
        clock[t] = start + latency

    privatized = options.privatized_tally
    store_fraction = constants.privatized_store_cost_fraction

    def flush(t: int, cell: int, latency: float) -> None:
        nonlocal conflicts
        latency = latency * _jitter_factor(t)
        core = int(core_of_thread[t])
        if privatized:
            # Plain store into the private copy: port-paced, no line lock,
            # and the write buffer hides part of the line fill.
            latency = latency * store_fraction
            start = max(clock[t], core_port_time.get(core, 0.0))
            stall[t] += start - clock[t] + latency
            core_port_time[core] = start + latency / mlp
            clock[t] = start + latency
            return
        start = max(clock[t], core_port_time.get(core, 0.0))
        line = cell // CELLS_PER_LINE
        held = line_busy_until.get(line, 0.0)
        if held > start:
            conflicts += 1
            start = held
        stall[t] += start - clock[t]
        core_port_time[core] = start + latency / mlp
        end = start + latency + costs.atomic_cycles
        line_busy_until[line] = end
        stall[t] += latency + costs.atomic_cycles
        clock[t] = end

    def run_event(t: int, kind: int, cell: int, remote: bool) -> None:
        nonlocal executed
        work = costs.compute[kind] * _jitter_factor(t)
        busy[t] += work
        clock[t] += work
        if kind == int(EventKind.COLLISION):
            memory_access(t, costs.table_latency[remote])
        elif kind == int(EventKind.FACET):
            mesh_lat = costs.mesh_latency[remote]
            memory_access(t, mesh_lat)  # destination density read
            flush(t, cell, mesh_lat)  # tally RMW
        else:  # census
            flush(t, cell, costs.mesh_latency[remote])
        executed += 1

    # --- main loop: ONE event per heap pop, so threads genuinely interleave
    # on the shared resources — whole-history granularity would let one
    # thread reserve the core's memory port arbitrarily far ahead.
    thread_remote = [bool(socket_of_thread[t] != 0) for t in range(nthreads)]
    current: list[tuple | None] = [None] * nthreads  # (kinds, cells, idx)

    def acquire_work(t: int) -> bool:
        nonlocal next_shared
        if queues[t]:
            # deque.popleft() is O(1); a list.pop(0) here is O(n) and turns
            # the replay into O(total_events × histories) on long traces.
            kinds, cells = trace.histories[queues[t].popleft()]
            current[t] = (kinds, cells, 0)
            return True
        if shared and next_shared < len(shared):
            take = shared[next_shared: next_shared + options.chunk]
            next_shared += options.chunk
            queues[t].extend(take[1:])
            kinds, cells = trace.histories[take[0]]
            current[t] = (kinds, cells, 0)
            return True
        return False

    heap = [(clock[t], t) for t in range(nthreads)]
    heapq.heapify(heap)
    while heap:
        _, t = heapq.heappop(heap)
        if current[t] is None and not acquire_work(t):
            continue
        kinds, cells, idx = current[t]
        run_event(t, int(kinds[idx]), int(cells[idx]), thread_remote[t])
        idx += 1
        current[t] = (kinds, cells, idx) if idx < kinds.size else None
        heapq.heappush(heap, (clock[t], t))

    makespan = float(clock.max()) if nthreads else 0.0
    return SimExecResult(
        seconds=makespan / (spec.clock_ghz * 1.0e9),
        busy_cycles=busy,
        stall_cycles=stall,
        atomic_conflicts=conflicts,
        events_executed=executed,
    )
