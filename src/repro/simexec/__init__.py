"""Discrete-event simulated-parallel execution.

The analytic performance model (:mod:`repro.perfmodel`) prices a run with
closed-form terms; this package provides the *independent cross-check*: it
replays the transport's recorded event trace across virtual OpenMP threads
through an explicit discrete-event simulation of the node's shared
resources —

* per-core SMT issue sharing,
* per-core outstanding-miss capacity (the paper's "small finite number of
  memory transactions per core", §VIII-A) as an explicit token resource,
* per-cache-line atomic conflicts detected from the *actual* tally flush
  addresses the histories produced,
* static or dynamic work distribution.

Agreement between the two estimators (asserted in
``benchmarks/test_model_vs_simulation.py``) is what stands in for hardware
as evidence that the model's structure is right, not just its calibration.
"""

from repro.simexec.engine import (
    SimExecOptions,
    SimExecResult,
    simulate_execution,
)
from repro.simexec.trace import EventTrace, record_trace, synthetic_trace

__all__ = [
    "SimExecOptions",
    "SimExecResult",
    "simulate_execution",
    "EventTrace",
    "record_trace",
    "synthetic_trace",
]
