"""The ``neutral`` mini-app core: configuration, the two parallelisation
schemes, the paper's test problems, and validation.

Public entry points:

* :class:`repro.core.simulation.Simulation` — facade: build from a
  :class:`repro.core.config.SimulationConfig` (or a problem factory from
  :mod:`repro.core.problems`) and run either scheme;
* :func:`repro.core.over_particles.run_over_particles` — depth-first
  history tracking (paper §V-A, Listing 1);
* :func:`repro.core.over_events.run_over_events` — breadth-first event
  passes (paper §V-B, Listing 2);
* :mod:`repro.core.validation` — conservation checks.

Both schemes consume identical per-particle random streams and produce
identical physics; the schemes differ only in traversal order — exactly the
property the paper's performance study relies on.
"""

from repro.core.config import SimulationConfig, Scheme, Layout, SearchStrategy
from repro.core.counters import Counters, EventPassStats
from repro.core.problems import (
    stream_problem,
    scatter_problem,
    csp_problem,
    PROBLEM_FACTORIES,
    PAPER_MESH_SIZE,
    PAPER_TIMESTEP_S,
)
from repro.core.simulation import Simulation, TransportResult
from repro.core.over_particles import run_over_particles
from repro.core.over_events import run_over_events
from repro.core.validation import energy_balance_error, population_accounted

__all__ = [
    "SimulationConfig",
    "Scheme",
    "Layout",
    "SearchStrategy",
    "Counters",
    "EventPassStats",
    "stream_problem",
    "scatter_problem",
    "csp_problem",
    "PROBLEM_FACTORIES",
    "PAPER_MESH_SIZE",
    "PAPER_TIMESTEP_S",
    "Simulation",
    "TransportResult",
    "run_over_particles",
    "run_over_events",
    "energy_balance_error",
    "population_accounted",
]
