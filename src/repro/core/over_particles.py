"""The Over Particles parallelisation scheme (paper §V-A, Listing 1).

Depth-first traversal: one worker follows one particle history from birth
(or census restore) to its next census or termination.  The defining
performance properties the paper attributes to this scheme are visible in
the code structure:

* *register caching* — the microscopic cross sections, the macroscopic
  cross sections, and the particle state live in **local variables** for
  the whole history; the lookup tables are touched only when the energy
  changes (i.e. at collisions) or the particle enters a different
  material;
* *deep branching* — the event dispatch plus the facet logic nest several
  levels;
* *scattered atomics* — tally flushes happen wherever each history happens
  to be, spread randomly in time and space;
* *load imbalance* — histories have very different lengths; the per-history
  work is recorded so the scheduling substrate can replay it under
  different OpenMP-style schedules.

Beyond the paper's configuration, the driver supports its §IX extensions:
vacuum boundaries, Russian roulette, multi-material meshes, and fission
(secondaries are banked during the sweep and their histories processed
until the bank drains, within the same timestep).

Executed serially here (Python), the traversal order is exactly the order a
single OpenMP thread would process its chunk; the parallel substrate
(:mod:`repro.parallel`) partitions the recorded per-history work across
simulated threads.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import SearchStrategy, Scheme, SimulationConfig
from repro.core.counters import Counters
from repro.mesh.structured import StructuredMesh
from repro.mesh.tally import EnergyDepositionTally
from repro.particles.particle import Particle
from repro.particles.source import sample_source_aos
from repro.physics.collision import collide
from repro.physics.constants import speed_from_energy_ev
from repro.physics.events import (
    EventKind,
    distance_to_collision,
    distance_to_facet,
    select_event,
)
from repro.physics.facet import cross_facet
from repro.physics.fission import (
    expected_secondaries,
    realised_secondaries,
    sample_secondary_energy,
    secondary_id,
)
from repro.physics.importance import clone_id, split_count
from repro.physics.variance import russian_roulette
from repro.rng.distributions import sample_isotropic_direction, sample_mean_free_paths
from repro.rng.stream import ParticleRNG
from repro.xs.lookup import (
    LookupStats,
    binary_search_bin,
    cached_linear_search_bin,
)
from repro.xs.macroscopic import macroscopic_cross_section
from repro.xs.tables import CrossSectionTable

__all__ = ["run_over_particles"]


def _lookup_micro(
    table: CrossSectionTable,
    energy: float,
    cached_bin: int,
    strategy: SearchStrategy,
    stats: LookupStats,
) -> tuple[float, int]:
    """One microscopic lookup: bin search + linear interpolation."""
    if strategy is SearchStrategy.CACHED_LINEAR:
        b = cached_linear_search_bin(table, energy, cached_bin, stats)
    else:
        b = binary_search_bin(table, energy, stats)
    return table.interpolate_at_bin(energy, b), b


class _HistoryContext:
    """Shared run state threaded through every history (one per run)."""

    def __init__(self, config: SimulationConfig, mesh: StructuredMesh,
                 tally: EnergyDepositionTally):
        self.config = config
        self.mesh = mesh
        self.tally = tally
        self.materials = config.resolved_materials()
        self.material_map = config.resolved_material_map()
        self.importance_map = config.importance_map
        self.counters = Counters()
        self.lookup_stats = LookupStats()
        self.coll_pp: list[int] = []
        self.facet_pp: list[int] = []
        self.bank: list[Particle] = []
        #: Optional event trace: (history_index, EventKind int, flat cell).
        #: Consumed by :mod:`repro.simexec` for discrete-event replay.
        self.trace: list[tuple[int, int, int]] | None = None

    def material_at(self, cellx: int, celly: int) -> int:
        return int(self.material_map[celly, cellx])


def _spawn_secondary(
    ctx: _HistoryContext,
    parent: Particle,
    parent_counter: int,
    child_index: int,
    dt_remaining: float,
) -> Particle:
    """Create one fission secondary at the parent's position.

    The child's identity derives deterministically from the parent's state
    (id and event counter), so both schemes bank bit-identical children.
    Birth consumes three draws from the child's own stream: direction,
    energy, first optical distance.
    """
    cid = secondary_id(
        ctx.config.seed, parent.particle_id, parent_counter, child_index
    )
    rng = ParticleRNG(ctx.config.seed, cid)
    u_dir = rng.next_uniform()
    u_energy = rng.next_uniform()
    u_mfp = rng.next_uniform()
    mat = ctx.materials[ctx.material_at(parent.cellx, parent.celly)]
    ox, oy = sample_isotropic_direction(u_dir)
    child = Particle(
        x=parent.x,
        y=parent.y,
        omega_x=ox,
        omega_y=oy,
        energy=sample_secondary_energy(u_energy, mat.fission_energy_ev),
        weight=1.0,
        cellx=parent.cellx,
        celly=parent.celly,
        particle_id=cid,
        dt_to_census=dt_remaining,
        mfp_to_collision=sample_mean_free_paths(u_mfp),
        rng_counter=rng.counter,
    )
    child.local_density = parent.local_density
    # Birth initialisation of the cached bins (like the source sampler's) —
    # the history's first counted lookup then walks from the right line.
    child.scatter_bin = binary_search_bin(mat.scatter, child.energy)
    child.capture_bin = binary_search_bin(mat.capture, child.energy)
    if mat.fissile:
        child.fission_bin = binary_search_bin(mat.fission, child.energy)
    return child


def _spawn_clone(
    ctx: _HistoryContext,
    parent: Particle,
    parent_counter: int,
    clone_index: int,
    weight: float,
) -> Particle:
    """Create one importance-splitting clone of the parent.

    Clones inherit the parent's full flight state (position, direction,
    energy, remaining optical distance and census time) with the split
    weight; they diverge from the parent at their next random decision,
    drawn from their own fresh stream.
    """
    cid = clone_id(ctx.config.seed, parent.particle_id, parent_counter, clone_index)
    c = Particle(
        x=parent.x,
        y=parent.y,
        omega_x=parent.omega_x,
        omega_y=parent.omega_y,
        energy=parent.energy,
        weight=weight,
        cellx=parent.cellx,
        celly=parent.celly,
        particle_id=cid,
        dt_to_census=parent.dt_to_census,
        mfp_to_collision=parent.mfp_to_collision,
        rng_counter=0,
    )
    c.local_density = parent.local_density
    c.scatter_bin = parent.scatter_bin
    c.capture_bin = parent.capture_bin
    c.fission_bin = parent.fission_bin
    return c


def _track_history(ctx: _HistoryContext, p: Particle, index: int) -> None:
    """Advance one history until census or termination (the Listing 1 body)."""
    config = ctx.config
    mesh = ctx.mesh
    tally = ctx.tally
    counters = ctx.counters
    rng = ParticleRNG(config.seed, p.particle_id, p.rng_counter)

    # Cache the material and microscopic cross sections in locals
    # ("registers"): they change only at collisions (energy) and at
    # material-crossing facets.
    mat_idx = ctx.material_at(p.cellx, p.celly)
    mat = ctx.materials[mat_idx]

    def lookup_all() -> tuple[float, float, float]:
        micro_s, p.scatter_bin = _lookup_micro(
            mat.scatter, p.energy, p.scatter_bin, config.search, ctx.lookup_stats
        )
        micro_c, p.capture_bin = _lookup_micro(
            mat.capture, p.energy, p.capture_bin, config.search, ctx.lookup_stats
        )
        micro_f = 0.0
        if mat.fissile:
            micro_f, p.fission_bin = _lookup_micro(
                mat.fission, p.energy, p.fission_bin, config.search,
                ctx.lookup_stats,
            )
        return micro_s, micro_c, micro_f

    def macro(micro: float) -> float:
        return float(
            macroscopic_cross_section(micro, p.local_density, mat.molar_mass_g_mol)
        )

    micro_s, micro_c, micro_f = lookup_all()
    sigma_s = macro(micro_s)
    sigma_f = macro(micro_f)
    sigma_a = macro(micro_c) + sigma_f
    sigma_t = sigma_s + sigma_a
    speed = speed_from_energy_ev(p.energy)

    while True:
        # --- calculate_time_to_events() --------------------------------
        d_coll = distance_to_collision(p.mfp_to_collision, sigma_t)
        x_lo, x_hi, y_lo, y_hi = mesh.cell_bounds(p.cellx, p.celly)
        d_facet, axis = distance_to_facet(
            p.x, p.y, p.omega_x, p.omega_y, x_lo, x_hi, y_lo, y_hi
        )
        d_census = p.dt_to_census * speed
        event = select_event(d_coll, d_facet, d_census)

        if event is EventKind.COLLISION:
            # ---- handle_collision() -----------------------------------
            p.x = p.x + p.omega_x * d_coll
            p.y = p.y + p.omega_y * d_coll
            p.dt_to_census = max(0.0, p.dt_to_census - d_coll / speed)
            weight_before = p.weight
            counter_at_event = rng.counter
            u_angle = rng.next_uniform()
            u_sense = rng.next_uniform()
            u_mfp = rng.next_uniform()
            counters.rng_draws += 3
            out = collide(
                p.energy,
                p.weight,
                p.omega_x,
                p.omega_y,
                sigma_a,
                sigma_t,
                mat.a_ratio,
                u_angle,
                u_sense,
                u_mfp,
                config.energy_cutoff_ev,
                config.weight_cutoff,
                defer_weight_cutoff=config.use_russian_roulette,
            )
            p.energy = out.energy
            p.weight = out.weight
            p.omega_x = out.omega_x
            p.omega_y = out.omega_y
            p.mfp_to_collision = out.mfp_to_collision
            p.deposit_buffer += out.deposit
            counters.collisions += 1
            ctx.coll_pp[index] += 1
            if ctx.trace is not None:
                ctx.trace.append(
                    (index, int(EventKind.COLLISION),
                     p.celly * mesh.nx + p.cellx)
                )

            # ---- fission banking (multiplying media extension) --------
            if mat.fissile and sigma_t > 0.0:
                u_fission = rng.next_uniform()
                counters.rng_draws += 1
                expected = expected_secondaries(
                    weight_before, mat.nu, sigma_f, sigma_t
                )
                n_children = realised_secondaries(expected, u_fission)
                if n_children > 0:
                    counters.fissions += 1
                    for k in range(n_children):
                        child = _spawn_secondary(
                            ctx, p, counter_at_event, k, p.dt_to_census
                        )
                        counters.fission_injected_energy += (
                            child.weight * child.energy
                        )
                        counters.secondaries_banked += 1
                        counters.rng_draws += 3
                        ctx.bank.append(child)

            if out.terminated:
                tally.flush(p.cellx, p.celly, p.deposit_buffer)
                p.deposit_buffer = 0.0
                counters.tally_flushes += 1
                counters.terminations += 1
                p.alive = False
                break

            # ---- Russian roulette (extension) --------------------------
            if out.below_weight_cutoff:
                u_roulette = rng.next_uniform()
                counters.rng_draws += 1
                new_weight, killed = russian_roulette(
                    p.weight, u_roulette, config.weight_cutoff
                )
                if killed:
                    counters.roulette_kills += 1
                    counters.roulette_loss_energy += p.weight * p.energy
                    p.weight = 0.0
                    tally.flush(p.cellx, p.celly, p.deposit_buffer)
                    p.deposit_buffer = 0.0
                    counters.tally_flushes += 1
                    counters.terminations += 1
                    p.alive = False
                    break
                counters.roulette_survivals += 1
                counters.roulette_gain_energy += (new_weight - p.weight) * p.energy
                p.weight = new_weight

            # The energy changed: refresh the cached microscopic values.
            micro_s, micro_c, micro_f = lookup_all()
            sigma_s = macro(micro_s)
            sigma_f = macro(micro_f)
            sigma_a = macro(micro_c) + sigma_f
            sigma_t = sigma_s + sigma_a
            speed = speed_from_energy_ev(p.energy)

        elif event is EventKind.FACET:
            # ---- handle_facet() ---------------------------------------
            p.x = p.x + p.omega_x * d_facet
            p.y = p.y + p.omega_y * d_facet
            p.dt_to_census = max(0.0, p.dt_to_census - d_facet / speed)
            p.mfp_to_collision = max(
                0.0, p.mfp_to_collision - d_facet * sigma_t
            )
            # Snap the hit coordinate exactly onto the facet plane so
            # rounding never strands a particle outside its cell.
            if axis == 0:
                p.x = x_hi if p.omega_x > 0.0 else x_lo
            else:
                p.y = y_hi if p.omega_y > 0.0 else y_lo
            # Flush the deposition register onto the tally mesh — the
            # atomic read-modify-write of §VI-A, performed unconditionally.
            tally.flush(p.cellx, p.celly, p.deposit_buffer)
            p.deposit_buffer = 0.0
            counters.tally_flushes += 1
            old_cx, old_cy = p.cellx, p.celly
            new_cx, new_cy, new_ox, new_oy, reflected, escaped = cross_facet(
                p.cellx, p.celly, p.omega_x, p.omega_y, axis, mesh,
                config.boundary,
            )
            counters.facets += 1
            ctx.facet_pp[index] += 1
            if ctx.trace is not None:
                ctx.trace.append(
                    (index, int(EventKind.FACET),
                     old_cy * mesh.nx + old_cx)
                )
            if escaped:
                counters.escapes += 1
                counters.escaped_energy += p.weight * p.energy
                p.alive = False
                break
            p.cellx, p.celly = new_cx, new_cy
            p.omega_x, p.omega_y = new_ox, new_oy
            if reflected:
                counters.reflections += 1
            else:
                # Load the destination cell's density — the random read.
                p.local_density = mesh.density_at(p.cellx, p.celly)
                counters.density_reads += 1
                new_mat_idx = ctx.material_at(p.cellx, p.celly)
                if new_mat_idx != mat_idx:
                    # Entered a different material: the cached microscopic
                    # values are stale (multi-material extension).
                    mat_idx = new_mat_idx
                    mat = ctx.materials[mat_idx]
                    micro_s, micro_c, micro_f = lookup_all()
                sigma_s = macro(micro_s)
                sigma_f = macro(micro_f)
                sigma_a = macro(micro_c) + sigma_f
                sigma_t = sigma_s + sigma_a
                # ---- importance splitting / roulette (VR extension) ----
                if ctx.importance_map is not None:
                    ratio = float(
                        ctx.importance_map[new_cy, new_cx]
                        / ctx.importance_map[old_cy, old_cx]
                    )
                    if ratio != 1.0:
                        counter_before = rng.counter
                        u_imp = rng.next_uniform()
                        counters.rng_draws += 1
                        if ratio > 1.0:
                            n_after = split_count(ratio, u_imp)
                            if n_after > 1:
                                counters.splits += 1
                                w_each = p.weight / n_after
                                for k in range(n_after - 1):
                                    clone = _spawn_clone(
                                        ctx, p, counter_before, k, w_each
                                    )
                                    counters.clones_banked += 1
                                    ctx.bank.append(clone)
                                p.weight = w_each
                        else:
                            if u_imp < ratio:
                                counters.roulette_survivals += 1
                                boosted = p.weight / ratio
                                counters.roulette_gain_energy += (
                                    (boosted - p.weight) * p.energy
                                )
                                p.weight = boosted
                            else:
                                counters.roulette_kills += 1
                                counters.roulette_loss_energy += (
                                    p.weight * p.energy
                                )
                                p.weight = 0.0
                                counters.terminations += 1
                                p.alive = False
                                break

        else:
            # ---- handle_census() --------------------------------------
            p.x = p.x + p.omega_x * d_census
            p.y = p.y + p.omega_y * d_census
            p.mfp_to_collision = max(
                0.0, p.mfp_to_collision - d_census * sigma_t
            )
            p.dt_to_census = 0.0
            tally.flush(p.cellx, p.celly, p.deposit_buffer)
            p.deposit_buffer = 0.0
            counters.tally_flushes += 1
            counters.census_events += 1
            if ctx.trace is not None:
                ctx.trace.append(
                    (index, int(EventKind.CENSUS),
                     p.celly * mesh.nx + p.cellx)
                )
            break

    p.rng_counter = rng.counter


def run_over_particles(
    config: SimulationConfig,
    particles: list[Particle] | None = None,
    tally: EnergyDepositionTally | None = None,
    trace: list | None = None,
):
    """Run the full calculation with the Over Particles scheme.

    Parameters
    ----------
    config:
        The simulation specification.
    particles:
        Pre-sampled particles (for scheme-equivalence tests); sampled from
        the config's source when omitted.
    tally:
        An existing tally to accumulate into; a fresh one when omitted.
    trace:
        Optional list to receive the event trace
        ``(history_index, event_kind, flat_cell)`` — the input of the
        discrete-event parallel replay in :mod:`repro.simexec`.

    Returns
    -------
    TransportResult
        Tally, counters, final particle states (including any fission
        secondaries), and wall-clock time.
    """
    # Imported here to avoid a circular import with simulation.py.
    from repro.core.simulation import TransportResult

    t0 = time.perf_counter()
    mesh = StructuredMesh(config.nx, config.ny, config.width, config.height, config.density)
    if tally is None:
        tally = EnergyDepositionTally(config.nx, config.ny)
    ctx = _HistoryContext(config, mesh, tally)
    ctx.trace = trace
    primary = ctx.materials[0]
    if particles is None:
        particles = sample_source_aos(
            mesh, config.source, config.nparticles, config.seed, config.dt,
            scatter_table=primary.scatter, capture_table=primary.capture,
        )

    ctx.counters.nparticles = len(particles)
    ctx.counters.rng_draws += 4 * len(particles)  # birth draws
    ctx.coll_pp = [0] * len(particles)
    ctx.facet_pp = [0] * len(particles)

    for step in range(config.ntimesteps):
        if step > 0:
            for p in particles:
                if p.alive:
                    p.dt_to_census = config.dt
        cursor = 0
        while cursor < len(particles):
            p = particles[cursor]
            if p.alive:
                _track_history(ctx, p, cursor)
            cursor += 1
            # Drain the fission bank within the timestep: secondaries are
            # appended to the population and tracked in turn (their own
            # fissions may bank further generations).
            if cursor == len(particles) and ctx.bank:
                particles.extend(ctx.bank)
                ctx.coll_pp.extend([0] * len(ctx.bank))
                ctx.facet_pp.extend([0] * len(ctx.bank))
                ctx.bank = []

    counters = ctx.counters
    counters.nparticles = len(particles)
    counters.xs_lookups = ctx.lookup_stats.lookups
    counters.xs_binary_probes = ctx.lookup_stats.binary_probes
    counters.xs_linear_probes = ctx.lookup_stats.linear_probes
    counters.collisions_per_particle = np.asarray(ctx.coll_pp, dtype=np.int64)
    counters.facets_per_particle = np.asarray(ctx.facet_pp, dtype=np.int64)
    counters.tally_conflict_probability = tally.conflict_probability()

    return TransportResult(
        config=config,
        scheme=Scheme.OVER_PARTICLES,
        tally=tally,
        counters=counters,
        particles=particles,
        store=None,
        wallclock_s=time.perf_counter() - t0,
    )
