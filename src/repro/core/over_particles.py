"""The Over Particles parallelisation scheme (paper §V-A, Listing 1).

Depth-first traversal: a worker follows particle histories from birth (or
census restore) to their next census or termination.  The driver advances
a *block* of histories together — ``config.op_block_size`` lanes march
through their own event sequences in lock-step waves, one event per lane
per wave, with the per-event work vectorised across the block through the
shared kernel layer (:mod:`repro.kernels`).  Block size 1 reproduces the
classic one-history-at-a-time traversal exactly; larger blocks change
only the *interleaving* of histories, not any history's draw sequence —
the counter-based RNG gives every history its own stream, so final
particle states are bit-identical for every block size (the parity suite
asserts this for block sizes 1, 7, 64 and N).

The population lives in one :class:`~repro.particles.arena.ParticleArena`:
blocks gather their lanes from the arena's SoA fields and scatter final
state back with vector fancy-indexing; fission secondaries and VR clones
are banked as field records and appended to the arena in deterministic
(parent, event, child) order — no per-particle object is ever constructed
on this path (the kernel audit enforces that).

The defining performance properties the paper attributes to this scheme
remain visible in the code structure:

* *register caching* — the microscopic cross sections and flight state
  live in block-local arrays for the whole history; the lookup tables are
  touched only when the energy changes (collisions) or the particle
  enters a different material;
* *deep branching* — the event dispatch plus the facet logic nest several
  levels;
* *scattered atomics* — tally flushes happen wherever each history
  happens to be, spread randomly in time and space;
* *load imbalance* — histories have very different lengths; the
  per-history work is recorded so the scheduling substrate can replay it
  under different OpenMP-style schedules.

Beyond the paper's configuration, the driver supports its §IX extensions:
vacuum boundaries, Russian roulette, multi-material meshes, and fission.
Secondaries are banked during the sweep, sorted into the deterministic
(parent, event, child) order the depth-first traversal would have
produced, and their histories processed until the bank drains, within
the same timestep.

Cross-section search accounting is *exact*, not approximated: the
cached-linear walk length and the bisection probe count of each lane are
computed by the counting kernels in :mod:`repro.kernels.xs`, which the
parity suite proves element-wise identical to the scalar searches.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SearchStrategy, Scheme, SimulationConfig
from repro.core.counters import Counters
from repro.kernels import EVENT_KERNELS, KernelDispatch, Workspace
from repro.kernels import xs as kernel_xs
from repro.kernels.batch import EventKind, split_counts
from repro.mesh.structured import StructuredMesh
from repro.mesh.tally import EnergyDepositionTally
from repro.particles.arena import ParticleArena, ParticleRecord
from repro.physics.fission import sample_secondary_energy, secondary_id
from repro.physics.importance import clone_id
from repro.rng.distributions import sample_isotropic_direction, sample_mean_free_paths
from repro.rng.stream import ParticleRNG, VectorParticleRNG
from repro.xs.lookup import LookupStats

__all__ = ["run_over_particles"]


class _SweepContext:
    """Shared run state threaded through every block (one per run)."""

    def __init__(self, config: SimulationConfig, mesh: StructuredMesh,
                 tally: EnergyDepositionTally, dispatch: KernelDispatch,
                 ws: Workspace, provider=None):
        self.config = config
        self.mesh = mesh
        self.tally = tally
        self.dispatch = dispatch
        self.ws = ws
        #: The cross-section backend.  All material data and lookups go
        #: through it; the driver never touches tables directly.
        self.provider = (
            provider if provider is not None else config.resolved_provider()
        )
        self.material_map = config.resolved_material_map()
        self.importance_map = config.importance_map
        self.mat_a = self.provider.mat_a
        self.mat_molar = self.provider.mat_molar
        self.mat_nu = self.provider.mat_nu
        self.mat_fissile = self.provider.mat_fissile
        self.counters = Counters()
        self.lookup_stats = LookupStats()
        self.coll_pp: list[int] = []
        self.facet_pp: list[int] = []
        #: Banked offspring as ``(parent_index, parent_counter, child_index,
        #: ParticleRecord)``.  Sorting by the first three fields before the
        #: bank joins the arena reproduces exactly the order in which a
        #: one-history-at-a-time traversal would have appended them.
        self.bank: list[tuple[int, int, int, ParticleRecord]] = []
        #: Optional event trace: (history_index, EventKind int, flat cell).
        #: Consumed by :mod:`repro.simexec` for discrete-event replay.
        self.trace: list[tuple[int, int, int]] | None = None

    def material_at(self, cellx: int, celly: int) -> int:
        return int(self.material_map[celly, cellx])


def _spawn_secondary(
    ctx: _SweepContext,
    parent_id: int,
    parent_counter: int,
    child_index: int,
    x: float,
    y: float,
    cellx: int,
    celly: int,
    local_density: float,
    dt_remaining: float,
) -> ParticleRecord:
    """Bank-record for one fission secondary at the parent's position.

    The child's identity derives deterministically from the parent's state
    (id and event counter), so both schemes bank bit-identical children.
    Birth consumes three draws from the child's own stream: direction,
    energy, first optical distance.
    """
    cid = secondary_id(ctx.config.seed, parent_id, parent_counter, child_index)
    rng = ParticleRNG(ctx.config.seed, cid)
    u_dir = rng.next_uniform()
    u_energy = rng.next_uniform()
    u_mfp = rng.next_uniform()
    mi = ctx.material_at(cellx, celly)
    prov = ctx.provider
    ox, oy = sample_isotropic_direction(u_dir)
    energy = sample_secondary_energy(
        u_energy, float(prov.mat_fission_energy_ev[mi])
    )
    # Birth initialisation of the cached bins (like the source sampler's) —
    # the history's first counted lookup then walks from the right line.
    return ParticleRecord(
        x=x,
        y=y,
        omega_x=ox,
        omega_y=oy,
        energy=energy,
        weight=1.0,
        cellx=cellx,
        celly=celly,
        particle_id=cid,
        dt_to_census=dt_remaining,
        mfp_to_collision=sample_mean_free_paths(u_mfp),
        rng_counter=rng.counter,
        local_density=local_density,
        **prov.birth_bins(mi, energy),
    )


class _Block:
    """One block of alive histories advanced in lock-step waves.

    State is gathered from the arena's SoA fields into block-local arrays
    ("registers"), every wave advances each still-active lane by exactly
    one event through the shared kernel layer, and the final state is
    scattered back into the same arena slots.  Each lane draws from its
    own counter-based stream, so no lane's history depends on which other
    lanes share the block.
    """

    def __init__(self, ctx: _SweepContext, arena: ParticleArena,
                 idx: np.ndarray):
        self.ctx = ctx
        self.arena = arena
        self.idx = np.asarray(idx, dtype=np.int64)
        n = self.n = self.idx.size
        gather = self.idx
        self.x = arena.x[gather]
        self.y = arena.y[gather]
        self.omega_x = arena.omega_x[gather]
        self.omega_y = arena.omega_y[gather]
        self.energy = arena.energy[gather]
        self.weight = arena.weight[gather]
        self.cellx = arena.cellx[gather]
        self.celly = arena.celly[gather]
        self.dt = arena.dt_to_census[gather]
        self.mfp = arena.mfp_to_collision[gather]
        self.deposit = arena.deposit_buffer[gather]
        self.local_density = arena.local_density[gather]
        self.sbin = arena.scatter_bin[gather]
        self.cbin = arena.capture_bin[gather]
        self.fbin = arena.fission_bin[gather]
        self.pid = arena.particle_id[gather]
        self.rng = VectorParticleRNG(
            ctx.config.seed, self.pid, arena.rng_counter[gather]
        )
        self.alive = np.ones(n, dtype=bool)
        self.active = np.ones(n, dtype=bool)
        self.mat_idx = ctx.material_map[self.celly, self.cellx]
        self.micro_s = np.zeros(n)
        self.micro_c = np.zeros(n)
        self.micro_f = np.zeros(n)
        # History-start refresh of the cached microscopic values — counted,
        # walking/bisecting from each lane's carried bins.
        self.lookup_all(np.arange(n))

    # ------------------------------------------------------------------
    def lookup_all(self, lanes: np.ndarray) -> None:
        """Refresh microscopic cross sections for the given lanes with
        exact per-strategy search accounting."""
        ctx = self.ctx
        stats = ctx.lookup_stats
        strategy = ctx.config.search
        run = ctx.dispatch.run
        prov = ctx.provider
        caches = {
            "scatter_bin": self.sbin,
            "capture_bin": self.cbin,
            "fission_bin": self.fbin,
        }
        for mi in range(prov.nmaterials):
            sel = lanes[self.mat_idx[lanes] == mi]
            if sel.size == 0:
                continue
            e = self.energy[sel]
            if not prov.mat_fissile[mi]:
                self.micro_f[sel] = 0.0
            lk = prov.lookup(mi, e, run)
            for cache_field, grid, new_bins in lk.searches:
                bins_arr = caches[cache_field]
                if strategy is SearchStrategy.CACHED_LINEAR:
                    stats.linear_probes += int(
                        kernel_xs.linear_walk_probes(
                            grid, e, bins_arr[sel], new_bins
                        ).sum()
                    )
                else:
                    stats.binary_probes += int(
                        kernel_xs.bisection_probes(grid, e).sum()
                    )
                bins_arr[sel] = new_bins
            self.micro_s[sel] = lk.micro_s
            self.micro_c[sel] = lk.micro_c
            if lk.micro_f is not None:
                self.micro_f[sel] = lk.micro_f
            stats.lookups += len(lk.searches) * sel.size

    def macroscopic(self):
        """(Σ_s, Σ_a, Σ_f, Σ_t) block arrays from the cached microscopics,
        with the exact arithmetic chain of the scalar helper — shared with
        the Over Events driver via the provider (part of the OP ≡ OE
        fingerprint contract)."""
        m = self.ctx.provider.macroscopic_into(
            self.ctx.ws, self.n, self.mat_idx,
            self.micro_s, self.micro_c, self.micro_f,
            self.local_density,
        )
        return m.sigma_s, m.sigma_a, m.sigma_f, m.sigma_t

    def trace_events(self, lanes: np.ndarray, kind: EventKind,
                     cells_x: np.ndarray, cells_y: np.ndarray) -> None:
        trace = self.ctx.trace
        if trace is None:
            return
        nx = self.ctx.mesh.nx
        for j, lane in enumerate(lanes):
            trace.append(
                (int(self.idx[lane]), int(kind),
                 int(cells_y[j]) * nx + int(cells_x[j]))
            )

    # ------------------------------------------------------------------
    def run(self) -> None:
        while self.active.any():
            self.wave()
        self.writeback()

    def wave(self) -> None:
        """Advance every active lane by exactly one event."""
        ctx = self.ctx
        dispatch = ctx.dispatch
        ws = ctx.ws
        n = self.n
        sigma_s, sigma_a, sigma_f, sigma_t = self.macroscopic()
        dist = dispatch.run(
            "distances",
            n,
            ws,
            self.energy,
            self.mfp,
            sigma_t,
            self.x,
            self.y,
            self.omega_x,
            self.omega_y,
            self.cellx,
            self.celly,
            ctx.mesh.dx,
            ctx.mesh.dy,
            self.dt,
        )
        event = dispatch.run(
            "select_events",
            n,
            dist.d_collision,
            dist.d_facet,
            dist.d_census,
            out=ws.i64("event", n),
            scratch=ws.bool_("ev_scratch", n),
        )
        handlers = {
            "collide": self.handle_collisions,
            "cross_facet": self.handle_facets,
            "census": self.handle_census,
        }
        masks = {
            kind: self.active & (event == int(kind)) for kind in EVENT_KERNELS
        }
        for kind, kernel_name in EVENT_KERNELS.items():
            if masks[kind].any():
                handlers[kernel_name](masks[kind], dist, sigma_a, sigma_f, sigma_t)

    # ------------------------------------------------------------------
    def handle_collisions(self, cmask, dist, sigma_a, sigma_f, sigma_t) -> None:
        ctx = self.ctx
        config = ctx.config
        counters = ctx.counters
        c = np.nonzero(cmask)[0]
        d = dist.d_collision[c]
        sp = dist.speed[c]
        self.x[c] = self.x[c] + self.omega_x[c] * d
        self.y[c] = self.y[c] + self.omega_y[c] * d
        self.dt[c] = np.maximum(0.0, self.dt[c] - d / sp)
        weight_before = self.weight[c].copy()
        counters_at_event = self.rng.counters[c].copy()
        u_angle = self.rng.next_uniform(cmask)
        u_sense = self.rng.next_uniform(cmask)
        u_mfp = self.rng.next_uniform(cmask)
        counters.rng_draws += 3 * c.size
        a_ratio = ctx.mat_a[self.mat_idx[c]]
        (e_new, w_new, ox_new, oy_new, mfp_new, dep, term, below) = ctx.dispatch.run(
            "collide",
            c.size,
            self.energy[c],
            self.weight[c],
            self.omega_x[c],
            self.omega_y[c],
            sigma_a[c],
            sigma_t[c],
            a_ratio,
            u_angle,
            u_sense,
            u_mfp,
            config.energy_cutoff_ev,
            config.weight_cutoff,
            defer_weight_cutoff=config.use_russian_roulette,
        )
        self.energy[c] = e_new
        self.weight[c] = w_new
        self.omega_x[c] = ox_new
        self.omega_y[c] = oy_new
        self.mfp[c] = mfp_new
        self.deposit[c] += dep
        counters.collisions += c.size
        for lane in c:
            ctx.coll_pp[self.idx[lane]] += 1
        self.trace_events(c, EventKind.COLLISION, self.cellx[c], self.celly[c])

        # ---- fission banking (multiplying media extension) -------------
        fissile_here = ctx.mat_fissile[self.mat_idx[c]] & (sigma_t[c] > 0.0)
        if fissile_here.any():
            fis_mask = np.zeros(self.n, dtype=bool)
            fis_mask[c[fissile_here]] = True
            u_fission = self.rng.next_uniform(fis_mask)
            counters.rng_draws += int(fissile_here.sum())
            sel = c[fissile_here]
            counts = ctx.dispatch.run(
                "fission_bank",
                sel.size,
                weight_before[fissile_here],
                ctx.mat_nu[self.mat_idx[sel]],
                sigma_f[sel],
                sigma_t[sel],
                u_fission,
            )
            self.bank_secondaries(sel, counts, counters_at_event[fissile_here])

        dead = c[term]
        if dead.size:
            ctx.tally.flush_vec(
                self.cellx[dead], self.celly[dead], self.deposit[dead]
            )
            self.deposit[dead] = 0.0
            self.alive[dead] = False
            self.active[dead] = False
            counters.tally_flushes += dead.size
            counters.terminations += dead.size

        # ---- Russian roulette (extension) ------------------------------
        if config.use_russian_roulette and below.any():
            r_mask = np.zeros(self.n, dtype=bool)
            r_mask[c[below]] = True
            u_roulette = self.rng.next_uniform(r_mask)
            counters.rng_draws += int(below.sum())
            sel = c[below]
            w = self.weight[sel]
            survive, restored = ctx.dispatch.run(
                "roulette", sel.size, w, u_roulette, config.weight_cutoff
            )
            killed = sel[~survive]
            if killed.size:
                counters.roulette_kills += killed.size
                counters.roulette_loss_energy += float(
                    (self.weight[killed] * self.energy[killed]).sum()
                )
                self.weight[killed] = 0.0
                ctx.tally.flush_vec(
                    self.cellx[killed], self.celly[killed], self.deposit[killed]
                )
                self.deposit[killed] = 0.0
                self.alive[killed] = False
                self.active[killed] = False
                counters.tally_flushes += killed.size
                counters.terminations += killed.size
            survivors = sel[survive]
            if survivors.size:
                counters.roulette_survivals += survivors.size
                counters.roulette_gain_energy += float(
                    (
                        (restored - self.weight[survivors])
                        * self.energy[survivors]
                    ).sum()
                )
                self.weight[survivors] = restored

        # The energy changed: refresh the cached microscopic values.
        surv = c[self.alive[c]]
        if surv.size:
            self.lookup_all(surv)

    def bank_secondaries(self, sel, counts, counters_at_event) -> None:
        ctx = self.ctx
        c = ctx.counters
        for j, lane in enumerate(sel):
            n_children = int(counts[j])
            if n_children <= 0:
                continue
            c.fissions += 1
            gi = int(self.idx[lane])
            for k in range(n_children):
                child = _spawn_secondary(
                    ctx,
                    int(self.pid[lane]),
                    int(counters_at_event[j]),
                    k,
                    float(self.x[lane]),
                    float(self.y[lane]),
                    int(self.cellx[lane]),
                    int(self.celly[lane]),
                    float(self.local_density[lane]),
                    float(self.dt[lane]),
                )
                c_energy, c_weight = child.energy_weight
                c.fission_injected_energy += c_weight * c_energy
                c.secondaries_banked += 1
                c.rng_draws += 3
                ctx.bank.append((gi, int(counters_at_event[j]), k, child))

    def handle_facets(self, fmask, dist, sigma_a, sigma_f, sigma_t) -> None:
        ctx = self.ctx
        config = ctx.config
        counters = ctx.counters
        f = np.nonzero(fmask)[0]
        old_cx_f = self.cellx[f].copy()
        old_cy_f = self.celly[f].copy()
        d = dist.d_facet[f]
        sp = dist.speed[f]
        st = sigma_t[f]
        self.x[f] = self.x[f] + self.omega_x[f] * d
        self.y[f] = self.y[f] + self.omega_y[f] * d
        self.dt[f] = np.maximum(0.0, self.dt[f] - d / sp)
        self.mfp[f] = np.maximum(0.0, self.mfp[f] - d * st)
        # Snap the hit coordinate exactly onto the facet plane so rounding
        # never strands a particle outside its cell.
        ax = dist.axis[f]
        hit_x = ax == 0
        fx = f[hit_x]
        self.x[fx] = np.where(
            self.omega_x[fx] > 0.0, dist.x_hi[fx], dist.x_lo[fx]
        )
        fy = f[~hit_x]
        self.y[fy] = np.where(
            self.omega_y[fy] > 0.0, dist.y_hi[fy], dist.y_lo[fy]
        )
        # Flush the deposition register onto the tally mesh — the atomic
        # read-modify-write of §VI-A, performed unconditionally.
        ctx.tally.flush_vec(self.cellx[f], self.celly[f], self.deposit[f])
        self.deposit[f] = 0.0
        counters.tally_flushes += f.size
        new_cx, new_cy, new_ox, new_oy, reflected, escaped = ctx.dispatch.run(
            "cross_facet",
            f.size,
            self.cellx[f], self.celly[f],
            self.omega_x[f], self.omega_y[f], ax, ctx.mesh, config.boundary,
        )
        counters.facets += f.size
        for lane in f:
            ctx.facet_pp[self.idx[lane]] += 1
        self.trace_events(f, EventKind.FACET, old_cx_f, old_cy_f)
        gone = f[escaped]
        if gone.size:
            counters.escapes += gone.size
            counters.escaped_energy += float(
                (self.weight[gone] * self.energy[gone]).sum()
            )
            self.alive[gone] = False
            self.active[gone] = False
        stay = ~escaped
        self.cellx[f[stay]] = new_cx[stay]
        self.celly[f[stay]] = new_cy[stay]
        self.omega_x[f[stay]] = new_ox[stay]
        self.omega_y[f[stay]] = new_oy[stay]
        crossed = f[stay & ~reflected]
        # Load the destination cell's density — the random read.
        self.local_density[crossed] = ctx.mesh.density_at_vec(
            self.cellx[crossed], self.celly[crossed]
        )
        counters.density_reads += crossed.size
        counters.reflections += int(reflected.sum())
        if crossed.size:
            new_mat = ctx.material_map[
                self.celly[crossed], self.cellx[crossed]
            ]
            changed = crossed[new_mat != self.mat_idx[crossed]]
            self.mat_idx[crossed] = new_mat
            if changed.size:
                # Entered a different material: the cached microscopic
                # values are stale (multi-material extension).
                self.lookup_all(changed)

        # ---- importance splitting / roulette (VR extension) ------------
        if ctx.importance_map is not None and crossed.size:
            imap = ctx.importance_map
            cross_in_f = stay & ~reflected
            ratios = (
                imap[self.celly[crossed], self.cellx[crossed]]
                / imap[old_cy_f[cross_in_f], old_cx_f[cross_in_f]]
            )
            changed_r = ratios != 1.0
            sel = crossed[changed_r]
            if sel.size:
                counters_before = self.rng.counters[sel].copy()
                imp_mask = np.zeros(self.n, dtype=bool)
                imp_mask[sel] = True
                u_imp = self.rng.next_uniform(imp_mask)
                counters.rng_draws += sel.size
                r = ratios[changed_r]

                # splits (entering higher importance)
                up = r > 1.0
                if up.any():
                    n_after = split_counts(r[up], u_imp[up])
                    for pi, nsplit, ctr in zip(
                        sel[up], n_after, counters_before[up]
                    ):
                        if nsplit <= 1:
                            continue
                        counters.splits += 1
                        gi = int(self.idx[pi])
                        w_each = float(self.weight[pi]) / int(nsplit)
                        for k in range(int(nsplit) - 1):
                            cid = clone_id(
                                config.seed, int(self.pid[pi]), int(ctr), k
                            )
                            clone = ParticleRecord(
                                x=float(self.x[pi]),
                                y=float(self.y[pi]),
                                omega_x=float(self.omega_x[pi]),
                                omega_y=float(self.omega_y[pi]),
                                energy=float(self.energy[pi]),
                                weight=w_each,
                                cellx=int(self.cellx[pi]),
                                celly=int(self.celly[pi]),
                                particle_id=cid,
                                dt_to_census=float(self.dt[pi]),
                                mfp_to_collision=float(self.mfp[pi]),
                                rng_counter=0,
                                local_density=float(self.local_density[pi]),
                                scatter_bin=int(self.sbin[pi]),
                                capture_bin=int(self.cbin[pi]),
                                fission_bin=int(self.fbin[pi]),
                            )
                            counters.clones_banked += 1
                            ctx.bank.append((gi, int(ctr), k, clone))
                        self.weight[pi] = w_each

                # roulette (entering lower importance)
                down = ~up
                if down.any():
                    dsel = sel[down]
                    survive = u_imp[down] < r[down]
                    surv = dsel[survive]
                    if surv.size:
                        counters.roulette_survivals += surv.size
                        boosted = self.weight[surv] / r[down][survive]
                        counters.roulette_gain_energy += float(
                            (
                                (boosted - self.weight[surv])
                                * self.energy[surv]
                            ).sum()
                        )
                        self.weight[surv] = boosted
                    dead_i = dsel[~survive]
                    if dead_i.size:
                        counters.roulette_kills += dead_i.size
                        counters.roulette_loss_energy += float(
                            (
                                self.weight[dead_i] * self.energy[dead_i]
                            ).sum()
                        )
                        self.weight[dead_i] = 0.0
                        self.alive[dead_i] = False
                        self.active[dead_i] = False
                        counters.terminations += dead_i.size

    def handle_census(self, zmask, dist, sigma_a, sigma_f, sigma_t) -> None:
        ctx = self.ctx
        counters = ctx.counters
        z = np.nonzero(zmask)[0]
        new_x, new_y, new_mfp = ctx.dispatch.run(
            "census",
            z.size,
            self.x[z], self.y[z],
            self.omega_x[z], self.omega_y[z],
            self.mfp[z], sigma_t[z], dist.d_census[z],
        )
        self.x[z] = new_x
        self.y[z] = new_y
        self.mfp[z] = new_mfp
        self.dt[z] = 0.0
        ctx.tally.flush_vec(self.cellx[z], self.celly[z], self.deposit[z])
        self.deposit[z] = 0.0
        counters.tally_flushes += z.size
        counters.census_events += z.size
        self.trace_events(z, EventKind.CENSUS, self.cellx[z], self.celly[z])
        self.active[z] = False

    # ------------------------------------------------------------------
    def writeback(self) -> None:
        """Scatter final lane state back into the arena (vectorised)."""
        arena = self.arena
        idx = self.idx
        arena.x[idx] = self.x
        arena.y[idx] = self.y
        arena.omega_x[idx] = self.omega_x
        arena.omega_y[idx] = self.omega_y
        arena.energy[idx] = self.energy
        arena.weight[idx] = self.weight
        arena.cellx[idx] = self.cellx
        arena.celly[idx] = self.celly
        arena.dt_to_census[idx] = self.dt
        arena.mfp_to_collision[idx] = self.mfp
        arena.deposit_buffer[idx] = self.deposit
        arena.local_density[idx] = self.local_density
        arena.scatter_bin[idx] = self.sbin
        arena.capture_bin[idx] = self.cbin
        arena.fission_bin[idx] = self.fbin
        arena.alive[idx] = self.alive
        arena.rng_counter[idx] = self.rng.counters


def run_over_particles(
    config: SimulationConfig,
    arena: ParticleArena | None = None,
    tally: EnergyDepositionTally | None = None,
    trace: list | None = None,
    recorder=None,
):
    """Run the full calculation with the Over Particles scheme.

    Parameters
    ----------
    config:
        The simulation specification; ``config.op_block_size`` sets how
        many histories advance together (1 = classic depth-first order;
        final particle states are bit-identical for every block size).
    arena:
        A pre-sampled :class:`ParticleArena` (shard views from the worker
        pool, scheme-equivalence tests); sampled from the config's source
        when omitted.  Advanced in place.
    tally:
        An existing tally to accumulate into; a fresh one when omitted.
    trace:
        Optional list to receive the event trace
        ``(history_index, event_kind, flat_cell)`` — the input of the
        discrete-event parallel replay in :mod:`repro.simexec`.  Entries
        from different histories interleave when the block size exceeds
        one, but each history's own events appear in its execution order,
        which is all the trace consumer (it groups by history) requires.
    recorder:
        Optional :class:`repro.obs.Recorder` receiving the span tree
        (run → timestep → census_wave → kernel:*).  Purely observational:
        the physics is bit-identical with or without it.

    Returns
    -------
    TransportResult
        Tally, counters, the final arena (including any fission
        secondaries), and wall-clock time.

    .. deprecated::
        This entry point is a thin compatibility shim: the census loop,
        source emission and result wiring now live in the unified
        stepper (:func:`repro.core.stepper.run_stepped`), which runs a
        fixed over-particles plan bit-identically.  New call sites
        should use ``run_stepped`` directly.
    """
    # Imported here to avoid a circular import with stepper.py (which
    # owns the census loop but borrows this module's sweep machinery).
    from repro.core.stepper import SwitchPlan, run_stepped

    return run_stepped(
        config,
        SwitchPlan.fixed(Scheme.OVER_PARTICLES),
        arena=arena,
        tally=tally,
        trace=trace,
        recorder=recorder,
    )
