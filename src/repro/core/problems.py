"""The three test problems of the paper (§IV-B, Fig 2).

* **stream** — particles start in the centre of a mesh of homogeneously
  negligible density (1e-30 kg/m³) and stream; reflective boundaries make a
  particle cross the whole mesh several times per timestep.  At the paper's
  scale (4000² cells) ≈7000 facets are encountered per particle.
* **scatter** — homogeneously dense mesh (1e3 kg/m³): particles rattle in
  or near their birth cell, depositing energy until they fall below the
  energy of interest.  The paper simulates 10× more particles here.
* **csp** (centre square problem) — particles start in the bottom-left and
  stream across a near-vacuum mesh with a dense square in the centre; the
  most realistic balance of facet and collision events.

All problems share the paper's timestep (1e-7 s) and a 1 MeV mono-energetic
source.  The mesh is 1 m × 1 m: with a 4000² mesh this reproduces the
"≈7000 facets per particle" figure exactly — a 1 MeV neutron flies 1.38 m
per timestep and the mean of |Ω_x|+|Ω_y| over isotropic directions is 4/π,
giving 1.38 × (4/π) / (1/4000) ≈ 7000 crossings.

Factories take ``nx``/``nparticles`` overrides so the test-suite and the
pure-Python benchmarks can run reduced-scale instances; event statistics
per particle either do not depend on the mesh resolution (collisions) or
scale linearly with it (facet crossings), which the perf model exploits and
the characterisation bench validates.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SimulationConfig
from repro.particles.source import SourceRegion

__all__ = [
    "PAPER_MESH_SIZE",
    "PAPER_TIMESTEP_S",
    "PAPER_NPARTICLES_STREAM",
    "PAPER_NPARTICLES_SCATTER",
    "PAPER_NPARTICLES_CSP",
    "SOURCE_ENERGY_EV",
    "LOW_DENSITY",
    "HIGH_DENSITY",
    "stream_problem",
    "scatter_problem",
    "csp_problem",
    "PROBLEM_FACTORIES",
]

#: Mesh cells per axis used throughout the paper's evaluation.
PAPER_MESH_SIZE = 4000

#: Timestep chosen "to make runtimes acceptable" (§IV-B).
PAPER_TIMESTEP_S = 1.0e-7

#: Particles per timestep in the paper's runs.
PAPER_NPARTICLES_STREAM = 1_000_000
PAPER_NPARTICLES_SCATTER = 10_000_000
PAPER_NPARTICLES_CSP = 1_000_000

#: Mono-energetic source energy: 1 MeV.
SOURCE_ENERGY_EV = 1.0e6

#: The paper's homogeneous low density (stream, csp background) [kg/m³].
LOW_DENSITY = 1.0e-30

#: The paper's homogeneous high density (scatter, csp square) [kg/m³].
HIGH_DENSITY = 1.0e3

#: Physical mesh extent [m] (see module docstring).
MESH_WIDTH_M = 1.0


def _centre_source(width: float, height: float) -> SourceRegion:
    """A box of one-tenth the mesh width, centred."""
    cx, cy = width / 2.0, height / 2.0
    half = width / 20.0
    return SourceRegion(
        x0=cx - half, x1=cx + half, y0=cy - half, y1=cy + half,
        energy_ev=SOURCE_ENERGY_EV,
    )


def _corner_source(width: float, height: float) -> SourceRegion:
    """A box of one-tenth the mesh width in the bottom-left corner."""
    return SourceRegion(
        x0=0.0, x1=width / 10.0, y0=0.0, y1=height / 10.0,
        energy_ev=SOURCE_ENERGY_EV,
    )


def stream_problem(
    nx: int = PAPER_MESH_SIZE,
    ny: int | None = None,
    nparticles: int = PAPER_NPARTICLES_STREAM,
    **overrides,
) -> SimulationConfig:
    """The stream test case: centre source, homogeneously negligible density."""
    ny = nx if ny is None else ny
    density = np.full((ny, nx), LOW_DENSITY)
    return SimulationConfig(
        name="stream",
        nx=nx,
        ny=ny,
        width=MESH_WIDTH_M,
        height=MESH_WIDTH_M,
        density=density,
        source=_centre_source(MESH_WIDTH_M, MESH_WIDTH_M),
        nparticles=nparticles,
        dt=overrides.pop("dt", PAPER_TIMESTEP_S),
        **overrides,
    )


def scatter_problem(
    nx: int = PAPER_MESH_SIZE,
    ny: int | None = None,
    nparticles: int = PAPER_NPARTICLES_SCATTER,
    **overrides,
) -> SimulationConfig:
    """The scatter test case: centre source, homogeneously dense mesh."""
    ny = nx if ny is None else ny
    density = np.full((ny, nx), HIGH_DENSITY)
    return SimulationConfig(
        name="scatter",
        nx=nx,
        ny=ny,
        width=MESH_WIDTH_M,
        height=MESH_WIDTH_M,
        density=density,
        source=_centre_source(MESH_WIDTH_M, MESH_WIDTH_M),
        nparticles=nparticles,
        dt=overrides.pop("dt", PAPER_TIMESTEP_S),
        **overrides,
    )


def csp_problem(
    nx: int = PAPER_MESH_SIZE,
    ny: int | None = None,
    nparticles: int = PAPER_NPARTICLES_CSP,
    **overrides,
) -> SimulationConfig:
    """The centre square problem: corner source, dense square in the middle.

    The square spans ``[0.4, 0.6] × [0.4, 0.6]`` of the mesh extent.
    """
    ny = nx if ny is None else ny
    density = np.full((ny, nx), LOW_DENSITY)
    x = (np.arange(nx) + 0.5) / nx
    y = (np.arange(ny) + 0.5) / ny
    in_sq_x = (x >= 0.4) & (x <= 0.6)
    in_sq_y = (y >= 0.4) & (y <= 0.6)
    density[np.ix_(in_sq_y, in_sq_x)] = HIGH_DENSITY
    return SimulationConfig(
        name="csp",
        nx=nx,
        ny=ny,
        width=MESH_WIDTH_M,
        height=MESH_WIDTH_M,
        density=density,
        source=_corner_source(MESH_WIDTH_M, MESH_WIDTH_M),
        nparticles=nparticles,
        dt=overrides.pop("dt", PAPER_TIMESTEP_S),
        **overrides,
    )


#: Name → factory, for sweep drivers.
PROBLEM_FACTORIES = {
    "stream": stream_problem,
    "scatter": scatter_problem,
    "csp": csp_problem,
}
