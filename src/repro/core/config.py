"""Simulation configuration.

A :class:`SimulationConfig` fully determines a transport run: mesh, source,
material, cutoffs, RNG seed and the algorithmic options the paper studies
(scheme, data layout, energy-bin search strategy).  Two configs with equal
fields produce bit-reproducible runs — the property the counter-based RNG
buys (paper §IV-F).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

import numpy as np

from repro.mesh.boundary import BoundaryCondition
from repro.particles.source import SourceRegion
from repro.physics.variance import DEFAULT_ENERGY_CUTOFF_EV, DEFAULT_WEIGHT_CUTOFF

__all__ = ["Scheme", "Layout", "SearchStrategy", "SimulationConfig"]


class Scheme(Enum):
    """Parallelisation scheme (paper §V).

    ``AUTO`` defers the choice to the telemetry-driven scheduler in
    :mod:`repro.adaptive`, which picks (and may switch) the scheme per
    census step; physics is bit-identical to either fixed scheme.
    """

    OVER_PARTICLES = "over_particles"
    OVER_EVENTS = "over_events"
    AUTO = "auto"


class Layout(Enum):
    """Particle data layout (paper §VI-D).

    The layout does not change the physics; it changes the memory-access
    pattern, which the machine model prices.  The Over Events scheme and the
    GPU ports only support SoA.
    """

    AOS = "aos"
    SOA = "soa"


class SearchStrategy(Enum):
    """Energy-bin search for cross-section lookups (paper §VI-A)."""

    BINARY = "binary"
    CACHED_LINEAR = "cached_linear"


@dataclass(frozen=True)
class SimulationConfig:
    """Full specification of one transport calculation.

    Attributes
    ----------
    name:
        Problem label ("stream", "scatter", "csp", or custom).
    nx, ny:
        Mesh cells per axis.
    width, height:
        Mesh physical extent [m].
    density:
        Cell-centred density field, shape ``(ny, nx)`` [kg/m³].
    source:
        The particle source region.
    nparticles:
        Histories per timestep.
    dt:
        Timestep length [s]; the paper fixes 1e-7 s to control the number of
        events per timestep.
    ntimesteps:
        Number of timesteps to run.
    seed:
        Global RNG seed (Threefry key word 0).
    molar_mass_g_mol:
        Molar mass of the single homogeneous medium; also sets the elastic
        scattering mass ratio ``A ≈ M`` (in neutron masses).
    energy_cutoff_ev, weight_cutoff:
        Variance-reduction termination thresholds (§IV-E).
    xs_nentries:
        Points per cross-section table (§IV-D).
    search:
        Energy-bin search strategy (§VI-A).
    layout:
        Particle data layout (§VI-D).
    boundary:
        Problem-boundary treatment.  The paper's experiments all use
        reflective boundaries (§IV-C); vacuum (leakage) boundaries are an
        extension for shielding-style problems.
    use_russian_roulette:
        Replace the deterministic weight-cutoff termination with Russian
        roulette (unbiased stochastic termination) — the standard
        companion of implicit capture, provided as an extension.
    materials:
        Tuple of :class:`repro.xs.materials.Material`.  ``None`` (the
        paper's setup) means one homogeneous non-multiplying medium built
        from ``molar_mass_g_mol`` and ``xs_nentries``.  Multigroup mode
        only; ignored under the continuous-energy backend.
    xs_mode:
        Which cross-section backend the run uses
        (:class:`repro.xs.provider.XsMode`): the paper's multigroup
        tables, or the continuous-energy union-grid backend.
    ce_materials:
        Tuple of :class:`repro.xs.ce.CEMaterial` for the CE backend;
        ``None`` means the deterministic synthetic library sized by
        ``xs_nentries``.  CE mode only.
    material_map:
        Per-cell material index, shape ``(ny, nx)``; ``None`` means
        material 0 everywhere.  Multi-material meshes and fission are the
        paper's §IX future work, implemented here as extensions.
    importance_map:
        Optional per-cell importances enabling geometry splitting/roulette
        at importance-changing facet crossings (§IV-E's variance-reduction
        family); ``None`` disables the technique.
    op_block_size:
        Histories advanced together by the Over Particles driver.  Block
        size 1 reproduces the classic one-history-at-a-time depth-first
        traversal; larger blocks vectorise the per-event work across the
        block while the counter-based RNG keeps every history's draw
        sequence — and therefore its final state — bit-identical.
    """

    name: str
    nx: int
    ny: int
    width: float
    height: float
    density: np.ndarray
    source: SourceRegion
    nparticles: int
    dt: float = 1.0e-7
    ntimesteps: int = 1
    seed: int = 7
    molar_mass_g_mol: float = 1.0
    energy_cutoff_ev: float = DEFAULT_ENERGY_CUTOFF_EV
    weight_cutoff: float = DEFAULT_WEIGHT_CUTOFF
    xs_nentries: int = 25_000
    search: SearchStrategy = SearchStrategy.CACHED_LINEAR
    layout: Layout = Layout.AOS
    boundary: BoundaryCondition = BoundaryCondition.REFLECTIVE
    use_russian_roulette: bool = False
    materials: tuple | None = None
    material_map: np.ndarray | None = None
    importance_map: np.ndarray | None = None
    op_block_size: int = 64
    xs_mode: str = "multigroup"
    ce_materials: tuple | None = None

    def __post_init__(self) -> None:
        if self.nparticles < 1:
            raise ValueError("need at least one particle")
        if self.op_block_size < 1:
            raise ValueError("op_block_size must be at least 1")
        if self.dt <= 0:
            raise ValueError("timestep must be positive")
        if self.ntimesteps < 1:
            raise ValueError("need at least one timestep")
        if self.molar_mass_g_mol <= 0:
            raise ValueError("molar mass must be positive")
        density = np.asarray(self.density, dtype=np.float64)
        if density.shape != (self.ny, self.nx):
            raise ValueError(
                f"density shape {density.shape} != ({self.ny}, {self.nx})"
            )
        object.__setattr__(self, "density", density)
        if self.material_map is not None:
            mmap = np.asarray(self.material_map, dtype=np.int64)
            if mmap.shape != (self.ny, self.nx):
                raise ValueError(
                    f"material_map shape {mmap.shape} != ({self.ny}, {self.nx})"
                )
            nmat = self._declared_nmaterials()
            if mmap.min() < 0 or (nmat is not None and mmap.max() >= nmat):
                raise ValueError("material_map indices out of range")
            object.__setattr__(self, "material_map", mmap)
        if self.materials is not None and len(self.materials) == 0:
            raise ValueError("materials, when given, must be non-empty")
        if self.ce_materials is not None and len(self.ce_materials) == 0:
            raise ValueError("ce_materials, when given, must be non-empty")
        from repro.xs.provider import XsMode

        object.__setattr__(self, "xs_mode", XsMode.coerce(self.xs_mode))
        if self.importance_map is not None:
            imap = np.asarray(self.importance_map, dtype=np.float64)
            if imap.shape != (self.ny, self.nx):
                raise ValueError(
                    f"importance_map shape {imap.shape} != ({self.ny}, {self.nx})"
                )
            if np.any(imap <= 0):
                raise ValueError("importances must be positive")
            object.__setattr__(self, "importance_map", imap)

    @property
    def a_ratio(self) -> float:
        """Elastic-scattering target mass in neutron masses (A ≈ molar mass)."""
        return self.molar_mass_g_mol

    def with_(self, **changes) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def total_source_energy_ev(self) -> float:
        """Weighted energy injected per timestep — the conservation budget."""
        return self.nparticles * self.source.energy_ev * self.source.weight

    def resolved_materials(self) -> tuple:
        """The material set, defaulting to the paper's single homogeneous
        non-multiplying medium.  Builds tables; call once per run."""
        if self.materials is not None:
            return tuple(self.materials)
        from repro.xs.materials import hydrogenous_moderator

        return (
            hydrogenous_moderator(self.xs_nentries, self.molar_mass_g_mol),
        )

    def resolved_material_map(self) -> np.ndarray:
        """Per-cell material indices (zeros when not configured)."""
        if self.material_map is not None:
            return self.material_map
        return np.zeros((self.ny, self.nx), dtype=np.int64)

    def _declared_nmaterials(self) -> int | None:
        """Material count the map may index, or ``None`` when open-ended
        (CE mode with the synthetic library, which sizes itself to the
        map)."""
        from repro.xs.provider import XsMode

        if XsMode.coerce(self.xs_mode) is XsMode.CONTINUOUS_ENERGY:
            if self.ce_materials is not None:
                return len(self.ce_materials)
            return None
        return len(self.materials) if self.materials else 1

    def resolved_provider(self):
        """Build this config's cross-section backend
        (:class:`repro.xs.provider.XsProvider`).  Builds tables/grids;
        call once per run and thread the instance through."""
        from repro.xs.provider import XsMode, resolve_provider

        mode = XsMode.coerce(self.xs_mode)
        if mode is XsMode.CONTINUOUS_ENERGY:
            nmat = 1
            if self.material_map is not None:
                nmat = int(self.material_map.max()) + 1
            return resolve_provider(
                mode,
                ce_materials=self.ce_materials,
                nmaterials=nmat,
                xs_nentries=self.xs_nentries,
            )
        return resolve_provider(
            mode,
            materials=self.resolved_materials(),
            xs_nentries=self.xs_nentries,
        )
