"""Top-level simulation facade and result type.

:class:`Simulation` is the public entry point most users want::

    from repro.core import Simulation, csp_problem, Scheme

    sim = Simulation(csp_problem(nx=128, nparticles=1000))
    result = sim.run(Scheme.OVER_PARTICLES)
    print(result.counters.total_events, result.tally.total())

Both schemes are exposed behind the same interface and produce identical
physics; :class:`TransportResult` carries everything downstream layers need
— the tally for validation, the counters for the machine models, and the
final particle arena for multi-timestep coupling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Scheme, SimulationConfig
from repro.core.counters import Counters
from repro.mesh.tally import EnergyDepositionTally
from repro.particles.arena import ParticleArena

__all__ = ["TransportResult", "Simulation"]


@dataclass
class TransportResult:
    """Everything a transport run produces.

    Attributes
    ----------
    config:
        The configuration that was run.
    scheme:
        Which parallelisation scheme produced the result.
    tally:
        The energy-deposition tally.
    counters:
        Algorithm instrumentation (events, memory touches, work
        distribution) for the performance model.
    arena:
        The final particle population as one SoA
        :class:`~repro.particles.arena.ParticleArena` (both schemes;
        includes any fission secondaries/clones).  Use
        ``arena.as_particles()`` for detached AoS records, or
        ``arena.proxy(i)`` for a mutable per-index view.
    wallclock_s:
        Host wall-clock time of the Python run.  *Not* used by any paper
        figure — those come from the machine models — but reported for the
        pytest-benchmark harness.
    """

    config: SimulationConfig
    scheme: Scheme
    tally: EnergyDepositionTally
    counters: Counters
    arena: ParticleArena
    wallclock_s: float
    #: Per-worker accounting when the run executed on the worker pool
    #: (:mod:`repro.parallel.pool`); ``None`` for serial runs.
    pool: "PoolRunInfo | None" = None

    # ------------------------------------------------------------------
    @property
    def particles(self):
        """Removed — the ``particles | store`` union collapsed into
        :attr:`arena`."""
        raise AttributeError(
            "TransportResult.particles was removed: the population now "
            "lives in result.arena (ParticleArena). Use "
            "result.arena.as_particles() for a detached AoS list, or "
            "result.arena.proxy(i) for a per-index view."
        )

    @property
    def store(self):
        """Removed — the ``particles | store`` union collapsed into
        :attr:`arena`."""
        raise AttributeError(
            "TransportResult.store was removed: the population now lives "
            "in result.arena (ParticleArena), which is a ParticleStore "
            "subclass — use result.arena directly."
        )

    def in_flight_energy_ev(self) -> float:
        """Weighted energy still carried by live particles."""
        alive = self.arena.alive
        return float(
            np.sum(self.arena.weight[alive] * self.arena.energy[alive])
        )

    def deposited_energy_ev(self) -> float:
        """Total energy deposited on the tally mesh."""
        return self.tally.total()

    def alive_count(self) -> int:
        """Histories still alive (censused, not terminated)."""
        return int(self.arena.alive.sum())


class Simulation:
    """Facade over the two scheme drivers.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.SimulationConfig`, typically from one
        of the problem factories in :mod:`repro.core.problems`.
    """

    def __init__(self, config: SimulationConfig):
        self.config = config

    def run(
        self,
        scheme: Scheme = Scheme.OVER_PARTICLES,
        *,
        nworkers: int | None = None,
        schedule: "ScheduleKind | None" = None,
        chunk: int = 64,
        max_retries: int = 2,
        shard_timeout: float | None = None,
        max_worker_respawns: int = 3,
        fault_plan: "FaultPlan | None" = None,
        recorder: "object | None" = None,
        live: "object | None" = None,
        flight_dir: str | None = None,
    ) -> TransportResult:
        """Run the configured calculation with the chosen scheme.

        Parameters
        ----------
        scheme:
            Parallelisation scheme (traversal order).  ``Scheme.AUTO``
            hands the per-census-step choice to the telemetry-driven
            scheduler (:mod:`repro.adaptive`); an explicit
            :class:`~repro.core.stepper.SwitchPlan` runs a declarative
            switch schedule.  Physics is bit-identical in every case.
        nworkers:
            ``None`` (default) runs the plain serial driver.  Any integer
            ≥ 1 routes through the shared-memory worker pool
            (:mod:`repro.parallel.pool`): histories are sharded across
            that many processes, each accumulating a private tally that is
            reduced at the end.  ``nworkers=1`` uses the pool's in-process
            path, so its result is bit-comparable to any other worker
            count.
        schedule:
            Pool work distribution — ``ScheduleKind.STATIC`` (contiguous
            blocks, the default) or ``ScheduleKind.DYNAMIC`` (shared chunk
            queue).  Ignored for serial runs.
        chunk:
            Histories per DYNAMIC queue entry.
        max_retries:
            Per-shard retry budget when a worker dies, hangs, or raises
            (see ``PoolOptions.max_retries``).
        shard_timeout:
            Seconds one shard may run before its worker is declared hung
            (``None`` disables the per-shard watchdog).
        max_worker_respawns:
            Pool-wide replacement-worker budget before degraded in-process
            draining takes over.
        fault_plan:
            Deterministic fault injection
            (:class:`~repro.parallel.faults.FaultPlan`) for chaos tests
            and recovery demos; requires ``nworkers >= 2``.
        recorder:
            Optional :class:`~repro.obs.spans.Recorder` capturing the
            run's span tree and event log.  ``None`` (default) records
            nothing and the run is bit-identical to one with telemetry
            attached.
        live:
            Optional :class:`~repro.obs.live.LiveAggregator` attaching
            the live observability plane: per-census-step counter totals
            stream into it while the run advances (serial runs publish
            directly from the stepper; pooled runs via the shared stats
            board), ready to be served by
            :class:`~repro.obs.server.MetricsServer`.  Purely
            observational — physics is bit-identical with it on or off.
        flight_dir:
            Directory for pooled workers' flight-recorder dumps (needs
            ``recorder``); ``None`` uses a private temp dir.  See
            ``PoolOptions.flight_dir``.
        """
        # Local imports: the drivers import TransportResult from here.
        from repro.core.stepper import run_stepped, validate_scheme_options

        # One validation point for scheme/block-size combinations
        # (raises a ValueError that lists the valid schemes).
        validate_scheme_options(self.config, scheme)
        if nworkers is not None:
            from repro.parallel.pool import PoolOptions, run_pool
            from repro.parallel.schedule import ScheduleKind

            options = PoolOptions(
                nworkers=nworkers,
                schedule=schedule if schedule is not None else ScheduleKind.STATIC,
                chunk=chunk,
                max_retries=max_retries,
                shard_timeout=shard_timeout,
                max_worker_respawns=max_worker_respawns,
                fault_plan=fault_plan,
                flight_dir=flight_dir,
            )
            return run_pool(
                self.config, scheme, options, recorder=recorder, live=live
            )
        probe = None
        if live is not None:
            live.update_run(
                problem=getattr(self.config, "name", "") or "",
                nparticles=int(self.config.nparticles),
                ntimesteps=int(self.config.ntimesteps),
                scheme=scheme.value if isinstance(scheme, Scheme) else "plan",
                nworkers=0,
                mode="serial",
            )
            probe = live.probe(0)
        result = run_stepped(
            self.config, scheme, recorder=recorder, probe=probe
        )
        if live is not None:
            # Final commit folds in what only lands at finalisation
            # (OP's xs-lookup statistics) before freezing the snapshot.
            probe.commit_shard(result.counters, self.config.nparticles)
            live.mark_done()
        return result

    def run_both(self) -> tuple[TransportResult, TransportResult]:
        """Run both schemes on identical inputs (for comparisons/tests)."""
        return self.run(Scheme.OVER_PARTICLES), self.run(Scheme.OVER_EVENTS)
