"""Top-level simulation facade and result type.

:class:`Simulation` is the public entry point most users want::

    from repro.core import Simulation, csp_problem, Scheme

    sim = Simulation(csp_problem(nx=128, nparticles=1000))
    result = sim.run(Scheme.OVER_PARTICLES)
    print(result.counters.total_events, result.tally.total())

Both schemes are exposed behind the same interface and produce identical
physics; :class:`TransportResult` carries everything downstream layers need
— the tally for validation, the counters for the machine models, and the
final particle population for multi-timestep coupling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Scheme, SimulationConfig
from repro.core.counters import Counters
from repro.mesh.tally import EnergyDepositionTally
from repro.particles.particle import Particle
from repro.particles.soa import ParticleStore

__all__ = ["TransportResult", "Simulation"]


@dataclass
class TransportResult:
    """Everything a transport run produces.

    Attributes
    ----------
    config:
        The configuration that was run.
    scheme:
        Which parallelisation scheme produced the result.
    tally:
        The energy-deposition tally.
    counters:
        Algorithm instrumentation (events, memory touches, work
        distribution) for the performance model.
    particles:
        Final AoS particle list (Over Particles runs).
    store:
        Final SoA store (Over Events runs).
    wallclock_s:
        Host wall-clock time of the Python run.  *Not* used by any paper
        figure — those come from the machine models — but reported for the
        pytest-benchmark harness.
    """

    config: SimulationConfig
    scheme: Scheme
    tally: EnergyDepositionTally
    counters: Counters
    particles: list[Particle] | None
    store: ParticleStore | None
    wallclock_s: float

    # ------------------------------------------------------------------
    def in_flight_energy_ev(self) -> float:
        """Weighted energy still carried by live particles."""
        if self.store is not None:
            alive = self.store.alive
            return float(
                np.sum(self.store.weight[alive] * self.store.energy[alive])
            )
        assert self.particles is not None
        return sum(p.weight * p.energy for p in self.particles if p.alive)

    def deposited_energy_ev(self) -> float:
        """Total energy deposited on the tally mesh."""
        return self.tally.total()

    def alive_count(self) -> int:
        """Histories still alive (censused, not terminated)."""
        if self.store is not None:
            return int(self.store.alive.sum())
        assert self.particles is not None
        return sum(1 for p in self.particles if p.alive)


class Simulation:
    """Facade over the two scheme drivers.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.SimulationConfig`, typically from one
        of the problem factories in :mod:`repro.core.problems`.
    """

    def __init__(self, config: SimulationConfig):
        self.config = config

    def run(self, scheme: Scheme = Scheme.OVER_PARTICLES) -> TransportResult:
        """Run the configured calculation with the chosen scheme."""
        # Local imports: the drivers import TransportResult from here.
        from repro.core.over_events import run_over_events
        from repro.core.over_particles import run_over_particles

        if scheme is Scheme.OVER_PARTICLES:
            return run_over_particles(self.config)
        if scheme is Scheme.OVER_EVENTS:
            return run_over_events(self.config)
        raise ValueError(f"unknown scheme: {scheme}")

    def run_both(self) -> tuple[TransportResult, TransportResult]:
        """Run both schemes on identical inputs (for comparisons/tests)."""
        return self.run(Scheme.OVER_PARTICLES), self.run(Scheme.OVER_EVENTS)
