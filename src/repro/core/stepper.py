"""The unified census stepper — one census loop for every driver.

Historically ``over_particles.py`` and ``over_events.py`` (and the 3-D
driver) each owned a private copy of the same census scaffolding: source
emission, the ``for step in range(ntimesteps)`` loop, the census-boundary
``dt_to_census`` reset, fission-bank bookkeeping and the final counter
wiring.  This module hoists all of that into one place:

* :func:`drive_census_loop` — the census loop itself (run span →
  timestep spans).  Every driver routes through it; the
  ``repro.kernels`` audit rejects any new ``range(ntimesteps)`` loop
  outside this module.
* :class:`CensusStepper` / :func:`run_stepped` — the full 2-D transport
  driver.  Each census step's transport is delegated to a pluggable
  scheme strategy (OP blocked lock-step or OE breadth-first) chosen per
  step by a *plan*, so the scheme becomes a per-census-step decision
  rather than a per-run constant.
* :class:`StepDecision` / :class:`SwitchPlan` — declarative switch
  schedules.  ``SwitchPlan.fixed(scheme)`` reproduces the legacy
  single-scheme drivers bit-for-bit; arbitrary schedules (including
  adversarial every-step switching) remain physics-bit-identical because
  every history owns a counter-based RNG stream and all census-boundary
  state lives in the arena.

Parity argument (the headline test of the adaptive PR): at a census
boundary the entire transport state of a history is its arena row —
position, direction, energy, weight, cached bins, ``dt_to_census``,
``mfp_to_collision`` and the RNG counter.  Both strategies read exactly
that state at step entry and leave exactly that state at step exit
(OP synchronises RNG counters per block writeback, the stepper
synchronises OE counters at every step end), so *which* strategy
advances a given step cannot change any history's event sequence.  Only
instrumentation that prices traversal order (xs probe/bin-reuse
counters, workspace churn, kernel profile) may differ between
schedules; the physics counters, tallies and final population are
invariant, which :func:`repro.ensemble.engine.population_fingerprint`
makes checkable in one hash.

Switch-boundary population maintenance (``sort_by`` / ``compact``) is
also parity-safe: sorting permutes storage order only (the fingerprint
sorts by ``particle_id`` internally), and compaction parks dead
histories in a morgue that is re-appended before the result is built.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import Scheme, SimulationConfig
from repro.core.counters import Counters
from repro.kernels import KernelDispatch, Workspace
from repro.mesh.structured import StructuredMesh
from repro.mesh.tally import EnergyDepositionTally
from repro.obs.live import NULL_PROBE
from repro.obs.spans import NULL_RECORDER
from repro.particles.source import sample_source

__all__ = [
    "StepDecision",
    "SwitchPlan",
    "CensusStepper",
    "census_dt_reset",
    "drive_census_loop",
    "run_stepped",
    "validate_scheme_options",
]

_SORT_KEYS = (None, "energy", "cell", "particle_id")


def validate_scheme_options(config: SimulationConfig, scheme) -> None:
    """The one place scheme / block-size combinations are validated.

    ``Simulation.run``, :func:`run_stepped` and the worker pool all call
    this instead of re-validating per driver.  Accepts the two fixed
    schemes, ``Scheme.AUTO`` and explicit :class:`SwitchPlan` instances.
    """
    if isinstance(scheme, SwitchPlan):
        return
    if not isinstance(scheme, Scheme):
        valid = ", ".join(s.value for s in Scheme)
        raise ValueError(
            f"unknown scheme: {scheme!r} (valid schemes: {valid})"
        )
    if config.op_block_size < 1 and scheme is not Scheme.OVER_EVENTS:
        raise ValueError(
            f"op_block_size must be >= 1 for scheme {scheme.value!r}, "
            f"got {config.op_block_size}"
        )


@dataclass(frozen=True)
class StepDecision:
    """What one census step should do.

    ``scheme`` picks the strategy (a fixed scheme, never ``AUTO``);
    ``block_size`` overrides ``config.op_block_size`` for an OP step
    (block size is physics-invariant, so any value is parity-safe);
    ``sort_key`` / ``compact`` request population maintenance *before*
    the step runs (both physics-invariant, see module docstring);
    ``reason`` is free-form scheduler provenance for the switch trace.
    """

    scheme: Scheme
    block_size: int | None = None
    sort_key: str | None = None
    compact: bool = False
    reason: str = ""

    def __post_init__(self):
        if self.scheme not in (Scheme.OVER_PARTICLES, Scheme.OVER_EVENTS):
            raise ValueError(
                f"a StepDecision needs a concrete scheme "
                f"(over_particles or over_events), got {self.scheme!r}"
            )
        if self.block_size is not None:
            if self.scheme is not Scheme.OVER_PARTICLES:
                raise ValueError(
                    "block_size only applies to over_particles steps"
                )
            if self.block_size < 1:
                raise ValueError(
                    f"block_size must be >= 1, got {self.block_size}"
                )
        if self.sort_key not in _SORT_KEYS:
            raise ValueError(
                f"sort_key must be one of {_SORT_KEYS[1:]}, "
                f"got {self.sort_key!r}"
            )


@dataclass(frozen=True)
class SwitchPlan:
    """A declarative switch schedule: one decision per census step.

    Steps beyond the last decision repeat it, so a one-entry plan is a
    fixed-scheme run.  Frozen and built from frozen decisions, so a plan
    pickles cleanly into pool workers.
    """

    decisions: tuple[StepDecision, ...]

    def __post_init__(self):
        if not self.decisions:
            raise ValueError("a SwitchPlan needs at least one decision")

    @classmethod
    def fixed(cls, scheme: Scheme) -> "SwitchPlan":
        """The legacy single-scheme run, as a plan."""
        return cls((StepDecision(scheme=scheme),))

    @property
    def fixed_scheme(self) -> Scheme | None:
        """The single scheme this plan uses, or ``None`` if it switches
        schemes or performs boundary maintenance."""
        schemes = {d.scheme for d in self.decisions}
        boundary = any(d.sort_key or d.compact for d in self.decisions)
        if len(schemes) == 1 and not boundary:
            return next(iter(schemes))
        return None

    def decide(self, step: int, stepper) -> StepDecision:
        return self.decisions[min(step, len(self.decisions) - 1)]


def census_dt_reset(dt_to_census, alive, dt, lanes=None) -> None:
    """Re-arm the census clocks of surviving histories at a boundary.

    The census-boundary scaffolding formerly copy-pasted across both 2-D
    drivers and the 3-D driver; ``lanes`` switches to per-replica dt for
    fused ensemble runs.
    """
    if lanes is None:
        dt_to_census[alive] = dt
    else:
        dt_lane = lanes.dt[lanes.rep]
        dt_to_census[alive] = dt_lane[alive]


def drive_census_loop(recorder, ntimesteps, run_attrs, begin_step,
                      run_step) -> None:
    """THE census loop.  All transport drivers route through here.

    ``begin_step(step)`` runs census-boundary bookkeeping *outside* the
    timestep span (dt re-arm, scheme decisions, population maintenance);
    ``run_step(step)`` advances every live history to census *inside*
    it.  The kernels audit (``python -m repro.kernels --check``) rejects
    any census-loop reimplementation outside this module, so the loop
    structure — and the span tree shape telemetry consumers rely on —
    stays single-sourced.
    """
    rec = NULL_RECORDER if recorder is None else recorder
    with rec.span("run", **run_attrs):
        for step in range(ntimesteps):
            begin_step(step)
            with rec.span("timestep", step=step):
                run_step(step)


class _OPStrategy:
    """Blocked lock-step depth-first transport for one census step.

    Thin scheduling shell around the legacy ``_SweepContext`` /
    ``_Block`` machinery (still owned by ``over_particles.py``); the
    context persists across steps so a pure-OP plan replays the legacy
    driver's exact object lifecycle.
    """

    scheme = Scheme.OVER_PARTICLES

    def __init__(self, stepper: "CensusStepper"):
        from repro.core.over_particles import _SweepContext

        if stepper.lanes is not None:
            raise ValueError(
                "fused ensemble lanes require the over_events strategy "
                "(the fused OP path lives in repro.ensemble.op)"
            )
        self.stepper = stepper
        ctx = _SweepContext(stepper.run_config, stepper.mesh,
                            stepper.tally, stepper.dispatch, stepper.ws,
                            provider=stepper.provider)
        ctx.trace = stepper.trace
        ctx.counters = stepper.counters
        self.ctx = ctx

    def begin_step(self, step: int) -> None:
        pass

    def run_step(self, step: int, decision: StepDecision, rec) -> None:
        from repro.core.over_particles import _Block

        stepper = self.stepper
        arena = stepper.arena
        ctx = self.ctx
        ctx.coll_pp = stepper.coll_pp
        ctx.facet_pp = stepper.facet_pp
        block_size = decision.block_size or stepper.run_config.op_block_size
        cursor = 0
        while cursor < len(arena):
            hi = min(cursor + block_size, len(arena))
            idx = cursor + np.nonzero(arena.alive[cursor:hi])[0]
            if idx.size:
                with rec.span(
                    "census_wave", lo=cursor, hi=hi, lanes=int(idx.size),
                ):
                    _Block(ctx, arena, idx).run()
            cursor = hi
            # Drain the fission bank within the timestep: offspring join
            # the population in the deterministic (parent, event, child)
            # order and are tracked in turn.
            if cursor == len(arena) and ctx.bank:
                ctx.bank.sort(key=lambda entry: entry[:3])
                children = [entry[3] for entry in ctx.bank]
                arena.append_records(children)
                grow = np.zeros(len(children), dtype=np.int64)
                ctx.coll_pp = np.concatenate([ctx.coll_pp, grow])
                ctx.facet_pp = np.concatenate([ctx.facet_pp, grow])
                ctx.bank = []

    def end_step(self) -> None:
        # Block writeback already synchronised every RNG counter into the
        # arena; only the shared per-particle books need rebinding (they
        # may have grown with banked children).
        self.stepper.coll_pp = self.ctx.coll_pp
        self.stepper.facet_pp = self.ctx.facet_pp
        self.stepper.oe_dirty = True


class _OEStrategy:
    """Breadth-first event-pass transport for one census step.

    Wraps the legacy ``_EventContext`` / ``_event_pass`` machinery (still
    owned by ``over_events.py``).  The context persists across
    consecutive OE steps — preserving the cross-timestep bin-reuse cache
    a pure-OE run relies on — and is rebuilt whenever another strategy
    (or boundary maintenance) touched the population, because its
    positional caches (micro-XS arrays, material index, RNG gather)
    would be stale.
    """

    scheme = Scheme.OVER_EVENTS

    def __init__(self, stepper: "CensusStepper"):
        self.stepper = stepper
        self.ctx = None
        self.handlers = None

    def _ensure_ctx(self):
        from repro.core.over_events import _EventContext

        stepper = self.stepper
        if self.ctx is not None and not stepper.oe_dirty:
            return self.ctx
        ctx = _EventContext(
            stepper.run_config, stepper.mesh, stepper.tally, stepper.arena,
            stepper.dispatch, stepper.ws, lanes=stepper.lanes,
            provider=stepper.provider,
        )
        # Charge the shared books (the provider instance is shared too, so
        # cross-section data is built exactly once per run).
        ctx.counters = stepper.counters
        ctx.coll_pp = stepper.coll_pp
        ctx.facet_pp = stepper.facet_pp
        self.handlers = {
            "collide": ctx.handle_collisions,
            "cross_facet": ctx.handle_facets,
            "census": ctx.handle_census,
        }
        self.ctx = ctx
        stepper.oe_dirty = False
        return ctx

    def begin_step(self, step: int) -> None:
        ctx = self._ensure_ctx()
        store = ctx.store
        store.censused[:] = ~store.alive

    def run_step(self, step: int, decision: StepDecision, rec) -> None:
        from repro.core.over_events import _event_pass

        ctx = self.ctx
        ws = self.stepper.ws
        store = ctx.store
        # Refresh the cached microscopic cross sections for every live
        # history (Over Particles does the same at each history start).
        ctx.refresh_micro(np.nonzero(store.alive)[0])
        npass = 0
        while True:
            n = len(store)
            active = ws.bool_("active", n)
            np.logical_not(store.censused, out=active)
            np.logical_and(store.alive, active, out=active)
            if not active.any():
                break
            with rec.span("event_pass", index=npass) as pass_span:
                _event_pass(ctx, self.handlers, active, n, pass_span)
            npass += 1
            store = ctx.store

    def end_step(self) -> None:
        ctx = self.ctx
        # In-place write — the arena's fields are views of one shared
        # buffer and must never be rebound.  Synchronising every step
        # (not just at run end, as the legacy driver did) is what makes
        # an OE→OP hand-off read the right streams; the final step's
        # write is bitwise the legacy end-of-run write.
        ctx.store.rng_counter[...] = ctx.rng.counters
        self.stepper.coll_pp = ctx.coll_pp
        self.stepper.facet_pp = ctx.facet_pp


class CensusStepper:
    """Owns the census loop, source emission, census-boundary
    bookkeeping and the shared result books; delegates each step's
    transport to a scheme strategy picked by the plan."""

    def __init__(self, config: SimulationConfig, *, arena=None, tally=None,
                 trace=None, recorder=None, lanes=None, provider=None,
                 probe=None):
        self.config = config
        self.rec = NULL_RECORDER if recorder is None else recorder
        #: Live-plane publisher (repro.obs.live); NULL_PROBE when off.
        self.probe = NULL_PROBE if probe is None else probe
        self.lanes = lanes
        self.trace = trace
        self.mesh = StructuredMesh(
            config.nx, config.ny, config.width, config.height, config.density
        )
        self.tally = tally if tally is not None else EnergyDepositionTally(
            config.nx, config.ny
        )
        #: The cross-section backend, built exactly once per run and
        #: threaded into every context (and the source sampler).
        self.provider = (
            provider if provider is not None else config.resolved_provider()
        )
        # Multigroup contexts see a config with the resolved material set
        # (legacy contract: tables are built once per run and travel with
        # the config to pool workers); other backends rebuild from the
        # config's own fields.
        from repro.xs.provider import XsMode

        if self.provider.mode is XsMode.MULTIGROUP:
            self.run_config = (
                config if config.materials is not None
                else config.with_(materials=self.provider.materials)
            )
        else:
            self.run_config = config
        if arena is None:
            arena = sample_source(
                self.mesh, config.source, config.nparticles, config.seed,
                config.dt,
                provider=self.provider,
            )
        self.arena = arena
        self.dispatch = KernelDispatch(
            recorder=self.rec if self.rec.enabled else None
        )
        self.ws = Workspace()
        self.counters = Counters(nparticles=len(arena))
        self.coll_pp = np.zeros(len(arena), dtype=np.int64)
        self.facet_pp = np.zeros(len(arena), dtype=np.int64)
        if lanes is None:
            self.counters.rng_draws += 4 * len(arena)  # birth draws
        else:
            birth = np.bincount(lanes.rep, minlength=lanes.nreplicas)
            for r in range(lanes.nreplicas):
                lanes.counters[r].rng_draws += 4 * int(birth[r])
        #: Dead histories parked by compact-at-switch, re-appended before
        #: the result is built so population accounting and fingerprints
        #: match an uncompacted run.
        self.morgue: list[tuple] = []
        #: True while the arena may disagree with the OE context's
        #: positional caches (set by OP steps and boundary maintenance).
        self.oe_dirty = True
        self._strategies: dict[Scheme, object] = {}
        self.result_scheme = Scheme.AUTO

    # ------------------------------------------------------------------
    def alive_count(self) -> int:
        return int(self.arena.alive.sum())

    def _probe_step(self, step: int) -> None:
        """Publish this shard's in-progress counter totals to the live
        plane (fused ensemble lanes keep per-replica counters, so sum
        them in; OP's xs stats fold only at finalisation and appear at
        shard commit instead — live totals jump there, monotonically)."""
        c = self.counters
        events = c.total_events
        xs = c.xs_lookups
        probes = c.xs_binary_probes + c.xs_linear_probes
        if self.lanes is not None:
            for rc in self.lanes.counters:
                events += rc.total_events
                xs += rc.xs_lookups
                probes += rc.xs_binary_probes + rc.xs_linear_probes
        self.probe.step_complete(
            step=step,
            alive=self.alive_count(),
            events=int(events),
            xs_lookups=int(xs),
            xs_probes=int(probes),
        )

    def _strategy(self, scheme: Scheme):
        strat = self._strategies.get(scheme)
        if strat is None:
            cls = (
                _OPStrategy if scheme is Scheme.OVER_PARTICLES
                else _OEStrategy
            )
            strat = cls(self)
            self._strategies[scheme] = strat
        return strat

    def _apply_boundary(self, decision: StepDecision) -> None:
        """Population maintenance at a switch boundary (physics-invariant:
        sorting permutes storage only; compaction parks dead histories in
        the morgue until finalisation)."""
        if decision.sort_key is None and not decision.compact:
            return
        if self.trace is not None:
            raise ValueError(
                "switch-boundary sort/compact is incompatible with event "
                "tracing (traces address histories by arena index)"
            )
        if self.lanes is not None:
            raise ValueError(
                "switch-boundary sort/compact is unsupported under fused "
                "ensemble lanes"
            )
        if decision.sort_key is not None:
            order = self.arena.sort_by(decision.sort_key)
            self.coll_pp = self.coll_pp[order]
            self.facet_pp = self.facet_pp[order]
            self.oe_dirty = True
        if decision.compact:
            dead = np.nonzero(~self.arena.alive)[0]
            if dead.size:
                self.morgue.append((
                    self.arena.subset(dead),
                    self.coll_pp[dead].copy(),
                    self.facet_pp[dead].copy(),
                ))
                alive = np.nonzero(self.arena.alive)[0]
                self.coll_pp = self.coll_pp[alive]
                self.facet_pp = self.facet_pp[alive]
                self.arena.compact()
                self.oe_dirty = True

    # ------------------------------------------------------------------
    def run(self, plan) -> None:
        config = self.config
        rec = self.rec
        fixed = getattr(plan, "fixed_scheme", None)
        self.result_scheme = fixed if fixed is not None else Scheme.AUTO
        announce = fixed is None
        state: dict = {}

        def begin_step(step: int) -> None:
            decision = plan.decide(step, self)
            prev = state.get("scheme")
            if announce and decision.scheme is not prev:
                if decision.scheme is Scheme.OVER_PARTICLES:
                    block = decision.block_size or config.op_block_size
                else:
                    block = 0
                rec.event(
                    "scheme_switch",
                    step=step,
                    scheme=decision.scheme.value,
                    prev=prev.value if prev is not None else "",
                    reason=decision.reason,
                    block_size=int(block),
                    alive=self.alive_count(),
                )
            state["scheme"] = decision.scheme
            state["decision"] = decision
            self._apply_boundary(decision)
            if step > 0:
                census_dt_reset(
                    self.arena.dt_to_census, self.arena.alive, config.dt,
                    self.lanes,
                )
            strategy = self._strategy(decision.scheme)
            strategy.begin_step(step)
            state["strategy"] = strategy

        def run_step(step: int) -> None:
            decision = state["decision"]
            strategy = state["strategy"]
            strategy.run_step(step, decision, rec)
            strategy.end_step()
            if self.probe.enabled:
                self._probe_step(step)

        label = fixed.value if fixed is not None else Scheme.AUTO.value
        drive_census_loop(
            rec, config.ntimesteps, {"scheme": label}, begin_step, run_step
        )
        self._finalize()

    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        arena = self.arena
        counters = self.counters
        tally = self.tally
        # Dead histories parked by compact-at-switch rejoin the
        # population (storage order differs from an uncompacted run, but
        # fingerprints sort by particle_id, so parity is unaffected).
        for dead_arena, dead_coll, dead_facet in self.morgue:
            arena.extend(dead_arena)
            self.coll_pp = np.concatenate([self.coll_pp, dead_coll])
            self.facet_pp = np.concatenate([self.facet_pp, dead_facet])
        self.morgue = []
        op = self._strategies.get(Scheme.OVER_PARTICLES)
        if op is not None:
            # The OP sweep accumulates lookup statistics out-of-band;
            # fold them into the shared books (OE charges its own lookups
            # directly, so += composes correctly for mixed schedules).
            stats = op.ctx.lookup_stats
            counters.xs_lookups += stats.lookups
            counters.xs_binary_probes += stats.binary_probes
            counters.xs_linear_probes += stats.linear_probes
        lanes = self.lanes
        if lanes is not None:
            rep = lanes.rep
            for r in range(lanes.nreplicas):
                sel = rep == r
                rc = lanes.counters[r]
                rc.nparticles = int(sel.sum())
                rc.collisions_per_particle = self.coll_pp[sel]
                rc.facets_per_particle = self.facet_pp[sel]
                rc.tally_conflict_probability = (
                    lanes.tallies[r].conflict_probability()
                )
                # The fused run's tally is the exact sum of the
                # per-replica scatter-adds.
                tally.deposition += lanes.tallies[r].deposition
                tally.flush_counts += lanes.tallies[r].flush_counts
                tally.flushes += lanes.tallies[r].flushes
            for fname in Counters._SCALAR_FIELDS:
                if fname == "nparticles":
                    continue
                setattr(counters, fname, getattr(counters, fname) + sum(
                    getattr(lanes.counters[r], fname)
                    for r in range(lanes.nreplicas)
                ))
        counters.nparticles = len(arena)
        counters.collisions_per_particle = np.asarray(
            self.coll_pp, dtype=np.int64
        )
        counters.facets_per_particle = np.asarray(
            self.facet_pp, dtype=np.int64
        )
        counters.tally_conflict_probability = tally.conflict_probability()
        counters.kernel_profile = self.dispatch.profile()
        counters.workspace_allocations = self.ws.allocations
        counters.workspace_reuses = self.ws.reuses
        counters.arena_nbytes = arena.nbytes()


def _coerce_plan(config: SimulationConfig, plan):
    """Normalise the ``plan`` argument: a Scheme becomes a fixed plan
    (``AUTO`` becomes a live adaptive scheduler); plan objects pass
    through."""
    if plan is None:
        return SwitchPlan.fixed(Scheme.OVER_PARTICLES)
    if isinstance(plan, Scheme):
        if plan is Scheme.AUTO:
            from repro.adaptive import AdaptiveScheduler

            return AdaptiveScheduler(config)
        return SwitchPlan.fixed(plan)
    return plan


def run_stepped(config: SimulationConfig, plan=None, *, arena=None,
                tally=None, trace=None, recorder=None, lanes=None,
                provider=None, probe=None):
    """Run the unified census stepper.

    ``plan`` is a :class:`Scheme` (``AUTO`` builds a live
    :class:`repro.adaptive.AdaptiveScheduler`), a :class:`SwitchPlan`,
    or any object with ``decide(step, stepper) -> StepDecision``.

    Restricted to a fixed-scheme plan this reproduces the legacy
    ``run_over_particles`` / ``run_over_events`` drivers bit-for-bit;
    those entry points are now thin shims over this function.
    """
    from repro.core.simulation import TransportResult

    t0 = time.perf_counter()
    if plan is None or isinstance(plan, (Scheme, SwitchPlan)):
        validate_scheme_options(
            config, plan if plan is not None else Scheme.OVER_PARTICLES
        )
    plan = _coerce_plan(config, plan)
    if lanes is not None:
        if getattr(plan, "fixed_scheme", None) is not Scheme.OVER_EVENTS:
            raise ValueError(
                "fused ensemble lanes require a pure over_events plan "
                "(the fused OP path lives in repro.ensemble.op)"
            )
    stepper = CensusStepper(
        config, arena=arena, tally=tally, trace=trace, recorder=recorder,
        lanes=lanes, provider=provider, probe=probe,
    )
    stepper.run(plan)
    return TransportResult(
        config=config,
        scheme=stepper.result_scheme,
        tally=stepper.tally,
        counters=stepper.counters,
        arena=stepper.arena,
        wallclock_s=time.perf_counter() - t0,
    )
