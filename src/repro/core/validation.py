"""Conservation validation.

Reflective boundaries make conservation checks exact (paper §IV-C): nothing
leaks, so every electron-volt injected by the source is either deposited on
the tally mesh or still in flight at census, and every history is either
censused or terminated.  The §IX extensions each add one explicit ledger
term, keeping the balance exact:

* vacuum boundaries — energy carried out by escaping particles;
* fission — energy injected with banked secondaries;
* Russian roulette — weight deleted with roulette kills minus weight
  created restoring survivors (unbiased in expectation; ledgered exactly
  per run).

These invariants hold to floating-point rounding by construction of the
collision accounting (see :mod:`repro.physics.collision`) and are enforced
across the test suite, including property-based tests.
"""

from __future__ import annotations

from repro.core.simulation import TransportResult

__all__ = ["energy_balance_error", "population_accounted"]


def energy_balance_error(result: TransportResult) -> float:
    """Relative error of the full energy ledger.

    ``injected = source + fission_injected`` must equal
    ``deposited + in_flight + escaped + roulette_losses − roulette_gains``
    to rounding, for any valid run.
    """
    c = result.counters
    injected = result.config.total_source_energy_ev() + c.fission_injected_energy
    accounted = (
        result.deposited_energy_ev()
        + result.in_flight_energy_ev()
        + c.escaped_energy
        + c.roulette_loss_energy
        - c.roulette_gain_energy
    )
    return abs(accounted - injected) / injected


def population_accounted(result: TransportResult) -> bool:
    """Every history (primaries and secondaries) is alive, terminated, or
    escaped."""
    c = result.counters
    total = c.nparticles
    return result.alive_count() + c.terminations + c.escapes == total