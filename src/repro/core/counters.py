"""Instrumentation counters.

Everything the performance model needs to price a run on a machine model is
collected here while the *real* transport executes: event counts, memory
touches (density reads, tally flushes), cross-section search work, RNG
draws, the per-particle work distribution (for load-imbalance and
scheduling studies), and per-pass occupancy statistics of the Over Events
scheme (for vectorisation-efficiency and gather-cost modelling).

The counters are *algorithm facts*, independent of the host executing the
Python: the same run on any machine yields the same counters, which is what
makes the downstream machine models reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Counters", "EventPassStats"]


def _padded_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise sum of two per-particle arrays of possibly different
    lengths.

    Histories keep their index when the population grows (fission
    secondaries and clones are *appended*), so the shorter array is the
    same population truncated before the newcomers arrived: pad it with
    zeros and add.
    """
    if a.size == b.size:
        return a + b
    out = np.zeros(max(a.size, b.size), dtype=np.int64)
    out[: a.size] += a
    out[: b.size] += b
    return out


@dataclass
class EventPassStats:
    """Occupancy of one Over Events pass.

    Attributes
    ----------
    n_active:
        Particles still being advanced when the pass started (the gather
        loop visits the whole list; this is how many lanes do useful work).
    n_collision, n_facet, n_census:
        Particles handled by each event kernel in this pass.
    """

    n_active: int
    n_collision: int
    n_facet: int
    n_census: int


@dataclass
class Counters:
    """Aggregate instrumentation for one transport run."""

    nparticles: int = 0

    # --- event counts ---------------------------------------------------
    collisions: int = 0
    facets: int = 0
    census_events: int = 0
    terminations: int = 0
    reflections: int = 0

    # --- boundary leakage (vacuum boundaries, extension) ------------------
    escapes: int = 0
    escaped_energy: float = 0.0

    # --- Russian roulette ledger (extension) ------------------------------
    roulette_kills: int = 0
    roulette_survivals: int = 0
    roulette_loss_energy: float = 0.0
    roulette_gain_energy: float = 0.0

    # --- fission (multiplying media, extension) ---------------------------
    fissions: int = 0
    secondaries_banked: int = 0
    fission_injected_energy: float = 0.0

    # --- importance splitting (variance reduction, extension) -------------
    splits: int = 0
    clones_banked: int = 0

    # --- memory-touch counts --------------------------------------------
    tally_flushes: int = 0
    density_reads: int = 0

    # --- cross-section search work ---------------------------------------
    xs_lookups: int = 0
    xs_binary_probes: int = 0
    xs_linear_probes: int = 0
    #: Lookups that skipped the bin search because the particle's energy
    #: (and material) were unchanged since its last search (OE hoist).
    #: Still counted in ``xs_lookups``; only the probes are saved.
    xs_bin_reuses: int = 0

    # --- RNG -------------------------------------------------------------
    rng_draws: int = 0

    # --- kernel-layer instrumentation (host-dependent, not in snapshot) ---
    #: Per-kernel ``{name: [calls, items, seconds]}`` from the dispatch
    #: table.  Wall-clock depends on the host, so this is excluded from
    #: :attr:`_SCALAR_FIELDS` and shard-invariance checks.
    kernel_profile: dict = field(default_factory=dict)
    #: Workspace buffer churn: how many passes had to grow a buffer vs.
    #: how many reused one already sized (allocation-avoidance evidence).
    workspace_allocations: int = 0
    workspace_reuses: int = 0
    #: Final-population arena footprint in bytes (storage-layer accounting,
    #: §VI-D).  Alignment padding makes shard footprints non-additive, so —
    #: like :attr:`kernel_profile` — this is excluded from
    #: :attr:`_SCALAR_FIELDS`; the pool reduction overwrites it with the
    #: merged population's footprint.
    arena_nbytes: int = 0

    # --- per-particle work distribution (load imbalance, §VI-C) ----------
    collisions_per_particle: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    facets_per_particle: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )

    # --- Over Events pass structure (§V-B) --------------------------------
    oe_passes: list[EventPassStats] = field(default_factory=list)

    # --- tally address statistics (atomic contention) ---------------------
    tally_conflict_probability: float = 0.0

    # ----------------------------------------------------------------------
    @property
    def total_events(self) -> int:
        """Collisions + facets + census events."""
        return self.collisions + self.facets + self.census_events

    def events_per_particle(self) -> np.ndarray:
        """Total events per particle — the per-history work distribution."""
        return self.collisions_per_particle + self.facets_per_particle

    def load_imbalance(self) -> float:
        """``max / mean`` of per-particle events.

        1.0 means perfectly uniform histories; the csp problem shows the
        largest value of the three test cases (paper §VI-C).
        """
        ev = self.events_per_particle()
        if ev.size == 0 or ev.mean() == 0:
            return 1.0
        return float(ev.max() / ev.mean())

    def mean_facets_per_particle(self) -> float:
        """Facet events per history (≈7000 in the paper's stream problem)."""
        if self.nparticles == 0:
            return 0.0
        return self.facets / self.nparticles

    def mean_collisions_per_particle(self) -> float:
        """Collision events per history."""
        if self.nparticles == 0:
            return 0.0
        return self.collisions / self.nparticles

    def oe_mean_occupancy(self) -> float:
        """Mean fraction of the particle list active per OE pass.

        The OE kernels visit the whole list each pass ("particles are
        gathered from memory", §V-B); occupancy below 1 is wasted streaming
        traffic and wasted vector lanes.
        """
        if not self.oe_passes:
            return 1.0
        total = sum(p.n_active for p in self.oe_passes)
        return total / (len(self.oe_passes) * max(self.nparticles, 1))

    def _merge_scalars(self, other: "Counters") -> None:
        """Accumulate the scalar fields shared by both merge flavours."""
        self.collisions += other.collisions
        self.facets += other.facets
        self.census_events += other.census_events
        self.terminations += other.terminations
        self.reflections += other.reflections
        self.escapes += other.escapes
        self.escaped_energy += other.escaped_energy
        self.roulette_kills += other.roulette_kills
        self.roulette_survivals += other.roulette_survivals
        self.roulette_loss_energy += other.roulette_loss_energy
        self.roulette_gain_energy += other.roulette_gain_energy
        self.fissions += other.fissions
        self.secondaries_banked += other.secondaries_banked
        self.fission_injected_energy += other.fission_injected_energy
        self.splits += other.splits
        self.clones_banked += other.clones_banked
        self.tally_flushes += other.tally_flushes
        self.density_reads += other.density_reads
        self.xs_lookups += other.xs_lookups
        self.xs_binary_probes += other.xs_binary_probes
        self.xs_linear_probes += other.xs_linear_probes
        self.xs_bin_reuses += other.xs_bin_reuses
        self.rng_draws += other.rng_draws
        self.workspace_allocations += other.workspace_allocations
        self.workspace_reuses += other.workspace_reuses
        for name, (calls, items, seconds) in other.kernel_profile.items():
            acc = self.kernel_profile.setdefault(name, [0, 0, 0.0])
            acc[0] += calls
            acc[1] += items
            acc[2] += seconds
        self.oe_passes.extend(other.oe_passes)
        # Keep the max conflict probability — conservative for contention.
        self.tally_conflict_probability = max(
            self.tally_conflict_probability, other.tally_conflict_probability
        )
        # Peak footprint across the merged runs (overwritten with the merged
        # population's own footprint where one exists, e.g. pool reduction).
        self.arena_nbytes = max(self.arena_nbytes, other.arena_nbytes)

    def merge(self, other: "Counters") -> None:
        """Accumulate another run of the *same* population
        (multi-timestep aggregation).

        The per-particle work arrays are summed index-by-index; when the
        populations differ in size (fission/roulette changed the population
        between runs), the shorter array is zero-padded so neither run's
        histories are dropped from the load-imbalance statistics.
        """
        self.nparticles = max(self.nparticles, other.nparticles)
        self._merge_scalars(other)
        self.collisions_per_particle = _padded_add(
            self.collisions_per_particle, other.collisions_per_particle
        )
        self.facets_per_particle = _padded_add(
            self.facets_per_particle, other.facets_per_particle
        )

    #: Scalar fields captured by :meth:`snapshot` — every physics/work
    #: count that must be invariant under shard partitioning and recovery.
    _SCALAR_FIELDS = (
        "nparticles", "collisions", "facets", "census_events",
        "terminations", "reflections", "escapes", "escaped_energy",
        "roulette_kills", "roulette_survivals", "roulette_loss_energy",
        "roulette_gain_energy", "fissions", "secondaries_banked",
        "fission_injected_energy", "splits", "clones_banked",
        "tally_flushes", "density_reads", "xs_lookups", "xs_binary_probes",
        "xs_linear_probes", "xs_bin_reuses", "rng_draws",
    )

    def snapshot(self) -> dict:
        """Every scalar counter as a plain dict, for exact comparison.

        The worker pool reduces per-shard partial counters with
        :meth:`merge_disjoint`; because every scalar here is additive and
        the per-particle arrays concatenate, the reduction is invariant
        under the shard partition *and* under shard retries (a retried
        shard's partial result is discarded, never merged twice).  The
        chaos and property suites assert that invariance by comparing
        snapshots of faulted, pooled, and serial runs.
        """
        return {f: getattr(self, f) for f in self._SCALAR_FIELDS}

    def merge_disjoint(self, other: "Counters") -> None:
        """Accumulate a run over a *disjoint* set of histories
        (worker-pool shard reduction, §VI-F privatise-then-reduce).

        Population counts add and the per-particle work arrays are
        concatenated in call order, so the merged distribution covers every
        history exactly once.  Partial results from a shard that died
        mid-run must never reach this method — the pool re-executes the
        whole shard and merges only its complete payload, which is what
        keeps the reduction exact under recovery.
        """
        self.nparticles += other.nparticles
        self._merge_scalars(other)
        self.collisions_per_particle = np.concatenate(
            [self.collisions_per_particle, other.collisions_per_particle]
        )
        self.facets_per_particle = np.concatenate(
            [self.facets_per_particle, other.facets_per_particle]
        )
