"""The Over Events parallelisation scheme (paper §V-B, Listing 2).

Breadth-first traversal: every pass advances *all* in-flight particles by
exactly one event — distances are computed for the whole population, the
next event of each particle is determined, and the collision / facet /
census kernels each process their subset.  The paper's observations map
directly onto this implementation:

* *tight vectorisable loops* — every kernel is a numpy array operation
  over the particle batch, now housed in :mod:`repro.kernels` and invoked
  through the timed dispatch table;
* *no register caching* — cached state (microscopic cross sections, cached
  energy bins, local density, material index) must live in per-particle
  arrays and is streamed from memory every pass;
* *gather/scatter* — kernels visit the whole particle list and select
  their subset by mask; occupancy per pass is recorded in
  :class:`repro.core.counters.EventPassStats` so the machine model can
  price the wasted traffic;
* *batched atomics* — tally flushes happen together in one scatter-add per
  pass (``np.add.at``), the analogue of the separate tally loop the paper
  introduced to enable vectorisation (§VI-G).

The pass loop allocates no per-pass temporaries: every intermediate array
(distance budgets, macroscopic cross sections, event masks) lives in a
:class:`repro.kernels.Workspace` buffer that is sized once and reused
until the population grows.  Cross-section refreshes hoist the bin search
out of the hot path — a particle whose energy is bitwise-unchanged since
its last search in the same material reuses its cached bins, counted in
``Counters.xs_bin_reuses``.

The population lives in one :class:`~repro.particles.arena.ParticleArena`
that every kernel views in place.  The driver also supports the §IX
extensions (vacuum boundaries, Russian roulette, multi-material meshes,
fission).  Fission secondaries are banked as field records and appended
to the arena between passes, advancing with the population — no
per-particle object is ever constructed (the kernel audit enforces that).

The physics — including per-particle RNG streams and the deterministic
derivation of secondary identities — is identical to the Over Particles
scheme; the test suite checks final states match bit-for-bit and tallies
match to accumulation-order rounding.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import Scheme, SimulationConfig
from repro.core.counters import Counters, EventPassStats
from repro.kernels import EVENT_KERNELS, KernelDispatch, Workspace
from repro.kernels.batch import EventKind, split_counts
from repro.mesh.structured import StructuredMesh
from repro.mesh.tally import EnergyDepositionTally
from repro.particles.arena import ParticleArena, ParticleRecord
from repro.physics.fission import sample_secondary_energy, secondary_id
from repro.physics.importance import clone_id
from repro.rng.distributions import sample_isotropic_direction, sample_mean_free_paths
from repro.rng.stream import ParticleRNG, VectorParticleRNG

__all__ = ["run_over_events"]


class _EventContext:
    """Run-wide state for the Over Events driver."""

    def __init__(self, config: SimulationConfig, mesh: StructuredMesh,
                 tally: EnergyDepositionTally, store: ParticleArena,
                 dispatch: KernelDispatch, ws: Workspace, lanes=None,
                 provider=None):
        self.config = config
        self.mesh = mesh
        self.tally = tally
        self.store = store
        self.dispatch = dispatch
        self.ws = ws
        #: Ensemble fusion state (repro.ensemble.EnsembleLanes) or None.
        #: When set, counters/tallies/seeds/cutoffs are attributed per
        #: replica through the helpers below; the kernel dispatches stay
        #: fused across all replicas.
        self.lanes = lanes
        #: The cross-section backend.  All material data and lookups go
        #: through it; the driver never touches tables directly.
        self.provider = (
            provider if provider is not None else config.resolved_provider()
        )
        self.material_map = config.resolved_material_map()
        self.mat_a = self.provider.mat_a
        self.mat_molar = self.provider.mat_molar
        self.mat_nu = self.provider.mat_nu
        self.mat_fissile = self.provider.mat_fissile
        self.counters = Counters(nparticles=len(store))
        n = len(store)
        self.micro_s = np.zeros(n, dtype=np.float64)
        self.micro_c = np.zeros(n, dtype=np.float64)
        self.micro_f = np.zeros(n, dtype=np.float64)
        self.mat_idx = self.material_map[store.celly, store.cellx]
        self.coll_pp = np.zeros(n, dtype=np.int64)
        self.facet_pp = np.zeros(n, dtype=np.int64)
        seed = config.seed if lanes is None else lanes.seeds[lanes.rep]
        self.rng = VectorParticleRNG(seed, store.particle_id, store.rng_counter)
        self.pending_children: list[ParticleRecord] = []
        self.pending_rep: list[int] = []
        # Bin-reuse hoist state: the energy (bitwise) and material at each
        # particle's last bin search.  NaN / -1 mean "never searched".
        self.last_e = np.full(n, np.nan)
        self.last_mat = np.full(n, -1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Attribution helpers.  A plain run charges the single counters/tally
    # pair; a fused ensemble run charges each replica's own books so every
    # member stays bit-identical to its standalone serial run.
    def cadd(self, name: str, idx: np.ndarray, per: int = 1) -> None:
        """Add ``per`` per selected particle to an integer counter."""
        if self.lanes is None:
            c = self.counters
            setattr(c, name, getattr(c, name) + per * int(idx.size))
            return
        lanes = self.lanes
        counts = np.bincount(lanes.rep[idx], minlength=lanes.nreplicas)
        for r in np.nonzero(counts)[0]:
            c = lanes.counters[r]
            setattr(c, name, getattr(c, name) + per * int(counts[r]))

    def csum(self, name: str, idx: np.ndarray, values: np.ndarray) -> None:
        """Accumulate a float reduction over the selected particles.

        Per-replica sums run over each replica's subsequence in storage
        order — the same operands in the same order as that replica's
        standalone run, hence bitwise-equal partial sums.
        """
        if self.lanes is None:
            c = self.counters
            setattr(c, name, getattr(c, name) + float(values.sum()))
            return
        rep = self.lanes.rep[idx]
        for r in np.unique(rep):
            c = self.lanes.counters[r]
            setattr(c, name, getattr(c, name) + float(values[rep == r].sum()))

    def flush(self, idx: np.ndarray) -> None:
        """Batched tally flush (the §VI-G separate tally loop), split by
        replica when fused — each replica's scatter-add sees exactly the
        subsequence its standalone run would."""
        store = self.store
        if self.lanes is None:
            self.tally.flush_vec(
                store.cellx[idx], store.celly[idx], store.deposit_buffer[idx]
            )
            self.counters.tally_flushes += idx.size
            return
        rep = self.lanes.rep[idx]
        for r in np.unique(rep):
            sel = idx[rep == r]
            self.lanes.tallies[r].flush_vec(
                store.cellx[sel], store.celly[sel], store.deposit_buffer[sel]
            )
            self.lanes.counters[r].tally_flushes += sel.size

    def counters_for(self, pi) -> Counters:
        """The Counters a scalar event on particle ``pi`` charges."""
        if self.lanes is None:
            return self.counters
        return self.lanes.counters[int(self.lanes.rep[pi])]

    def seed_for(self, pi) -> int:
        """The RNG key word 0 for particle ``pi`` (its replica's seed)."""
        if self.lanes is None:
            return self.config.seed
        return int(self.lanes.seeds[int(self.lanes.rep[pi])])

    def ecut_at(self, idx: np.ndarray):
        """Energy cutoff, scalar or per-lane (kernels broadcast either)."""
        if self.lanes is None:
            return self.config.energy_cutoff_ev
        return self.lanes.ecut[self.lanes.rep[idx]]

    def wcut_at(self, idx: np.ndarray):
        """Weight cutoff, scalar or per-lane."""
        if self.lanes is None:
            return self.config.weight_cutoff
        return self.lanes.wcut[self.lanes.rep[idx]]

    # ------------------------------------------------------------------
    def refresh_micro(self, idx: np.ndarray) -> None:
        """Re-gather microscopic cross sections for the given particles,
        grouped by material (the vectorised bisection of §V-B).

        Particles whose energy is bitwise-unchanged since their last
        search in the same material skip the search entirely: the cached
        bins and interpolated values are still exact.  The lookup is still
        counted (the data was still needed); only the probes are saved.
        """
        if idx.size == 0:
            return
        store = self.store
        run = self.dispatch.run
        prov = self.provider
        for mi in range(prov.nmaterials):
            sel = idx[self.mat_idx[idx] == mi]
            if sel.size == 0:
                continue
            k = prov.lookups_per_refresh(mi)
            e = store.energy[sel]
            reuse = (self.last_mat[sel] == mi) & (e == self.last_e[sel])
            fresh = sel[~reuse]
            if fresh.size:
                ef = store.energy[fresh]
                lk = prov.lookup(mi, ef, run)
                self.micro_s[fresh] = lk.micro_s
                self.micro_c[fresh] = lk.micro_c
                if lk.micro_f is not None:
                    self.micro_f[fresh] = lk.micro_f
                for cache_field, _grid, bins in lk.searches:
                    getattr(store, cache_field)[fresh] = bins
                self.cadd(
                    "xs_binary_probes", fresh,
                    k * prov.binary_probe_estimate(mi),
                )
                self.last_e[fresh] = ef
                self.last_mat[fresh] = mi
            if not prov.mat_fissile[mi]:
                self.micro_f[sel] = 0.0
            self.cadd("xs_lookups", sel, k)
            self.cadd("xs_bin_reuses", sel[reuse], k)

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(Σ_s, Σ_a, Σ_f, Σ_t) arrays from the cached microscopic values.

        The arithmetic chain is exactly
        :func:`repro.xs.macroscopic.macroscopic_cross_section`, computed
        into workspace buffers so the pass loop allocates nothing — shared
        with the Over Particles driver via the provider (part of the
        OP ≡ OE fingerprint contract).
        """
        n = len(self.store)
        m = self.provider.macroscopic_into(
            self.ws, n, self.mat_idx,
            self.micro_s, self.micro_c, self.micro_f,
            self.store.local_density,
        )
        return m.sigma_s, m.sigma_a, m.sigma_f, m.sigma_t

    # ------------------------------------------------------------------
    def bank_secondaries(
        self,
        parents: np.ndarray,
        counts: np.ndarray,
        counters_at_event: np.ndarray,
        weights_before: np.ndarray,
    ) -> None:
        """Create fission secondaries for the given parent indices.

        Identity and birth draws are derived exactly as in the Over
        Particles driver, so the two schemes bank bit-identical children.
        """
        store = self.store
        for j, pi in enumerate(parents):
            n_children = int(counts[j])
            if n_children <= 0:
                continue
            c = self.counters_for(pi)
            seed_pi = self.seed_for(pi)
            rep_pi = 0 if self.lanes is None else int(self.lanes.rep[pi])
            c.fissions += 1
            for k in range(n_children):
                cid = secondary_id(
                    seed_pi,
                    int(store.particle_id[pi]),
                    int(counters_at_event[j]),
                    k,
                )
                rng = ParticleRNG(seed_pi, cid)
                u_dir = rng.next_uniform()
                u_energy = rng.next_uniform()
                u_mfp = rng.next_uniform()
                fission_energy = float(
                    self.provider.mat_fission_energy_ev[int(self.mat_idx[pi])]
                )
                ox, oy = sample_isotropic_direction(u_dir)
                energy = sample_secondary_energy(u_energy, fission_energy)
                child = ParticleRecord(
                    x=float(store.x[pi]),
                    y=float(store.y[pi]),
                    omega_x=ox,
                    omega_y=oy,
                    energy=energy,
                    weight=1.0,
                    cellx=int(store.cellx[pi]),
                    celly=int(store.celly[pi]),
                    particle_id=cid,
                    dt_to_census=float(store.dt_to_census[pi]),
                    mfp_to_collision=sample_mean_free_paths(u_mfp),
                    rng_counter=rng.counter,
                    local_density=float(store.local_density[pi]),
                )
                c.fission_injected_energy += 1.0 * energy
                c.secondaries_banked += 1
                c.rng_draws += 3
                self.pending_children.append(child)
                self.pending_rep.append(rep_pi)

    def absorb_children(self) -> None:
        """Append banked secondaries to the population between passes."""
        if not self.pending_children:
            return
        chunk = type(self.store).from_records(self.pending_children)
        n_new = len(chunk)
        self.store.extend(chunk)
        self.micro_s = np.concatenate([self.micro_s, np.zeros(n_new)])
        self.micro_c = np.concatenate([self.micro_c, np.zeros(n_new)])
        self.micro_f = np.concatenate([self.micro_f, np.zeros(n_new)])
        self.mat_idx = np.concatenate(
            [self.mat_idx, self.material_map[chunk.celly, chunk.cellx]]
        )
        self.coll_pp = np.concatenate(
            [self.coll_pp, np.zeros(n_new, dtype=np.int64)]
        )
        self.facet_pp = np.concatenate(
            [self.facet_pp, np.zeros(n_new, dtype=np.int64)]
        )
        self.last_e = np.concatenate([self.last_e, np.full(n_new, np.nan)])
        self.last_mat = np.concatenate(
            [self.last_mat, np.full(n_new, -1, dtype=np.int64)]
        )
        if self.lanes is not None:
            rep_new = np.asarray(self.pending_rep, dtype=np.int64)
            self.lanes.rep = np.concatenate([self.lanes.rep, rep_new])
            if hasattr(self.store, "replica_id"):
                self.store.replica_id[len(self.store) - n_new:] = rep_new
        self.pending_rep = []
        # Extend the RNG with the live counters (the store's counter field
        # is only synchronised at the end of the run).
        seed = (
            self.config.seed if self.lanes is None
            else self.lanes.seeds[self.lanes.rep]
        )
        self.rng = VectorParticleRNG(
            seed,
            np.concatenate([self.rng.particle_ids, chunk.particle_id]),
            np.concatenate([self.rng.counters, chunk.rng_counter]),
        )
        new_idx = np.arange(len(self.store) - n_new, len(self.store))
        self.refresh_micro(new_idx)
        self.pending_children = []

    # ------------------------------------------------------------------
    # Event handlers — one per entry in the shared EVENT_KERNELS mapping.
    # All take the same signature so the pass loop can dispatch uniformly.

    def handle_collisions(self, cmask, dist, sigma_a, sigma_f, sigma_t) -> None:
        """foreach(colliding_particle): handle_collision()"""
        store = self.store
        config = self.config
        c = np.nonzero(cmask)[0]
        d = dist.d_collision[c]
        sp = dist.speed[c]
        store.x[c] = store.x[c] + store.omega_x[c] * d
        store.y[c] = store.y[c] + store.omega_y[c] * d
        store.dt_to_census[c] = np.maximum(
            0.0, store.dt_to_census[c] - d / sp
        )
        weight_before = store.weight[c].copy()
        counters_at_event = self.rng.counters[c].copy()
        u_angle = self.rng.next_uniform(cmask)
        u_sense = self.rng.next_uniform(cmask)
        u_mfp = self.rng.next_uniform(cmask)
        self.cadd("rng_draws", c, 3)
        a_ratio = self.mat_a[self.mat_idx[c]]
        (e_new, w_new, ox_new, oy_new, mfp_new, dep, term, below) = self.dispatch.run(
            "collide",
            c.size,
            store.energy[c],
            store.weight[c],
            store.omega_x[c],
            store.omega_y[c],
            sigma_a[c],
            sigma_t[c],
            a_ratio,
            u_angle,
            u_sense,
            u_mfp,
            self.ecut_at(c),
            self.wcut_at(c),
            defer_weight_cutoff=config.use_russian_roulette,
        )
        store.energy[c] = e_new
        store.weight[c] = w_new
        store.omega_x[c] = ox_new
        store.omega_y[c] = oy_new
        store.mfp_to_collision[c] = mfp_new
        store.deposit_buffer[c] += dep
        self.cadd("collisions", c)
        self.coll_pp[c] += 1

        # ---- fission banking (extension) ------------------------------
        fissile_here = self.mat_fissile[self.mat_idx[c]] & (sigma_t[c] > 0.0)
        if fissile_here.any():
            fis_mask = np.zeros(len(store), dtype=bool)
            fis_mask[c[fissile_here]] = True
            u_fission = self.rng.next_uniform(fis_mask)
            sel = c[fissile_here]
            self.cadd("rng_draws", sel)
            counts = self.dispatch.run(
                "fission_bank",
                sel.size,
                weight_before[fissile_here],
                self.mat_nu[self.mat_idx[sel]],
                sigma_f[sel],
                sigma_t[sel],
                u_fission,
            )
            self.bank_secondaries(
                sel,
                counts,
                counters_at_event[fissile_here],
                weight_before[fissile_here],
            )

        dead = c[term]
        if dead.size:
            self.flush(dead)
            store.deposit_buffer[dead] = 0.0
            store.alive[dead] = False
            self.cadd("terminations", dead)

        # ---- Russian roulette (extension) ------------------------------
        if config.use_russian_roulette and below.any():
            r_mask = np.zeros(len(store), dtype=bool)
            r_mask[c[below]] = True
            u_roulette = self.rng.next_uniform(r_mask)
            sel = c[below]
            self.cadd("rng_draws", sel)
            w = store.weight[sel]
            survive, restored = self.dispatch.run(
                "roulette", sel.size, w, u_roulette, self.wcut_at(sel)
            )
            # With per-lane cutoffs ``restored`` is an array aligned with
            # ``sel``; slice it down to the survivor lanes.
            restored_s = restored[survive] if np.ndim(restored) else restored
            killed = sel[~survive]
            if killed.size:
                self.cadd("roulette_kills", killed)
                self.csum(
                    "roulette_loss_energy", killed,
                    store.weight[killed] * store.energy[killed],
                )
                store.weight[killed] = 0.0
                self.flush(killed)
                store.deposit_buffer[killed] = 0.0
                store.alive[killed] = False
                self.cadd("terminations", killed)
            survivors = sel[survive]
            if survivors.size:
                self.cadd("roulette_survivals", survivors)
                self.csum(
                    "roulette_gain_energy", survivors,
                    (restored_s - store.weight[survivors])
                    * store.energy[survivors],
                )
                store.weight[survivors] = restored_s

        surv = c[store.alive[c]]
        if surv.size:
            self.refresh_micro(surv)

    def handle_facets(self, fmask, dist, sigma_a, sigma_f, sigma_t) -> None:
        """foreach(particle_encountering_facet): handle_facet()"""
        store = self.store
        config = self.config
        f = np.nonzero(fmask)[0]
        old_cx_f = store.cellx[f].copy()
        old_cy_f = store.celly[f].copy()
        d = dist.d_facet[f]
        sp = dist.speed[f]
        st = sigma_t[f]
        store.x[f] = store.x[f] + store.omega_x[f] * d
        store.y[f] = store.y[f] + store.omega_y[f] * d
        store.dt_to_census[f] = np.maximum(
            0.0, store.dt_to_census[f] - d / sp
        )
        store.mfp_to_collision[f] = np.maximum(
            0.0, store.mfp_to_collision[f] - d * st
        )
        ax = dist.axis[f]
        hit_x = ax == 0
        fx = f[hit_x]
        store.x[fx] = np.where(
            store.omega_x[fx] > 0.0, dist.x_hi[fx], dist.x_lo[fx]
        )
        fy = f[~hit_x]
        store.y[fy] = np.where(
            store.omega_y[fy] > 0.0, dist.y_hi[fy], dist.y_lo[fy]
        )
        # Batched tally loop — the separate atomic pass of §VI-G.
        self.flush(f)
        store.deposit_buffer[f] = 0.0
        new_cx, new_cy, new_ox, new_oy, reflected, escaped = self.dispatch.run(
            "cross_facet",
            f.size,
            store.cellx[f], store.celly[f],
            store.omega_x[f], store.omega_y[f], ax, self.mesh, config.boundary,
        )
        self.cadd("facets", f)
        self.facet_pp[f] += 1
        gone = f[escaped]
        if gone.size:
            self.cadd("escapes", gone)
            self.csum(
                "escaped_energy", gone,
                store.weight[gone] * store.energy[gone],
            )
            store.alive[gone] = False
        stay = ~escaped
        store.cellx[f[stay]] = new_cx[stay]
        store.celly[f[stay]] = new_cy[stay]
        store.omega_x[f[stay]] = new_ox[stay]
        store.omega_y[f[stay]] = new_oy[stay]
        crossed = f[stay & ~reflected]
        store.local_density[crossed] = self.mesh.density_at_vec(
            store.cellx[crossed], store.celly[crossed]
        )
        self.cadd("density_reads", crossed)
        self.cadd("reflections", f[reflected])
        # Multi-material extension: particles entering a different
        # material must refresh their cached microscopic values.
        if crossed.size:
            new_mat = self.material_map[
                store.celly[crossed], store.cellx[crossed]
            ]
            changed = crossed[new_mat != self.mat_idx[crossed]]
            self.mat_idx[crossed] = new_mat
            if changed.size:
                self.refresh_micro(changed)

        # ---- importance splitting / roulette (VR extension) ------------
        if config.importance_map is not None and crossed.size:
            imap = config.importance_map
            cross_in_f = stay & ~reflected
            ratios = (
                imap[store.celly[crossed], store.cellx[crossed]]
                / imap[old_cy_f[cross_in_f], old_cx_f[cross_in_f]]
            )
            changed_r = ratios != 1.0
            sel = crossed[changed_r]
            if sel.size:
                counters_before = self.rng.counters[sel].copy()
                imp_mask = np.zeros(len(store), dtype=bool)
                imp_mask[sel] = True
                u_imp = self.rng.next_uniform(imp_mask)
                self.cadd("rng_draws", sel)
                r = ratios[changed_r]

                # splits (entering higher importance)
                up = r > 1.0
                if up.any():
                    n_after = split_counts(r[up], u_imp[up])
                    for pi, n, ctr in zip(
                        sel[up], n_after, counters_before[up]
                    ):
                        if n <= 1:
                            continue
                        cc = self.counters_for(pi)
                        rep_pi = (
                            0 if self.lanes is None
                            else int(self.lanes.rep[pi])
                        )
                        cc.splits += 1
                        w_each = float(store.weight[pi]) / int(n)
                        for k in range(int(n) - 1):
                            cid = clone_id(
                                self.seed_for(pi),
                                int(store.particle_id[pi]),
                                int(ctr),
                                k,
                            )
                            child = ParticleRecord(
                                x=float(store.x[pi]),
                                y=float(store.y[pi]),
                                omega_x=float(store.omega_x[pi]),
                                omega_y=float(store.omega_y[pi]),
                                energy=float(store.energy[pi]),
                                weight=w_each,
                                cellx=int(store.cellx[pi]),
                                celly=int(store.celly[pi]),
                                particle_id=cid,
                                dt_to_census=float(store.dt_to_census[pi]),
                                mfp_to_collision=float(
                                    store.mfp_to_collision[pi]
                                ),
                                rng_counter=0,
                                local_density=float(store.local_density[pi]),
                                scatter_bin=int(store.scatter_bin[pi]),
                                capture_bin=int(store.capture_bin[pi]),
                                fission_bin=int(store.fission_bin[pi]),
                            )
                            cc.clones_banked += 1
                            self.pending_children.append(child)
                            self.pending_rep.append(rep_pi)
                        store.weight[pi] = w_each

                # roulette (entering lower importance)
                down = ~up
                if down.any():
                    dsel = sel[down]
                    survive = u_imp[down] < r[down]
                    surv = dsel[survive]
                    if surv.size:
                        self.cadd("roulette_survivals", surv)
                        boosted = store.weight[surv] / r[down][survive]
                        self.csum(
                            "roulette_gain_energy", surv,
                            (boosted - store.weight[surv])
                            * store.energy[surv],
                        )
                        store.weight[surv] = boosted
                    dead_i = dsel[~survive]
                    if dead_i.size:
                        self.cadd("roulette_kills", dead_i)
                        self.csum(
                            "roulette_loss_energy", dead_i,
                            store.weight[dead_i] * store.energy[dead_i],
                        )
                        store.weight[dead_i] = 0.0
                        store.alive[dead_i] = False
                        self.cadd("terminations", dead_i)

    def handle_census(self, zmask, dist, sigma_a, sigma_f, sigma_t) -> None:
        """handle_census(): fly remaining lanes to the end of the timestep."""
        store = self.store
        z = np.nonzero(zmask)[0]
        new_x, new_y, new_mfp = self.dispatch.run(
            "census",
            z.size,
            store.x[z], store.y[z],
            store.omega_x[z], store.omega_y[z],
            store.mfp_to_collision[z], sigma_t[z], dist.d_census[z],
        )
        store.x[z] = new_x
        store.y[z] = new_y
        store.mfp_to_collision[z] = new_mfp
        store.dt_to_census[z] = 0.0
        self.flush(z)
        store.deposit_buffer[z] = 0.0
        store.censused[z] = True
        self.cadd("census_events", z)


def _event_pass(ctx: _EventContext, handlers: dict, active: np.ndarray,
                n: int, pass_span=None) -> None:
    """One breadth-first pass: advance every active particle by exactly
    one event.  ``pass_span`` (when telemetry is on) receives the pass
    occupancy as attributes."""
    store = ctx.store
    ws = ctx.ws
    dispatch = ctx.dispatch
    counters = ctx.counters
    mesh = ctx.mesh

    # foreach(particle): calculate_time_to_events()
    sigma_s, sigma_a, sigma_f, sigma_t = ctx.macroscopic()
    dist = dispatch.run(
        "distances",
        n,
        ws,
        store.energy,
        store.mfp_to_collision,
        sigma_t,
        store.x,
        store.y,
        store.omega_x,
        store.omega_y,
        store.cellx,
        store.celly,
        mesh.dx,
        mesh.dy,
        store.dt_to_census,
    )
    event = dispatch.run(
        "select_events",
        n,
        dist.d_collision,
        dist.d_facet,
        dist.d_census,
        out=ws.i64("event", n),
        scratch=ws.bool_("ev_scratch", n),
    )

    masks = {}
    n_event = {}
    for kind in EVENT_KERNELS:
        m = ws.bool_("mask_" + kind.name, n)
        np.equal(event, int(kind), out=m)
        np.logical_and(m, active, out=m)
        masks[kind] = m
        n_event[kind] = int(m.sum())
    stats = EventPassStats(
        n_active=int(active.sum()),
        n_collision=n_event[EventKind.COLLISION],
        n_facet=n_event[EventKind.FACET],
        n_census=n_event[EventKind.CENSUS],
    )
    counters.oe_passes.append(stats)
    if ctx.lanes is not None:
        lanes = ctx.lanes
        rep = lanes.rep
        act = np.bincount(rep[active], minlength=lanes.nreplicas)
        col = np.bincount(
            rep[masks[EventKind.COLLISION]], minlength=lanes.nreplicas
        )
        fac = np.bincount(
            rep[masks[EventKind.FACET]], minlength=lanes.nreplicas
        )
        cen = np.bincount(
            rep[masks[EventKind.CENSUS]], minlength=lanes.nreplicas
        )
        # A replica with no active lanes this pass has already finished:
        # its standalone run would not see the pass at all.
        for r in np.nonzero(act)[0]:
            lanes.counters[r].oe_passes.append(EventPassStats(
                n_active=int(act[r]),
                n_collision=int(col[r]),
                n_facet=int(fac[r]),
                n_census=int(cen[r]),
            ))
    if pass_span is not None:
        pass_span.attrs["active"] = stats.n_active
        pass_span.attrs["collisions"] = stats.n_collision
        pass_span.attrs["facets"] = stats.n_facet
        pass_span.attrs["census"] = stats.n_census

    # ---- one handler per event kind, via the shared mapping -------------
    for kind, kernel_name in EVENT_KERNELS.items():
        if n_event[kind]:
            handlers[kernel_name](
                masks[kind], dist, sigma_a, sigma_f, sigma_t
            )

    # ---- fission secondaries join the population -------------------------
    ctx.absorb_children()


def run_over_events(
    config: SimulationConfig,
    arena: ParticleArena | None = None,
    tally: EnergyDepositionTally | None = None,
    recorder=None,
    lanes=None,
    provider=None,
    probe=None,
):
    """Run the full calculation with the Over Events scheme.

    Parameters
    ----------
    config:
        The simulation specification.
    arena:
        A pre-sampled :class:`ParticleArena` (shard views from the worker
        pool, scheme-equivalence tests); sampled from the config's source
        when omitted.  Advanced in place.
    tally:
        An existing tally to accumulate into; a fresh one when omitted.
    recorder:
        Optional :class:`repro.obs.Recorder` receiving the span tree
        (run → timestep → event_pass → kernel:*).  Purely observational:
        the physics is bit-identical with or without it.
    lanes:
        Optional :class:`repro.ensemble.EnsembleLanes` fusing N replicas
        into the one arena: per-lane RNG seeds/cutoffs/dt and per-replica
        counter/tally attribution, while every kernel dispatch stays one
        fused call across all replicas.  ``config`` then supplies the
        uniform fields only (mesh, materials, scheme options).

    Returns
    -------
    TransportResult
        Tally, counters, the final arena (including any fission
        secondaries), and wall-clock time.  ``counters.kernel_profile``
        carries the per-kernel call/item/time table from the dispatch
        layer; ``counters.workspace_allocations`` / ``workspace_reuses``
        record the buffer churn of the pass loop.

    .. deprecated::
        This entry point is a thin compatibility shim: the census loop,
        source emission and result wiring now live in the unified
        stepper (:func:`repro.core.stepper.run_stepped`), which runs a
        fixed over-events plan bit-identically (including the fused
        ensemble-lanes path).  New call sites should use ``run_stepped``
        directly.
    """
    # Imported here to avoid a circular import with stepper.py (which
    # owns the census loop but borrows this module's pass machinery).
    from repro.core.stepper import SwitchPlan, run_stepped

    return run_stepped(
        config,
        SwitchPlan.fixed(Scheme.OVER_EVENTS),
        arena=arena,
        tally=tally,
        recorder=recorder,
        lanes=lanes,
        provider=provider,
        probe=probe,
    )
