"""The Over Events parallelisation scheme (paper §V-B, Listing 2).

Breadth-first traversal: every pass advances *all* in-flight particles by
exactly one event — distances are computed for the whole population, the
next event of each particle is determined, and the collision / facet /
census kernels each process their subset.  The paper's observations map
directly onto this implementation:

* *tight vectorisable loops* — every kernel here is a numpy array
  operation over the particle batch;
* *no register caching* — cached state (microscopic cross sections, cached
  energy bins, local density, material index) must live in per-particle
  arrays and is streamed from memory every pass;
* *gather/scatter* — kernels visit the whole particle list and select
  their subset by mask; occupancy per pass is recorded in
  :class:`repro.core.counters.EventPassStats` so the machine model can
  price the wasted traffic;
* *batched atomics* — tally flushes happen together in one scatter-add per
  pass (``np.add.at``), the analogue of the separate tally loop the paper
  introduced to enable vectorisation (§VI-G).

The driver also supports the §IX extensions (vacuum boundaries, Russian
roulette, multi-material meshes, fission).  Fission secondaries are
appended to the store between passes and advance with the population.

The physics — including per-particle RNG streams and the deterministic
derivation of secondary identities — is identical to the Over Particles
scheme; the test suite checks final states match bit-for-bit and tallies
match to accumulation-order rounding.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import Scheme, SimulationConfig
from repro.core.counters import Counters, EventPassStats
from repro.mesh.structured import StructuredMesh
from repro.mesh.tally import EnergyDepositionTally
from repro.particles.particle import Particle
from repro.particles.soa import ParticleStore
from repro.particles.source import sample_source_soa
from repro.physics.collision import collide_vec
from repro.physics.constants import speed_from_energy_ev_vec
from repro.physics.events import (
    EventKind,
    distance_to_collision_vec,
    distance_to_facet_vec,
    select_event_vec,
)
from repro.physics.facet import cross_facet_vec
from repro.physics.fission import sample_secondary_energy, secondary_id
from repro.physics.importance import clone_id, split_count_vec
from repro.rng.distributions import sample_isotropic_direction, sample_mean_free_paths
from repro.rng.stream import ParticleRNG, VectorParticleRNG
from repro.xs.lookup import binary_search_bin_vec
from repro.xs.macroscopic import macroscopic_cross_section

__all__ = ["run_over_events"]


class _EventContext:
    """Run-wide state for the Over Events driver."""

    def __init__(self, config: SimulationConfig, mesh: StructuredMesh,
                 tally: EnergyDepositionTally, store: ParticleStore):
        self.config = config
        self.mesh = mesh
        self.tally = tally
        self.store = store
        self.materials = config.resolved_materials()
        self.material_map = config.resolved_material_map()
        self.mat_a = np.array([m.a_ratio for m in self.materials])
        self.mat_molar = np.array([m.molar_mass_g_mol for m in self.materials])
        self.mat_nu = np.array([m.nu for m in self.materials])
        self.mat_fissile = np.array([m.fissile for m in self.materials])
        self.counters = Counters(nparticles=len(store))
        n = len(store)
        self.micro_s = np.zeros(n, dtype=np.float64)
        self.micro_c = np.zeros(n, dtype=np.float64)
        self.micro_f = np.zeros(n, dtype=np.float64)
        self.mat_idx = self.material_map[store.celly, store.cellx]
        self.coll_pp = np.zeros(n, dtype=np.int64)
        self.facet_pp = np.zeros(n, dtype=np.int64)
        self.nbins_log2 = int(np.ceil(np.log2(max(config.xs_nentries, 2))))
        self.rng = VectorParticleRNG(config.seed, store.particle_id, store.rng_counter)
        self.pending_children: list[Particle] = []

    # ------------------------------------------------------------------
    def refresh_micro(self, idx: np.ndarray) -> None:
        """Re-gather microscopic cross sections for the given particles,
        grouped by material (the vectorised bisection of §V-B)."""
        if idx.size == 0:
            return
        store = self.store
        c = self.counters
        for mi, mat in enumerate(self.materials):
            sel = idx[self.mat_idx[idx] == mi]
            if sel.size == 0:
                continue
            e = store.energy[sel]
            sb = binary_search_bin_vec(mat.scatter, e)
            cb = binary_search_bin_vec(mat.capture, e)
            self.micro_s[sel] = mat.scatter.interpolate_at_bin_vec(e, sb)
            self.micro_c[sel] = mat.capture.interpolate_at_bin_vec(e, cb)
            store.scatter_bin[sel] = sb
            store.capture_bin[sel] = cb
            if mat.fissile:
                fb = binary_search_bin_vec(mat.fission, e)
                self.micro_f[sel] = mat.fission.interpolate_at_bin_vec(e, fb)
                store.fission_bin[sel] = fb
                c.xs_lookups += 3 * sel.size
                c.xs_binary_probes += 3 * sel.size * self.nbins_log2
            else:
                self.micro_f[sel] = 0.0
                c.xs_lookups += 2 * sel.size
                c.xs_binary_probes += 2 * sel.size * self.nbins_log2

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(Σ_s, Σ_a, Σ_f) arrays from the cached microscopic values."""
        molar = self.mat_molar[self.mat_idx]
        rho = self.store.local_density
        sigma_s = macroscopic_cross_section(self.micro_s, rho, molar)
        sigma_f = macroscopic_cross_section(self.micro_f, rho, molar)
        sigma_a = macroscopic_cross_section(self.micro_c, rho, molar) + sigma_f
        return sigma_s, sigma_a, sigma_f

    # ------------------------------------------------------------------
    def bank_secondaries(
        self,
        parents: np.ndarray,
        counts: np.ndarray,
        counters_at_event: np.ndarray,
        weights_before: np.ndarray,
    ) -> None:
        """Create fission secondaries for the given parent indices.

        Identity and birth draws are derived exactly as in the Over
        Particles driver, so the two schemes bank bit-identical children.
        """
        store = self.store
        c = self.counters
        for j, pi in enumerate(parents):
            n_children = int(counts[j])
            if n_children <= 0:
                continue
            c.fissions += 1
            for k in range(n_children):
                cid = secondary_id(
                    self.config.seed,
                    int(store.particle_id[pi]),
                    int(counters_at_event[j]),
                    k,
                )
                rng = ParticleRNG(self.config.seed, cid)
                u_dir = rng.next_uniform()
                u_energy = rng.next_uniform()
                u_mfp = rng.next_uniform()
                mat = self.materials[int(self.mat_idx[pi])]
                ox, oy = sample_isotropic_direction(u_dir)
                child = Particle(
                    x=float(store.x[pi]),
                    y=float(store.y[pi]),
                    omega_x=ox,
                    omega_y=oy,
                    energy=sample_secondary_energy(u_energy, mat.fission_energy_ev),
                    weight=1.0,
                    cellx=int(store.cellx[pi]),
                    celly=int(store.celly[pi]),
                    particle_id=cid,
                    dt_to_census=float(store.dt_to_census[pi]),
                    mfp_to_collision=sample_mean_free_paths(u_mfp),
                    rng_counter=rng.counter,
                )
                child.local_density = float(store.local_density[pi])
                c.fission_injected_energy += child.weight * child.energy
                c.secondaries_banked += 1
                c.rng_draws += 3
                self.pending_children.append(child)

    def absorb_children(self) -> None:
        """Append banked secondaries to the population between passes."""
        if not self.pending_children:
            return
        chunk = ParticleStore.from_particles(self.pending_children)
        n_new = len(chunk)
        self.store.extend(chunk)
        self.micro_s = np.concatenate([self.micro_s, np.zeros(n_new)])
        self.micro_c = np.concatenate([self.micro_c, np.zeros(n_new)])
        self.micro_f = np.concatenate([self.micro_f, np.zeros(n_new)])
        self.mat_idx = np.concatenate(
            [self.mat_idx, self.material_map[chunk.celly, chunk.cellx]]
        )
        self.coll_pp = np.concatenate(
            [self.coll_pp, np.zeros(n_new, dtype=np.int64)]
        )
        self.facet_pp = np.concatenate(
            [self.facet_pp, np.zeros(n_new, dtype=np.int64)]
        )
        # Extend the RNG with the live counters (the store's counter field
        # is only synchronised at the end of the run).
        self.rng = VectorParticleRNG(
            self.config.seed,
            np.concatenate([self.rng.particle_ids, chunk.particle_id]),
            np.concatenate([self.rng.counters, chunk.rng_counter]),
        )
        new_idx = np.arange(len(self.store) - n_new, len(self.store))
        self.refresh_micro(new_idx)
        self.pending_children = []


def run_over_events(
    config: SimulationConfig,
    store: ParticleStore | None = None,
    tally: EnergyDepositionTally | None = None,
):
    """Run the full calculation with the Over Events scheme.

    Parameters
    ----------
    config:
        The simulation specification.
    store:
        A pre-sampled SoA particle store (for scheme-equivalence tests);
        sampled from the config's source when omitted.
    tally:
        An existing tally to accumulate into; a fresh one when omitted.

    Returns
    -------
    TransportResult
        Tally, counters, the final particle store (including any fission
        secondaries), and wall-clock time.
    """
    from repro.core.simulation import TransportResult

    t0 = time.perf_counter()
    mesh = StructuredMesh(config.nx, config.ny, config.width, config.height, config.density)
    if tally is None:
        tally = EnergyDepositionTally(config.nx, config.ny)
    materials = config.resolved_materials()
    if store is None:
        store = sample_source_soa(
            mesh, config.source, config.nparticles, config.seed, config.dt,
            scatter_table=materials[0].scatter,
            capture_table=materials[0].capture,
        )

    ctx = _EventContext(config, mesh, tally, store)
    # Keep the already-built material set (avoids rebuilding the tables).
    ctx.materials = materials
    counters = ctx.counters
    counters.rng_draws += 4 * len(store)
    vacuum = config.boundary
    roulette_weight = None  # default 10 × cutoff, see physics.variance

    for step in range(config.ntimesteps):
        if step > 0:
            store.dt_to_census[store.alive] = config.dt
        store.censused[:] = ~store.alive

        # Refresh the cached microscopic cross sections for every live
        # history (Over Particles does the same at each history start).
        ctx.refresh_micro(np.nonzero(store.alive)[0])

        # ---- loop until(all_particles_reach_census) ---------------------
        while True:
            active = store.active_mask()
            if not active.any():
                break

            # foreach(particle): calculate_time_to_events()
            sigma_s, sigma_a, sigma_f = ctx.macroscopic()
            sigma_t = sigma_s + sigma_a
            speed = speed_from_energy_ev_vec(store.energy)
            d_coll = distance_to_collision_vec(store.mfp_to_collision, sigma_t)
            x_lo = store.cellx * mesh.dx
            x_hi = (store.cellx + 1) * mesh.dx
            y_lo = store.celly * mesh.dy
            y_hi = (store.celly + 1) * mesh.dy
            d_facet, axis = distance_to_facet_vec(
                store.x, store.y, store.omega_x, store.omega_y,
                x_lo, x_hi, y_lo, y_hi,
            )
            d_census = store.dt_to_census * speed
            event = select_event_vec(d_coll, d_facet, d_census)

            cmask = active & (event == int(EventKind.COLLISION))
            fmask = active & (event == int(EventKind.FACET))
            zmask = active & (event == int(EventKind.CENSUS))
            counters.oe_passes.append(
                EventPassStats(
                    n_active=int(active.sum()),
                    n_collision=int(cmask.sum()),
                    n_facet=int(fmask.sum()),
                    n_census=int(zmask.sum()),
                )
            )

            # ---- foreach(colliding_particle): handle_collision() --------
            if cmask.any():
                c = np.nonzero(cmask)[0]
                d = d_coll[c]
                sp = speed[c]
                store.x[c] = store.x[c] + store.omega_x[c] * d
                store.y[c] = store.y[c] + store.omega_y[c] * d
                store.dt_to_census[c] = np.maximum(
                    0.0, store.dt_to_census[c] - d / sp
                )
                weight_before = store.weight[c].copy()
                counters_at_event = ctx.rng.counters[c].copy()
                u_angle = ctx.rng.next_uniform(cmask)
                u_sense = ctx.rng.next_uniform(cmask)
                u_mfp = ctx.rng.next_uniform(cmask)
                counters.rng_draws += 3 * c.size
                a_ratio = ctx.mat_a[ctx.mat_idx[c]]
                (e_new, w_new, ox_new, oy_new, mfp_new, dep, term, below) = collide_vec(
                    store.energy[c],
                    store.weight[c],
                    store.omega_x[c],
                    store.omega_y[c],
                    sigma_a[c],
                    sigma_t[c],
                    a_ratio,
                    u_angle,
                    u_sense,
                    u_mfp,
                    config.energy_cutoff_ev,
                    config.weight_cutoff,
                    defer_weight_cutoff=config.use_russian_roulette,
                )
                store.energy[c] = e_new
                store.weight[c] = w_new
                store.omega_x[c] = ox_new
                store.omega_y[c] = oy_new
                store.mfp_to_collision[c] = mfp_new
                store.deposit_buffer[c] += dep
                counters.collisions += c.size
                ctx.coll_pp[c] += 1

                # ---- fission banking (extension) ------------------------
                fissile_here = ctx.mat_fissile[ctx.mat_idx[c]] & (sigma_t[c] > 0.0)
                if fissile_here.any():
                    fis_mask = np.zeros(len(store), dtype=bool)
                    fis_mask[c[fissile_here]] = True
                    u_fission = ctx.rng.next_uniform(fis_mask)
                    counters.rng_draws += int(fissile_here.sum())
                    sel = c[fissile_here]
                    expected = (
                        weight_before[fissile_here]
                        * ctx.mat_nu[ctx.mat_idx[sel]]
                        * sigma_f[sel]
                        / sigma_t[sel]
                    )
                    counts = np.floor(expected + u_fission).astype(np.int64)
                    ctx.bank_secondaries(
                        sel,
                        counts,
                        counters_at_event[fissile_here],
                        weight_before[fissile_here],
                    )

                dead = c[term]
                if dead.size:
                    tally.flush_vec(
                        store.cellx[dead], store.celly[dead],
                        store.deposit_buffer[dead],
                    )
                    store.deposit_buffer[dead] = 0.0
                    store.alive[dead] = False
                    counters.tally_flushes += dead.size
                    counters.terminations += dead.size

                # ---- Russian roulette (extension) ------------------------
                if config.use_russian_roulette and below.any():
                    r_mask = np.zeros(len(store), dtype=bool)
                    r_mask[c[below]] = True
                    u_roulette = ctx.rng.next_uniform(r_mask)
                    counters.rng_draws += int(below.sum())
                    sel = c[below]
                    w = store.weight[sel]
                    restored = 10.0 * config.weight_cutoff
                    survive = u_roulette < (w / restored)
                    killed = sel[~survive]
                    if killed.size:
                        counters.roulette_kills += killed.size
                        counters.roulette_loss_energy += float(
                            (store.weight[killed] * store.energy[killed]).sum()
                        )
                        store.weight[killed] = 0.0
                        tally.flush_vec(
                            store.cellx[killed], store.celly[killed],
                            store.deposit_buffer[killed],
                        )
                        store.deposit_buffer[killed] = 0.0
                        store.alive[killed] = False
                        counters.tally_flushes += killed.size
                        counters.terminations += killed.size
                    survivors = sel[survive]
                    if survivors.size:
                        counters.roulette_survivals += survivors.size
                        counters.roulette_gain_energy += float(
                            (
                                (restored - store.weight[survivors])
                                * store.energy[survivors]
                            ).sum()
                        )
                        store.weight[survivors] = restored

                surv = c[store.alive[c]]
                if surv.size:
                    ctx.refresh_micro(surv)

            # ---- foreach(particle_encountering_facet): handle_facet() ---
            if fmask.any():
                f = np.nonzero(fmask)[0]
                old_cx_f = store.cellx[f].copy()
                old_cy_f = store.celly[f].copy()
                d = d_facet[f]
                sp = speed[f]
                st = sigma_t[f]
                store.x[f] = store.x[f] + store.omega_x[f] * d
                store.y[f] = store.y[f] + store.omega_y[f] * d
                store.dt_to_census[f] = np.maximum(
                    0.0, store.dt_to_census[f] - d / sp
                )
                store.mfp_to_collision[f] = np.maximum(
                    0.0, store.mfp_to_collision[f] - d * st
                )
                ax = axis[f]
                hit_x = ax == 0
                fx = f[hit_x]
                store.x[fx] = np.where(
                    store.omega_x[fx] > 0.0, x_hi[fx], x_lo[fx]
                )
                fy = f[~hit_x]
                store.y[fy] = np.where(
                    store.omega_y[fy] > 0.0, y_hi[fy], y_lo[fy]
                )
                # Batched tally loop — the separate atomic pass of §VI-G.
                tally.flush_vec(
                    store.cellx[f], store.celly[f], store.deposit_buffer[f]
                )
                store.deposit_buffer[f] = 0.0
                counters.tally_flushes += f.size
                new_cx, new_cy, new_ox, new_oy, reflected, escaped = cross_facet_vec(
                    store.cellx[f], store.celly[f],
                    store.omega_x[f], store.omega_y[f], ax, mesh, vacuum,
                )
                counters.facets += f.size
                ctx.facet_pp[f] += 1
                gone = f[escaped]
                if gone.size:
                    counters.escapes += gone.size
                    counters.escaped_energy += float(
                        (store.weight[gone] * store.energy[gone]).sum()
                    )
                    store.alive[gone] = False
                stay = ~escaped
                store.cellx[f[stay]] = new_cx[stay]
                store.celly[f[stay]] = new_cy[stay]
                store.omega_x[f[stay]] = new_ox[stay]
                store.omega_y[f[stay]] = new_oy[stay]
                crossed = f[stay & ~reflected]
                store.local_density[crossed] = mesh.density_at_vec(
                    store.cellx[crossed], store.celly[crossed]
                )
                counters.density_reads += crossed.size
                counters.reflections += int(reflected.sum())
                # Multi-material extension: particles entering a different
                # material must refresh their cached microscopic values.
                if crossed.size:
                    new_mat = ctx.material_map[
                        store.celly[crossed], store.cellx[crossed]
                    ]
                    changed = crossed[new_mat != ctx.mat_idx[crossed]]
                    ctx.mat_idx[crossed] = new_mat
                    if changed.size:
                        ctx.refresh_micro(changed)

                # ---- importance splitting / roulette (VR extension) ------
                if config.importance_map is not None and crossed.size:
                    imap = config.importance_map
                    cross_in_f = stay & ~reflected
                    ratios = (
                        imap[store.celly[crossed], store.cellx[crossed]]
                        / imap[old_cy_f[cross_in_f], old_cx_f[cross_in_f]]
                    )
                    changed_r = ratios != 1.0
                    sel = crossed[changed_r]
                    if sel.size:
                        counters_before = ctx.rng.counters[sel].copy()
                        imp_mask = np.zeros(len(store), dtype=bool)
                        imp_mask[sel] = True
                        u_imp = ctx.rng.next_uniform(imp_mask)
                        counters.rng_draws += sel.size
                        r = ratios[changed_r]

                        # splits (entering higher importance)
                        up = r > 1.0
                        if up.any():
                            n_after = split_count_vec(r[up], u_imp[up])
                            for pi, n, ctr in zip(
                                sel[up], n_after, counters_before[up]
                            ):
                                if n <= 1:
                                    continue
                                counters.splits += 1
                                w_each = float(store.weight[pi]) / int(n)
                                for k in range(int(n) - 1):
                                    cid = clone_id(
                                        config.seed,
                                        int(store.particle_id[pi]),
                                        int(ctr),
                                        k,
                                    )
                                    c = Particle(
                                        x=float(store.x[pi]),
                                        y=float(store.y[pi]),
                                        omega_x=float(store.omega_x[pi]),
                                        omega_y=float(store.omega_y[pi]),
                                        energy=float(store.energy[pi]),
                                        weight=w_each,
                                        cellx=int(store.cellx[pi]),
                                        celly=int(store.celly[pi]),
                                        particle_id=cid,
                                        dt_to_census=float(store.dt_to_census[pi]),
                                        mfp_to_collision=float(
                                            store.mfp_to_collision[pi]
                                        ),
                                        rng_counter=0,
                                    )
                                    c.local_density = float(store.local_density[pi])
                                    c.scatter_bin = int(store.scatter_bin[pi])
                                    c.capture_bin = int(store.capture_bin[pi])
                                    c.fission_bin = int(store.fission_bin[pi])
                                    counters.clones_banked += 1
                                    ctx.pending_children.append(c)
                                store.weight[pi] = w_each

                        # roulette (entering lower importance)
                        down = ~up
                        if down.any():
                            dsel = sel[down]
                            survive = u_imp[down] < r[down]
                            surv = dsel[survive]
                            if surv.size:
                                counters.roulette_survivals += surv.size
                                boosted = store.weight[surv] / r[down][survive]
                                counters.roulette_gain_energy += float(
                                    (
                                        (boosted - store.weight[surv])
                                        * store.energy[surv]
                                    ).sum()
                                )
                                store.weight[surv] = boosted
                            dead_i = dsel[~survive]
                            if dead_i.size:
                                counters.roulette_kills += dead_i.size
                                counters.roulette_loss_energy += float(
                                    (
                                        store.weight[dead_i] * store.energy[dead_i]
                                    ).sum()
                                )
                                store.weight[dead_i] = 0.0
                                store.alive[dead_i] = False
                                counters.terminations += dead_i.size

            # ---- handle_census() ----------------------------------------
            if zmask.any():
                z = np.nonzero(zmask)[0]
                d = d_census[z]
                store.x[z] = store.x[z] + store.omega_x[z] * d
                store.y[z] = store.y[z] + store.omega_y[z] * d
                store.mfp_to_collision[z] = np.maximum(
                    0.0, store.mfp_to_collision[z] - d * sigma_t[z]
                )
                store.dt_to_census[z] = 0.0
                tally.flush_vec(
                    store.cellx[z], store.celly[z], store.deposit_buffer[z]
                )
                store.deposit_buffer[z] = 0.0
                counters.tally_flushes += z.size
                store.censused[z] = True
                counters.census_events += z.size

            # ---- fission secondaries join the population -----------------
            ctx.absorb_children()
            store = ctx.store

    store.rng_counter = ctx.rng.counters
    counters.nparticles = len(store)
    counters.collisions_per_particle = ctx.coll_pp
    counters.facets_per_particle = ctx.facet_pp
    counters.tally_conflict_probability = tally.conflict_probability()

    return TransportResult(
        config=config,
        scheme=Scheme.OVER_EVENTS,
        tally=tally,
        counters=counters,
        particles=None,
        store=store,
        wallclock_s=time.perf_counter() - t0,
    )
