"""Atomic read-modify-write cost model.

Every facet encounter flushes the deposition register onto the tally mesh
with an atomic (paper §VI-A); sample profiling attributed ~50% of the Over
Particles runtime to tallying.  The cost of an atomic add has two parts:

* a **base latency** — the read-modify-write round trip to wherever the
  line currently lives (a hardware property, per
  :class:`repro.machine.spec.MachineSpec`; the K20X must *emulate* double
  atomics with a CAS loop, the P100 has a native instruction worth 1.20×
  end-to-end, §VIII-A);
* a **contention penalty** — when another thread holds the same cache line,
  the line ping-pongs.  The probability that a concurrent flush targets the
  same cell is measured from the real tally address stream
  (:meth:`repro.mesh.tally.EnergyDepositionTally.conflict_probability`).

The expected serialisation per conflicting pair grows with the number of
*other* threads flushing concurrently; with ``T`` threads and per-flush
cell-collision probability ``p``, the expected number of contenders for a
given flush is ``p (T−1)`` (cells are also adjacent in memory, so ``p`` is
computed over cache lines, i.e. groups of 8 float64 cells).
"""

from __future__ import annotations

__all__ = ["atomic_op_cost_cycles", "line_conflict_probability"]

#: float64 tally cells per 64-byte cache line.
CELLS_PER_LINE = 8


def line_conflict_probability(cell_conflict_probability: float) -> float:
    """Approximate cache-line collision probability from cell collisions.

    Flush addresses that collide at cell granularity certainly collide at
    line granularity; nearby-cell flushes add roughly a factor of the line
    width for spatially clustered tallies.  Clamped to 1.
    """
    if not 0.0 <= cell_conflict_probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    return min(1.0, cell_conflict_probability * CELLS_PER_LINE)


def atomic_op_cost_cycles(
    base_latency_cycles: float,
    cell_conflict_probability: float,
    nthreads_sharing: int,
    emulated_factor: float = 1.0,
) -> float:
    """Expected cycles per atomic flush.

    Parameters
    ----------
    base_latency_cycles:
        Uncontended atomic RMW latency of the target machine.
    cell_conflict_probability:
        Measured probability two flushes target the same tally cell.
    nthreads_sharing:
        Threads concurrently flushing into the same tally (all threads for
        the shared tally; 1 for a privatised tally, which removes both the
        atomicity requirement and the contention).
    emulated_factor:
        >1 for devices without native double-precision atomics (the K20X
        CAS-loop emulation; the paper measured the native P100 instruction
        to be worth 1.20×).
    """
    if base_latency_cycles < 0:
        raise ValueError("latency must be non-negative")
    if nthreads_sharing < 1:
        raise ValueError("need at least one thread")
    p_line = line_conflict_probability(cell_conflict_probability)
    expected_contenders = p_line * (nthreads_sharing - 1)
    # Each contender serialises roughly one extra line transfer.
    return base_latency_cycles * emulated_factor * (1.0 + expected_contenders)
