"""Deterministic fault injection for the worker pool.

The fault-tolerance machinery in :mod:`repro.parallel.pool` (heartbeats,
watchdog, shard retry, degraded drain) is only trustworthy if every failure
path can be exercised *reproducibly* — a chaos test that kills a worker at
a random moment proves nothing when it goes green.  A :class:`FaultPlan` is
a declarative list of faults, each keyed on deterministic coordinates of
the execution (worker id, worker incarnation, shard id, shard attempt), so
the same plan produces the same failure at the same place on every run and
on any host, including a single-core CI runner:

* :class:`KillWorker` — the worker process calls ``os._exit`` (a hard
  crash: no exception propagation, no result shipped) either mid-shard,
  after announcing its (``after_chunks``+1)-th shard, or cleanly between
  shards.  Keyed on ``incarnation`` so a respawned worker is not re-killed
  unless the plan says so (``incarnations=-1`` kills every respawn —
  the respawn-budget-exhaustion path).
* :class:`DelayShard` — ``time.sleep`` injected before a shard executes,
  to trip the parent's per-shard timeout (the hung-worker path).  Keyed
  on ``attempt`` so the retried shard runs promptly.
* :class:`RaiseInShard` — an exception raised inside shard execution
  (shipped to the parent as a per-shard error).  ``attempts=-1`` fails
  every retry — the retries-exhausted / degraded-drain path.
* :class:`DropHeartbeat` — the worker's heartbeat thread never starts,
  so the parent's watchdog sees a stale heartbeat and declares the
  (otherwise healthy) worker hung — the heartbeat-age detection path.

Because every history's RNG stream is keyed on its ``particle_id``, a
retried shard recomputes *bit-identical* particle states, so chaos tests
can assert exact equality between a faulted and an undisturbed run rather
than statistical closeness (see ``tests/test_pool_faults.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FaultInjected",
    "KillWorker",
    "DelayShard",
    "RaiseInShard",
    "DropHeartbeat",
    "FaultPlan",
]

#: Exit status used by injected hard kills, distinguishable from a clean 0.
KILLED_EXIT_CODE = 43


class FaultInjected(RuntimeError):
    """Raised inside a worker by :class:`RaiseInShard`."""


def _matches_count(value: int, limit: int) -> bool:
    """True when ``value`` falls inside a first-``limit`` window
    (``limit == -1`` matches everything)."""
    return limit == -1 or value < limit


@dataclass(frozen=True)
class KillWorker:
    """Hard-kill worker ``worker`` via ``os._exit``.

    Attributes
    ----------
    worker:
        Worker id (shard-owner index) to kill.
    after_chunks:
        Shards the worker completes before dying.
    incarnations:
        How many incarnations of this worker die (1 = only the original
        process; respawns survive.  -1 = every respawn too, which is how
        the respawn budget is exhausted in tests).
    mid_shard:
        ``True`` (default): die after *announcing* the next shard, so the
        parent must detect the loss and re-enqueue in-flight work.
        ``False``: die cleanly between shards without taking new work.
    """

    worker: int
    after_chunks: int = 0
    incarnations: int = 1
    mid_shard: bool = True


@dataclass(frozen=True)
class DelayShard:
    """Sleep ``seconds`` before executing shard ``shard``.

    ``attempts`` bounds how many attempts of the shard are delayed
    (default: only the first, so the retry completes; -1 delays every
    retry as well).
    """

    shard: int
    seconds: float
    attempts: int = 1


@dataclass(frozen=True)
class RaiseInShard:
    """Raise :class:`FaultInjected` while executing shard ``shard``.

    ``attempts`` bounds how many attempts fail (default: only the first;
    -1 fails every retry — the retries-exhausted path).
    """

    shard: int
    attempts: int = 1
    message: str = "injected shard fault"


@dataclass(frozen=True)
class DropHeartbeat:
    """Suppress the heartbeat thread of worker ``worker``.

    The worker keeps executing shards; only its liveness signal goes
    silent, so the parent's heartbeat-age watchdog (not ``exitcode``)
    must catch it.  ``incarnations`` as in :class:`KillWorker`.
    """

    worker: int
    incarnations: int = 1


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults threaded through ``PoolOptions``.

    The plan is pickled into every worker; workers consult it at fixed
    points of their loop (see :mod:`repro.parallel.pool`), so execution
    is reproducible for a given plan regardless of host speed or core
    count.
    """

    faults: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        known = (KillWorker, DelayShard, RaiseInShard, DropHeartbeat)
        for f in self.faults:
            if not isinstance(f, known):
                raise ValueError(f"unknown fault type: {f!r}")
            if isinstance(f, DelayShard) and f.seconds < 0:
                raise ValueError("DelayShard.seconds must be >= 0")

    def __bool__(self) -> bool:
        return bool(self.faults)

    # ------------------------------------------------------------------
    # Lookups, one per injection point in the worker loop.
    # ------------------------------------------------------------------
    def kill_for(self, worker: int, incarnation: int) -> KillWorker | None:
        for f in self.faults:
            if (
                isinstance(f, KillWorker)
                and f.worker == worker
                and _matches_count(incarnation, f.incarnations)
            ):
                return f
        return None

    def delay_for(self, shard: int, attempt: int) -> DelayShard | None:
        for f in self.faults:
            if (
                isinstance(f, DelayShard)
                and f.shard == shard
                and _matches_count(attempt, f.attempts)
            ):
                return f
        return None

    def raise_for(self, shard: int, attempt: int) -> RaiseInShard | None:
        for f in self.faults:
            if (
                isinstance(f, RaiseInShard)
                and f.shard == shard
                and _matches_count(attempt, f.attempts)
            ):
                return f
        return None

    def drops_heartbeat(self, worker: int, incarnation: int) -> bool:
        return any(
            isinstance(f, DropHeartbeat)
            and f.worker == worker
            and _matches_count(incarnation, f.incarnations)
            for f in self.faults
        )

    # ------------------------------------------------------------------
    # CLI round-trip
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact CLI spec.

        ``spec`` is ``;``-separated fault clauses, each
        ``kind:key=value,key=value``::

            kill:worker=1,after=2
            kill:worker=0,incarnations=-1,mid_shard=0
            delay:shard=3,seconds=1.5
            raise:shard=2,attempts=-1
            drop_heartbeat:worker=1

        Example: ``--fault-plan "kill:worker=1;raise:shard=0"``.
        """
        faults = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            kind, _, rest = clause.partition(":")
            kind = kind.strip().lower()
            kw: dict[str, float] = {}
            for pair in filter(None, (p.strip() for p in rest.split(","))):
                key, _, value = pair.partition("=")
                if not _:
                    raise ValueError(
                        f"malformed fault clause {clause!r}: expected key=value"
                    )
                kw[key.strip()] = float(value)
            try:
                faults.append(_CLAUSE_BUILDERS[kind](kw))
            except KeyError as exc:
                raise ValueError(
                    f"unknown fault kind {kind!r} in {spec!r} "
                    f"(known: {', '.join(sorted(_CLAUSE_BUILDERS))})"
                ) from exc
        return cls(faults=tuple(faults))

    def describe(self) -> str:
        """Human-readable one-liner for CLI/bench reporting."""
        return "; ".join(
            type(f).__name__
            + "("
            + ", ".join(
                f"{k}={getattr(f, k)}" for k in f.__dataclass_fields__
            )
            + ")"
            for f in self.faults
        )


def _build_kill(kw: dict) -> KillWorker:
    return KillWorker(
        worker=int(kw["worker"]),
        after_chunks=int(kw.get("after", kw.get("after_chunks", 0))),
        incarnations=int(kw.get("incarnations", 1)),
        mid_shard=bool(kw.get("mid_shard", 1)),
    )


def _build_delay(kw: dict) -> DelayShard:
    return DelayShard(
        shard=int(kw["shard"]),
        seconds=float(kw.get("seconds", kw.get("s", 1.0))),
        attempts=int(kw.get("attempts", 1)),
    )


def _build_raise(kw: dict) -> RaiseInShard:
    return RaiseInShard(
        shard=int(kw["shard"]),
        attempts=int(kw.get("attempts", 1)),
    )


def _build_drop_heartbeat(kw: dict) -> DropHeartbeat:
    return DropHeartbeat(
        worker=int(kw["worker"]),
        incarnations=int(kw.get("incarnations", 1)),
    )


_CLAUSE_BUILDERS = {
    "kill": _build_kill,
    "delay": _build_delay,
    "raise": _build_raise,
    "drop_heartbeat": _build_drop_heartbeat,
}
