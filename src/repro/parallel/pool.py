"""Real on-node parallel execution: a fault-tolerant shared-memory pool.

Everything else in :mod:`repro.parallel` *models* the paper's OpenMP
machinery; this module runs it for real.  Histories are sharded across
``multiprocessing`` worker processes and the existing OP/OE drivers run
unchanged on each shard — the Python analogue of the paper's §VI particle
loop:

* ``ScheduleKind.STATIC`` carves the population into ``nworkers``
  contiguous blocks (OpenMP's default static schedule); each block is one
  *shard* owned by one worker.
* ``ScheduleKind.DYNAMIC`` pre-fills a shared queue with ``chunk``-sized
  shards and idle workers pull the next one (``schedule(dynamic, chunk)``);
* each worker accumulates a **private** :class:`EnergyDepositionTally` and
  private :class:`Counters` per shard, reduced by the parent in shard-id
  order — the §VI-F tally-privatisation pattern, for real this time.

Zero-copy shard hand-off.  The parent samples the population into one
:class:`~repro.particles.arena.ParticleArena` and re-homes it into a
``multiprocessing.shared_memory`` block; each worker receives only the
tiny ``(name, n_total)`` handle and attaches a zero-copy view — shard
tasks stay ``(shard_id, attempt, lo, hi)`` tuples, so the per-shard
payload shipped to a worker is a few dozen bytes instead of a pickled
``list[Particle]``.  A worker *copies* its ``[lo, hi)`` slice before
running the driver (drivers advance state in place), which keeps the
shared slice pristine: a retried shard re-attaches the very same bytes
and re-executes bit-identically.  The parent owns the segment's lifetime
and unlinks it after the reduction.

Fault tolerance.  A long campaign must survive partial executor failure
(cf. DESIGN.md §4c "Failure model and recovery").  The parent runs a
watchdog loop that detects

* **dead workers** via ``Process.exitcode``,
* **hung workers** via heartbeat age (each worker beats a shared
  timestamp array from a daemon thread) and via a per-shard timeout
  measured from the worker's shard-start announcement;

a shard lost with its worker (or failed with an exception) is re-enqueued
with a bounded per-shard retry budget and optional backoff, and the worker
slot is respawned under a pool-wide respawn budget.  When a shard exhausts
its retries, or no worker can be respawned for stranded work, the pool
**degrades gracefully**: remaining shards are drained in-process by the
parent and the run completes with ``PoolRunInfo.degraded`` set instead of
raising.  Every failure path is reproducible through the deterministic
:class:`~repro.parallel.faults.FaultPlan` injection harness threaded
through :class:`PoolOptions`.

Determinism.  Every history owns a counter-based RNG stream keyed on its
``particle_id`` (:mod:`repro.rng.stream`), and fission secondaries / VR
clones derive their identity from the parent's state alone — so a history
evolves bit-identically no matter which worker runs it, which chunk it
arrives in, *or how many times its shard is retried*.  Consequently a run
that lost and re-executed shards produces the *same final particle states*
as an undisturbed run, and private tallies reduced in shard-id order make
the tally independent of worker scheduling too.  The merged population is
returned sorted by ``particle_id`` (primaries first, in birth order), an
order independent of the worker count, so ``nworkers=4`` and
``nworkers=1`` results compare bit-for-bit.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import shutil
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass

import numpy as np

from repro.core.config import Scheme, SimulationConfig
from repro.core.counters import Counters
from repro.mesh.structured import StructuredMesh
from repro.mesh.tally import EnergyDepositionTally
from repro.obs.live import FlightSpiller, LiveBoard, load_flight_dump
from repro.obs.spans import NULL_RECORDER, Recorder
from repro.parallel.faults import KILLED_EXIT_CODE, FaultInjected, FaultPlan
from repro.parallel.schedule import ScheduleKind
from repro.particles.arena import ParticleArena
from repro.particles.source import sample_source

__all__ = ["PoolOptions", "WorkerReport", "PoolRunInfo", "run_pool"]

#: Sentinel worker id for shards the parent drained in-process
#: (degraded mode); shows up as its own :class:`WorkerReport`.
PARENT_WORKER_ID = -1

#: Watchdog re-enqueues apparently lost-in-transit shards after this many
#: seconds of total silence with every worker idle (safety net against a
#: worker dying between pulling a task and announcing it).
_STALL_WINDOW_S = 5.0


@dataclass(frozen=True)
class PoolOptions:
    """Worker-pool configuration.

    Attributes
    ----------
    nworkers:
        Worker process count; 1 runs the sharded path in-process (no
        fork), which is the reference the parity suite compares against.
    schedule:
        ``STATIC`` (contiguous blocks) or ``DYNAMIC`` (shared chunk
        queue); the other :class:`ScheduleKind` members describe
        simulated-only policies and are rejected.
    chunk:
        Histories per DYNAMIC shard.
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``fork`` where
        available (cheap on Linux) and falls back to ``spawn``.  Unknown
        names are rejected here rather than deep inside
        ``multiprocessing``.
    max_retries:
        Per-shard retry budget.  A shard whose worker died, hung, or
        raised is re-enqueued up to this many times; past it the shard is
        drained in-process and the run is flagged degraded.
    shard_timeout:
        Seconds a single shard may run before its worker is declared hung
        and terminated (``None`` disables the per-shard watchdog).
    max_worker_respawns:
        Pool-wide budget of replacement worker processes.  Once spent,
        further worker deaths leave the slot dead; work that nobody can
        run any more is drained in-process (degraded mode).
    heartbeat_interval:
        Seconds between worker heartbeats.
    heartbeat_timeout:
        Heartbeat age past which a worker *executing a shard* is declared
        hung (``None`` disables heartbeat-age detection).  Must exceed
        ``heartbeat_interval``.
    retry_backoff:
        Parent-side sleep of ``retry_backoff * attempt`` seconds before a
        shard is re-enqueued (0 disables backoff).
    poll_interval:
        Parent watchdog polling granularity.
    fault_plan:
        Deterministic fault injection (tests/demos); requires
        ``nworkers >= 2`` because faults run inside worker processes.
    rebalance:
        DYNAMIC-only work rebalancing.  Instead of pre-filling the
        shared queue, the parent holds a *reserve* of shards, feeds one
        per completed shard, and — when a worker has been stuck on one
        shard longer than ``rebalance_threshold`` seconds — splits the
        largest reserve shard in two so the remaining work drains in
        finer grains around the straggler.  Physics is unaffected
        (shards always partition the population and the reduction
        re-sorts by ``particle_id``).
    rebalance_threshold:
        In-flight shard age (seconds) that triggers a reserve split.
    flight_dir:
        Directory for worker flight-recorder dumps (bounded tails of each
        worker's live span/event buffer, spilled from the heartbeat
        thread).  Only used when a recorder is attached to the run.
        ``None`` (the default) uses a private temporary directory that is
        removed at shutdown; an explicit path is created if needed and
        left in place, so post-mortems can inspect raw dumps.
    """

    nworkers: int
    schedule: ScheduleKind = ScheduleKind.STATIC
    chunk: int = 64
    start_method: str | None = None
    max_retries: int = 2
    shard_timeout: float | None = None
    max_worker_respawns: int = 3
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float | None = None
    retry_backoff: float = 0.0
    poll_interval: float = 0.05
    fault_plan: FaultPlan | None = None
    rebalance: bool = False
    rebalance_threshold: float = 1.0
    flight_dir: str | None = None

    def __post_init__(self) -> None:
        if self.nworkers < 1:
            raise ValueError("need at least one worker")
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")
        if self.schedule not in (ScheduleKind.STATIC, ScheduleKind.DYNAMIC):
            raise ValueError(
                "the worker pool executes STATIC or DYNAMIC schedules; "
                f"{self.schedule} is a simulation-only policy"
            )
        if self.start_method is not None:
            known = mp.get_all_start_methods()
            if self.start_method not in known:
                raise ValueError(
                    f"unknown start method {self.start_method!r}; "
                    f"this platform supports: {', '.join(known)}"
                )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.max_worker_respawns < 0:
            raise ValueError("max_worker_respawns must be >= 0")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if (
            self.heartbeat_timeout is not None
            and self.heartbeat_timeout <= self.heartbeat_interval
        ):
            raise ValueError("heartbeat_timeout must exceed heartbeat_interval")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.fault_plan is not None and self.fault_plan and self.nworkers < 2:
            raise ValueError(
                "fault injection targets worker processes; nworkers must "
                "be >= 2 for a non-empty fault_plan"
            )
        if self.rebalance and self.schedule is not ScheduleKind.DYNAMIC:
            raise ValueError(
                "rebalance needs the DYNAMIC schedule (STATIC shards are "
                "owned by fixed workers and cannot be resplit)"
            )
        if self.rebalance_threshold <= 0:
            raise ValueError("rebalance_threshold must be positive")


@dataclass(frozen=True)
class WorkerReport:
    """What one worker slot did — the measured analogue of a thread's busy
    time, aggregated over every incarnation that occupied the slot.

    Attributes
    ----------
    worker_id:
        Slot index (``-1`` is the parent's in-process degraded drain).
    histories:
        Primary histories this slot completed.
    final_histories:
        Histories returned, including fission secondaries and clones.
    events:
        Transport events (collisions + facets + census) executed.
    chunks:
        Shards completed (1 per STATIC block; queue pulls for DYNAMIC).
    busy_s:
        Wall-clock spent inside the transport drivers.
    total_s:
        Slot lifetime (sum over incarnations) including queue waits.
    incarnations:
        Processes that occupied the slot (1 + respawns of this slot).
    last_heartbeat_age_s:
        Age of the slot's heartbeat when the dispatch loop finished —
        near ``heartbeat_interval`` for a healthy worker, large for one
        that hung or died (0 for the parent's in-process drain and the
        ``nworkers == 1`` path, which have no heartbeat).
    """

    worker_id: int
    histories: int
    final_histories: int
    events: int
    chunks: int
    busy_s: float
    total_s: float
    incarnations: int = 1
    last_heartbeat_age_s: float = 0.0


@dataclass(frozen=True)
class PoolRunInfo:
    """Per-worker accounting of one pooled run (CLI / bench reporting).

    Besides the per-slot reports this carries the recovery ledger: how
    many shards were retried, how many workers were lost and respawned,
    and whether the pool had to degrade to in-process draining.
    """

    nworkers: int
    schedule: ScheduleKind
    chunk: int
    start_method: str
    workers: tuple[WorkerReport, ...]
    #: Shard re-enqueues after a worker death, hang, or shard exception.
    retries: int = 0
    #: Reserve-shard splits performed by the DYNAMIC rebalancer.
    rebalances: int = 0
    #: Replacement worker processes spawned.
    respawns: int = 0
    #: Worker processes lost (died, hung, or injected-killed).
    workers_lost: int = 0
    #: ``True`` when the pool fell back to in-process draining.
    degraded: bool = False
    #: Why the pool degraded (empty when it did not).
    degraded_reason: str = ""
    #: Shards the parent executed in-process under degraded mode.
    shards_drained_in_process: int = 0
    #: Retry attempts charged per shard id (0 = succeeded first try).
    shard_attempts: tuple[int, ...] = ()

    def _imbalance(self, values: np.ndarray) -> float:
        mean = values.mean() if values.size else 0.0
        if mean == 0:
            return 1.0
        return float(values.max() / mean)

    def event_imbalance(self) -> float:
        """``max/mean`` of per-worker executed events — the measured
        counterpart of :meth:`ScheduleOutcome.load_imbalance`."""
        return self._imbalance(
            np.array([w.events for w in self.workers], dtype=np.float64)
        )

    def busy_imbalance(self) -> float:
        """``max/mean`` of per-worker driver wall-clock."""
        return self._imbalance(
            np.array([w.busy_s for w in self.workers], dtype=np.float64)
        )

    def chunks_dispatched(self) -> int:
        """Total shards completed across the pool (including drained)."""
        return sum(w.chunks for w in self.workers)

    def recovered(self) -> bool:
        """True when any fault-tolerance machinery engaged."""
        return bool(self.retries or self.respawns or self.workers_lost
                    or self.degraded)


# ---------------------------------------------------------------------------
# Shard execution (runs inside workers; in-process when nworkers == 1)
# ---------------------------------------------------------------------------

def _run_ranges(config, scheme, population, ranges, recorder=None,
                probe=None):
    """Run the scheme driver over each ``(lo, hi)`` history range.

    ``population`` is a :class:`ParticleArena` — private or shared-memory
    backed; each range is materialised as a *copy* of the zero-copy view
    before the driver advances it, so the population itself is never
    mutated and a retried range re-executes from identical bytes.
    Accumulates into one private tally and one private counter set, in
    range order; returns everything the parent needs for the reduction.
    ``recorder`` (when given) is handed to the drivers, which record
    their span trees into it; it never alters the physics.  ``probe``
    (a :class:`repro.obs.live.StepProbe`) likewise: the stepper publishes
    per-census-step counter totals through it and each finished range is
    committed, feeding the live plane without touching the physics.

    ``scheme`` may be a fixed :class:`Scheme`, ``Scheme.AUTO`` (each
    shard gets its own live :class:`repro.adaptive.AdaptiveScheduler`),
    or a pickled :class:`~repro.core.stepper.SwitchPlan`; every case
    routes through the unified census stepper, and switch schedules are
    physics-bit-identical to fixed schemes per history, so retries and
    worker placement stay reproducible.
    """
    from repro.core.stepper import run_stepped

    # Jobs that know how to run themselves (e.g. the ensemble engine's
    # EnsembleJob) ride through the config slot and take over here; the
    # shard handle, retry and reduce machinery around them is unchanged.
    if hasattr(config, "run_ranges"):
        return config.run_ranges(
            scheme, population, ranges, recorder=recorder, probe=probe
        )

    tally = EnergyDepositionTally(config.nx, config.ny)
    counters = Counters()
    arena: ParticleArena | None = None
    busy = 0.0
    histories = 0
    chunks = 0
    for lo, hi in ranges:
        chunks += 1
        histories += hi - lo
        r = run_stepped(
            config, scheme, arena=population.view(lo, hi).copy(),
            tally=tally, recorder=recorder, probe=probe,
        )
        if probe is not None and probe.enabled:
            probe.commit_shard(r.counters, hi - lo)
        if arena is None:
            arena = r.arena
        else:
            arena.extend(r.arena)
        counters.merge_disjoint(r.counters)
        busy += r.wallclock_s
    return {
        "tally": tally,
        "counters": counters,
        "arena": arena,
        "busy_s": busy,
        "histories": histories,
        "chunks": chunks,
    }


def _beat(heartbeats, worker_id, stop, interval, spiller=None):
    """Heartbeat daemon thread: stamp a shared timestamp until stopped.

    The flight recorder rides along: each beat also gives the spiller a
    chance to refresh the on-disk dump of the worker's recent
    spans/events, so a sudden death leaves a recent tail behind."""
    while not stop.wait(interval):
        heartbeats[worker_id] = time.monotonic()
        if spiller is not None:
            spiller.maybe_spill()


def _hard_exit(result_queue):
    """Injected crash: flush shipped messages, then die without cleanup."""
    result_queue.close()
    result_queue.join_thread()
    os._exit(KILLED_EXIT_CODE)


def _worker_main(worker_id, incarnation, config, scheme, handle,
                 task_queue, result_queue, heartbeats, plan, hb_interval,
                 telemetry=False, board=None, flight_dir=None):
    """Worker process entry point: pull shards, announce, run, ship.

    ``handle`` is the population hand-off — the ``(shm_name, n_total)``
    tuple naming the parent's shared-memory arena.  The worker attaches a
    zero-copy view once (a few dozen bytes crossed the process boundary,
    not a pickled particle list) and every shard task addresses a
    ``[lo, hi)`` slice of it.  The attached bytes are never written —
    :func:`_run_ranges` copies each slice before running — so a retried
    shard, on this worker or a respawned one, re-reads identical state.

    Must stay importable at module level for ``spawn``.  Consults the
    fault plan at its deterministic injection points: clean/mid-shard
    kills keyed on (worker, incarnation, chunks done), delays and raises
    keyed on (shard, attempt), heartbeat suppression keyed on (worker,
    incarnation).

    With ``telemetry`` on, each shard gets a fresh worker-side
    :class:`~repro.obs.spans.Recorder` tagged ``(worker, incarnation,
    shard, attempt)`` whose buffered spans/events ship back inside the
    shard's result message.  Only *successful* attempts ship telemetry —
    failed attempts are covered by the parent's recovery events — so the
    merged log depends only on which attempt finally ran each shard,
    which the deterministic fault plan fixes.

    ``board`` (a :class:`repro.obs.live.LiveBoard`) is the live-plane
    sink: a probe publishes this worker's monotonic counter totals into
    its shared row, sampled by the parent on the heartbeat cadence.
    ``flight_dir`` enables the flight recorder: the current shard's
    recorder tail is spilled there from the heartbeat thread (and
    immediately on shard start, so even an instant kill leaves a dump);
    the dump is removed once the shard's result ships, because the
    shipped payload supersedes it.
    """
    stop = threading.Event()
    heartbeats[worker_id] = time.monotonic()
    probe = board.probe(worker_id) if board is not None else None
    spiller = None
    if telemetry and flight_dir is not None:
        spiller = FlightSpiller(os.path.join(
            flight_dir, f"flight_w{worker_id}_i{incarnation}.json"
        ))
    if not plan.drops_heartbeat(worker_id, incarnation):
        threading.Thread(
            target=_beat,
            args=(heartbeats, worker_id, stop, hb_interval, spiller),
            daemon=True,
        ).start()
    kill = plan.kill_for(worker_id, incarnation)
    shm_name, n_total = handle
    arena_cls = getattr(config, "arena_cls", ParticleArena)
    population = arena_cls.attach(shm_name, n_total)
    chunks_done = 0
    try:
        while True:
            if (kill is not None and not kill.mid_shard
                    and chunks_done >= kill.after_chunks):
                _hard_exit(result_queue)
            task = task_queue.get()
            if task is None:
                return
            shard_id, attempt, lo, hi = task
            result_queue.put({
                "type": "start", "worker_id": worker_id,
                "incarnation": incarnation, "shard": shard_id,
                "attempt": attempt,
            })
            wrec = None
            if telemetry:
                wrec = Recorder(source={
                    "worker": worker_id, "incarnation": incarnation,
                    "shard": shard_id, "attempt": attempt,
                })
                wrec.event("shard_start", shard=shard_id, attempt=attempt)
                if spiller is not None:
                    # Bind (and force-spill) before the injected kill /
                    # delay below: even a worker killed the instant it
                    # starts a shard leaves a flight dump behind.
                    spiller.bind(wrec)
            if (kill is not None and kill.mid_shard
                    and chunks_done >= kill.after_chunks):
                _hard_exit(result_queue)
            delay = plan.delay_for(shard_id, attempt)
            if delay is not None:
                time.sleep(delay.seconds)
            try:
                injected = plan.raise_for(shard_id, attempt)
                if injected is not None:
                    raise FaultInjected(injected.message)
                out = _run_ranges(
                    config, scheme, population, [(lo, hi)], recorder=wrec,
                    probe=probe,
                )
            except Exception:
                result_queue.put({
                    "type": "error", "worker_id": worker_id,
                    "incarnation": incarnation, "shard": shard_id,
                    "attempt": attempt, "error": traceback.format_exc(),
                })
            else:
                out.update(
                    type="result", worker_id=worker_id,
                    incarnation=incarnation, shard=shard_id, attempt=attempt,
                )
                if wrec is not None:
                    wrec.event("shard_done", shard=shard_id, attempt=attempt)
                    out["telemetry"] = wrec.payload()
                if spiller is not None:
                    # The shipped payload supersedes the flight dump;
                    # merging both would duplicate this shard's spans.
                    spiller.clear()
                result_queue.put(out)
            chunks_done += 1
    finally:
        stop.set()
        population.close()


# ---------------------------------------------------------------------------
# Parent: shard, dispatch, watch, recover, reduce
# ---------------------------------------------------------------------------

def _pick_context(options: PoolOptions):
    if options.start_method is not None:
        return mp.get_context(options.start_method)
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _build_shards(n, options):
    """The unit-of-recovery work list: ``(lo, hi)`` per shard id.

    STATIC shards are the per-worker contiguous blocks (empty ones
    dropped); DYNAMIC shards are the chunk queue entries.
    """
    if options.schedule is ScheduleKind.STATIC:
        bounds = np.linspace(0, n, options.nworkers + 1).astype(np.int64)
        return [
            (int(bounds[w]), int(bounds[w + 1]))
            for w in range(options.nworkers)
            if bounds[w + 1] > bounds[w]
        ]
    return [(lo, min(lo + options.chunk, n)) for lo in range(0, n, options.chunk)]


class _Slot:
    """Parent-side ledger for one worker slot across incarnations."""

    __slots__ = ("worker_id", "proc", "incarnation", "queue", "current",
                 "spawn_t", "lifetime_s", "dead")

    def __init__(self, worker_id, task_queue):
        self.worker_id = worker_id
        self.proc = None
        self.incarnation = -1
        self.queue = task_queue
        #: (shard_id, attempt, parent-monotonic start) while mid-shard.
        self.current = None
        self.spawn_t = 0.0
        self.lifetime_s = 0.0
        self.dead = False

    @property
    def live(self):
        return self.proc is not None and not self.dead


class _Dispatcher:
    """The watchdog loop: dispatch shards, detect failures, recover.

    One instance per ``run_pool`` call with ``nworkers > 1``.  The public
    surface is :meth:`run`, returning per-shard payloads plus the
    recovery ledger folded into :class:`PoolRunInfo` by the caller.
    """

    def __init__(self, config, scheme, population, shards, options, ctx,
                 recorder=None, live=None):
        self.config = config
        self.scheme = scheme
        #: Shared-memory arena (created by run_pool, unlinked by it too).
        self.population = population
        #: The whole hand-off a worker needs: attach-by-name + size.
        self.handle = (population.shm_name, len(population))
        self.shards = shards
        self.options = options
        self.ctx = ctx
        self.rec = NULL_RECORDER if recorder is None else recorder
        self.static = options.schedule is ScheduleKind.STATIC
        self.nslots = (
            len(shards) if self.static else min(options.nworkers, len(shards))
        )
        self.plan = options.fault_plan or FaultPlan()
        self.result_queue = ctx.Queue()
        self.heartbeats = ctx.Array("d", max(self.nslots, 1))
        self.pending = set(range(len(shards)))
        self.attempts = [0] * len(shards)
        self.results = {}
        self.slots: list[_Slot] = []
        self.retries = 0
        self.rebalances = 0
        #: Shard ids held back from the queue by the rebalancer, in
        #: dispatch order (DYNAMIC + options.rebalance only).
        self.reserve: list[int] = []
        #: (worker_id, shard, attempt) triples that already triggered a
        #: split — one split per stuck in-flight shard.
        self._split_done: set = set()
        self.respawns = 0
        self.workers_lost = 0
        self.drained = 0
        self.degraded = False
        self.degraded_reason = ""
        self.last_progress = time.monotonic()
        #: Worker-slot heartbeat ages captured when the dispatch loop
        #: finished (satellite: surfaced on WorkerReport).
        self.final_heartbeat_ages: dict[int, float] = {}
        self._last_hb_sample = time.monotonic()
        #: Live plane (repro.obs.live.LiveAggregator) and the shared
        #: stats board workers publish to; both None when the plane is
        #: off — zero overhead, like the null recorder.
        self.live = live
        self.board = (
            LiveBoard.allocate(ctx, self.nslots) if live is not None else None
        )
        self._parent_probe = None
        #: Flight-recorder directory.  Owned (created + removed here)
        #: when the options leave it unset; an explicit directory is
        #: created if needed and left behind for post-mortems.
        self.flight_dir = None
        self._flight_owned = False
        self._flight_merged: set[tuple[int, int]] = set()
        if self.rec.enabled:
            if options.flight_dir is not None:
                self.flight_dir = options.flight_dir
                os.makedirs(self.flight_dir, exist_ok=True)
            else:
                self.flight_dir = tempfile.mkdtemp(prefix="repro-flight-")
                self._flight_owned = True

    # -- lifecycle ------------------------------------------------------
    def run(self):
        if self.static:
            for sid, (lo, hi) in enumerate(self.shards):
                q = self.ctx.Queue()
                q.put((sid, 0, lo, hi))
                self.slots.append(_Slot(sid, q))
        else:
            shared = self.ctx.Queue()
            if self.options.rebalance:
                # Reserve feeding: prime one shard per slot, hold the
                # rest back so stragglers can trigger finer resplits.
                primed = list(range(min(self.nslots, len(self.shards))))
                self.reserve = list(range(len(primed), len(self.shards)))
                for sid in primed:
                    lo, hi = self.shards[sid]
                    shared.put((sid, 0, lo, hi))
            else:
                for sid, (lo, hi) in enumerate(self.shards):
                    shared.put((sid, 0, lo, hi))
            self.slots = [_Slot(w, shared) for w in range(self.nslots)]
        try:
            for slot in self.slots:
                self._spawn(slot)
            self._watch()
            now = time.monotonic()
            self.final_heartbeat_ages = {
                slot.worker_id: max(0.0, now - self.heartbeats[slot.worker_id])
                for slot in self.slots
            }
            # Final live sample: sub-second runs may never hit the
            # periodic cadence, but the snapshot should still report the
            # completed totals off the board.
            if self.live is not None:
                self._sample_live(now, record_events=False)
        finally:
            self._shutdown()
        return self.results

    def _spawn(self, slot):
        slot.incarnation += 1
        slot.spawn_t = time.monotonic()
        self.heartbeats[slot.worker_id] = slot.spawn_t
        slot.proc = self.ctx.Process(
            target=_worker_main,
            args=(
                slot.worker_id, slot.incarnation, self.config, self.scheme,
                self.handle, slot.queue, self.result_queue,
                self.heartbeats, self.plan, self.options.heartbeat_interval,
                self.rec.enabled, self.board, self.flight_dir,
            ),
            daemon=True,
        )
        slot.proc.start()

    # -- main loop ------------------------------------------------------
    def _watch(self):
        opts = self.options
        while self.pending:
            if self._drain_messages():
                self.last_progress = time.monotonic()
            if not self.pending:
                return
            now = time.monotonic()
            if ((self.rec.enabled or self.live is not None)
                    and now - self._last_hb_sample >= 1.0):
                self._last_hb_sample = now
                self._sample_live(now)
            for slot in self.slots:
                if not slot.live:
                    continue
                reason = None
                if slot.proc.exitcode is not None:
                    reason = (
                        f"worker {slot.worker_id} died "
                        f"(exit code {slot.proc.exitcode})"
                    )
                elif slot.current is not None:
                    sid, _, started = slot.current
                    if (opts.shard_timeout is not None
                            and now - started > opts.shard_timeout):
                        reason = (
                            f"worker {slot.worker_id} exceeded the "
                            f"{opts.shard_timeout:g}s shard timeout on "
                            f"shard {sid}"
                        )
                    elif (opts.heartbeat_timeout is not None
                          and now - self.heartbeats[slot.worker_id]
                          > opts.heartbeat_timeout):
                        reason = (
                            f"worker {slot.worker_id} heartbeat older than "
                            f"{opts.heartbeat_timeout:g}s on shard {sid}"
                        )
                if reason is not None:
                    self._recover_worker(slot, reason)
            self._maybe_rebalance(now)
            if self.pending and not any(s.live for s in self.slots):
                self._drain_in_process(
                    set(self.pending), "no live workers remain"
                )
            elif (self.pending
                  and now - self.last_progress > _STALL_WINDOW_S
                  and all(s.current is None for s in self.slots if s.live)):
                # Safety net: a task was pulled but never announced (its
                # worker died in the hand-off window).  Re-enqueue without
                # charging the retry budget; duplicates are deduplicated
                # on arrival.
                for sid in sorted(self.pending):
                    self._enqueue(sid, self.attempts[sid])
                self.last_progress = now

    def _sample_live(self, now, record_events=True):
        """One sampling pass on the ~1 s heartbeat cadence: heartbeat-age
        events into the recorder (the PR 5 behaviour) and, when the live
        plane is on, each worker's stats-board row plus the recovery
        ledger folded into the aggregator."""
        for slot in self.slots:
            if not slot.live:
                continue
            age = max(0.0, now - self.heartbeats[slot.worker_id])
            if self.rec.enabled and record_events:
                self.rec.event(
                    "heartbeat_age",
                    worker=slot.worker_id,
                    incarnation=slot.incarnation,
                    age_s=age,
                )
            if self.live is not None and self.board is not None:
                self.live.observe_worker(
                    slot.worker_id,
                    incarnation=slot.incarnation,
                    heartbeat_age_s=age,
                    **self.board.read(slot.worker_id),
                )
        if self.live is not None:
            self.live.update_recovery(
                retries=self.retries,
                rebalances=self.rebalances,
                respawns=self.respawns,
                workers_lost=self.workers_lost,
                degraded=self.degraded,
                degraded_reason=self.degraded_reason,
                shards_drained_in_process=self.drained,
            )

    def _drain_messages(self):
        """Pump the result queue; returns True when progress was made."""
        progress = False
        block = True
        while True:
            try:
                msg = self.result_queue.get(
                    timeout=self.options.poll_interval if block else 0
                )
            except queue_mod.Empty:
                return progress
            block = False
            progress = True
            slot = self.slots[msg["worker_id"]]
            stale = msg["incarnation"] != slot.incarnation
            if msg["type"] == "start":
                if not stale:
                    slot.current = (
                        msg["shard"], msg["attempt"], time.monotonic()
                    )
                continue
            if not stale:
                slot.current = None
            sid = msg["shard"]
            if sid not in self.pending:
                continue  # duplicate completion of a retried shard
            if msg["type"] == "result":
                self.results[sid] = msg
                self.pending.discard(sid)
                self._feed()
            elif stale:
                # Error shipped by an incarnation that has since been
                # reaped — _recover_worker already retried its shard;
                # retrying again here would double-charge the budget.
                continue
            else:  # per-shard exception, shipped by a live worker
                self._retry(
                    sid,
                    f"shard {sid} raised in worker {msg['worker_id']}:\n"
                    f"{msg['error']}",
                )

    # -- rebalancing ----------------------------------------------------
    def _feed(self) -> None:
        """Hand the next reserve shard to the shared queue (one per
        completed shard keeps roughly ``nslots`` shards in flight)."""
        if self.reserve:
            sid = self.reserve.pop(0)
            self._enqueue(sid, self.attempts[sid])

    def _maybe_rebalance(self, now) -> None:
        """Split the largest reserve shard when a worker is stuck.

        One split per stuck ``(worker, shard, attempt)`` triple: the
        straggler itself cannot be resplit (its histories are already
        in flight), but the remaining reserve drains in finer grains so
        the other workers stay busy around it.
        """
        if not (self.options.rebalance and self.reserve):
            return
        for slot in self.slots:
            if not slot.live or slot.current is None:
                continue
            sid, attempt, started = slot.current
            age = now - started
            if age <= self.options.rebalance_threshold:
                continue
            key = (slot.worker_id, sid, attempt)
            if key in self._split_done:
                continue
            self._split_done.add(key)
            self._split_reserve(slot.worker_id, sid, age)

    def _split_reserve(self, worker_id, stuck_sid, age) -> None:
        splittable = [
            s for s in self.reserve
            if self.shards[s][1] - self.shards[s][0] >= 2
        ]
        if not splittable:
            return
        victim = max(
            splittable, key=lambda s: self.shards[s][1] - self.shards[s][0]
        )
        lo, hi = self.shards[victim]
        mid = (lo + hi) // 2
        new_sid = len(self.shards)
        self.shards[victim] = (lo, mid)
        self.shards.append((mid, hi))
        self.attempts.append(0)
        self.pending.add(new_sid)
        self.reserve.insert(self.reserve.index(victim) + 1, new_sid)
        self.rebalances += 1
        self.rec.event(
            "rebalance", split_shard=victim, new_shard=new_sid,
            stuck_worker=worker_id, stuck_shard=stuck_sid,
            in_flight_s=round(age, 3),
        )

    # -- recovery -------------------------------------------------------
    def _recover_worker(self, slot, reason):
        """Terminate/reap a dead or hung worker, retry its shard, respawn."""
        self.workers_lost += 1
        self.rec.event(
            "worker_lost", worker=slot.worker_id,
            incarnation=slot.incarnation, reason=reason,
        )
        if slot.proc.is_alive():
            slot.proc.terminate()
        slot.proc.join(5.0)
        if slot.proc.is_alive():  # pragma: no cover - terminate refused
            slot.proc.kill()
            slot.proc.join(5.0)
        slot.lifetime_s += time.monotonic() - slot.spawn_t
        self._merge_flight(slot, reason)
        lost = slot.current
        slot.current = None
        slot.proc = None
        if self.respawns < self.options.max_worker_respawns and self.pending:
            self.respawns += 1
            self._spawn(slot)
            self.rec.event(
                "respawn", worker=slot.worker_id,
                incarnation=slot.incarnation,
            )
        else:
            slot.dead = True
        if lost is not None and lost[0] in self.pending:
            self._retry(lost[0], reason)
        if slot.dead and self.static:
            stranded = {
                sid for sid in self.pending
                if sid == slot.worker_id  # STATIC shard id == owner slot
            }
            if stranded:
                self._drain_in_process(
                    stranded,
                    f"{reason}; respawn budget "
                    f"({self.options.max_worker_respawns}) exhausted",
                )

    def _merge_flight(self, slot, reason):
        """Merge a lost worker's flight-recorder dump into the parent
        recorder (called after the worker is reaped, so the dump file is
        quiescent).  Best effort: a worker killed before its first spill
        completed simply leaves nothing to merge."""
        if self.flight_dir is None:
            return
        key = (slot.worker_id, slot.incarnation)
        if key in self._flight_merged:
            return
        self._flight_merged.add(key)
        path = os.path.join(
            self.flight_dir,
            f"flight_w{slot.worker_id}_i{slot.incarnation}.json",
        )
        payload = load_flight_dump(path)
        if payload is None:
            return
        self.rec.merge_payload(payload)
        self.rec.event(
            "flight_recorder",
            worker=slot.worker_id,
            incarnation=slot.incarnation,
            spans=len(payload.get("spans", ())),
            events=len(payload.get("events", ())),
            reason=reason.splitlines()[0],
        )

    def _live_probe(self):
        """The parent's own live probe (lazily built), used by the
        degraded in-process drain so drained shards still feed the
        plane."""
        if self.live is None:
            return None
        if self._parent_probe is None:
            self._parent_probe = self.live.probe(PARENT_WORKER_ID)
        return self._parent_probe

    def _retry(self, sid, reason):
        self.attempts[sid] += 1
        if self.attempts[sid] > self.options.max_retries:
            self._drain_in_process(
                {sid},
                f"shard {sid} exhausted its {self.options.max_retries} "
                f"retries ({reason.splitlines()[0]})",
            )
            return
        self.retries += 1
        self.rec.event(
            "retry", shard=sid, attempt=self.attempts[sid],
            reason=reason.splitlines()[0],
        )
        if self.options.retry_backoff:
            time.sleep(self.options.retry_backoff * self.attempts[sid])
        self._enqueue(sid, self.attempts[sid])

    def _enqueue(self, sid, attempt):
        lo, hi = self.shards[sid]
        target = self.slots[sid].queue if self.static else self.slots[0].queue
        target.put((sid, attempt, lo, hi))

    def _drain_in_process(self, sids, reason):
        """Degraded mode: the parent runs stranded shards itself.

        Fault injection does not apply here — the drain is the recovery
        of last resort and must complete (a *genuine* persistent error
        still propagates, after the shutdown cleanup).
        """
        if not self.degraded:
            self.rec.event("degraded", reason=reason)
        self.degraded = True
        if not self.degraded_reason:
            self.degraded_reason = reason
        for sid in sorted(sids):
            if sid not in self.pending:
                continue
            self.rec.event(
                "drain_in_process", shard=sid, attempt=self.attempts[sid],
            )
            t0 = time.perf_counter()
            out = _run_ranges(
                self.config, self.scheme, self.population,
                [self.shards[sid]],
                recorder=self.rec if self.rec.enabled else None,
                probe=self._live_probe(),
            )
            out.update(
                type="result", worker_id=PARENT_WORKER_ID,
                incarnation=0, shard=sid, attempt=self.attempts[sid],
                total_s=time.perf_counter() - t0,
            )
            self.results[sid] = out
            self.pending.discard(sid)
            self.drained += 1
            self._feed()
        self.last_progress = time.monotonic()

    # -- teardown -------------------------------------------------------
    def _shutdown(self):
        """Stop every worker, no matter how the dispatch loop exited.

        This is ``finally``-scoped from :meth:`run` so a parent-side
        exception can never leak live children.
        """
        live = [s for s in self.slots if s.live]
        for slot in live:
            try:
                if self.static:
                    slot.queue.put(None)
            except (OSError, ValueError):  # pragma: no cover
                pass
        if not self.static and live:
            for _ in live:
                try:
                    self.slots[0].queue.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + 10.0
        for slot in live:
            slot.proc.join(max(0.1, deadline - time.monotonic()))
            if slot.proc.is_alive():
                slot.proc.terminate()
                slot.proc.join(5.0)
                if slot.proc.is_alive():  # pragma: no cover
                    slot.proc.kill()
                    slot.proc.join(5.0)
            slot.lifetime_s += time.monotonic() - slot.spawn_t
            slot.proc = None
        # Unblock queue feeder threads so interpreter shutdown never hangs
        # on unread pipe data.
        try:
            while True:
                self.result_queue.get_nowait()
        except (queue_mod.Empty, OSError, ValueError):
            pass
        if self._flight_owned and self.flight_dir is not None:
            shutil.rmtree(self.flight_dir, ignore_errors=True)
            self.flight_dir = None


def _reduce(config, scheme, options, shards, results, dispatcher, t0,
            start_method, recorder=None):
    """Fold per-shard payloads into one :class:`TransportResult`.

    Reduction runs in **shard-id order**, so the floating-point
    accumulation order — and therefore the reduced tally, bit for bit —
    is independent of which worker ran which shard, of retries, and of
    degraded drains.  Worker telemetry payloads are merged into
    ``recorder`` in the same shard-id order, making the merged span/event
    log structurally deterministic too.  Kept module-level so tests can
    instrument it.
    """
    from repro.core.simulation import TransportResult

    rec = NULL_RECORDER if recorder is None else recorder
    tally = EnergyDepositionTally(config.nx, config.ny)
    merged = Counters()
    all_arena: ParticleArena | None = None
    per_worker: dict[int, dict] = {}
    for sid in range(len(shards)):
        r = results[sid]
        if rec.enabled and "telemetry" in r:
            rec.merge_payload(r["telemetry"])
        tally.deposition += r["tally"].deposition
        tally.flush_counts += r["tally"].flush_counts
        tally.flushes += r["tally"].flushes
        merged.merge_disjoint(r["counters"])
        final = 0
        if r["arena"] is not None:
            final = len(r["arena"])
            if all_arena is None:
                all_arena = r["arena"]
            else:
                all_arena.extend(r["arena"])
        w = per_worker.setdefault(r["worker_id"], {
            "histories": 0, "final": 0, "events": 0, "chunks": 0,
            "busy_s": 0.0, "total_s": 0.0,
        })
        w["histories"] += r["histories"]
        w["final"] += final
        w["events"] += r["counters"].total_events
        w["chunks"] += r["chunks"]
        w["busy_s"] += r["busy_s"]
        w["total_s"] += r.get("total_s", 0.0)

    reports = []
    slots = dispatcher.slots if dispatcher is not None else []
    slot_by_id = {s.worker_id: s for s in slots}
    worker_ids = sorted(set(per_worker) | set(slot_by_id))
    for wid in worker_ids:
        w = per_worker.get(wid, {
            "histories": 0, "final": 0, "events": 0, "chunks": 0,
            "busy_s": 0.0, "total_s": 0.0,
        })
        slot = slot_by_id.get(wid)
        hb_ages = (
            dispatcher.final_heartbeat_ages if dispatcher is not None else {}
        )
        reports.append(WorkerReport(
            worker_id=wid,
            histories=w["histories"],
            final_histories=w["final"],
            events=w["events"],
            chunks=w["chunks"],
            busy_s=w["busy_s"],
            total_s=slot.lifetime_s if slot is not None else w["total_s"],
            incarnations=slot.incarnation + 1 if slot is not None else 1,
            last_heartbeat_age_s=hb_ages.get(wid, 0.0),
        ))

    # ---- deterministic population order, independent of nworkers ----------
    # Primaries carry ids 0..n-1 (birth order); secondaries/clones carry
    # hashed ids.  Sorting by id therefore yields the same ordering for any
    # worker count, schedule, and recovery history.
    if all_arena is None:
        all_arena = ParticleArena(0)
    order = all_arena.sort_by("particle_id")
    merged.collisions_per_particle = merged.collisions_per_particle[order]
    merged.facets_per_particle = merged.facets_per_particle[order]
    merged.nparticles = len(all_arena)
    # Recomputed from the reduced flush histogram — identical to the value
    # a serial run reports, unlike the per-shard maxima merged above.
    merged.tally_conflict_probability = tally.conflict_probability()
    # Footprint of the merged population, not the max over shards.
    merged.arena_nbytes = all_arena.nbytes()

    info = PoolRunInfo(
        nworkers=options.nworkers,
        schedule=options.schedule,
        chunk=options.chunk,
        start_method=start_method,
        workers=tuple(reports),
        retries=dispatcher.retries if dispatcher is not None else 0,
        rebalances=dispatcher.rebalances if dispatcher is not None else 0,
        respawns=dispatcher.respawns if dispatcher is not None else 0,
        workers_lost=dispatcher.workers_lost if dispatcher is not None else 0,
        degraded=dispatcher.degraded if dispatcher is not None else False,
        degraded_reason=(
            dispatcher.degraded_reason if dispatcher is not None else ""
        ),
        shards_drained_in_process=(
            dispatcher.drained if dispatcher is not None else 0
        ),
        shard_attempts=(
            tuple(dispatcher.attempts) if dispatcher is not None
            else (0,) * len(shards)
        ),
    )
    return TransportResult(
        config=config,
        scheme=_result_scheme(scheme),
        tally=tally,
        counters=merged,
        arena=all_arena,
        wallclock_s=time.perf_counter() - t0,
        pool=info,
    )


def _result_scheme(scheme) -> Scheme:
    """Scheme reported on the reduced result: plan objects (SwitchPlan,
    AdaptiveScheduler) collapse to their fixed scheme or ``AUTO``."""
    if isinstance(scheme, Scheme):
        return scheme
    return getattr(scheme, "fixed_scheme", None) or Scheme.AUTO


def run_pool(
    config: SimulationConfig,
    scheme: Scheme = Scheme.OVER_PARTICLES,
    options: PoolOptions | None = None,
    recorder=None,
    live=None,
):
    """Run the configured calculation sharded across worker processes.

    Returns a :class:`~repro.core.simulation.TransportResult` whose
    ``pool`` field carries the per-worker accounting and the recovery
    ledger.  Physics is bit-identical to the serial drivers per history —
    including retried and drained shards — and the tally matches the
    serial run to accumulation-order rounding.

    ``recorder`` (a :class:`repro.obs.Recorder`) collects the parent's
    span tree plus every worker's shipped span/event payload, merged in
    shard-id order; recovery actions (worker loss, retries, respawns,
    degraded drains) and periodic heartbeat-age samples land in its
    event log.  Telemetry never alters the physics.

    ``live`` (a :class:`repro.obs.live.LiveAggregator`) attaches the live
    observability plane: workers publish monotonic counter totals to a
    shared stats board that the parent samples on the heartbeat cadence,
    and with a recorder attached each worker also keeps an on-disk
    flight-recorder dump that is merged into the telemetry when the
    worker is lost.  Like the recorder, the plane never alters the
    physics.
    """
    if options is None:
        options = PoolOptions(nworkers=1)
    rec = NULL_RECORDER if recorder is None else recorder
    t0 = time.perf_counter()
    if live is not None:
        live.update_run(
            problem=getattr(config, "name", "") or "",
            nparticles=int(config.nparticles),
            ntimesteps=int(config.ntimesteps),
            scheme=_result_scheme(scheme).value,
            nworkers=int(options.nworkers),
            mode="pool",
        )

    # Build the cross-section backend once.  Multigroup ships the resolved
    # tables with the config (workers would otherwise rebuild them per
    # shard); the CE library is deterministic and cached per process, so
    # workers rebuild bit-identical grids from the config's own fields.
    from repro.xs.provider import XsMode

    provider = config.resolved_provider()
    if provider.mode is XsMode.MULTIGROUP:
        run_config = config.with_(materials=provider.materials)
    else:
        run_config = config
    mesh = StructuredMesh(
        config.nx, config.ny, config.width, config.height, config.density
    )
    with rec.span("source_sampling", nparticles=config.nparticles):
        population = sample_source(
            mesh, config.source, config.nparticles, config.seed, config.dt,
            provider=provider,
        )

    shards = _build_shards(config.nparticles, options)
    dispatcher = None
    if options.nworkers == 1 or not shards:
        # In-process reference path: every shard runs in this process and
        # _run_ranges folds them into one payload, presented to the shared
        # reduction as a single shard spanning the whole population.
        t_shard = time.perf_counter()
        with rec.span("shard_exec", nshards=len(shards)):
            out = _run_ranges(
                run_config, scheme, population, shards,
                recorder=rec if rec.enabled else None,
                probe=live.probe(0) if live is not None else None,
            )
        out.update(worker_id=0, total_s=time.perf_counter() - t_shard)
        with rec.span("reduce", nshards=1):
            result = _reduce(
                config, scheme, options, [(0, config.nparticles)], {0: out},
                None, t0, "inline", recorder=rec,
            )
        if live is not None:
            live.mark_done()
        return result

    # Re-home the population into shared memory: workers attach zero-copy
    # shard views by (name, n_total, lo, hi) instead of unpickling it.
    shared_pop = population.to_shared()
    ctx = _pick_context(options)
    dispatcher = _Dispatcher(
        run_config, scheme, shared_pop, shards, options, ctx, recorder=rec,
        live=live,
    )
    try:
        with rec.span(
            "dispatch", nworkers=options.nworkers, nshards=len(shards)
        ):
            results = dispatcher.run()
        with rec.span("reduce", nshards=len(shards)):
            result = _reduce(
                config, scheme, options, shards, results, dispatcher, t0,
                ctx.get_start_method(), recorder=rec,
            )
        if live is not None:
            live.mark_done()
        return result
    finally:
        # Belt and braces for the reduction path: no worker may outlive
        # this call, even if _reduce (or anything above) raised.
        for slot in dispatcher.slots:
            if slot.proc is not None and slot.proc.is_alive():
                slot.proc.terminate()
                slot.proc.join(5.0)
        # The parent owns the segment: release and unlink it only after
        # every worker is gone.
        shared_pop.close(unlink=True)
