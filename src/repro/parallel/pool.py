"""Real on-node parallel execution: a shared-memory worker pool.

Everything else in :mod:`repro.parallel` *models* the paper's OpenMP
machinery; this module runs it for real.  Histories are sharded across
``multiprocessing`` worker processes and the existing OP/OE drivers run
unchanged on each shard — the Python analogue of the paper's §VI particle
loop:

* ``ScheduleKind.STATIC`` carves the population into ``nworkers``
  contiguous blocks (OpenMP's default static schedule);
* ``ScheduleKind.DYNAMIC`` pre-fills a shared queue with ``chunk``-sized
  blocks and idle workers pull the next one (``schedule(dynamic, chunk)``);
* each worker accumulates into a **private** :class:`EnergyDepositionTally`
  and private :class:`Counters`, reduced by the parent at the end — the
  §VI-F tally-privatisation pattern, for real this time.

Determinism.  Every history owns a counter-based RNG stream keyed on its
``particle_id`` (:mod:`repro.rng.stream`), and fission secondaries / VR
clones derive their identity from the parent's state alone — so a history
evolves bit-identically no matter which worker runs it or which chunk it
arrives in.  Consequently an N-worker run produces the *same final particle
states* as a serial run, and the same tally up to accumulation-order
rounding (private tallies are reduced in worker order, which permutes the
floating-point additions).  The merged population is returned sorted by
``particle_id`` (primaries first, in birth order), an order independent of
the worker count, so ``nworkers=4`` and ``nworkers=1`` results compare
bit-for-bit.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass

import numpy as np

from repro.core.config import Scheme, SimulationConfig
from repro.core.counters import Counters
from repro.mesh.structured import StructuredMesh
from repro.mesh.tally import EnergyDepositionTally
from repro.parallel.schedule import ScheduleKind
from repro.particles.particle import Particle
from repro.particles.soa import ParticleStore
from repro.particles.source import sample_source_aos, sample_source_soa

__all__ = ["PoolOptions", "WorkerReport", "PoolRunInfo", "run_pool"]


@dataclass(frozen=True)
class PoolOptions:
    """Worker-pool configuration.

    Attributes
    ----------
    nworkers:
        Worker process count; 1 runs the sharded path in-process (no
        fork), which is the reference the parity suite compares against.
    schedule:
        ``STATIC`` (contiguous blocks) or ``DYNAMIC`` (shared chunk
        queue); the other :class:`ScheduleKind` members describe
        simulated-only policies and are rejected.
    chunk:
        Histories per DYNAMIC queue entry.
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``fork`` where
        available (cheap on Linux) and falls back to ``spawn``.
    """

    nworkers: int
    schedule: ScheduleKind = ScheduleKind.STATIC
    chunk: int = 64
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.nworkers < 1:
            raise ValueError("need at least one worker")
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")
        if self.schedule not in (ScheduleKind.STATIC, ScheduleKind.DYNAMIC):
            raise ValueError(
                "the worker pool executes STATIC or DYNAMIC schedules; "
                f"{self.schedule} is a simulation-only policy"
            )


@dataclass(frozen=True)
class WorkerReport:
    """What one worker did — the measured analogue of a thread's busy time.

    Attributes
    ----------
    worker_id:
        Shard index (also the reduction order).
    histories:
        Primary histories assigned to this worker.
    final_histories:
        Histories returned, including fission secondaries and clones.
    events:
        Transport events (collisions + facets + census) executed.
    chunks:
        Work acquisitions (1 per STATIC block; queue pulls for DYNAMIC).
    busy_s:
        Wall-clock spent inside the transport drivers.
    total_s:
        Worker lifetime including queue waits and result shipping.
    """

    worker_id: int
    histories: int
    final_histories: int
    events: int
    chunks: int
    busy_s: float
    total_s: float


@dataclass(frozen=True)
class PoolRunInfo:
    """Per-worker accounting of one pooled run (CLI / bench reporting)."""

    nworkers: int
    schedule: ScheduleKind
    chunk: int
    start_method: str
    workers: tuple[WorkerReport, ...]

    def _imbalance(self, values: np.ndarray) -> float:
        mean = values.mean() if values.size else 0.0
        if mean == 0:
            return 1.0
        return float(values.max() / mean)

    def event_imbalance(self) -> float:
        """``max/mean`` of per-worker executed events — the measured
        counterpart of :meth:`ScheduleOutcome.load_imbalance`."""
        return self._imbalance(
            np.array([w.events for w in self.workers], dtype=np.float64)
        )

    def busy_imbalance(self) -> float:
        """``max/mean`` of per-worker driver wall-clock."""
        return self._imbalance(
            np.array([w.busy_s for w in self.workers], dtype=np.float64)
        )

    def chunks_dispatched(self) -> int:
        """Total work acquisitions across the pool."""
        return sum(w.chunks for w in self.workers)


# ---------------------------------------------------------------------------
# Shard execution (runs inside workers; in-process when nworkers == 1)
# ---------------------------------------------------------------------------

def _run_ranges(config, scheme, population, ranges):
    """Run the scheme driver over each ``(lo, hi)`` history range.

    Accumulates into one private tally and one private counter set, in
    range order; returns everything the parent needs for the reduction.
    """
    from repro.core.over_events import run_over_events
    from repro.core.over_particles import run_over_particles

    tally = EnergyDepositionTally(config.nx, config.ny)
    counters = Counters()
    parts: list[Particle] = []
    store: ParticleStore | None = None
    busy = 0.0
    histories = 0
    chunks = 0
    for lo, hi in ranges:
        chunks += 1
        histories += hi - lo
        if scheme is Scheme.OVER_PARTICLES:
            r = run_over_particles(
                config, particles=population[lo:hi], tally=tally
            )
            parts.extend(r.particles)
        else:
            r = run_over_events(
                config, store=population.subset(np.arange(lo, hi)), tally=tally
            )
            if store is None:
                store = r.store
            else:
                store.extend(r.store)
        counters.merge_disjoint(r.counters)
        busy += r.wallclock_s
    return {
        "tally": tally,
        "counters": counters,
        "particles": parts if scheme is Scheme.OVER_PARTICLES else None,
        "store": store,
        "busy_s": busy,
        "histories": histories,
        "chunks": chunks,
    }


def _queue_ranges(task_queue):
    """Yield ``(lo, hi)`` ranges from the shared queue until the sentinel."""
    while True:
        item = task_queue.get()
        if item is None:
            return
        yield item


def _worker_main(worker_id, config, scheme, population, static_ranges,
                 task_queue, result_queue):
    """Worker process entry point: run assigned shards, ship the reduction
    inputs back.  Must stay importable at module level for ``spawn``."""
    t0 = time.perf_counter()
    try:
        ranges = (
            static_ranges if task_queue is None else _queue_ranges(task_queue)
        )
        out = _run_ranges(config, scheme, population, ranges)
        out["worker_id"] = worker_id
        out["total_s"] = time.perf_counter() - t0
        result_queue.put(out)
    except Exception:  # pragma: no cover - shipped to the parent
        result_queue.put(
            {"worker_id": worker_id, "error": traceback.format_exc()}
        )


# ---------------------------------------------------------------------------
# Parent: shard, dispatch, reduce
# ---------------------------------------------------------------------------

def _pick_context(options: PoolOptions):
    if options.start_method is not None:
        return mp.get_context(options.start_method)
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def run_pool(
    config: SimulationConfig,
    scheme: Scheme = Scheme.OVER_PARTICLES,
    options: PoolOptions | None = None,
):
    """Run the configured calculation sharded across worker processes.

    Returns a :class:`~repro.core.simulation.TransportResult` whose
    ``pool`` field carries the per-worker accounting.  Physics is
    bit-identical to the serial drivers per history; the tally matches the
    serial run to accumulation-order rounding.
    """
    from repro.core.simulation import TransportResult

    if options is None:
        options = PoolOptions(nworkers=1)
    t0 = time.perf_counter()

    # Resolve the material set once — the workers would otherwise rebuild
    # the cross-section tables per chunk acquisition.
    run_config = config.with_(materials=config.resolved_materials())
    materials = run_config.materials
    mesh = StructuredMesh(
        config.nx, config.ny, config.width, config.height, config.density
    )
    sampler = (
        sample_source_aos if scheme is Scheme.OVER_PARTICLES
        else sample_source_soa
    )
    population = sampler(
        mesh, config.source, config.nparticles, config.seed, config.dt,
        scatter_table=materials[0].scatter, capture_table=materials[0].capture,
    )

    n = config.nparticles
    nworkers = options.nworkers
    if options.schedule is ScheduleKind.STATIC:
        bounds = np.linspace(0, n, nworkers + 1).astype(np.int64)
        assignments = [
            [(int(bounds[w]), int(bounds[w + 1]))]
            if bounds[w + 1] > bounds[w] else []
            for w in range(nworkers)
        ]
        shared_chunks = None
    else:
        assignments = None
        shared_chunks = [
            (lo, min(lo + options.chunk, n)) for lo in range(0, n, options.chunk)
        ]

    if nworkers == 1:
        ranges = (
            assignments[0] if shared_chunks is None else shared_chunks
        )
        t_shard = time.perf_counter()
        out = _run_ranges(run_config, scheme, population, ranges)
        out["worker_id"] = 0
        out["total_s"] = time.perf_counter() - t_shard
        shard_results = [out]
        start_method = "inline"
    else:
        ctx = _pick_context(options)
        start_method = ctx.get_start_method()
        result_queue = ctx.Queue()
        task_queue = None
        if shared_chunks is not None:
            task_queue = ctx.Queue()
            for c in shared_chunks:
                task_queue.put(c)
            for _ in range(nworkers):
                task_queue.put(None)
        procs = []
        for w in range(nworkers):
            procs.append(ctx.Process(
                target=_worker_main,
                args=(
                    w, run_config, scheme, population,
                    assignments[w] if assignments is not None else None,
                    task_queue, result_queue,
                ),
                daemon=True,
            ))
        for p in procs:
            p.start()
        shard_results = []
        for _ in range(nworkers):
            out = result_queue.get()
            if "error" in out:
                for p in procs:
                    p.terminate()
                raise RuntimeError(
                    f"pool worker {out['worker_id']} failed:\n{out['error']}"
                )
            shard_results.append(out)
        for p in procs:
            p.join()
        shard_results.sort(key=lambda r: r["worker_id"])

    # ---- reduce: private tallies/counters → one result (§VI-F) -----------
    tally = EnergyDepositionTally(config.nx, config.ny)
    merged = Counters()
    reports = []
    all_parts: list[Particle] = []
    all_store: ParticleStore | None = None
    for r in shard_results:
        tally.deposition += r["tally"].deposition
        tally.flush_counts += r["tally"].flush_counts
        tally.flushes += r["tally"].flushes
        merged.merge_disjoint(r["counters"])
        if scheme is Scheme.OVER_PARTICLES:
            all_parts.extend(r["particles"])
        elif r["store"] is not None:
            if all_store is None:
                all_store = r["store"]
            else:
                all_store.extend(r["store"])
        reports.append(WorkerReport(
            worker_id=r["worker_id"],
            histories=r["histories"],
            final_histories=(
                len(r["particles"]) if scheme is Scheme.OVER_PARTICLES
                else (len(r["store"]) if r["store"] is not None else 0)
            ),
            events=r["counters"].total_events,
            chunks=r["chunks"],
            busy_s=r["busy_s"],
            total_s=r["total_s"],
        ))

    # ---- deterministic population order, independent of nworkers ----------
    # Primaries carry ids 0..n-1 (birth order); secondaries/clones carry
    # hashed ids.  Sorting by id therefore yields the same ordering for any
    # worker count and schedule.
    if scheme is Scheme.OVER_PARTICLES:
        ids = np.array([p.particle_id for p in all_parts], dtype=np.uint64)
    else:
        if all_store is None:
            all_store = ParticleStore(0)
        ids = all_store.particle_id
    order = np.argsort(ids, kind="stable")
    if scheme is Scheme.OVER_PARTICLES:
        particles = [all_parts[i] for i in order]
        store = None
    else:
        particles = None
        store = all_store.subset(order)
    merged.collisions_per_particle = merged.collisions_per_particle[order]
    merged.facets_per_particle = merged.facets_per_particle[order]
    merged.nparticles = int(ids.size)
    # Recomputed from the reduced flush histogram — identical to the value
    # a serial run reports, unlike the per-shard maxima merged above.
    merged.tally_conflict_probability = tally.conflict_probability()

    info = PoolRunInfo(
        nworkers=nworkers,
        schedule=options.schedule,
        chunk=options.chunk,
        start_method=start_method,
        workers=tuple(reports),
    )
    return TransportResult(
        config=config,
        scheme=scheme,
        tally=tally,
        counters=merged,
        particles=particles,
        store=store,
        wallclock_s=time.perf_counter() - t0,
        pool=info,
    )
