"""On-node parallelism substrate: real execution and simulated threading.

The paper's mini-app parallelises its particle loop with OpenMP and studies
scheduling (§VI-C, Fig 4), affinity/placement (§VII), SMT occupancy (§VI-E,
Fig 6) and atomic contention (§VI-F).  Two complementary layers live here:

* :mod:`repro.parallel.pool` **executes** the particle loop in parallel for
  real — a shared-memory worker pool that shards histories across
  processes, runs the unchanged OP/OE drivers on each shard under a
  static or dynamic schedule, and reduces per-worker private tallies at
  the end (privatise-then-reduce, §VI-F);
* the *modelled* substrate predicts what those choices cost on machines we
  do not have: :mod:`repro.parallel.schedule` implements the OpenMP
  ``schedule`` clauses as a discrete-event simulation over measured work
  items; :mod:`repro.parallel.affinity` maps thread counts onto sockets,
  cores and SMT slots as ``KMP_AFFINITY=compact|scatter`` would; and
  :mod:`repro.parallel.atomics` prices atomic read-modify-write contention
  from the measured tally conflict statistics.

The two layers share :class:`ScheduleKind`, so a measured pooled run and
its modelled counterpart can be compared directly (the bench harness's
measured-speedup path does exactly that).
"""

from repro.parallel.schedule import (
    ScheduleKind,
    ScheduleOutcome,
    simulate_parallel_for,
)
from repro.parallel.affinity import Affinity, ThreadPlacement, place_threads
from repro.parallel.atomics import atomic_op_cost_cycles
from repro.parallel.faults import (
    DelayShard,
    DropHeartbeat,
    FaultInjected,
    FaultPlan,
    KillWorker,
    RaiseInShard,
)
from repro.parallel.pool import (
    PoolOptions,
    PoolRunInfo,
    WorkerReport,
    run_pool,
)

__all__ = [
    "ScheduleKind",
    "ScheduleOutcome",
    "simulate_parallel_for",
    "Affinity",
    "ThreadPlacement",
    "place_threads",
    "atomic_op_cost_cycles",
    "DelayShard",
    "DropHeartbeat",
    "FaultInjected",
    "FaultPlan",
    "KillWorker",
    "RaiseInShard",
    "PoolOptions",
    "PoolRunInfo",
    "WorkerReport",
    "run_pool",
]
