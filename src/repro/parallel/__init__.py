"""On-node parallelism substrate (simulated OpenMP threading).

The paper's mini-app parallelises its particle loop with OpenMP and studies
scheduling (§VI-C, Fig 4), affinity/placement (§VII), SMT occupancy (§VI-E,
Fig 6) and atomic contention (§VI-F).  Running in pure Python we cannot use
real threads for speed, but we do not need to: the observable effects of
those choices are fully determined by

* the per-history work distribution (measured for real by the transport
  counters), and
* the scheduling policy / placement rule (implemented exactly here).

:mod:`repro.parallel.schedule` implements the OpenMP ``schedule`` clauses as
a discrete-event simulation over measured work items;
:mod:`repro.parallel.affinity` maps thread counts onto sockets, cores and
SMT slots as ``KMP_AFFINITY=compact|scatter`` would; and
:mod:`repro.parallel.atomics` prices atomic read-modify-write contention
from the measured tally conflict statistics.
"""

from repro.parallel.schedule import (
    ScheduleKind,
    ScheduleOutcome,
    simulate_parallel_for,
)
from repro.parallel.affinity import Affinity, ThreadPlacement, place_threads
from repro.parallel.atomics import atomic_op_cost_cycles

__all__ = [
    "ScheduleKind",
    "ScheduleOutcome",
    "simulate_parallel_for",
    "Affinity",
    "ThreadPlacement",
    "place_threads",
    "atomic_op_cost_cycles",
]
