"""Thread placement (``KMP_AFFINITY``-style).

The paper's CPU runs pin threads with ``KMP_AFFINITY=compact`` (Broadwell,
§VII-A) or ``scatter`` (KNL, §VII-B) at ``granularity=fine``.  Placement
determines three quantities the machine model needs as a function of thread
count:

* how many **sockets** are populated (NUMA traffic, Fig 3's efficiency
  cliff when the second socket is consumed);
* how many **cores** are populated (per-core execution resources);
* how many **SMT slots per core** are occupied (latency hiding, Fig 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["Affinity", "ThreadPlacement", "place_threads"]


class Affinity(Enum):
    """Placement policies the paper uses.

    ``COMPACT`` packs consecutive threads onto adjacent SMT slots
    (``granularity=fine``) — it fills a core's hyperthreads, then the next
    core, then the next socket.
    ``COMPACT_CORES`` is compact at core granularity: one thread per core
    across socket 0, then socket 1, and only then the second SMT slots —
    the placement whose thread sweep reproduces the paper's Fig 3
    signatures (the NUMA crossing, and POWER8's steps at threads 6 and 11
    as the 5-core cluster and then the second socket are entered).
    ``SCATTER`` spreads threads as widely as possible — round-robin over
    sockets, then cores, filling SMT slots only when every core has a
    thread.
    """

    COMPACT = "compact"
    COMPACT_CORES = "compact_cores"
    SCATTER = "scatter"


@dataclass(frozen=True)
class ThreadPlacement:
    """Summary of where ``nthreads`` landed on the node.

    Attributes
    ----------
    nthreads:
        Total software threads (may exceed hardware slots:
        oversubscription, studied on Broadwell in §VI-E).
    sockets_used, cores_used:
        Populated sockets and physical cores.
    threads_per_core:
        Mean software threads per populated core (= SMT occupancy when not
        oversubscribed).
    max_threads_per_core:
        Worst-case software threads on one core.
    oversubscribed:
        True when software threads exceed hardware thread slots.
    per_core:
        Software threads on each physical core (length
        ``sockets × cores_per_socket``, core-major within socket).
    cores_per_socket:
        Topology echo, so consumers can derive per-socket groupings.
    """

    nthreads: int
    sockets_used: int
    cores_used: int
    threads_per_core: float
    max_threads_per_core: int
    oversubscribed: bool
    per_core: np.ndarray
    cores_per_socket: int

    def threads_on_socket(self, socket: int) -> int:
        """Software threads placed on ``socket``."""
        lo = socket * self.cores_per_socket
        return int(self.per_core[lo: lo + self.cores_per_socket].sum())

    def socket_of_core(self, core: int) -> int:
        """Socket index owning physical core ``core``."""
        return core // self.cores_per_socket


def place_threads(
    nthreads: int,
    sockets: int,
    cores_per_socket: int,
    smt_per_core: int,
    affinity: Affinity = Affinity.COMPACT,
) -> ThreadPlacement:
    """Compute the placement summary for ``nthreads`` on a node topology.

    Oversubscribed threads (beyond ``sockets × cores × smt``) wrap around
    the whole machine in placement order, as the OS scheduler would
    time-slice them.
    """
    if nthreads < 1:
        raise ValueError("need at least one thread")
    if sockets < 1 or cores_per_socket < 1 or smt_per_core < 1:
        raise ValueError("topology dimensions must be positive")

    total_cores = sockets * cores_per_socket
    hw_slots = total_cores * smt_per_core
    per_core = np.zeros(total_cores, dtype=np.int64)

    for t in range(nthreads):
        slot = t % hw_slots
        if affinity is Affinity.COMPACT:
            # slot order: (socket, core, smt) — fill a core's SMT slots,
            # then the next core, then the next socket.
            core = slot // smt_per_core
        elif affinity is Affinity.COMPACT_CORES:
            # slot order: (smt, socket, core) — socket 0's cores first,
            # then socket 1's, then the second SMT slots.
            core = slot % total_cores
        else:
            # slot order: (smt, interleaved sockets) — one thread per core
            # round-robin across sockets, then the second SMT slot, etc.
            within_round = slot % total_cores
            socket = within_round % sockets
            core_in_socket = within_round // sockets
            core = socket * cores_per_socket + core_in_socket
        per_core[core] += 1

    cores_used = int((per_core > 0).sum())
    sockets_used = int(
        np.unique(np.nonzero(per_core)[0] // cores_per_socket).size
    )
    return ThreadPlacement(
        nthreads=nthreads,
        sockets_used=sockets_used,
        cores_used=cores_used,
        threads_per_core=nthreads / cores_used,
        max_threads_per_core=int(per_core.max()),
        oversubscribed=nthreads > hw_slots,
        per_core=per_core,
        cores_per_socket=cores_per_socket,
    )
