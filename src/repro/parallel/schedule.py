"""OpenMP loop-scheduling policies as a discrete-event simulation.

The paper (§VI-C, Fig 4) sweeps the OpenMP ``schedule`` clause over the
particle loop to test whether the varying lengths of particle histories
cause a load imbalance.  Here the same experiment runs against the *real*
per-history work measured by the transport counters:

* ``STATIC`` — iterations divided into ``nthreads`` contiguous blocks;
* ``STATIC_CHUNK`` — round-robin assignment of fixed chunks;
* ``DYNAMIC`` — idle threads pull the next chunk from a shared queue
  (greedy list scheduling — simulated event-by-event);
* ``GUIDED`` — like dynamic but with geometrically shrinking chunks
  (``remaining / nthreads``, floored at the chunk size).

The outcome reports per-thread busy times, the makespan, and the load
imbalance ``max/mean`` — everything Figs 3 and 4 need.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["ScheduleKind", "ScheduleOutcome", "simulate_parallel_for"]


class ScheduleKind(Enum):
    """The OpenMP ``schedule`` clauses exercised by the paper's Fig 4."""

    STATIC = "static"
    STATIC_CHUNK = "static_chunk"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of simulating one parallel-for execution.

    Attributes
    ----------
    thread_busy:
        Total work executed by each thread (same unit as the input work).
    makespan:
        Finish time of the last thread — the parallel runtime (excluding
        scheduling overhead, which the caller prices separately from
        ``chunks_dispatched``).
    chunks_dispatched:
        Number of chunk acquisitions (each one a synchronised queue
        operation for dynamic/guided; zero-cost for static).
    """

    thread_busy: np.ndarray
    makespan: float
    chunks_dispatched: int

    @property
    def total_work(self) -> float:
        """Sum of all work items."""
        return float(self.thread_busy.sum())

    def load_imbalance(self) -> float:
        """``max/mean`` of per-thread busy time (1.0 = perfectly balanced)."""
        mean = self.thread_busy.mean()
        if mean == 0:
            return 1.0
        return float(self.thread_busy.max() / mean)

    def parallel_efficiency(self) -> float:
        """``total_work / (nthreads × makespan)`` — 1.0 is ideal."""
        if self.makespan == 0:
            return 1.0
        return float(self.total_work / (len(self.thread_busy) * self.makespan))


def _static_blocks(n: int, nthreads: int) -> list[np.ndarray]:
    """Contiguous near-equal blocks, like OpenMP's default static schedule."""
    bounds = np.linspace(0, n, nthreads + 1).astype(np.int64)
    return [np.arange(bounds[t], bounds[t + 1]) for t in range(nthreads)]


def _static_chunks(n: int, nthreads: int, chunk: int) -> list[np.ndarray]:
    """Round-robin fixed-size chunks (``schedule(static, chunk)``)."""
    assign: list[list[int]] = [[] for _ in range(nthreads)]
    for c, start in enumerate(range(0, n, chunk)):
        assign[c % nthreads].extend(range(start, min(start + chunk, n)))
    return [np.asarray(a, dtype=np.int64) for a in assign]


def simulate_parallel_for(
    work: np.ndarray,
    nthreads: int,
    schedule: ScheduleKind = ScheduleKind.STATIC,
    chunk: int = 1,
) -> ScheduleOutcome:
    """Simulate one OpenMP parallel-for over per-iteration work times.

    Parameters
    ----------
    work:
        Per-iteration cost (e.g. per-history grind-time-weighted events from
        the transport counters), any non-negative unit.
    nthreads:
        Simulated thread count.
    schedule:
        The scheduling policy.
    chunk:
        Chunk size for ``STATIC_CHUNK``/``DYNAMIC`` and the floor for
        ``GUIDED``.
    """
    work = np.asarray(work, dtype=np.float64)
    if work.ndim != 1:
        raise ValueError("work must be a 1-D array")
    if np.any(work < 0):
        raise ValueError("work items must be non-negative")
    if nthreads < 1:
        raise ValueError("need at least one thread")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    n = work.shape[0]

    if schedule is ScheduleKind.STATIC:
        blocks = _static_blocks(n, nthreads)
        busy = np.array([work[b].sum() for b in blocks])
        return ScheduleOutcome(busy, float(busy.max(initial=0.0)), 0)

    if schedule is ScheduleKind.STATIC_CHUNK:
        blocks = _static_chunks(n, nthreads, chunk)
        busy = np.array([work[b].sum() for b in blocks])
        return ScheduleOutcome(busy, float(busy.max(initial=0.0)), 0)

    # Dynamic and guided: event-driven simulation of a shared chunk queue.
    # The heap holds (time_thread_becomes_free, thread_id).
    cumulative = np.concatenate([[0.0], np.cumsum(work)])
    busy = np.zeros(nthreads)
    heap = [(0.0, t) for t in range(nthreads)]
    heapq.heapify(heap)
    next_index = 0
    dispatched = 0
    makespan = 0.0
    while next_index < n:
        now, tid = heapq.heappop(heap)
        if schedule is ScheduleKind.DYNAMIC:
            size = chunk
        elif schedule is ScheduleKind.GUIDED:
            remaining = n - next_index
            size = max((remaining + nthreads - 1) // nthreads, chunk)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown schedule {schedule}")
        end = min(next_index + size, n)
        cost = float(cumulative[end] - cumulative[next_index])
        busy[tid] += cost
        finish = now + cost
        makespan = max(makespan, finish)
        heapq.heappush(heap, (finish, tid))
        next_index = end
        dispatched += 1
    return ScheduleOutcome(busy, makespan, dispatched)
