"""Geometry splitting and roulette with importance maps.

A classic variance-reduction pair from the Monte Carlo literature the
paper cites (§IV-E, Lux & Koblinger): assign every mesh cell an
*importance* ``I``; when a particle crosses from importance ``I_old`` into
``I_new``:

* ``r = I_new / I_old > 1`` — the particle is entering a region that
  matters more (e.g. deeper into a shield whose transmission we want):
  **split** it into ``n`` copies of weight ``w/n``, where ``n`` is the
  unbiased integer realisation of ``r``;
* ``r < 1`` — entering a region that matters less: play **roulette** with
  survival probability ``r``, survivors boosted to ``w/r``.

Both moves conserve expected weight exactly; splitting conserves it
*per event* (``n · w/n = w``), roulette per expectation (ledgered exactly
per run by the validation layer).  One random draw is consumed per
importance-changing crossing, and clone identities derive from the parent
state through the same domain-separated Threefry construction as fission
secondaries — so the two parallelisation schemes split identically.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import batch as _batch
from repro.kernels.batch import MAX_SPLIT  # noqa: F401  (re-exported)
from repro.rng.threefry import threefry2x64

__all__ = [
    "SPLIT_ID_DOMAIN",
    "MAX_SPLIT",
    "split_count",
    "split_count_vec",
    "clone_id",
]

#: Key-domain separator for split-clone ids (distinct from fission's).
SPLIT_ID_DOMAIN = 0x5B711


def split_count(ratio: float, u: float) -> int:
    """Unbiased number of particles after an importance-increasing
    crossing: ``floor(r + u)``, clamped to ``[1, MAX_SPLIT]``.

    ``E[floor(r + U)] = r`` — the expected weight entering the region is
    conserved without fractional particles.
    """
    if ratio <= 1.0:
        return 1
    return int(min(np.floor(ratio + u), MAX_SPLIT))


# Deprecated alias of the batch kernel.
split_count_vec = _batch.split_counts


def clone_id(seed: int, parent_id: int, parent_counter: int, clone_index: int) -> int:
    """Deterministic id for a split clone (same construction as fission
    secondaries, different key domain)."""
    if clone_index < 0 or clone_index > 0xFF:
        raise ValueError("at most 256 clones per split")
    word = ((parent_counter << 8) | clone_index) & 0xFFFFFFFFFFFFFFFF
    out, _ = threefry2x64((parent_id, word), (seed, SPLIT_ID_DOMAIN))
    return out
