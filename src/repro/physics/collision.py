"""Collision physics: implicit capture and elastic scattering.

The mini-app considers two interactions (paper §IV-A): absorption and
elastic scattering off a homogeneous, non-multiplying medium.  Variance
reduction (§IV-E) handles absorption *implicitly*: instead of killing the
history with probability Σ_a/Σ_t, every collision deposits the absorbed
fraction of the particle's energy and scales the weight down by the survival
probability, so one history represents a whole population.

Elastic scattering uses two-body kinematics off a nucleus of mass ratio
``A`` (target mass / neutron mass):

* centre-of-mass scattering cosine ``μ`` is sampled uniformly (isotropic in
  CM, the standard s-wave approximation);
* the outgoing energy is ``E' = E (A² + 2Aμ + 1) / (A+1)²`` — the "energy
  dampening";
* the lab frame deflection cosine is ``μ_lab = (1 + Aμ) / √(A² + 2Aμ + 1)``.

This path contains the three sqrt calls the paper counts for the scattering
branch (§VI-A): the kinematics denominator, the deflection sine, and the
speed update.

Exactly **three random draws** are consumed per collision, matching §IV-F:
the scattering angle (μ), the rotation sense (which in 2D carries the
azimuthal freedom), and the new number of mean-free-paths to the next
collision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.kernels import batch as _batch

__all__ = ["CollisionOutcome", "elastic_scatter_kinematics",
           "elastic_scatter_kinematics_vec", "collide", "collide_vec"]


@dataclass(frozen=True)
class CollisionOutcome:
    """Everything a collision changes, in one value.

    Scalar fields for the Over Particles scheme; the vectorised driver uses
    :func:`collide_vec` directly on arrays.

    ``below_weight_cutoff`` is only set when the caller deferred the
    weight-cutoff decision (Russian roulette mode): the history survived
    this collision but its weight is now below the cutoff, and the driver
    must play the roulette.
    """

    energy: float
    weight: float
    omega_x: float
    omega_y: float
    mfp_to_collision: float
    deposit: float
    terminated: bool
    below_weight_cutoff: bool = False


def elastic_scatter_kinematics(
    mu_cm: float, a_ratio: float
) -> tuple[float, float, float]:
    """Two-body elastic kinematics.

    Parameters
    ----------
    mu_cm:
        Centre-of-mass scattering cosine in ``[-1, 1]``.
    a_ratio:
        Target-to-neutron mass ratio ``A``.

    Returns
    -------
    (energy_fraction, mu_lab, sin_lab):
        ``E'/E``, the lab-frame deflection cosine, and its (non-negative)
        sine.  The degenerate backscatter point ``A = 1, μ = −1`` (zero
        outgoing speed) returns ``mu_lab = 0``.
    """
    denom_sq = a_ratio * a_ratio + 2.0 * a_ratio * mu_cm + 1.0
    e_frac = denom_sq / ((a_ratio + 1.0) * (a_ratio + 1.0))
    if denom_sq <= 0.0 or e_frac < 1.0e-300:
        return 0.0, 0.0, 1.0
    denom = math.sqrt(denom_sq)  # sqrt #1
    mu_lab = (1.0 + a_ratio * mu_cm) / denom
    mu_lab = max(-1.0, min(1.0, mu_lab))
    sin_lab = math.sqrt(1.0 - mu_lab * mu_lab)  # sqrt #2
    return e_frac, mu_lab, sin_lab


# Deprecated alias of the batch kernel.
elastic_scatter_kinematics_vec = _batch.elastic_scatter_kinematics


def collide(
    energy: float,
    weight: float,
    omega_x: float,
    omega_y: float,
    sigma_a: float,
    sigma_t: float,
    a_ratio: float,
    u_angle: float,
    u_sense: float,
    u_mfp: float,
    energy_cutoff_ev: float,
    weight_cutoff: float,
    defer_weight_cutoff: bool = False,
) -> CollisionOutcome:
    """Apply one collision to a particle's state (scalar form).

    Energy accounting is exact: the deposit equals the weighted energy lost
    by the history, so ``deposit + w'E' == wE`` holds to rounding, which is
    the conservation invariant the validation layer checks.

    Draw order: ``u_angle`` (CM cosine), ``u_sense`` (rotation sense),
    ``u_mfp`` (optical distance to the next collision).

    With ``defer_weight_cutoff`` (Russian roulette mode) the energy cutoff
    still terminates here, but a sub-cutoff weight is *reported* rather
    than terminated — the driver plays the roulette with its own draw.
    """
    # --- implicit capture: deposit the absorbed share, reduce the weight.
    p_absorb = sigma_a / sigma_t if sigma_t > 0.0 else 0.0
    deposit = weight * energy * p_absorb
    weight = weight * (1.0 - p_absorb)

    # --- elastic scatter with energy dampening.
    mu_cm = 2.0 * u_angle - 1.0
    e_frac, mu_lab, sin_lab = elastic_scatter_kinematics(mu_cm, a_ratio)
    new_energy = energy * e_frac
    deposit += weight * (energy - new_energy)
    sense = 1.0 if u_sense < 0.5 else -1.0
    new_ox = omega_x * mu_lab - omega_y * sin_lab * sense
    new_oy = omega_y * mu_lab + omega_x * sin_lab * sense

    # --- re-sample the optical distance to the next collision.
    # numpy's log for bit-parity with collide_vec (libm may differ by 1 ulp).
    mfp = float(-np.log(1.0 - u_mfp))

    # --- variance-reduction termination (weight or energy cutoff, §IV-E):
    # the remaining history energy is deposited where the history ends.
    below_weight = weight < weight_cutoff
    if defer_weight_cutoff:
        terminated = new_energy < energy_cutoff_ev
        below_weight = below_weight and not terminated
    else:
        terminated = new_energy < energy_cutoff_ev or below_weight
        below_weight = False
    if terminated:
        deposit += weight * new_energy
        weight = 0.0

    return CollisionOutcome(
        energy=new_energy,
        weight=weight,
        omega_x=new_ox,
        omega_y=new_oy,
        mfp_to_collision=mfp,
        deposit=deposit,
        terminated=terminated,
        below_weight_cutoff=below_weight,
    )


# Deprecated alias of the batch kernel; returns
# (energy, weight, ox, oy, mfp, deposit, terminated, below_weight) arrays.
collide_vec = _batch.collide
