"""Event physics for Monte Carlo neutral particle transport.

The particle event-tracking procedure (paper §IV-A) considers three events:

* **collision** — absorption (handled by implicit capture / weight
  reduction, §IV-E) and elastic scattering with energy dampening;
* **facet** — the particle reaches a facet of its containing cell: flush the
  tally, cross into the neighbour (or reflect at a problem boundary), reload
  the destination density;
* **census** — the terminal event at the end of the timestep.

Individual timers (distance budgets) are maintained per event; every handled
event updates the others' timers by the distance travelled.  All handlers
exist in scalar form (Over Particles) and vectorised form (Over Events) and
are verified to be bit-identical by the test suite.
"""

from repro.physics.constants import (
    NEUTRON_MASS_KG,
    EV_TO_J,
    speed_from_energy_ev,
    speed_from_energy_ev_vec,
)
from repro.physics.events import (
    EventKind,
    distance_to_facet,
    distance_to_facet_vec,
    distance_to_collision,
    distance_to_census,
)
from repro.physics.collision import elastic_scatter_kinematics, CollisionOutcome
from repro.physics.variance import should_terminate, should_terminate_vec

__all__ = [
    "NEUTRON_MASS_KG",
    "EV_TO_J",
    "speed_from_energy_ev",
    "speed_from_energy_ev_vec",
    "EventKind",
    "distance_to_facet",
    "distance_to_facet_vec",
    "distance_to_collision",
    "distance_to_census",
    "elastic_scatter_kinematics",
    "CollisionOutcome",
    "should_terminate",
    "should_terminate_vec",
]
