"""Facet-crossing logic.

The facet event contains the deepest branching of the tracking loop — up to
four levels (paper §VI-A): which axis was hit, travel direction along that
axis, problem boundary or interior facet, and the reflective-boundary
handling.  Each branch performs only one or two FLOPs, which is why the
event's grind time is so low (~3 ns on Broadwell) and why its cost is
dominated by the density-mesh read and the tally flush rather than by
arithmetic.
"""

from __future__ import annotations

from repro.kernels import batch as _batch
from repro.mesh.boundary import BoundaryCondition
from repro.mesh.structured import StructuredMesh

__all__ = ["cross_facet", "cross_facet_vec"]


def cross_facet(
    cellx: int,
    celly: int,
    omega_x: float,
    omega_y: float,
    axis: int,
    mesh: StructuredMesh,
    bc: BoundaryCondition = BoundaryCondition.REFLECTIVE,
) -> tuple[int, int, float, float, bool, bool]:
    """Resolve a facet encounter for a particle sitting on the facet.

    Parameters
    ----------
    cellx, celly:
        The cell the particle is leaving.
    omega_x, omega_y:
        Direction of flight (determines which facet of ``axis`` was hit).
    axis:
        0 if an x-facing facet was hit, 1 for a y-facing facet.
    mesh:
        The mesh, for boundary detection.
    bc:
        Problem-boundary treatment: reflective (the paper's choice) or
        vacuum (particles escape and their history ends).

    Returns
    -------
    (new_cellx, new_celly, new_ox, new_oy, reflected, escaped):
        Destination cell (unchanged at a boundary), possibly flipped
        direction, whether a reflective boundary was hit, and whether the
        particle left through a vacuum boundary.
    """
    vacuum = bc is BoundaryCondition.VACUUM
    if axis == 0:  # x facet
        if omega_x > 0.0:  # travelling +x
            if cellx == mesh.nx - 1:  # problem boundary
                if vacuum:
                    return cellx, celly, omega_x, omega_y, False, True
                return cellx, celly, -omega_x, omega_y, True, False
            return cellx + 1, celly, omega_x, omega_y, False, False
        else:  # travelling -x
            if cellx == 0:
                if vacuum:
                    return cellx, celly, omega_x, omega_y, False, True
                return cellx, celly, -omega_x, omega_y, True, False
            return cellx - 1, celly, omega_x, omega_y, False, False
    else:  # y facet
        if omega_y > 0.0:  # travelling +y
            if celly == mesh.ny - 1:
                if vacuum:
                    return cellx, celly, omega_x, omega_y, False, True
                return cellx, celly, omega_x, -omega_y, True, False
            return cellx, celly + 1, omega_x, omega_y, False, False
        else:  # travelling -y
            if celly == 0:
                if vacuum:
                    return cellx, celly, omega_x, omega_y, False, True
                return cellx, celly, omega_x, -omega_y, True, False
            return cellx, celly - 1, omega_x, omega_y, False, False


# Deprecated alias of the batch kernel; returns new cell indices,
# directions, the reflected mask and the escaped mask.
cross_facet_vec = _batch.cross_facet
