"""Facet-crossing logic.

The facet event contains the deepest branching of the tracking loop — up to
four levels (paper §VI-A): which axis was hit, travel direction along that
axis, problem boundary or interior facet, and the reflective-boundary
handling.  Each branch performs only one or two FLOPs, which is why the
event's grind time is so low (~3 ns on Broadwell) and why its cost is
dominated by the density-mesh read and the tally flush rather than by
arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.boundary import BoundaryCondition
from repro.mesh.structured import StructuredMesh

__all__ = ["cross_facet", "cross_facet_vec"]


def cross_facet(
    cellx: int,
    celly: int,
    omega_x: float,
    omega_y: float,
    axis: int,
    mesh: StructuredMesh,
    bc: BoundaryCondition = BoundaryCondition.REFLECTIVE,
) -> tuple[int, int, float, float, bool, bool]:
    """Resolve a facet encounter for a particle sitting on the facet.

    Parameters
    ----------
    cellx, celly:
        The cell the particle is leaving.
    omega_x, omega_y:
        Direction of flight (determines which facet of ``axis`` was hit).
    axis:
        0 if an x-facing facet was hit, 1 for a y-facing facet.
    mesh:
        The mesh, for boundary detection.
    bc:
        Problem-boundary treatment: reflective (the paper's choice) or
        vacuum (particles escape and their history ends).

    Returns
    -------
    (new_cellx, new_celly, new_ox, new_oy, reflected, escaped):
        Destination cell (unchanged at a boundary), possibly flipped
        direction, whether a reflective boundary was hit, and whether the
        particle left through a vacuum boundary.
    """
    vacuum = bc is BoundaryCondition.VACUUM
    if axis == 0:  # x facet
        if omega_x > 0.0:  # travelling +x
            if cellx == mesh.nx - 1:  # problem boundary
                if vacuum:
                    return cellx, celly, omega_x, omega_y, False, True
                return cellx, celly, -omega_x, omega_y, True, False
            return cellx + 1, celly, omega_x, omega_y, False, False
        else:  # travelling -x
            if cellx == 0:
                if vacuum:
                    return cellx, celly, omega_x, omega_y, False, True
                return cellx, celly, -omega_x, omega_y, True, False
            return cellx - 1, celly, omega_x, omega_y, False, False
    else:  # y facet
        if omega_y > 0.0:  # travelling +y
            if celly == mesh.ny - 1:
                if vacuum:
                    return cellx, celly, omega_x, omega_y, False, True
                return cellx, celly, omega_x, -omega_y, True, False
            return cellx, celly + 1, omega_x, omega_y, False, False
        else:  # travelling -y
            if celly == 0:
                if vacuum:
                    return cellx, celly, omega_x, omega_y, False, True
                return cellx, celly, omega_x, -omega_y, True, False
            return cellx, celly - 1, omega_x, omega_y, False, False


def cross_facet_vec(
    cellx: np.ndarray,
    celly: np.ndarray,
    omega_x: np.ndarray,
    omega_y: np.ndarray,
    axis: np.ndarray,
    mesh: StructuredMesh,
    bc: BoundaryCondition = BoundaryCondition.REFLECTIVE,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`cross_facet` over particle arrays.

    Returns new cell indices, directions, the reflected mask and the
    escaped mask; inputs are not modified.
    """
    new_cx = cellx.copy()
    new_cy = celly.copy()
    new_ox = omega_x.copy()
    new_oy = omega_y.copy()

    x_facet = axis == 0
    y_facet = ~x_facet

    going_px = x_facet & (omega_x > 0.0)
    going_nx = x_facet & (omega_x <= 0.0)
    going_py = y_facet & (omega_y > 0.0)
    going_ny = y_facet & (omega_y <= 0.0)

    bnd_px = going_px & (cellx == mesh.nx - 1)
    bnd_nx = going_nx & (cellx == 0)
    bnd_py = going_py & (celly == mesh.ny - 1)
    bnd_ny = going_ny & (celly == 0)
    at_boundary = bnd_px | bnd_nx | bnd_py | bnd_ny

    if bc is BoundaryCondition.VACUUM:
        escaped = at_boundary
        reflected = np.zeros_like(at_boundary)
    else:
        escaped = np.zeros_like(at_boundary)
        reflected = at_boundary
        flip_x = bnd_px | bnd_nx
        flip_y = bnd_py | bnd_ny
        new_ox[flip_x] = -new_ox[flip_x]
        new_oy[flip_y] = -new_oy[flip_y]

    new_cx[going_px & ~bnd_px] += 1
    new_cx[going_nx & ~bnd_nx] -= 1
    new_cy[going_py & ~bnd_py] += 1
    new_cy[going_ny & ~bnd_ny] -= 1

    return new_cx, new_cy, new_ox, new_oy, reflected, escaped
