"""Variance reduction: weighted histories and termination.

In an analogue calculation a particle streams until absorbed; the mini-app
instead gives every history a statistical weight (paper §IV-E).  Absorption
reduces the weight (implicit capture, see :mod:`repro.physics.collision`),
and a history ends only when its weight falls below a fixed cutoff or its
energy drops below the energy of interest.

An optional *Russian roulette* mode is provided as an extension (it is the
standard companion of implicit capture in production codes): instead of
deterministic termination at the weight cutoff, a low-weight history
survives with probability ``weight / roulette_weight`` and is restored to
``roulette_weight`` — unbiased by construction.  The paper's experiments use
deterministic cutoff, which is the default everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import batch as _batch

__all__ = [
    "should_terminate",
    "should_terminate_vec",
    "russian_roulette",
    "DEFAULT_ENERGY_CUTOFF_EV",
    "DEFAULT_WEIGHT_CUTOFF",
]

#: Histories below this energy are no longer "of interest" (thermal floor).
DEFAULT_ENERGY_CUTOFF_EV = 1.0e-2

#: Histories below this fraction of their birth weight terminate.
DEFAULT_WEIGHT_CUTOFF = 1.0e-3


def should_terminate(
    energy_ev: float,
    weight: float,
    energy_cutoff_ev: float = DEFAULT_ENERGY_CUTOFF_EV,
    weight_cutoff: float = DEFAULT_WEIGHT_CUTOFF,
) -> bool:
    """Deterministic cutoff termination (paper §IV-E)."""
    return energy_ev < energy_cutoff_ev or weight < weight_cutoff


def should_terminate_vec(
    energy_ev: np.ndarray,
    weight: np.ndarray,
    energy_cutoff_ev: float = DEFAULT_ENERGY_CUTOFF_EV,
    weight_cutoff: float = DEFAULT_WEIGHT_CUTOFF,
) -> np.ndarray:
    """Deprecated wrapper over the batch kernel (keeps the defaults)."""
    return _batch.should_terminate(energy_ev, weight, energy_cutoff_ev, weight_cutoff)


def russian_roulette(
    weight: float,
    u: float,
    weight_cutoff: float = DEFAULT_WEIGHT_CUTOFF,
    roulette_weight: float | None = None,
) -> tuple[float, bool]:
    """Unbiased stochastic termination for low-weight histories (extension).

    Parameters
    ----------
    weight:
        Current history weight.
    u:
        A uniform draw in ``[0, 1)``.
    weight_cutoff:
        Threshold below which the roulette is played.
    roulette_weight:
        Weight restored to survivors; defaults to ``10 × weight_cutoff``.

    Returns
    -------
    (new_weight, killed):
        Survivors return with ``roulette_weight``; the expected weight is
        conserved: ``E[new_weight] = weight``.
    """
    if weight >= weight_cutoff:
        return weight, False
    if roulette_weight is None:
        roulette_weight = 10.0 * weight_cutoff
    survive_prob = weight / roulette_weight
    if u < survive_prob:
        return roulette_weight, False
    return 0.0, True
