"""Physical constants and kinematic helpers.

The mini-app treats neutrons non-relativistically: for the source energies
used by the test problems (1 MeV) the relativistic correction to the speed
is below 0.1%, far under the statistical noise floor of the method.

The constants themselves live with the batch kernels
(:mod:`repro.kernels.batch`) and are re-exported here; the scalar helper
is the reference implementation for the parity suite.
"""

from __future__ import annotations

import math

from repro.kernels import batch as _batch
from repro.kernels.batch import NEUTRON_MASS_KG, EV_TO_J  # noqa: F401

__all__ = [
    "NEUTRON_MASS_KG",
    "EV_TO_J",
    "speed_from_energy_ev",
    "speed_from_energy_ev_vec",
]

# Precomputed 2 eV/m_n so the hot path is a multiply and a sqrt.
_TWO_EV_OVER_MASS = 2.0 * EV_TO_J / NEUTRON_MASS_KG


def speed_from_energy_ev(energy_ev: float) -> float:
    """Neutron speed [m/s] from kinetic energy [eV], non-relativistic.

    ``v = sqrt(2 E / m)``.  One of the three sqrt calls in the collision
    path the paper counts (§VI-A).
    """
    if energy_ev < 0:
        raise ValueError("energy must be non-negative")
    return math.sqrt(_TWO_EV_OVER_MASS * energy_ev)


# Deprecated alias of the batch kernel (no negativity check).
speed_from_energy_ev_vec = _batch.speed_from_energy
