"""Physical constants and kinematic helpers.

The mini-app treats neutrons non-relativistically: for the source energies
used by the test problems (1 MeV) the relativistic correction to the speed
is below 0.1%, far under the statistical noise floor of the method.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "NEUTRON_MASS_KG",
    "EV_TO_J",
    "speed_from_energy_ev",
    "speed_from_energy_ev_vec",
]

#: Neutron rest mass [kg] (CODATA 2018).
NEUTRON_MASS_KG = 1.67492749804e-27

#: One electron-volt in joules (exact, SI 2019).
EV_TO_J = 1.602176634e-19

# Precomputed 2 eV/m_n so the hot path is a multiply and a sqrt.
_TWO_EV_OVER_MASS = 2.0 * EV_TO_J / NEUTRON_MASS_KG


def speed_from_energy_ev(energy_ev: float) -> float:
    """Neutron speed [m/s] from kinetic energy [eV], non-relativistic.

    ``v = sqrt(2 E / m)``.  One of the three sqrt calls in the collision
    path the paper counts (§VI-A).
    """
    if energy_ev < 0:
        raise ValueError("energy must be non-negative")
    return math.sqrt(_TWO_EV_OVER_MASS * energy_ev)


def speed_from_energy_ev_vec(energy_ev: np.ndarray) -> np.ndarray:
    """Vectorised :func:`speed_from_energy_ev` (no negativity check)."""
    return np.sqrt(_TWO_EV_OVER_MASS * energy_ev)
