"""Distance-to-event calculations and event selection.

To determine which event a particle encounters next, individual "timers"
are kept for each event and compared (paper §IV-A).  We work in *distance*
units: the distance to the containing cell's nearest facet, the distance to
the next collision (remaining mean-free-paths divided by the local
macroscopic total cross section), and the distance to census (remaining
time times speed).  The smallest wins; ties resolve in the fixed order
collision < facet < census, identically in both schemes.

The facet calculation is the "simple intersection in Cartesian space" of
§IV-C: the structured grid reduces it to two divisions and a compare.

The scalar functions here are the *reference implementations* the parity
suite pins the batch kernels against; the batch forms live in
:mod:`repro.kernels.batch` and the old ``*_vec`` names are deprecated
aliases of them.
"""

from __future__ import annotations

from repro.kernels.batch import (  # noqa: F401  (re-exported constants)
    EventKind,
    HUGE_DISTANCE,
    PARALLEL_EPS,
)
from repro.kernels import batch as _batch

__all__ = [
    "EventKind",
    "distance_to_facet",
    "distance_to_facet_vec",
    "distance_to_collision",
    "distance_to_collision_vec",
    "distance_to_census",
    "select_event",
    "select_event_vec",
    "HUGE_DISTANCE",
    "PARALLEL_EPS",
]


def distance_to_facet(
    x: float,
    y: float,
    omega_x: float,
    omega_y: float,
    x_lo: float,
    x_hi: float,
    y_lo: float,
    y_hi: float,
) -> tuple[float, int]:
    """Distance to the nearest facet of the cell ``[x_lo,x_hi]×[y_lo,y_hi]``.

    Returns ``(distance, axis)`` where ``axis`` is 0 if the x-facing facet
    is hit first and 1 for the y-facing facet.  A zero direction component
    never hits its facet.  Ties pick the x facet, matching the batch
    kernel.
    """
    if omega_x > PARALLEL_EPS:
        dist_x = (x_hi - x) / omega_x
    elif omega_x < -PARALLEL_EPS:
        dist_x = (x_lo - x) / omega_x
    else:
        dist_x = HUGE_DISTANCE
    if omega_y > PARALLEL_EPS:
        dist_y = (y_hi - y) / omega_y
    elif omega_y < -PARALLEL_EPS:
        dist_y = (y_lo - y) / omega_y
    else:
        dist_y = HUGE_DISTANCE
    if dist_x <= dist_y:
        return dist_x, 0
    return dist_y, 1


def distance_to_collision(mfp_remaining: float, sigma_t: float) -> float:
    """Distance to the next collision from the remaining optical distance.

    With no material (Σ_t = 0, e.g. the stream problem's near-vacuum when
    fully attenuated) the collision never happens.
    """
    if sigma_t <= 0.0:
        return HUGE_DISTANCE
    return mfp_remaining / sigma_t


def distance_to_census(dt_remaining: float, speed: float) -> float:
    """Distance flown in the remaining timestep at the current speed."""
    return dt_remaining * speed


def select_event(d_collision: float, d_facet: float, d_census: float) -> EventKind:
    """Pick the first encountered event (tie-break: collision, facet, census)."""
    if d_collision <= d_facet and d_collision <= d_census:
        return EventKind.COLLISION
    if d_facet <= d_census:
        return EventKind.FACET
    return EventKind.CENSUS


# Deprecated aliases: the batch kernels are the single implementation.
distance_to_facet_vec = _batch.distance_to_facet
distance_to_collision_vec = _batch.distance_to_collision
select_event_vec = _batch.select_events
