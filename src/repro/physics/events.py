"""Distance-to-event calculations and event selection.

To determine which event a particle encounters next, individual "timers"
are kept for each event and compared (paper §IV-A).  We work in *distance*
units: the distance to the containing cell's nearest facet, the distance to
the next collision (remaining mean-free-paths divided by the local
macroscopic total cross section), and the distance to census (remaining
time times speed).  The smallest wins; ties resolve in the fixed order
collision < facet < census, identically in both schemes.

The facet calculation is the "simple intersection in Cartesian space" of
§IV-C: the structured grid reduces it to two divisions and a compare.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

__all__ = [
    "EventKind",
    "distance_to_facet",
    "distance_to_facet_vec",
    "distance_to_collision",
    "distance_to_collision_vec",
    "distance_to_census",
    "select_event",
    "select_event_vec",
    "HUGE_DISTANCE",
]

#: Stand-in for "never": larger than any reachable flight distance.
HUGE_DISTANCE = 1.0e300

#: Direction components smaller than this never hit their facet: the ray is
#: numerically parallel to it.  Avoids overflowing divisions by denormals;
#: any legitimate distance produced near the threshold loses to census
#: anyway (flight distances are bounded by speed × dt « 1e12 m).
PARALLEL_EPS = 1.0e-12


class EventKind(IntEnum):
    """The three events of the tracking loop, ordered by tie-break priority."""

    COLLISION = 0
    FACET = 1
    CENSUS = 2


def distance_to_facet(
    x: float,
    y: float,
    omega_x: float,
    omega_y: float,
    x_lo: float,
    x_hi: float,
    y_lo: float,
    y_hi: float,
) -> tuple[float, int]:
    """Distance to the nearest facet of the cell ``[x_lo,x_hi]×[y_lo,y_hi]``.

    Returns ``(distance, axis)`` where ``axis`` is 0 if the x-facing facet
    is hit first and 1 for the y-facing facet.  A zero direction component
    never hits its facet.  Ties pick the x facet, matching the vectorised
    path.
    """
    if omega_x > PARALLEL_EPS:
        dist_x = (x_hi - x) / omega_x
    elif omega_x < -PARALLEL_EPS:
        dist_x = (x_lo - x) / omega_x
    else:
        dist_x = HUGE_DISTANCE
    if omega_y > PARALLEL_EPS:
        dist_y = (y_hi - y) / omega_y
    elif omega_y < -PARALLEL_EPS:
        dist_y = (y_lo - y) / omega_y
    else:
        dist_y = HUGE_DISTANCE
    if dist_x <= dist_y:
        return dist_x, 0
    return dist_y, 1


def distance_to_facet_vec(
    x: np.ndarray,
    y: np.ndarray,
    omega_x: np.ndarray,
    omega_y: np.ndarray,
    x_lo: np.ndarray,
    x_hi: np.ndarray,
    y_lo: np.ndarray,
    y_hi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`distance_to_facet` over particle arrays."""
    dist_x = np.full_like(x, HUGE_DISTANCE)
    dist_y = np.full_like(y, HUGE_DISTANCE)
    pos = omega_x > PARALLEL_EPS
    neg = omega_x < -PARALLEL_EPS
    dist_x[pos] = (x_hi[pos] - x[pos]) / omega_x[pos]
    dist_x[neg] = (x_lo[neg] - x[neg]) / omega_x[neg]
    pos = omega_y > PARALLEL_EPS
    neg = omega_y < -PARALLEL_EPS
    dist_y[pos] = (y_hi[pos] - y[pos]) / omega_y[pos]
    dist_y[neg] = (y_lo[neg] - y[neg]) / omega_y[neg]
    axis = (dist_y < dist_x).astype(np.int64)
    return np.minimum(dist_x, dist_y), axis


def distance_to_collision(mfp_remaining: float, sigma_t: float) -> float:
    """Distance to the next collision from the remaining optical distance.

    With no material (Σ_t = 0, e.g. the stream problem's near-vacuum when
    fully attenuated) the collision never happens.
    """
    if sigma_t <= 0.0:
        return HUGE_DISTANCE
    return mfp_remaining / sigma_t


def distance_to_collision_vec(
    mfp_remaining: np.ndarray, sigma_t: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`distance_to_collision`."""
    out = np.full_like(mfp_remaining, HUGE_DISTANCE)
    ok = sigma_t > 0.0
    out[ok] = mfp_remaining[ok] / sigma_t[ok]
    return out


def distance_to_census(dt_remaining: float, speed: float) -> float:
    """Distance flown in the remaining timestep at the current speed."""
    return dt_remaining * speed


def select_event(d_collision: float, d_facet: float, d_census: float) -> EventKind:
    """Pick the first encountered event (tie-break: collision, facet, census)."""
    if d_collision <= d_facet and d_collision <= d_census:
        return EventKind.COLLISION
    if d_facet <= d_census:
        return EventKind.FACET
    return EventKind.CENSUS


def select_event_vec(
    d_collision: np.ndarray, d_facet: np.ndarray, d_census: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`select_event`; returns an int array of EventKind."""
    event = np.full(d_collision.shape, int(EventKind.CENSUS), dtype=np.int64)
    facet_first = d_facet <= d_census
    event[facet_first] = int(EventKind.FACET)
    coll_first = (d_collision <= d_facet) & (d_collision <= d_census)
    event[coll_first] = int(EventKind.COLLISION)
    return event
