"""Fission: secondary-particle production in multiplying media.

The paper's medium is non-multiplying, with fission named as future work
(§IV-D, §IX).  This extension implements the standard implicit treatment,
layered *around* the existing collision accounting so the non-multiplying
path is untouched:

* at a collision, capture and fission together form the absorption share
  (``σ_a = σ_c + σ_f``), so the weight reduction and local energy deposit
  of :func:`repro.physics.collision.collide` already cover both;
* additionally, fission *banks* secondaries: with pre-collision weight
  ``w`` the expected yield is ``w ν σ_f / σ_t``, realised as an integer by
  adding a uniform draw and flooring (unbiased);
* each secondary is born at the fission site with unit weight, an
  isotropic direction and an energy from a simplified exponential fission
  spectrum, drawn from its **own** counter-based stream.

Secondary identity is derived deterministically from the parent's state by
running Threefry over ``(parent_id, event_counter « 8 | child_index)`` —
both parallelisation schemes therefore produce bit-identical secondaries
regardless of traversal order, preserving the scheme-equivalence property
the test-suite relies on.
"""

from __future__ import annotations

import numpy as np

from repro.rng.threefry import threefry2x64

__all__ = [
    "FISSION_ID_DOMAIN",
    "secondary_id",
    "expected_secondaries",
    "realised_secondaries",
    "sample_secondary_energy",
]

#: Key-domain separator so secondary ids cannot collide with the primary
#: id sequence or with other derived streams.
FISSION_ID_DOMAIN = 0xF15510


def secondary_id(seed: int, parent_id: int, parent_counter: int, child_index: int) -> int:
    """Deterministic, collision-resistant id for a fission secondary.

    ``(parent_id, counter«8 | index)`` is unique per banked secondary
    (counters strictly increase along a history; ≤255 secondaries per
    event), and Threefry scatters it over the 64-bit id space so derived
    streams are statistically independent of every other stream.
    """
    if child_index < 0 or child_index > 0xFF:
        raise ValueError("at most 256 secondaries per fission event")
    word = ((parent_counter << 8) | child_index) & 0xFFFFFFFFFFFFFFFF
    out, _ = threefry2x64((parent_id, word), (seed, FISSION_ID_DOMAIN))
    return out


def expected_secondaries(
    weight: float, nu: float, sigma_f: float, sigma_t: float
) -> float:
    """Expected secondary yield of one collision, ``w ν σ_f / σ_t``."""
    if sigma_t <= 0.0:
        return 0.0
    return weight * nu * sigma_f / sigma_t


def realised_secondaries(expected: float, u: float) -> int:
    """Unbiased integer realisation: ``floor(expected + u)``.

    ``E[floor(x + U)] = x`` for ``U ~ U[0,1)`` — the yield is conserved in
    expectation without carrying fractional particles.
    """
    return int(np.floor(expected + u))


def sample_secondary_energy(u: float, mean_ev: float) -> float:
    """Simplified fission spectrum: exponential with the given mean.

    A Watt spectrum's shape is not needed for performance fidelity; the
    exponential keeps the one-draw birth protocol and a realistic fast
    emission energy scale (~2 MeV).
    """
    return float(-mean_ev * np.log(1.0 - u))
