"""Setup shim for offline editable installs (`pip install -e . --no-use-pep517`).

All real metadata lives in pyproject.toml; this file exists because the
sandboxed environment has no `wheel` package, which PEP 660 editable
installs require.
"""

from setuptools import setup

setup()
