"""Energy-bin search: binary vs cached-linear agreement, probe accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xs.lookup import (
    LookupStats,
    binary_search_bin,
    binary_search_bin_vec,
    cached_linear_search_bin,
)
from repro.xs.tables import CrossSectionTable, make_capture_table


@pytest.fixture(scope="module")
def table():
    return make_capture_table(nentries=128)


def _bracket_ok(table, e, b):
    if e <= table.energy[0]:
        return b == 0
    if e >= table.energy[-1]:
        return b == len(table) - 2
    return table.energy[b] <= e < table.energy[b + 1]


@given(e=st.floats(min_value=1e-6, max_value=3e7, allow_nan=False))
@settings(max_examples=300, deadline=None)
def test_binary_search_brackets(e):
    t = make_capture_table(nentries=128)
    b = binary_search_bin(t, e)
    assert _bracket_ok(t, e, b)


@given(
    e=st.floats(min_value=1e-6, max_value=3e7, allow_nan=False),
    start=st.integers(min_value=0, max_value=126),
)
@settings(max_examples=300, deadline=None)
def test_cached_linear_matches_binary(e, start):
    t = make_capture_table(nentries=128)
    assert cached_linear_search_bin(t, e, start) == binary_search_bin(t, e)


def test_grid_points_land_in_their_bin(table):
    for k in range(len(table) - 1):
        e = float(table.energy[k])
        assert binary_search_bin(table, e) == k
        assert cached_linear_search_bin(table, e, 64) == k


def test_clamping_below_and_above(table):
    lo = float(table.energy[0]) / 10
    hi = float(table.energy[-1]) * 10
    assert binary_search_bin(table, lo) == 0
    assert binary_search_bin(table, hi) == len(table) - 2
    assert cached_linear_search_bin(table, lo, 50) == 0
    assert cached_linear_search_bin(table, hi, 50) == len(table) - 2


def test_vectorised_binary_matches_scalar(table):
    rng = np.random.default_rng(1)
    e = rng.uniform(1e-6, 3e7, 500)
    bins = binary_search_bin_vec(table, e)
    for i in range(500):
        assert bins[i] == binary_search_bin(table, float(e[i]))


def test_linear_probe_count_zero_when_cached_bin_correct(table):
    stats = LookupStats()
    e = float(table.energy[40]) * 1.0001
    b = binary_search_bin(table, e)
    cached_linear_search_bin(table, e, b, stats)
    assert stats.lookups == 1
    assert stats.linear_probes == 0


def test_linear_probe_count_matches_distance(table):
    """Walking k bins costs ~k probes — the locality the paper exploits."""
    stats = LookupStats()
    target = float(table.energy[50]) * 1.0001
    cached_linear_search_bin(table, target, 45, stats)
    assert 4 <= stats.linear_probes <= 6


def test_binary_probe_count_logarithmic(table):
    stats = LookupStats()
    binary_search_bin(table, float(table.energy[40]) * 1.0001, stats)
    assert 1 <= stats.binary_probes <= int(np.ceil(np.log2(len(table)))) + 1


def test_stats_merge():
    a = LookupStats(lookups=2, binary_probes=5, linear_probes=1)
    b = LookupStats(lookups=3, binary_probes=0, linear_probes=7)
    a.merge(b)
    assert (a.lookups, a.binary_probes, a.linear_probes) == (5, 5, 8)
    assert a.probes_per_lookup() == pytest.approx(13 / 5)


def test_probes_per_lookup_empty():
    assert LookupStats().probes_per_lookup() == 0.0


def test_tiny_table():
    t = CrossSectionTable(energy=np.array([1.0, 2.0]), value=np.array([1.0, 1.0]))
    assert binary_search_bin(t, 1.5) == 0
    assert cached_linear_search_bin(t, 1.5, 0) == 0
