"""Workload characterisation and the scaling laws it relies on."""

import pytest

from repro.core import Scheme, Simulation, csp_problem, scatter_problem, stream_problem
from repro.perfmodel.workload import Workload


@pytest.fixture(scope="module")
def stream_results():
    return {
        nx: Simulation(stream_problem(nx=nx, nparticles=30)).run(Scheme.OVER_EVENTS)
        for nx in (48, 96)
    }


def test_from_result_rates(stream_results):
    r = stream_results[96]
    w = Workload.from_result(r)
    assert w.nparticles == 30
    assert w.mesh_nx == 96
    assert w.collisions_pp == r.counters.collisions / 30
    assert w.facets_pp == r.counters.facets / 30
    assert w.flushes_pp == r.counters.tally_flushes / 30
    assert sum(w.event_mix) == pytest.approx(1.0)


def test_facet_scaling_law_holds(stream_results):
    """facets/particle ∝ mesh resolution — the law scaled() relies on."""
    w48 = Workload.from_result(stream_results[48])
    w96 = Workload.from_result(stream_results[96])
    assert w96.facets_pp / w48.facets_pp == pytest.approx(2.0, rel=0.05)


def test_collision_scale_invariance():
    runs = {
        nx: Simulation(scatter_problem(nx=nx, nparticles=30)).run(Scheme.OVER_EVENTS)
        for nx in (48, 96)
    }
    w48 = Workload.from_result(runs[48])
    w96 = Workload.from_result(runs[96])
    assert w96.collisions_pp == pytest.approx(w48.collisions_pp, rel=0.01)


def test_scaled_predicts_measured_resolution(stream_results):
    """Scaling the 48² workload to 96² reproduces the measured 96² rates."""
    w48 = Workload.from_result(stream_results[48])
    w96 = Workload.from_result(stream_results[96])
    predicted = w48.scaled(30, 96)
    assert predicted.facets_pp == pytest.approx(w96.facets_pp, rel=0.05)
    assert predicted.density_reads_pp == pytest.approx(
        w96.density_reads_pp, rel=0.05
    )
    assert predicted.flushes_pp == pytest.approx(w96.flushes_pp, rel=0.05)


def test_scaled_to_paper_values(stream_results):
    """The paper's ≈7000 facets/particle at 4000² (§IV-B)."""
    w = Workload.from_result(stream_results[96]).scaled(1_000_000, 4000)
    assert 6500 < w.facets_pp < 7600
    assert w.nparticles == 1_000_000


def test_scatter_pass_count_nearly_scale_invariant():
    r = Simulation(scatter_problem(nx=96, nparticles=30)).run(Scheme.OVER_EVENTS)
    w = Workload.from_result(r)
    scaled = w.scaled(10_000_000, 4000)
    # collision-dominated: the pass count must NOT blow up by 4000/96.
    assert scaled.oe_passes < w.oe_passes * 3


def test_conflict_probability_scales_inverse_cells():
    r = Simulation(scatter_problem(nx=96, nparticles=30)).run(Scheme.OVER_EVENTS)
    w = Workload.from_result(r)
    scaled = w.scaled(30, 192)
    assert scaled.conflict_probability == pytest.approx(
        w.conflict_probability / 4.0
    )


def test_work_distribution_resampling(stream_results):
    w = Workload.from_result(stream_results[48])
    d = w.work_distribution(1000)
    assert d.shape == (1000,)
    assert d.mean() == pytest.approx(w.work_samples.mean(), rel=0.05)
    short = w.work_distribution(10)
    assert short.shape == (10,)


def test_mesh_bytes(stream_results):
    w = Workload.from_result(stream_results[48])
    assert w.mesh_bytes() == 48 * 48 * 8


def test_warp_event_coherence_range(stream_results):
    w = Workload.from_result(stream_results[48])
    assert 1.0 / 3.0 <= w.warp_event_coherence() <= 1.0
    # Stream is nearly all facets → high coherence.
    assert w.warp_event_coherence() > 0.9


def test_csp_coherence_lower_than_stream(stream_results):
    """Mixed event problems diverge more on the GPU."""
    rc = Simulation(csp_problem(nx=96, nparticles=30)).run(Scheme.OVER_EVENTS)
    wc = Workload.from_result(rc)
    ws = Workload.from_result(stream_results[96])
    assert wc.warp_event_coherence() <= ws.warp_event_coherence()


def test_scaled_validation(stream_results):
    w = Workload.from_result(stream_results[48])
    with pytest.raises(ValueError):
        w.scaled(0, 100)
    with pytest.raises(ValueError):
        w.scaled(100, 0)


def test_workload_from_3d_result():
    """3-D runs characterise into the same dimension-agnostic Workload the
    machine models consume (working set = cell count, rates per particle)."""
    from repro.volume import csp3_problem, run_over_events_3d
    from repro.machine import BROADWELL
    from repro.perfmodel import CPUOptions, predict_cpu

    r = run_over_events_3d(csp3_problem(n=16, nparticles=20))
    w = Workload.from_result_3d(r)
    assert w.nparticles == 20
    assert w.mesh_bytes() == pytest.approx(16**3 * 8, rel=0.15)
    assert w.facets_pp == r.counters.facets / 20
    # the models accept it unchanged
    p = predict_cpu(w.scaled(1_000_000, 4000), BROADWELL, CPUOptions(nthreads=88))
    assert p.seconds > 0
    assert p.bound in ("latency", "bandwidth", "compute")
