"""Integration: Over Particles ≡ Over Events, conservation, reproducibility.

These are the load-bearing tests of the whole reproduction: the paper's
performance comparison between the two schemes is only meaningful because
they compute the same thing — here we prove ours do, particle by particle.
"""

import numpy as np
import pytest

from repro.core import (
    Scheme,
    SearchStrategy,
    Simulation,
    csp_problem,
    scatter_problem,
    stream_problem,
)
from repro.core.validation import energy_balance_error, population_accounted

PROBLEMS = {
    "stream": lambda **kw: stream_problem(nx=48, nparticles=40, **kw),
    "scatter": lambda **kw: scatter_problem(nx=48, nparticles=40, **kw),
    "csp": lambda **kw: csp_problem(nx=48, nparticles=40, **kw),
}


@pytest.fixture(scope="module")
def results():
    out = {}
    for name, factory in PROBLEMS.items():
        sim = Simulation(factory())
        out[name] = (sim.run(Scheme.OVER_PARTICLES), sim.run(Scheme.OVER_EVENTS))
    return out


@pytest.mark.parametrize("name", PROBLEMS)
def test_energy_conservation(results, name):
    rp, re = results[name]
    assert energy_balance_error(rp) < 1e-10
    assert energy_balance_error(re) < 1e-10


@pytest.mark.parametrize("name", PROBLEMS)
def test_population_conservation(results, name):
    rp, re = results[name]
    assert population_accounted(rp)
    assert population_accounted(re)


@pytest.mark.parametrize("name", PROBLEMS)
def test_event_counts_identical(results, name):
    rp, re = results[name]
    cp, ce = rp.counters, re.counters
    assert cp.collisions == ce.collisions
    assert cp.facets == ce.facets
    assert cp.census_events == ce.census_events
    assert cp.terminations == ce.terminations
    assert cp.reflections == ce.reflections
    assert cp.tally_flushes == ce.tally_flushes
    assert cp.density_reads == ce.density_reads
    assert cp.xs_lookups == ce.xs_lookups
    assert cp.rng_draws == ce.rng_draws


@pytest.mark.parametrize("name", PROBLEMS)
def test_per_particle_event_counts_identical(results, name):
    rp, re = results[name]
    assert np.array_equal(
        rp.counters.collisions_per_particle, re.counters.collisions_per_particle
    )
    assert np.array_equal(
        rp.counters.facets_per_particle, re.counters.facets_per_particle
    )


@pytest.mark.parametrize("name", PROBLEMS)
def test_final_states_bit_identical(results, name):
    rp, re = results[name]
    soa = re.arena
    for i, p in enumerate(rp.arena.proxies()):
        assert p.alive == bool(soa.alive[i])
        assert p.x == soa.x[i]
        assert p.y == soa.y[i]
        assert p.omega_x == soa.omega_x[i]
        assert p.omega_y == soa.omega_y[i]
        assert p.energy == soa.energy[i]
        assert p.weight == soa.weight[i]
        assert p.cellx == soa.cellx[i]
        assert p.celly == soa.celly[i]
        assert p.rng_counter == int(soa.rng_counter[i])


@pytest.mark.parametrize("name", PROBLEMS)
def test_tallies_match_to_accumulation_rounding(results, name):
    rp, re = results[name]
    assert np.allclose(
        rp.tally.deposition, re.tally.deposition, rtol=1e-10, atol=1e-30
    )
    assert np.array_equal(rp.tally.flush_counts, re.tally.flush_counts)


@pytest.mark.parametrize("name", PROBLEMS)
def test_runs_reproducible(results, name):
    """Identical config → bit-identical tally (counter-based RNG, §IV-F)."""
    rp, _ = results[name]
    again = Simulation(PROBLEMS[name]()).run(Scheme.OVER_PARTICLES)
    assert np.array_equal(rp.tally.deposition, again.tally.deposition)


def test_seed_changes_result():
    a = Simulation(csp_problem(nx=48, nparticles=40)).run(Scheme.OVER_PARTICLES)
    b = Simulation(csp_problem(nx=48, nparticles=40, seed=99)).run(
        Scheme.OVER_PARTICLES
    )
    assert not np.array_equal(a.tally.deposition, b.tally.deposition)


def test_binary_search_strategy_same_physics():
    """§VI-A: the search strategy is a performance choice, not a physics one."""
    lin = Simulation(
        csp_problem(nx=48, nparticles=40, search=SearchStrategy.CACHED_LINEAR)
    ).run(Scheme.OVER_PARTICLES)
    binr = Simulation(
        csp_problem(nx=48, nparticles=40, search=SearchStrategy.BINARY)
    ).run(Scheme.OVER_PARTICLES)
    assert np.array_equal(lin.tally.deposition, binr.tally.deposition)
    assert lin.counters.xs_lookups == binr.counters.xs_lookups
    assert binr.counters.xs_binary_probes > 0
    assert binr.counters.xs_linear_probes == 0
    assert lin.counters.xs_linear_probes >= 0
    assert lin.counters.xs_binary_probes == 0


def test_multi_timestep_equivalence():
    cfg = scatter_problem(nx=32, nparticles=25, ntimesteps=3)
    sim = Simulation(cfg)
    rp = sim.run(Scheme.OVER_PARTICLES)
    re = sim.run(Scheme.OVER_EVENTS)
    assert energy_balance_error(rp) < 1e-10
    assert rp.counters.collisions == re.counters.collisions
    assert rp.counters.census_events == re.counters.census_events
    assert np.allclose(rp.tally.deposition, re.tally.deposition, rtol=1e-10)
    # More histories terminate with more timesteps.
    one = Simulation(scatter_problem(nx=32, nparticles=25)).run(Scheme.OVER_PARTICLES)
    assert rp.counters.terminations >= one.counters.terminations


def test_multi_timestep_injects_once():
    """The source emits at t=0 only; later steps resume censused particles."""
    cfg = stream_problem(nx=32, nparticles=20, ntimesteps=2)
    r = Simulation(cfg).run(Scheme.OVER_PARTICLES)
    assert r.counters.census_events == 40  # each particle censuses twice
    assert energy_balance_error(r) < 1e-10
