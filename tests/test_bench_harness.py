"""Bench harness: workload caching, device baselines, table rendering."""

import pytest

from repro.bench import (
    DEVICE_BASELINES,
    PAPER_SCALE,
    format_series,
    format_table,
    measured_workload,
    paper_workload,
    standard_cpu_time,
    standard_gpu_time,
)
from repro.core import Scheme


def test_measured_workload_cached():
    import numpy as np

    from repro.bench.runner import _measured_workload_cached

    a = measured_workload("csp")
    misses = _measured_workload_cached.cache_info().misses
    b = measured_workload("csp")
    # lru-cached: one transport per problem per process...
    assert _measured_workload_cached.cache_info().misses == misses
    # ...but callers get defensive copies, never the shared record.
    assert a is not b and a.work_samples is not b.work_samples
    assert a.nparticles == b.nparticles
    assert np.array_equal(a.work_samples, b.work_samples)


def test_measured_workload_unknown():
    with pytest.raises(KeyError):
        measured_workload("nope")


def test_paper_workload_scales():
    w = paper_workload("scatter")
    assert w.nparticles == PAPER_SCALE["scatter"][0] == 10_000_000
    assert w.mesh_nx == 4000


def test_device_baselines_complete():
    assert set(DEVICE_BASELINES) == {"broadwell", "knl", "power8"}
    for nthreads, affinity, fast in DEVICE_BASELINES.values():
        assert nthreads > 0


def test_standard_cpu_time_override():
    base = standard_cpu_time("csp", "broadwell")
    fewer = standard_cpu_time("csp", "broadwell", nthreads=22)
    assert fewer.seconds > base.seconds


def test_standard_gpu_time_schemes():
    op = standard_gpu_time("csp", "p100")
    oe = standard_gpu_time("csp", "p100", Scheme.OVER_EVENTS)
    assert oe.seconds > op.seconds


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.25]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "2.50" in out and "3.25" in out
    widths = {len(l) for l in lines}
    assert len(widths) == 1  # all rows equal width


def test_format_table_empty_rows():
    out = format_table(["h1", "h2"], [])
    assert "h1" in out


def test_format_series():
    out = format_series("eff", [1, 2], [0.5, 0.25])
    assert "series: eff" in out
    assert "1: 0.500" in out
